//! Batch-vs-scalar equivalence suite.
//!
//! Every `SeqIndex::*_batch` entry point must return **bit-identical**
//! results to the scalar API it accelerates, for every backend: the static
//! Wavelet Trie (software-pipelined group descent), the append-only and
//! fully dynamic tries (default scalar-loop impls), and the tiered store
//! (directory-routed per-segment sub-batches). The suite drives all four
//! through `&dyn SeqIndex` with random, adversarial (all-equal,
//! all-distinct, deep-skewed) and empty/singleton batches.

use wavelet_trie::{
    AppendWaveletTrie, BitStr, BitString, DynamicWaveletTrie, SeqIndex, WaveletTrie,
};
use wt_store::{StoreConfig, TieredStore};

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed.max(1);
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

/// Fixed-width binary code (prefix-free by construction).
fn encode(v: u64, width: usize) -> BitString {
    BitString::from_bits((0..width).rev().map(move |k| (v >> k) & 1 != 0))
}

/// Deep-skewed prefix-free string: `1^depth 0` + a fixed-width tail.
/// Different depths diverge at position `min(depth)`, same depths at the
/// tail — so arbitrarily deep paths with long shared prefixes.
fn deep(depth: usize, tail: u64) -> BitString {
    let mut s = BitString::new();
    for _ in 0..depth {
        s.push(true);
    }
    s.push(false);
    for k in (0..4).rev() {
        s.push((tail >> k) & 1 != 0);
    }
    s
}

/// All four backends over the same sequence, behind the object-safe trait.
fn backends(seq: &[BitString]) -> Vec<(&'static str, Box<dyn SeqIndex>)> {
    let stat = WaveletTrie::build(seq).expect("prefix-free");
    let mut app = AppendWaveletTrie::new();
    let mut dynamic = DynamicWaveletTrie::new();
    for s in seq {
        app.append(s.as_bitstr()).unwrap();
        dynamic.append(s.as_bitstr()).unwrap();
    }
    // Small segments so the tiered store mixes several sealed segments
    // with a non-empty hot tail.
    let mut tiered = TieredStore::with_config(StoreConfig {
        seal_at: (seq.len() / 5).max(4),
        max_sealed: 3,
    });
    for s in seq {
        tiered.append(s.as_bitstr()).unwrap();
    }
    vec![
        ("static", Box::new(stat)),
        ("append", Box::new(app)),
        ("dynamic", Box::new(dynamic)),
        ("tiered", Box::new(tiered)),
    ]
}

/// Asserts every batched op equals its scalar counterpart on this backend.
fn check_equivalence(
    name: &str,
    idx: &dyn SeqIndex,
    positions: &[usize],
    queries: &[(BitStr<'_>, usize)],
    sel: &[(BitStr<'_>, usize)],
    prefixes: &[BitStr<'_>],
) {
    let got = idx.access_batch(positions);
    assert_eq!(got.len(), positions.len());
    for (k, &p) in positions.iter().enumerate() {
        assert_eq!(got[k], idx.access(p), "{name}: access lane {k} (pos {p})");
    }
    let got = idx.rank_batch(queries);
    for (k, &(s, pos)) in queries.iter().enumerate() {
        assert_eq!(got[k], idx.rank(s, pos), "{name}: rank lane {k}");
    }
    let got = idx.select_batch(sel);
    for (k, &(s, i)) in sel.iter().enumerate() {
        assert_eq!(got[k], idx.select(s, i), "{name}: select lane {k}");
    }
    let got = idx.count_prefix_batch(prefixes);
    for (k, &p) in prefixes.iter().enumerate() {
        assert_eq!(got[k], idx.count_prefix(p), "{name}: count_prefix lane {k}");
    }
}

#[test]
fn random_batches_across_backends() {
    let mut next = xorshift(0xBA7C4);
    let seq: Vec<BitString> = (0..1500).map(|_| encode(next() % 120, 10)).collect();
    let n = seq.len();
    // Probe strings: mostly present, some absent (codes past the alphabet).
    let probes: Vec<BitString> = (0..300).map(|_| encode(next() % 180, 10)).collect();
    for (name, idx) in backends(&seq) {
        // Batch sizes spanning the pipeline's 64-lane chunking.
        for &bs in &[1usize, 3, 64, 300] {
            let positions: Vec<usize> = (0..bs).map(|_| (next() % n as u64) as usize).collect();
            let queries: Vec<(BitStr<'_>, usize)> = (0..bs)
                .map(|k| {
                    (
                        probes[k % probes.len()].as_bitstr(),
                        (next() % (n as u64 + 1)) as usize,
                    )
                })
                .collect();
            let sel: Vec<(BitStr<'_>, usize)> = (0..bs)
                .map(|k| (probes[k % probes.len()].as_bitstr(), (next() % 30) as usize))
                .collect();
            let prefixes: Vec<BitStr<'_>> = (0..bs)
                .map(|k| {
                    let p = &probes[k % probes.len()];
                    p.as_bitstr().prefix((next() % 11) as usize)
                })
                .collect();
            check_equivalence(name, idx.as_ref(), &positions, &queries, &sel, &prefixes);
        }
    }
}

#[test]
fn adversarial_batches() {
    let mut next = xorshift(0xAD7E5);
    // Mix fixed-width values with deep-skewed strings.
    let mut seq: Vec<BitString> = (0..600).map(|_| encode(next() % 40, 8)).collect();
    for d in 0..50 {
        seq.push(deep(d + 8, next() % 16));
    }
    let n = seq.len();
    let deep_probe = deep(30, 3);
    let absent_deep = deep(200, 0); // deeper than anything stored
    for (name, idx) in backends(&seq) {
        // All-equal batch: every lane asks the same query.
        let positions = vec![n / 2; 128];
        let queries: Vec<(BitStr<'_>, usize)> = vec![(deep_probe.as_bitstr(), n); 128];
        let sel: Vec<(BitStr<'_>, usize)> = vec![(deep_probe.as_bitstr(), 0); 128];
        let prefixes: Vec<BitStr<'_>> = vec![deep_probe.as_bitstr().prefix(20); 128];
        check_equivalence(name, idx.as_ref(), &positions, &queries, &sel, &prefixes);
        // All-distinct batch: every lane a different position / string.
        let positions: Vec<usize> = (0..n).step_by(7).collect();
        let queries: Vec<(BitStr<'_>, usize)> = seq
            .iter()
            .step_by(11)
            .enumerate()
            .map(|(k, s)| (s.as_bitstr(), (k * 13) % (n + 1)))
            .collect();
        let sel: Vec<(BitStr<'_>, usize)> = seq
            .iter()
            .step_by(11)
            .enumerate()
            .map(|(k, s)| (s.as_bitstr(), k % 25))
            .collect();
        let prefixes: Vec<BitStr<'_>> = seq
            .iter()
            .step_by(11)
            .enumerate()
            .map(|(k, s)| s.as_bitstr().prefix(k % (s.len() + 1)))
            .collect();
        check_equivalence(name, idx.as_ref(), &positions, &queries, &sel, &prefixes);
        // Deep-skewed absent queries and out-of-range select indexes.
        let queries: Vec<(BitStr<'_>, usize)> = vec![(absent_deep.as_bitstr(), n); 64];
        let sel: Vec<(BitStr<'_>, usize)> = (0..64)
            .map(|k| (deep_probe.as_bitstr(), n + k)) // always out of range
            .collect();
        let prefixes: Vec<BitStr<'_>> = vec![absent_deep.as_bitstr(); 64];
        check_equivalence(name, idx.as_ref(), &[], &queries, &sel, &prefixes);
    }
}

#[test]
fn empty_and_singleton_batches() {
    let mut next = xorshift(0x51461);
    let seq: Vec<BitString> = (0..200).map(|_| encode(next() % 9, 6)).collect();
    let present = seq[0].clone();
    for (name, idx) in backends(&seq) {
        // Empty batches on every op.
        assert!(idx.access_batch(&[]).is_empty(), "{name}");
        assert!(idx.rank_batch(&[]).is_empty(), "{name}");
        assert!(idx.select_batch(&[]).is_empty(), "{name}");
        assert!(idx.count_prefix_batch(&[]).is_empty(), "{name}");
        // Singleton batches.
        check_equivalence(
            name,
            idx.as_ref(),
            &[0],
            &[(present.as_bitstr(), 1)],
            &[(present.as_bitstr(), 0)],
            &[present.as_bitstr().prefix(0)], // empty prefix matches all
        );
    }
    // Degenerate sequences: a single string, and the empty-string-only set
    // (a root leaf with an empty label).
    for seq in [vec![encode(5, 6)], vec![BitString::new(); 4]] {
        let probe = seq[0].clone();
        for (name, idx) in backends(&seq) {
            let positions: Vec<usize> = (0..seq.len()).collect();
            check_equivalence(
                name,
                idx.as_ref(),
                &positions,
                &[(probe.as_bitstr(), seq.len()), (probe.as_bitstr(), 0)],
                &[(probe.as_bitstr(), 0), (probe.as_bitstr(), seq.len())],
                &[probe.as_bitstr(), probe.as_bitstr().prefix(0)],
            );
        }
    }
}

#[test]
fn empty_sequence_batches() {
    let seq: Vec<BitString> = Vec::new();
    let probe = encode(3, 6);
    for (name, idx) in backends(&seq) {
        assert!(idx.access_batch(&[]).is_empty(), "{name}");
        assert_eq!(idx.rank_batch(&[(probe.as_bitstr(), 0)]), vec![0], "{name}");
        assert_eq!(
            idx.select_batch(&[(probe.as_bitstr(), 0)]),
            vec![None],
            "{name}"
        );
        assert_eq!(
            idx.count_prefix_batch(&[probe.as_bitstr()]),
            vec![0],
            "{name}"
        );
    }
}
