//! Property-based tests (proptest) on the core invariants:
//! * every Wavelet Trie variant ≡ the naive model under arbitrary inputs;
//! * the dynamic structures ≡ the model under arbitrary op sequences;
//! * the bitvector substrates ≡ `Vec<bool>` models;
//! * coder round-trips and order preservation.

use proptest::prelude::*;
use wavelet_trie::binarize::{Coder, NinthBitCoder};
use wavelet_trie::{DynamicStrings, IndexedStrings, SequenceOps, WaveletTrie};
use wt_baselines::NaiveSeq;
use wt_bits::{AppendBitVec, BitAccess, BitRank, BitSelect, DynamicBitVec, EliasFano};
use wt_trie::BitString;

fn short_string() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::num::u8::ANY, 0..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn static_wt_matches_naive(data in proptest::collection::vec(short_string(), 1..80)) {
        let idx = IndexedStrings::build(data.iter());
        let naive = NaiveSeq::from_iter(data.iter());
        let n = data.len();
        for i in 0..n {
            prop_assert_eq!(idx.get_bytes(i), naive.get(i).to_vec());
        }
        for s in data.iter().take(10) {
            for pos in [0, n / 2, n] {
                prop_assert_eq!(idx.rank(s, pos), naive.rank(s, pos));
            }
            let total = naive.rank(s, n);
            for k in 0..total {
                prop_assert_eq!(idx.select(s, k), naive.select(s, k));
            }
            // every non-empty byte prefix
            for plen in 0..s.len().min(3) {
                let p = &s[..plen];
                prop_assert_eq!(idx.rank_prefix(p, n), naive.rank_prefix(p, n));
                prop_assert_eq!(idx.select_prefix(p, 0), naive.select_prefix(p, 0));
            }
        }
    }

    #[test]
    fn dynamic_ops_match_naive(
        init in proptest::collection::vec(short_string(), 0..30),
        ops in proptest::collection::vec((0u8..3, short_string(), proptest::num::u16::ANY), 0..60),
    ) {
        let mut dy = DynamicStrings::new();
        let mut naive = NaiveSeq::new();
        for s in &init {
            dy.push(s);
            naive.push(s);
        }
        for (op, s, r) in &ops {
            let r = *r as usize;
            match op {
                0 => {
                    let pos = r % (naive.len() + 1);
                    dy.insert(s, pos);
                    naive.insert(s, pos);
                }
                1 if !naive.is_empty() => {
                    let pos = r % naive.len();
                    prop_assert_eq!(dy.remove(pos), naive.remove(pos));
                }
                _ => {
                    let pos = r % (naive.len() + 1);
                    prop_assert_eq!(dy.rank(s, pos), naive.rank(s, pos));
                    prop_assert_eq!(dy.select(s, r % 4), naive.select(s, r % 4));
                }
            }
        }
        prop_assert_eq!(dy.len(), naive.len());
        for i in 0..naive.len() {
            prop_assert_eq!(dy.get_bytes(i), naive.get(i).to_vec());
        }
    }

    #[test]
    fn coder_roundtrip_and_order(a in short_string(), b in short_string()) {
        let c = NinthBitCoder;
        let ea = c.encode(&a);
        let eb = c.encode(&b);
        prop_assert_eq!(c.decode(ea.as_bitstr()), a.clone());
        prop_assert_eq!(c.decode(eb.as_bitstr()), b.clone());
        // order preservation
        prop_assert_eq!(ea.cmp(&eb), a.cmp(&b));
        // prefix-freeness
        if a != b {
            prop_assert!(!ea.as_bitstr().starts_with(&eb.as_bitstr()));
        }
    }

    #[test]
    fn dynamic_bitvec_matches_model(
        ops in proptest::collection::vec((0u8..2, proptest::num::u16::ANY, proptest::bool::ANY), 0..200),
    ) {
        let mut v = DynamicBitVec::new();
        let mut m: Vec<bool> = Vec::new();
        for (op, r, bit) in ops {
            let r = r as usize;
            match op {
                0 => {
                    let pos = r % (m.len() + 1);
                    v.insert(pos, bit);
                    m.insert(pos, bit);
                }
                _ if !m.is_empty() => {
                    let pos = r % m.len();
                    prop_assert_eq!(v.remove(pos), m.remove(pos));
                }
                _ => {}
            }
        }
        prop_assert_eq!(v.len(), m.len());
        let mut ones = 0;
        for (i, &b) in m.iter().enumerate() {
            prop_assert_eq!(v.get(i), b);
            prop_assert_eq!(v.rank1(i), ones);
            ones += b as usize;
        }
        let collected: Vec<bool> = v.iter().collect();
        prop_assert_eq!(collected, m);
    }

    #[test]
    fn append_bitvec_matches_model(bits in proptest::collection::vec(proptest::bool::ANY, 0..6000)) {
        let v = AppendBitVec::from_bits(bits.iter().copied());
        prop_assert_eq!(v.len(), bits.len());
        let mut ones = 0usize;
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(v.get(i), b);
            prop_assert_eq!(v.rank1(i), ones);
            if b {
                prop_assert_eq!(v.select1(ones), Some(i));
            } else {
                prop_assert_eq!(v.select0(i - ones), Some(i));
            }
            ones += b as usize;
        }
    }

    #[test]
    fn elias_fano_matches_model(mut vals in proptest::collection::vec(proptest::num::u32::ANY, 0..300)) {
        vals.sort_unstable();
        let vals: Vec<u64> = vals.into_iter().map(u64::from).collect();
        let ef = EliasFano::new(&vals);
        prop_assert_eq!(ef.len(), vals.len());
        for (i, &x) in vals.iter().enumerate() {
            prop_assert_eq!(ef.get(i), x);
        }
        for probe in vals.iter().take(20) {
            let naive = vals.iter().filter(|&&v| v <= *probe).count();
            prop_assert_eq!(ef.rank_leq(*probe), naive);
        }
    }

    #[test]
    fn bit_level_trie_rejects_only_prefix_violations(data in proptest::collection::vec(proptest::collection::vec(proptest::bool::ANY, 0..9), 1..30)) {
        // Build from raw bit strings: must succeed iff the set is prefix-free.
        let strs: Vec<BitString> = data.iter().map(|v| BitString::from_bits(v.iter().copied())).collect();
        let mut prefix_free = true;
        'outer: for (i, a) in strs.iter().enumerate() {
            for (j, b) in strs.iter().enumerate() {
                if i != j && a != b && a.as_bitstr().starts_with(&b.as_bitstr()) {
                    prefix_free = false;
                    break 'outer;
                }
            }
        }
        let result = WaveletTrie::build(&strs);
        prop_assert_eq!(result.is_ok(), prefix_free);
        if let Ok(wt) = result {
            for (i, s) in strs.iter().enumerate() {
                prop_assert_eq!(&wt.access(i), s);
            }
        }
    }
}
