//! Property-based tests on the core invariants:
//! * every Wavelet Trie variant ≡ the naive model under arbitrary inputs;
//! * the dynamic structures ≡ the model under arbitrary op sequences;
//! * the bitvector substrates ≡ `Vec<bool>` models;
//! * coder round-trips and order preservation.
//!
//! Each property is a plain checker function over concrete inputs, driven
//! by one of two harnesses:
//! * default: a hand-rolled loop over a seeded deterministic generator, so
//!   `cargo test -q` exercises randomized inputs without proptest;
//! * `--features proptest`: the same checkers under a proptest-style
//!   strategy harness.

use wavelet_trie::binarize::{Coder, NinthBitCoder};
use wavelet_trie::{DynamicStrings, IndexedStrings, SeqIndex, WaveletTrie};
use wt_baselines::NaiveSeq;
use wt_bits::{AppendBitVec, BitAccess, BitRank, BitSelect, DynamicBitVec, EliasFano};
use wt_trie::BitString;

// ---------------------------------------------------------------------------
// Checkers: one per property, over concrete inputs.
// ---------------------------------------------------------------------------

fn check_static_wt_matches_naive(data: &[Vec<u8>]) {
    let idx = IndexedStrings::build(data.iter());
    let naive = NaiveSeq::from_iter(data.iter());
    let n = data.len();
    for i in 0..n {
        assert_eq!(idx.get_bytes(i), naive.get(i).to_vec());
    }
    for s in data.iter().take(10) {
        for pos in [0, n / 2, n] {
            assert_eq!(idx.rank(s, pos), naive.rank(s, pos));
        }
        let total = naive.rank(s, n);
        for k in 0..total {
            assert_eq!(idx.select(s, k), naive.select(s, k));
        }
        // every non-empty byte prefix
        for plen in 0..s.len().min(3) {
            let p = &s[..plen];
            assert_eq!(idx.rank_prefix(p, n), naive.rank_prefix(p, n));
            assert_eq!(idx.select_prefix(p, 0), naive.select_prefix(p, 0));
        }
    }
}

fn check_dynamic_ops_match_naive(init: &[Vec<u8>], ops: &[(u8, Vec<u8>, u16)]) {
    let mut dy = DynamicStrings::new();
    let mut naive = NaiveSeq::new();
    for s in init {
        dy.push(s);
        naive.push(s);
    }
    for (op, s, r) in ops {
        let r = *r as usize;
        match op {
            0 => {
                let pos = r % (naive.len() + 1);
                dy.insert(s, pos);
                naive.insert(s, pos);
            }
            1 if !naive.is_empty() => {
                let pos = r % naive.len();
                assert_eq!(dy.remove(pos), naive.remove(pos));
            }
            _ => {
                let pos = r % (naive.len() + 1);
                assert_eq!(dy.rank(s, pos), naive.rank(s, pos));
                assert_eq!(dy.select(s, r % 4), naive.select(s, r % 4));
            }
        }
    }
    assert_eq!(dy.len(), naive.len());
    for i in 0..naive.len() {
        assert_eq!(dy.get_bytes(i), naive.get(i).to_vec());
    }
}

fn check_coder_roundtrip_and_order(a: &[u8], b: &[u8]) {
    let c = NinthBitCoder;
    let ea = c.encode(a);
    let eb = c.encode(b);
    assert_eq!(c.decode(ea.as_bitstr()), a.to_vec());
    assert_eq!(c.decode(eb.as_bitstr()), b.to_vec());
    // order preservation
    assert_eq!(ea.cmp(&eb), a.cmp(b));
    // prefix-freeness
    if a != b {
        assert!(!ea.as_bitstr().starts_with(&eb.as_bitstr()));
    }
}

fn check_dynamic_bitvec_matches_model(ops: &[(u8, u16, bool)]) {
    let mut v = DynamicBitVec::new();
    let mut m: Vec<bool> = Vec::new();
    for &(op, r, bit) in ops {
        let r = r as usize;
        match op {
            0 => {
                let pos = r % (m.len() + 1);
                v.insert(pos, bit);
                m.insert(pos, bit);
            }
            _ if !m.is_empty() => {
                let pos = r % m.len();
                assert_eq!(v.remove(pos), m.remove(pos));
            }
            _ => {}
        }
    }
    assert_eq!(v.len(), m.len());
    let mut ones = 0;
    for (i, &b) in m.iter().enumerate() {
        assert_eq!(v.get(i), b);
        assert_eq!(v.rank1(i), ones);
        ones += b as usize;
    }
    let collected: Vec<bool> = v.iter().collect();
    assert_eq!(collected, m);
}

fn check_append_bitvec_matches_model(bits: &[bool]) {
    let v = AppendBitVec::from_bits(bits.iter().copied());
    assert_eq!(v.len(), bits.len());
    let mut ones = 0usize;
    for (i, &b) in bits.iter().enumerate() {
        assert_eq!(v.get(i), b);
        assert_eq!(v.rank1(i), ones);
        if b {
            assert_eq!(v.select1(ones), Some(i));
        } else {
            assert_eq!(v.select0(i - ones), Some(i));
        }
        ones += b as usize;
    }
}

fn check_elias_fano_matches_model(mut vals: Vec<u32>) {
    vals.sort_unstable();
    let vals: Vec<u64> = vals.into_iter().map(u64::from).collect();
    let ef = EliasFano::new(&vals);
    assert_eq!(ef.len(), vals.len());
    for (i, &x) in vals.iter().enumerate() {
        assert_eq!(ef.get(i), x);
    }
    for probe in vals.iter().take(20) {
        let naive = vals.iter().filter(|&&v| v <= *probe).count();
        assert_eq!(ef.rank_leq(*probe), naive);
    }
}

fn check_bit_level_trie_rejects_only_prefix_violations(data: &[Vec<bool>]) {
    // Build from raw bit strings: must succeed iff the set is prefix-free.
    let strs: Vec<BitString> = data
        .iter()
        .map(|v| BitString::from_bits(v.iter().copied()))
        .collect();
    let mut prefix_free = true;
    'outer: for (i, a) in strs.iter().enumerate() {
        for (j, b) in strs.iter().enumerate() {
            if i != j && a != b && a.as_bitstr().starts_with(&b.as_bitstr()) {
                prefix_free = false;
                break 'outer;
            }
        }
    }
    let result = WaveletTrie::build(&strs);
    assert_eq!(result.is_ok(), prefix_free);
    if let Ok(wt) = result {
        for (i, s) in strs.iter().enumerate() {
            assert_eq!(&wt.access(i), s);
        }
    }
}

// ---------------------------------------------------------------------------
// Default harness: deterministic seeded PRNG, no proptest needed.
// ---------------------------------------------------------------------------

#[cfg(not(feature = "proptest"))]
mod fallback {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    const CASES: u64 = 64;

    /// Thin wrapper adding the generation helpers the checkers need.
    struct Prng(StdRng);

    impl Prng {
        fn new(seed: u64) -> Self {
            Prng(StdRng::seed_from_u64(seed))
        }

        fn next_u64(&mut self) -> u64 {
            self.0.random()
        }

        fn below(&mut self, n: usize) -> usize {
            self.0.random_range(0..n)
        }

        fn bool(&mut self) -> bool {
            self.0.random()
        }

        /// Mirrors `proptest::collection::vec(num::u8::ANY, 0..6)`.
        fn short_string(&mut self) -> Vec<u8> {
            let len = self.below(6);
            (0..len).map(|_| self.next_u64() as u8).collect()
        }

        fn vec_of<T>(&mut self, max_len: usize, mut f: impl FnMut(&mut Self) -> T) -> Vec<T> {
            let len = self.below(max_len);
            (0..len).map(|_| f(self)).collect()
        }
    }

    fn for_each_case(test: &str, f: impl Fn(&mut Prng)) {
        for case in 0..CASES {
            let mut seed = 0xCBF2_9CE4_8422_2325u64;
            for b in test.bytes() {
                seed = (seed ^ b as u64).wrapping_mul(0x100_0000_01B3);
            }
            let mut rng = Prng::new(seed ^ case.wrapping_mul(0xA24B_AED4_963E_E407));
            f(&mut rng);
        }
    }

    #[test]
    fn static_wt_matches_naive() {
        for_each_case("static_wt_matches_naive", |rng| {
            let data: Vec<Vec<u8>> = (0..1 + rng.below(79)).map(|_| rng.short_string()).collect();
            super::check_static_wt_matches_naive(&data);
        });
    }

    #[test]
    fn dynamic_ops_match_naive() {
        for_each_case("dynamic_ops_match_naive", |rng| {
            let init = rng.vec_of(30, |r| r.short_string());
            let ops = rng.vec_of(60, |r| {
                (r.below(3) as u8, r.short_string(), r.next_u64() as u16)
            });
            super::check_dynamic_ops_match_naive(&init, &ops);
        });
    }

    #[test]
    fn coder_roundtrip_and_order() {
        for_each_case("coder_roundtrip_and_order", |rng| {
            let a = rng.short_string();
            let b = rng.short_string();
            super::check_coder_roundtrip_and_order(&a, &b);
        });
    }

    #[test]
    fn dynamic_bitvec_matches_model() {
        for_each_case("dynamic_bitvec_matches_model", |rng| {
            let ops = rng.vec_of(200, |r| (r.below(2) as u8, r.next_u64() as u16, r.bool()));
            super::check_dynamic_bitvec_matches_model(&ops);
        });
    }

    #[test]
    fn append_bitvec_matches_model() {
        for_each_case("append_bitvec_matches_model", |rng| {
            let bits = rng.vec_of(6000, |r| r.bool());
            super::check_append_bitvec_matches_model(&bits);
        });
    }

    #[test]
    fn elias_fano_matches_model() {
        for_each_case("elias_fano_matches_model", |rng| {
            let vals = rng.vec_of(300, |r| r.next_u64() as u32);
            super::check_elias_fano_matches_model(vals);
        });
    }

    #[test]
    fn bit_level_trie_rejects_only_prefix_violations() {
        for_each_case("bit_level_trie_rejects_only_prefix_violations", |rng| {
            let data: Vec<Vec<bool>> = (0..1 + rng.below(29))
                .map(|_| rng.vec_of(9, |r| r.bool()))
                .collect();
            super::check_bit_level_trie_rejects_only_prefix_violations(&data);
        });
    }
}

// ---------------------------------------------------------------------------
// proptest harness: same checkers, strategy-driven inputs.
// ---------------------------------------------------------------------------

#[cfg(feature = "proptest")]
mod proptest_suite {
    use proptest::prelude::*;

    fn short_string() -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(proptest::num::u8::ANY, 0..6)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn static_wt_matches_naive(data in proptest::collection::vec(short_string(), 1..80)) {
            super::check_static_wt_matches_naive(&data);
        }

        #[test]
        fn dynamic_ops_match_naive(
            init in proptest::collection::vec(short_string(), 0..30),
            ops in proptest::collection::vec((0u8..3, short_string(), proptest::num::u16::ANY), 0..60),
        ) {
            super::check_dynamic_ops_match_naive(&init, &ops);
        }

        #[test]
        fn coder_roundtrip_and_order(a in short_string(), b in short_string()) {
            super::check_coder_roundtrip_and_order(&a, &b);
        }

        #[test]
        fn dynamic_bitvec_matches_model(
            ops in proptest::collection::vec((0u8..2, proptest::num::u16::ANY, proptest::bool::ANY), 0..200),
        ) {
            super::check_dynamic_bitvec_matches_model(&ops);
        }

        #[test]
        fn append_bitvec_matches_model(bits in proptest::collection::vec(proptest::bool::ANY, 0..6000)) {
            super::check_append_bitvec_matches_model(&bits);
        }

        #[test]
        fn elias_fano_matches_model(vals in proptest::collection::vec(proptest::num::u32::ANY, 0..300)) {
            super::check_elias_fano_matches_model(vals);
        }

        #[test]
        fn bit_level_trie_rejects_only_prefix_violations(
            data in proptest::collection::vec(proptest::collection::vec(proptest::bool::ANY, 0..9), 1..30),
        ) {
            super::check_bit_level_trie_rejects_only_prefix_violations(&data);
        }
    }
}
