//! Cross-variant equivalence: the static, append-only and fully dynamic
//! Wavelet Tries must answer every operation identically to each other and
//! to the naive scanning baseline, on realistic workloads.

use wavelet_trie::{AppendLog, DynamicStrings, IndexedStrings};
use wt_baselines::NaiveSeq;
use wt_workloads::{url_log, word_text, UrlLogConfig};

fn build_all(data: &[String]) -> (IndexedStrings, AppendLog, DynamicStrings, NaiveSeq) {
    let stat = IndexedStrings::build(data.iter());
    let mut app = AppendLog::new();
    let mut dy = DynamicStrings::new();
    for s in data {
        app.append(s);
        dy.push(s);
    }
    let naive = NaiveSeq::from_iter(data.iter());
    (stat, app, dy, naive)
}

fn check_equivalence(data: &[String]) {
    let (stat, app, dy, naive) = build_all(data);
    let n = data.len();
    assert_eq!(stat.len(), n);
    assert_eq!(app.len(), n);
    assert_eq!(dy.len(), n);
    assert_eq!(stat.distinct_len(), app.distinct_len());
    assert_eq!(stat.distinct_len(), dy.distinct_len());

    // Access at sampled positions.
    for i in (0..n).step_by((n / 64).max(1)) {
        let want = &data[i];
        assert_eq!(&stat.get_string(i), want, "static access({i})");
        assert_eq!(&app.get_string(i), want, "append access({i})");
        assert_eq!(&dy.get_string(i), want, "dynamic access({i})");
    }

    // Rank/Select on a sample of distinct strings (+ absent probes).
    let mut probes: Vec<String> = data.iter().take(200).cloned().collect();
    probes.sort();
    probes.dedup();
    probes.push("zzz-definitely-absent".to_string());
    for s in &probes {
        for pos in [0, n / 3, n / 2, n] {
            let want = naive.rank(s, pos);
            assert_eq!(stat.rank(s, pos), want, "static rank({s},{pos})");
            assert_eq!(app.rank(s, pos), want, "append rank({s},{pos})");
            assert_eq!(dy.rank(s, pos), want, "dynamic rank({s},{pos})");
        }
        let total = naive.rank(s, n);
        for k in (0..total).step_by((total / 8).max(1)) {
            let want = naive.select(s, k);
            assert_eq!(stat.select(s, k), want, "static select({s},{k})");
            assert_eq!(app.select(s, k), want, "append select({s},{k})");
            assert_eq!(dy.select(s, k), want, "dynamic select({s},{k})");
        }
        assert_eq!(stat.select(s, total), None);
    }

    // Prefix operations on host-level and path-level prefixes.
    let prefixes: Vec<String> = data
        .iter()
        .take(40)
        .map(|s| s[..s.len().min(18)].to_string())
        .chain(["http://".to_string(), "nope://".to_string(), String::new()])
        .collect();
    for p in &prefixes {
        for pos in [0, n / 2, n] {
            let want = naive.rank_prefix(p, pos);
            assert_eq!(
                stat.rank_prefix(p, pos),
                want,
                "static rank_prefix({p},{pos})"
            );
            assert_eq!(
                app.rank_prefix(p, pos),
                want,
                "append rank_prefix({p},{pos})"
            );
            assert_eq!(
                dy.rank_prefix(p, pos),
                want,
                "dynamic rank_prefix({p},{pos})"
            );
        }
        let total = naive.rank_prefix(p, n);
        for k in (0..total).step_by((total / 8).max(1)) {
            let want = naive.select_prefix(p, k);
            assert_eq!(
                stat.select_prefix(p, k),
                want,
                "static select_prefix({p},{k})"
            );
            assert_eq!(
                app.select_prefix(p, k),
                want,
                "append select_prefix({p},{k})"
            );
            assert_eq!(
                dy.select_prefix(p, k),
                want,
                "dynamic select_prefix({p},{k})"
            );
        }
    }

    // Range analytics (§5) on a few windows.
    for (l, r) in [(0, n), (n / 4, 3 * n / 4), (n / 2, n / 2 + n / 10)] {
        let want: Vec<(String, usize)> = naive
            .distinct_in_range(l, r)
            .into_iter()
            .map(|(s, c)| (String::from_utf8(s).unwrap(), c))
            .collect();
        // the trie enumerates in encoded order, which for NinthBitCoder is
        // byte-lexicographic — same as the BTreeMap order of the naive.
        assert_eq!(
            stat.distinct_in_range(l, r),
            want,
            "static distinct [{l},{r})"
        );
        assert_eq!(
            app.distinct_in_range(l, r),
            want,
            "append distinct [{l},{r})"
        );
        assert_eq!(
            dy.distinct_in_range(l, r),
            want,
            "dynamic distinct [{l},{r})"
        );

        let want_maj = naive
            .range_majority(l, r)
            .map(|(s, c)| (String::from_utf8(s).unwrap(), c));
        assert_eq!(stat.range_majority(l, r), want_maj);
        assert_eq!(app.range_majority(l, r), want_maj);
        assert_eq!(dy.range_majority(l, r), want_maj);

        let t = 1 + (r - l) / 20;
        let want_f: Vec<(String, usize)> = naive
            .range_frequent(l, r, t)
            .into_iter()
            .map(|(s, c)| (String::from_utf8(s).unwrap(), c))
            .collect();
        assert_eq!(stat.range_frequent(l, r, t), want_f);
        assert_eq!(dy.range_frequent(l, r, t), want_f);

        // Sequential iteration.
        let want_iter: Vec<String> = data[l..r].to_vec();
        let got: Vec<String> = stat.iter_range(l, r).collect();
        assert_eq!(got, want_iter, "static iter [{l},{r})");
        let got: Vec<String> = app.iter_range(l, r).collect();
        assert_eq!(got, want_iter, "append iter [{l},{r})");
        let got: Vec<String> = dy.iter_range(l, r).collect();
        assert_eq!(got, want_iter, "dynamic iter [{l},{r})");
    }
}

#[test]
fn url_log_equivalence() {
    let data = url_log(3000, UrlLogConfig::default(), 0xC0FFEE);
    check_equivalence(&data);
}

#[test]
fn word_text_equivalence() {
    let data = word_text(4000, 300, 0xBEEF);
    check_equivalence(&data);
}

#[test]
fn tiny_sequences_equivalence() {
    check_equivalence(&["a".to_string()]);
    check_equivalence(&["a".to_string(), "a".to_string()]);
    check_equivalence(&["a".to_string(), "b".to_string()]);
    let data: Vec<String> = ["x", "xy", "xyz", "x", "w", "xy"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    check_equivalence(&data);
}

#[test]
fn dynamic_matches_naive_under_mixed_ops() {
    use rand::{RngExt, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let pool = word_text(200, 50, 5);
    let mut dy = DynamicStrings::new();
    let mut naive = NaiveSeq::new();
    for step in 0..1500 {
        let r: u32 = rng.random_range(0..10);
        if naive.is_empty() || r < 6 {
            let s = &pool[rng.random_range(0..pool.len())];
            let pos = rng.random_range(0..=naive.len());
            dy.insert(s, pos);
            naive.insert(s, pos);
        } else {
            let pos = rng.random_range(0..naive.len());
            let got = dy.remove(pos);
            let want = naive.remove(pos);
            assert_eq!(got, want, "remove({pos}) at step {step}");
        }
        if step % 250 == 249 {
            let n = naive.len();
            for i in (0..n).step_by((n / 20).max(1)) {
                assert_eq!(dy.get_bytes(i), naive.get(i), "access({i}) at step {step}");
            }
            let probe = &pool[step % pool.len()];
            assert_eq!(dy.count(probe), naive.rank(probe, n));
        }
    }
}
