//! Tiered-store equivalence suite: a [`TieredStrings`]/[`TieredStore`]
//! driven through a randomized interleaving of append / insert / delete /
//! seal / compact must answer **every** query exactly like a naive
//! `Vec`-based oracle — including queries issued right after a
//! mid-interleave seal or compaction, and including the bit-level
//! comparison against a single monolithic Wavelet Trie fed the same
//! operation sequence.

use wavelet_trie::{BitString, DynamicWaveletTrie, SeqIndex};
use wt_store::{StoreConfig, TieredStore, TieredStrings};

fn xorshift(mut s: u64) -> impl FnMut() -> u64 {
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

/// Byte-string pool shaped like the §1 URL-log workload: shared hosts,
/// varied paths, plenty of duplicates.
fn pool() -> Vec<String> {
    let hosts = ["a.com", "b.org", "c.net"];
    let mut out = Vec::new();
    for h in hosts {
        for p in 0..6 {
            out.push(format!("http://{h}/p{p}"));
        }
        out.push(format!("http://{h}/"));
    }
    out
}

/// Full cross-check of the string facade against the oracle.
fn check_strings(st: &TieredStrings, oracle: &[String], probes: &[String]) {
    let n = oracle.len();
    assert_eq!(st.len(), n);
    assert_eq!(st.is_empty(), oracle.is_empty());
    for (i, want) in oracle.iter().enumerate() {
        assert_eq!(&st.get_string(i), want, "access({i})");
    }
    {
        let mut distinct: Vec<&String> = oracle.iter().collect();
        distinct.sort();
        distinct.dedup();
        assert_eq!(st.distinct_len(), distinct.len(), "distinct_len");
    }
    for s in probes {
        let occs: Vec<usize> = (0..n).filter(|&i| &oracle[i] == s).collect();
        assert_eq!(st.count(s), occs.len(), "count({s})");
        for pos in [0, n / 3, n / 2, n] {
            let naive = occs.iter().filter(|&&p| p < pos).count();
            assert_eq!(st.rank(s, pos), naive, "rank({s},{pos})");
        }
        for (k, &p) in occs.iter().enumerate() {
            assert_eq!(st.select(s, k), Some(p), "select({s},{k})");
        }
        assert_eq!(st.select(s, occs.len()), None);
        // Prefix ops over the host part.
        let prefix = &s[..s.len().min(10)];
        let matches: Vec<usize> = (0..n).filter(|&i| oracle[i].starts_with(prefix)).collect();
        assert_eq!(st.count_prefix(prefix), matches.len(), "count_prefix");
        for pos in [0, n / 2, n] {
            let naive = matches.iter().filter(|&&p| p < pos).count();
            assert_eq!(st.rank_prefix(prefix, pos), naive, "rank_prefix");
        }
        for k in [0, matches.len() / 2, matches.len().saturating_sub(1)] {
            assert_eq!(
                st.select_prefix(prefix, k),
                matches.get(k).copied(),
                "select_prefix({prefix},{k})"
            );
        }
    }
    // Range analytics over a mid window.
    let (l, r) = (n / 4, n - n / 4);
    let mut naive_counts: std::collections::BTreeMap<&String, usize> = Default::default();
    for s in &oracle[l..r] {
        *naive_counts.entry(s).or_insert(0) += 1;
    }
    let got = st.distinct_in_range(l, r);
    let want: Vec<(String, usize)> = naive_counts
        .iter()
        .map(|(s, &c)| ((*s).clone(), c))
        .collect();
    assert_eq!(got, want, "distinct_in_range({l},{r})");
    let maj = naive_counts
        .iter()
        .find(|&(_, &c)| 2 * c > r - l)
        .map(|(s, &c)| ((*s).clone(), c));
    assert_eq!(st.range_majority(l, r), maj, "range_majority({l},{r})");
    let freq_want: Vec<(String, usize)> = naive_counts
        .iter()
        .filter(|&(_, &c)| c >= 3)
        .map(|(s, &c)| ((*s).clone(), c))
        .collect();
    assert_eq!(st.range_frequent(l, r, 3), freq_want, "range_frequent");
    let seq: Vec<String> = st.iter_range(l, r).collect();
    assert_eq!(seq, oracle[l..r].to_vec(), "iter_range({l},{r})");
}

#[test]
fn randomized_op_interleave_matches_oracle() {
    let mut next = xorshift(0x7153_D0CA_FE01);
    let pool = pool();
    let probes: Vec<String> = pool.clone();
    let mut st = TieredStrings::with_config(StoreConfig {
        seal_at: 24,
        max_sealed: 3,
    });
    let mut oracle: Vec<String> = Vec::new();
    for step in 0..900 {
        let r = next() % 100;
        if oracle.is_empty() || r < 45 {
            let s = &pool[(next() % pool.len() as u64) as usize];
            st.push(s);
            oracle.push(s.clone());
        } else if r < 65 {
            let s = &pool[(next() % pool.len() as u64) as usize];
            let pos = (next() % (oracle.len() as u64 + 1)) as usize;
            st.insert(s, pos);
            oracle.insert(pos, s.clone());
        } else if r < 85 {
            let pos = (next() % oracle.len() as u64) as usize;
            let got = st.remove(pos);
            let want = oracle.remove(pos);
            assert_eq!(got, want.as_bytes(), "delete({pos}) at step {step}");
        } else if r < 93 {
            // Mid-interleave seal — queries must stay exact right after.
            st.seal();
            assert_eq!(st.len(), oracle.len());
        } else {
            st.compact();
        }
        if step % 150 == 149 {
            check_strings(&st, &oracle, &probes);
        }
    }
    // Segment structure really is tiered by now.
    assert!(st.num_segments() > 1, "policy should have produced tiers");
    check_strings(&st, &oracle, &probes);
    // Final full seal + compact, then check once more.
    st.seal();
    st.compact();
    assert!(st.sealed_segments() <= 3);
    check_strings(&st, &oracle, &probes);
}

/// Bit-level: the tiered store and a single monolithic dynamic trie fed
/// the identical op sequence must be indistinguishable through `SeqIndex`.
#[test]
fn tiered_store_matches_monolithic_trie_bit_level() {
    let mut next = xorshift(0xBEE5_1DE5);
    let encode = |v: u64| BitString::from_bits((0..9).rev().map(move |k| (v >> k) & 1 != 0));
    let mut st = TieredStore::with_config(StoreConfig {
        seal_at: 16,
        max_sealed: 2,
    });
    let mut mono = DynamicWaveletTrie::new();
    for step in 0..500 {
        let r = next() % 10;
        if mono.is_empty() || r < 6 {
            let s = encode(next() % 40);
            let pos = (next() % (mono.len() as u64 + 1)) as usize;
            st.insert(s.as_bitstr(), pos).unwrap();
            mono.insert(s.as_bitstr(), pos).unwrap();
        } else if r < 8 {
            let pos = (next() % mono.len() as u64) as usize;
            assert_eq!(st.delete(pos), mono.delete(pos), "delete at {step}");
        } else if r == 8 {
            st.seal();
        } else {
            st.compact();
        }
        if step % 100 == 99 {
            let n = mono.len();
            assert_eq!(st.seq_len(), n);
            assert_eq!(st.distinct_len(), mono.distinct_len());
            for pos in 0..n {
                assert_eq!(st.access(pos), mono.access(pos));
            }
            for v in 0..40 {
                let s = encode(v);
                let b = s.as_bitstr();
                assert_eq!(st.count(b), mono.count(b));
                assert_eq!(st.rank(b, n / 2), mono.rank(b, n / 2));
                for k in [0, 1, 2] {
                    assert_eq!(st.select(b, k), mono.select(b, k));
                }
                assert_eq!(st.admits(b), mono.admits(b));
            }
            let (l, r2) = (n / 5, n - n / 5);
            assert_eq!(st.distinct_in_range(l, r2), mono.distinct_in_range(l, r2));
            assert_eq!(st.range_majority(l, r2), mono.range_majority(l, r2));
            assert_eq!(
                st.distinct_prefixes_in_range(l, r2, 4),
                mono.distinct_prefixes_in_range(l, r2, 4)
            );
            let a: Vec<BitString> = st.iter_range_boxed(l, r2).collect();
            let b: Vec<BitString> = mono.iter_range_boxed(l, r2).collect();
            assert_eq!(a, b);
        }
    }
}

/// A sealed segment produced by the store must answer exactly like a
/// from-scratch static build of the same strings (freeze round-trip seen
/// through the store API).
#[test]
fn sealed_segment_equals_from_scratch_static_build() {
    use wavelet_trie::WaveletTrie;
    let mut next = xorshift(0x5EA1_5EA1);
    let encode = |v: u64| BitString::from_bits((0..8).rev().map(move |k| (v >> k) & 1 != 0));
    let mut st = TieredStore::with_config(StoreConfig {
        seal_at: 1 << 30, // manual sealing only
        max_sealed: 64,
    });
    let mut strings = Vec::new();
    for _ in 0..200 {
        let s = encode(next() % 50);
        st.append(s.as_bitstr()).unwrap();
        strings.push(s);
    }
    st.seal();
    assert_eq!(st.sealed_segments(), 1);
    let sealed = st.segment(0);
    let scratch = WaveletTrie::build(&strings).unwrap();
    assert_eq!(sealed.seq_len(), scratch.seq_len());
    assert_eq!(sealed.distinct_len(), scratch.distinct_len());
    assert_eq!(sealed.height(), scratch.height());
    assert_eq!(
        sealed.total_bitvector_bits(),
        scratch.total_bitvector_bits()
    );
    for pos in 0..200 {
        assert_eq!(sealed.access(pos), scratch.access(pos));
    }
    for v in 0..50 {
        let s = encode(v);
        let b = s.as_bitstr();
        assert_eq!(sealed.count(b), scratch.count(b));
        assert_eq!(sealed.select(b, 0), scratch.select(b, 0));
        assert_eq!(sealed.rank(b, 100), scratch.rank(b, 100));
    }
    assert_eq!(
        sealed.distinct_in_range(20, 180),
        scratch.distinct_in_range(20, 180)
    );
}

/// Failed inserts must leave the store untouched even when the violation
/// comes from a *different* segment than the one that would host the
/// position.
#[test]
fn failed_inserts_leave_store_unchanged() {
    let mut st = TieredStore::with_config(StoreConfig {
        seal_at: 2,
        max_sealed: 8,
    });
    for s in ["0100", "0001", "1100", "1010"] {
        st.append(BitString::parse(s).as_bitstr()).unwrap();
    }
    assert!(st.sealed_segments() >= 1);
    let snapshot: Vec<BitString> = st.iter_seq_boxed().collect();
    let lens = st.segment_lens();
    // "01" is a prefix of "0100" which lives in a sealed segment, but the
    // insert position targets the hot tail.
    let n = st.len();
    assert!(st.insert(BitString::parse("01").as_bitstr(), n).is_err());
    assert!(st.insert(BitString::parse("01001").as_bitstr(), 0).is_err());
    assert_eq!(st.len(), 4);
    assert_eq!(st.segment_lens(), lens, "no melt on failed insert");
    let after: Vec<BitString> = st.iter_seq_boxed().collect();
    assert_eq!(snapshot, after);
}
