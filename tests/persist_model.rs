//! Round-trip property suite for the zero-copy persistence layer: every
//! persistent container — `RawBitVec`, `Fid`, `RrrVector`, `EliasFano`,
//! `BpSupport`, `Dfuds`, `WaveletTrie`, `IndexedStrings`, `TieredStore` —
//! must answer **bit-identically** after a save → load cycle, across
//! randomized workloads and the degenerate shapes (empty, singleton,
//! all-equal, deep-skewed), and a save-after-load-after-save must
//! reproduce the byte image exactly (the canonical-form invariant the
//! golden fixtures rely on).

use wavelet_trie::{BitString, IndexedStrings, SeqIndex, WaveletTrie};
use wt_bits::persist::{from_bytes, kind, to_bytes};
use wt_bits::{
    BitAccess, BitRank, BitSelect, EliasFano, Fid, Persist, RawBitVec, RrrVector, SpaceUsage,
};
use wt_store::{StoreConfig, TieredStrings};
use wt_trie::{BpSupport, Dfuds};

fn xorshift(mut s: u64) -> impl FnMut() -> u64 {
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

/// Bit patterns covering the shapes the directories specialize on:
/// empty, singleton, all-zero, all-one, dense-random, sparse, and a long
/// run-structured vector (RRR's best case).
fn bit_shapes() -> Vec<Vec<bool>> {
    let mut rnd = xorshift(0xB175);
    let mut shapes: Vec<Vec<bool>> = vec![
        vec![],
        vec![true],
        vec![false],
        vec![false; 1000],
        vec![true; 1000],
        (0..64).map(|i| i % 2 == 0).collect(),
    ];
    shapes.push((0..5000).map(|_| rnd() % 2 == 1).collect());
    shapes.push((0..5000).map(|_| rnd().is_multiple_of(64)).collect());
    shapes.push((0..5000).map(|i| (i / 97) % 2 == 0).collect());
    shapes
}

/// Round-trips `value` through bytes twice and checks byte stability.
fn roundtrip<T: Persist>(archive_kind: u32, value: &T) -> T {
    let bytes = to_bytes(archive_kind, value);
    let loaded: T = from_bytes(archive_kind, &bytes).expect("valid archive must load");
    let rebytes = to_bytes(archive_kind, &loaded);
    assert_eq!(bytes, rebytes, "save-after-load must be byte-stable");
    loaded
}

#[test]
fn raw_bitvec_roundtrip() {
    for bits in bit_shapes() {
        let mut bv = RawBitVec::new();
        for &b in &bits {
            bv.push(b);
        }
        let loaded = roundtrip(kind::RAW, &bv);
        assert_eq!(loaded.len(), bv.len());
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(loaded.get(i), b, "bit {i}");
        }
    }
}

#[test]
fn fid_roundtrip() {
    for bits in bit_shapes() {
        let fid = Fid::from_bits(bits.iter().copied());
        let loaded = roundtrip(kind::FID, &fid);
        assert_eq!(loaded.len(), fid.len());
        assert_eq!(loaded.count_ones(), fid.count_ones());
        for i in 0..bits.len() {
            assert_eq!(loaded.get(i), fid.get(i), "get({i})");
            assert_eq!(loaded.rank1(i), fid.rank1(i), "rank1({i})");
        }
        for k in 0..fid.count_ones() {
            assert_eq!(loaded.select1(k), fid.select1(k), "select1({k})");
        }
        for k in 0..fid.len() - fid.count_ones() {
            assert_eq!(loaded.select0(k), fid.select0(k), "select0({k})");
        }
    }
}

#[test]
fn rrr_roundtrip() {
    for bits in bit_shapes() {
        let rrr = RrrVector::from_bits(bits.iter().copied());
        let loaded = roundtrip(kind::RRR, &rrr);
        assert_eq!(loaded.len(), rrr.len());
        assert_eq!(loaded.count_ones(), rrr.count_ones());
        for i in 0..bits.len() {
            assert_eq!(loaded.get(i), rrr.get(i), "get({i})");
            assert_eq!(loaded.rank1(i), rrr.rank1(i), "rank1({i})");
        }
        for k in (0..rrr.count_ones()).step_by(7.max(rrr.count_ones() / 50)) {
            assert_eq!(loaded.select1(k), rrr.select1(k), "select1({k})");
        }
    }
}

#[test]
fn elias_fano_roundtrip() {
    let mut rnd = xorshift(0xEF);
    let mut sequences: Vec<Vec<u64>> = vec![
        vec![],
        vec![0],
        vec![42],
        vec![7; 100], // all-equal (duplicates allowed)
        (0..1000u64).collect(),
    ];
    let mut sparse: Vec<u64> = (0..500).map(|_| rnd() % 1_000_000).collect();
    sparse.sort_unstable();
    sequences.push(sparse);
    for values in sequences {
        let ef = EliasFano::new(&values);
        let loaded = roundtrip(kind::ELIAS_FANO, &ef);
        assert_eq!(loaded.len(), ef.len());
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(loaded.get(i), v, "get({i})");
        }
        for probe in [0, 1, 500, 999_999, u64::MAX] {
            assert_eq!(loaded.rank_leq(probe), ef.rank_leq(probe));
            assert_eq!(loaded.predecessor_index(probe), ef.predecessor_index(probe));
        }
    }
}

/// Parenthesis sequences: balanced trees of several shapes, including the
/// deep-skewed chain that stresses the rmM-tree excursions.
fn paren_shapes() -> Vec<RawBitVec> {
    let mut shapes = Vec::new();
    let mut push_str = |s: &str| {
        let mut bv = RawBitVec::new();
        for c in s.chars() {
            bv.push(c == '(');
        }
        shapes.push(bv);
    };
    push_str("");
    push_str("()");
    push_str("(())()((()))");
    // deep-skewed: 2000 nested pairs
    let deep: String = "(".repeat(2000) + &")".repeat(2000);
    push_str(&deep);
    // wide: 3000 sibling pairs under a root
    let wide: String = "(".to_string() + &"()".repeat(3000) + ")";
    push_str(&wide);
    shapes
}

#[test]
fn bp_roundtrip() {
    for bits in paren_shapes() {
        let bp = BpSupport::new(bits);
        let bytes = to_bytes(kind::BP, &bp);
        let loaded: BpSupport = from_bytes(kind::BP, &bytes).expect("valid BP archive");
        assert_eq!(to_bytes(kind::BP, &loaded), bytes, "byte stability");
        assert_eq!(loaded.len(), bp.len());
        for i in 0..bp.len() {
            assert_eq!(loaded.excess(i), bp.excess(i), "excess({i})");
            if bp.is_open(i) {
                assert_eq!(loaded.find_close(i), bp.find_close(i), "find_close({i})");
            } else {
                assert_eq!(loaded.find_open(i), bp.find_open(i), "find_open({i})");
            }
        }
    }
}

#[test]
fn dfuds_roundtrip() {
    // Degree sequences in preorder: empty, single leaf, full binary trees,
    // and a deep left-spine (every internal node has a leaf + internal
    // child) — the deep-skewed shape for tree navigation.
    let mut degree_seqs: Vec<Vec<usize>> = vec![vec![], vec![0], vec![2, 0, 0]];
    let mut full = vec![2; 1023];
    full.extend(vec![0; 1024]);
    // preorder of a complete binary tree is interleaved, but any sequence
    // with the right shape works; build it properly instead:
    fn complete(depth: usize, out: &mut Vec<usize>) {
        if depth == 0 {
            out.push(0);
        } else {
            out.push(2);
            complete(depth - 1, out);
            complete(depth - 1, out);
        }
    }
    let mut c = Vec::new();
    complete(9, &mut c);
    degree_seqs.push(c);
    let mut spine = Vec::new();
    for _ in 0..1500 {
        spine.push(2);
        spine.push(0); // left leaf
    }
    spine.push(0); // final right leaf
    degree_seqs.push(spine);
    let _ = full;
    for degs in degree_seqs {
        let t = Dfuds::from_degrees(degs.iter().copied());
        let bytes = to_bytes(kind::DFUDS, &t);
        let loaded: Dfuds = from_bytes(kind::DFUDS, &bytes).expect("valid DFUDS archive");
        assert_eq!(to_bytes(kind::DFUDS, &loaded), bytes, "byte stability");
        assert_eq!(loaded.n_nodes(), t.n_nodes());
        assert_eq!(loaded.root(), t.root());
        for (pid, v) in t.preorder_iter().enumerate() {
            assert_eq!(loaded.by_preorder(pid), v);
            assert_eq!(loaded.degree(v), t.degree(v), "degree({v})");
            assert_eq!(loaded.parent(v), t.parent(v), "parent({v})");
            for c in 0..t.degree(v) {
                assert_eq!(loaded.child(v, c), t.child(v, c), "child({v},{c})");
            }
        }
    }
}

/// String workloads for the trie-level structures, including the
/// degenerate shapes: empty, singleton, all-equal, and a deep-skewed set
/// (shared long prefix, so the trie degenerates toward a path).
fn string_workloads() -> Vec<Vec<String>> {
    let mut rnd = xorshift(0x57D5);
    let mut workloads: Vec<Vec<String>> =
        vec![vec![], vec!["one".into()], vec!["same".into(); 200]];
    let deep_prefix = "x".repeat(120);
    workloads.push((0..100).map(|i| format!("{deep_prefix}{i:03}")).collect());
    let hosts = ["a.com", "b.org", "c.net", "d.io"];
    workloads.push(
        (0..800)
            .map(|_| {
                let h = hosts[(rnd() % 4) as usize];
                format!("http://{h}/p{}", rnd() % 60)
            })
            .collect(),
    );
    workloads
}

fn check_wt_equal(a: &WaveletTrie, b: &WaveletTrie, strings: &[BitString]) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.n_nodes(), b.n_nodes());
    // Owned storage counts Vec capacity, views count their exact span, so
    // the loaded footprint can only be at or below the built one.
    assert!(
        b.size_bits() <= a.size_bits(),
        "loaded footprint {} above built {}",
        b.size_bits(),
        a.size_bits()
    );
    for (i, s) in strings.iter().enumerate() {
        assert_eq!(b.access(i), *s, "access({i})");
    }
    for s in strings.iter().take(40) {
        let q = s.as_bitstr();
        assert_eq!(a.count(q), b.count(q));
        assert_eq!(a.rank(q, strings.len() / 2), b.rank(q, strings.len() / 2));
        assert_eq!(a.select(q, 0), b.select(q, 0));
    }
    if !strings.is_empty() {
        assert_eq!(
            a.distinct_in_range(0, a.seq_len()),
            b.distinct_in_range(0, b.seq_len())
        );
    }
}

#[test]
fn wavelet_trie_roundtrip() {
    for strings in string_workloads() {
        // 9-bit-ish manual prefix-free encoding via IndexedStrings' coder is
        // exercised separately; here feed raw prefix-free bit strings.
        let encoded: Vec<BitString> = strings
            .iter()
            .map(|s| {
                let mut b = BitString::new();
                for byte in s.bytes() {
                    b.push(true);
                    for k in (0..8).rev() {
                        b.push((byte >> k) & 1 != 0);
                    }
                }
                b.push(false); // terminator keeps the set prefix-free
                b
            })
            .collect();
        let wt = WaveletTrie::build(&encoded).expect("prefix-free");
        let bytes = wt.save_bytes();
        let loaded = WaveletTrie::load_bytes(&bytes).expect("valid archive");
        assert_eq!(loaded.save_bytes(), bytes, "byte stability");
        check_wt_equal(&wt, &loaded, &encoded);
    }
}

#[test]
fn indexed_strings_roundtrip() {
    for strings in string_workloads() {
        let idx = IndexedStrings::build(strings.iter().map(|s| s.as_bytes()));
        let bytes = idx.save_bytes();
        let loaded = IndexedStrings::load_bytes(&bytes).expect("valid archive");
        assert_eq!(loaded.save_bytes(), bytes, "byte stability");
        assert_eq!(loaded.len(), idx.len());
        assert_eq!(loaded.distinct_len(), idx.distinct_len());
        for (i, s) in strings.iter().enumerate() {
            assert_eq!(&loaded.get_string(i), s, "access({i})");
        }
        for s in strings.iter().take(30) {
            assert_eq!(loaded.count(s), idx.count(s));
            assert_eq!(
                loaded.count_prefix(&s[..s.len() / 2]),
                idx.count_prefix(&s[..s.len() / 2])
            );
        }
        // An IndexedStrings archive must not load as a bit-level trie and
        // vice versa: the kind header separates them.
        assert!(WaveletTrie::load_bytes(&bytes).is_err(), "kind confusion");
    }
}

#[test]
fn indexed_strings_file_roundtrip() {
    let dir = std::env::temp_dir().join(format!("wt-persist-file-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let idx = IndexedStrings::build(["alpha", "beta", "alpha", "gamma"]);
    let path = dir.join("idx.wt");
    idx.save(&path).unwrap();
    let loaded = IndexedStrings::load(&path).expect("file round-trip");
    for i in 0..idx.len() {
        assert_eq!(loaded.get_string(i), idx.get_string(i));
    }
    // Errors out of file entry points carry the offending path.
    let missing = dir.join("missing.wt");
    match IndexedStrings::load(&missing) {
        Err(wt_bits::LoadError::InFile { path, cause }) => {
            assert_eq!(path, missing);
            assert!(matches!(*cause, wt_bits::LoadError::Io(_)));
        }
        other => panic!("expected path-tagged Io error, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn tiered_store_roundtrip() {
    let dir = std::env::temp_dir().join(format!("wt-persist-store-{}", std::process::id()));
    let mut rnd = xorshift(0x570E);
    // Several store states: empty, hot-only, sealed+hot, melted middle.
    let mut stores: Vec<TieredStrings> = Vec::new();
    stores.push(TieredStrings::new());
    let mut hot_only = TieredStrings::with_config(StoreConfig {
        seal_at: 1 << 20,
        max_sealed: 8,
    });
    for i in 0..50 {
        hot_only.push(format!("hot-{i}"));
    }
    stores.push(hot_only);
    let mut tiered = TieredStrings::with_config(StoreConfig {
        seal_at: 64,
        max_sealed: 4,
    });
    for _ in 0..400 {
        tiered.push(format!("http://h{}.com/p{}", rnd() % 5, rnd() % 40));
    }
    // Melt a middle segment so the saved image holds a mid-list hot log.
    tiered.insert("http://melted.example/", 10);
    stores.push(tiered);
    for (case, st) in stores.iter().enumerate() {
        let d = dir.join(format!("case-{case}"));
        st.save_dir(&d).unwrap();
        let loaded = TieredStrings::load_dir(&d).expect("valid store dir");
        assert_eq!(loaded.len(), st.len(), "case {case}");
        assert_eq!(loaded.num_segments(), st.num_segments(), "case {case}");
        assert_eq!(
            loaded.sealed_segments(),
            st.sealed_segments(),
            "case {case}"
        );
        for i in 0..st.len() {
            assert_eq!(
                loaded.get_string(i),
                st.get_string(i),
                "case {case} access({i})"
            );
        }
        for probe in [
            "http://h1.com/p3",
            "hot-7",
            "http://melted.example/",
            "absent",
        ] {
            assert_eq!(
                loaded.count(probe),
                st.count(probe),
                "case {case} count({probe})"
            );
            assert_eq!(
                loaded.count_prefix("http://"),
                st.count_prefix("http://"),
                "case {case}"
            );
        }
        // save-after-load reproduces every file byte-for-byte.
        let d2 = dir.join(format!("case-{case}-resaved"));
        loaded.save_dir(&d2).unwrap();
        let mut names: Vec<_> = std::fs::read_dir(&d)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        names.sort();
        let mut names2: Vec<_> = std::fs::read_dir(&d2)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        names2.sort();
        assert_eq!(names, names2, "case {case} file set");
        for name in names {
            let a = std::fs::read(d.join(&name)).unwrap();
            let b = std::fs::read(d2.join(&name)).unwrap();
            assert_eq!(a, b, "case {case} file {name:?} not byte-stable");
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn loaded_structures_answer_after_buffer_source_drops() {
    // The load path carves views into one shared buffer; the original byte
    // vector must be droppable (the archive keeps its own Arc).
    let idx = IndexedStrings::build((0..500).map(|i| format!("k{:04}", i % 37)));
    let loaded = {
        let bytes = idx.save_bytes();
        IndexedStrings::load_bytes(&bytes).unwrap()
        // `bytes` dropped here
    };
    assert_eq!(loaded.count("k0003"), idx.count("k0003"));
}

#[test]
fn space_usage_counts_mapped_buffer_once() {
    let idx = IndexedStrings::build((0..2000).map(|i| format!("http://host{}.com/{i}", i % 7)));
    let bytes = idx.save_bytes();
    let file_bits = bytes.len() * 8;
    let loaded = IndexedStrings::load_bytes(&bytes).unwrap();
    // Owned-vs-loaded: the loaded structure's components are disjoint views
    // into the one archive buffer, so its reported size must stay at file
    // scale (double-counting the buffer per component would blow it up by
    // the component count) and within the owned structure's footprint plus
    // per-struct constants.
    let loaded_bits = loaded.size_bits();
    assert!(
        loaded_bits < file_bits + 4096,
        "loaded {loaded_bits} bits vs file {file_bits} bits: buffer counted more than once?"
    );
    assert!(
        loaded_bits * 4 > file_bits,
        "loaded {loaded_bits} bits vs file {file_bits} bits: views not accounted?"
    );
    // Round-tripping again from the loaded structure changes nothing.
    let again = IndexedStrings::load_bytes(&loaded.save_bytes()).unwrap();
    assert_eq!(again.size_bits(), loaded_bits);
}
