//! Smoke test: every program under `examples/` must run to completion and
//! print something. These are the README-facing code paths; without this
//! gate they could silently rot.
//!
//! Runs `cargo run --example <name>` as a subprocess — `cargo test` has
//! already built the examples, so each invocation only executes them.

use std::path::Path;
use std::process::Command;

const EXAMPLES: &[&str] = &[
    "quickstart",
    "column_store",
    "numeric_index",
    "social_graph",
    "url_log_analytics",
];

#[test]
fn every_example_runs_and_prints() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    for name in EXAMPLES {
        let out = Command::new(&cargo)
            .args(["run", "--quiet", "--example", name])
            .current_dir(manifest_dir)
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
        assert!(
            out.status.success(),
            "example {name} exited with {:?}\nstderr:\n{}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            !out.stdout.is_empty(),
            "example {name} printed nothing on stdout"
        );
    }
}

#[test]
fn example_list_is_exhaustive() {
    // Catch newly added examples that are missing from the smoke list.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut on_disk: Vec<String> = std::fs::read_dir(dir)
        .expect("examples/ directory")
        .filter_map(|e| {
            let p = e.ok()?.path();
            (p.extension()? == "rs").then(|| p.file_stem().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    on_disk.sort();
    let mut listed: Vec<String> = EXAMPLES.iter().map(|s| s.to_string()).collect();
    listed.sort();
    assert_eq!(on_disk, listed, "examples/ and EXAMPLES diverge");
}
