//! Deterministic interleave harness for concurrent serving: the proof
//! artifact of the epoch-swap + panic-contained-maintenance design.
//!
//! Three enumerations, mirroring `crash_points.rs` for the in-process
//! half of the story:
//!
//! 1. **A forced panic at every maintenance step.** A probe counts
//!    `MaintenanceStep` callbacks and panics at exactly the k-th, for
//!    every k in a clean run's step sequence (freeze, install, merge,
//!    save, publish — serial worker so the sequence is deterministic).
//!    After each: no panic escapes, exactly that step is reported failed,
//!    the previously published snapshot answers bit-identically to its
//!    capture-time oracle, readers see the old or the new epoch (never a
//!    torn one), the store remains fully serviceable, and a follow-up
//!    clean maintenance converges.
//! 2. **An I/O fault at every save operation.** `FaultStorage` kills the
//!    maintenance-save at operation k for every k; the in-memory store
//!    and served epochs are unaffected and the directory stays loadable
//!    as the old image or the new one.
//! 3. **A reader in lockstep at every epoch-swap boundary.** A scripted
//!    writer alternates mutation batches, explicit publishes and full
//!    maintenance passes; a reader thread samples the epoch slot at every
//!    boundary (barrier-synchronized, so every ordering around every swap
//!    is exercised) and checks each observed snapshot equals the oracle
//!    state recorded for its version — and that every retained snapshot
//!    still matches its oracle at the end.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Barrier, Mutex, Once};
use std::time::Duration;

use wavelet_trie::SeqIndex;
use wt_bits::{FaultPlan, FaultStorage, MemFs, RetryPolicy};
use wt_store::{
    Maintenance, MaintenanceProbe, MaintenanceStep, StoreConfig, StoreSnapshot, TieredStore,
};
use wt_trie::{BitStr, BitString};

fn encode(v: u64) -> BitString {
    BitString::from_bits((0..10).rev().map(move |k| (v >> k) & 1 != 0))
}

/// Injected panics are expected by the dozen here; keep them out of the
/// test output while still printing anything unexpected.
fn quiet_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected"));
            if !injected {
                prev(info);
            }
        }));
    });
}

/// A store exercising every maintenance step kind — four sealed segments
/// (over the `max_sealed = 2` bound, so merges are pending), two melted
/// middles and a non-empty hot tail — built without auto-rolls
/// (`seal_at` out of reach) so the shape is exact and deterministic.
fn loaded_store() -> TieredStore {
    let mut st = TieredStore::with_config(StoreConfig {
        seal_at: 1000,
        max_sealed: 2,
    });
    for chunk in 0..4u64 {
        for i in 0..12u64 {
            st.append(encode((chunk * 12 + i) % 29).as_bitstr())
                .unwrap();
        }
        st.seal();
    }
    // Melt segments 0 and 2 so maintenance has multiple freezes to do.
    st.insert(encode(40).as_bitstr(), 4).unwrap();
    st.insert(encode(41).as_bitstr(), 30).unwrap();
    for i in 0..5u64 {
        st.append(encode(50 + i).as_bitstr()).unwrap();
    }
    assert_eq!(st.sealed_segments(), 2);
    assert_eq!(st.num_segments(), 5);
    st
}

fn contents(idx: &dyn SeqIndex) -> Vec<BitString> {
    idx.iter_seq_boxed().collect()
}

fn naive_count(oracle: &[BitString], s: BitStr<'_>) -> usize {
    oracle.iter().filter(|t| t.as_bitstr() == s).count()
}

fn naive_count_prefix(oracle: &[BitString], p: BitStr<'_>) -> usize {
    oracle
        .iter()
        .filter(|t| t.as_bitstr().lcp(&p) == p.len())
        .count()
}

/// Full bit-identity check of a snapshot against a plain-vector oracle:
/// contents, point queries, prefix queries, and the batch kernels.
fn assert_matches_oracle(snap: &StoreSnapshot, oracle: &[BitString], ctx: &str) {
    assert_eq!(snap.len(), oracle.len(), "{ctx}: len");
    assert_eq!(contents(snap), oracle, "{ctx}: contents");
    let positions: Vec<usize> = (0..oracle.len()).step_by(3).collect();
    let want: Vec<BitString> = positions.iter().map(|&p| oracle[p].clone()).collect();
    assert_eq!(snap.access_batch(&positions), want, "{ctx}: access_batch");
    for probe in [encode(0), encode(7), encode(28), encode(40), encode(99)] {
        let s = probe.as_bitstr();
        assert_eq!(snap.count(s), naive_count(oracle, s), "{ctx}: count");
        let mid = oracle.len() / 2;
        assert_eq!(
            snap.rank(s, mid),
            naive_count(&oracle[..mid], s),
            "{ctx}: rank"
        );
        let idx = snap.count(s).saturating_sub(1);
        let want = oracle
            .iter()
            .enumerate()
            .filter(|(_, t)| t.as_bitstr() == s)
            .nth(idx)
            .map(|(i, _)| i);
        assert_eq!(snap.select(s, idx), want, "{ctx}: select");
    }
    let prefixes: Vec<BitString> = (0..4u64)
        .map(|v| BitString::from_bits((0..4).rev().map(move |k| (v >> k) & 1 != 0)))
        .collect();
    let refs: Vec<BitStr<'_>> = prefixes.iter().map(|p| p.as_bitstr()).collect();
    let want: Vec<usize> = refs
        .iter()
        .map(|&p| naive_count_prefix(oracle, p))
        .collect();
    assert_eq!(snap.count_prefix_batch(&refs), want, "{ctx}: count_prefix");
}

/// Probe that panics at exactly the `at`-th step callback (0-based).
struct PanicAt {
    countdown: AtomicI64,
}

impl PanicAt {
    fn new(at: usize) -> Self {
        PanicAt {
            countdown: AtomicI64::new(at as i64),
        }
    }
}

impl MaintenanceProbe for PanicAt {
    fn step(&self, step: MaintenanceStep) {
        if self.countdown.fetch_sub(1, Ordering::SeqCst) == 0 {
            panic!("injected panic at {step}");
        }
    }
}

/// Probe that records the step sequence.
#[derive(Default)]
struct Recorder(Mutex<Vec<MaintenanceStep>>);

impl MaintenanceProbe for Recorder {
    fn step(&self, step: MaintenanceStep) {
        self.0.lock().unwrap().push(step);
    }
}

/// Single-pass, serial, no-sleep maintenance options (deterministic step
/// order; retries are exercised separately).
fn one_pass<'a>(probe: &'a dyn MaintenanceProbe) -> Maintenance<'a> {
    Maintenance {
        threads: 1,
        retry: RetryPolicy {
            attempts: 1,
            base_backoff: Duration::ZERO,
            max_elapsed: None,
            jitter: None,
        },
        save_to: None,
        probe,
    }
}

#[test]
fn maintenance_panic_at_every_step_leaves_readers_unharmed() {
    quiet_injected_panics();
    // Enumerate the clean run's deterministic step sequence.
    let recorder = Recorder::default();
    let steps: Vec<MaintenanceStep> = {
        let mut st = loaded_store();
        let report = st.maintain_with(&one_pass(&recorder));
        assert!(report.is_clean(), "clean run must not fail: {report}");
        assert!(report.sealed >= 3, "expected several freezes: {report}");
        assert!(report.merged >= 1, "expected at least one merge: {report}");
        recorder.0.into_inner().unwrap()
    };
    assert!(steps.len() >= 8, "step enumeration too small: {steps:?}");

    for (k, &expected_step) in steps.iter().enumerate() {
        let ctx = format!("panic at step {k} ({expected_step})");
        let mut st = loaded_store();
        let oracle = contents(&st);
        let baseline = st.publish();
        let baseline_segs = baseline.num_segments();
        let reader = st.reader();

        let probe = PanicAt::new(k);
        let report = st.maintain_with(&one_pass(&probe));

        // Exactly the k-th step failed; the panic never escaped.
        assert_eq!(report.failures.len(), 1, "{ctx}: {report}");
        assert_eq!(report.failures[0].step(), expected_step, "{ctx}");
        let publish_failed = matches!(expected_step, MaintenanceStep::Publish);
        assert_eq!(report.published.is_none(), publish_failed, "{ctx}");

        // The pre-maintenance snapshot is bit-identical to its oracle,
        // including its segment structure.
        assert_matches_oracle(&baseline, &oracle, &ctx);
        assert_eq!(baseline.num_segments(), baseline_segs, "{ctx}: frozen");
        assert_eq!(baseline.version(), 1, "{ctx}");

        // Readers see the old epoch or the new one — both serve the same
        // sequence (maintenance only reorganizes) — and no poisoned lock
        // or panic is observable from any query.
        let now = reader.snapshot();
        if publish_failed {
            assert_eq!(now.version(), 1, "{ctx}: must still serve old epoch");
        } else {
            assert_eq!(now.version(), 2, "{ctx}: new epoch");
        }
        assert_matches_oracle(&now, &oracle, &ctx);

        // The store itself is untorn and fully serviceable...
        assert_eq!(contents(&st), oracle, "{ctx}: live store");
        st.append(encode(50).as_bitstr()).unwrap();
        assert_eq!(st.access(st.len() - 1), encode(50), "{ctx}");

        // ...and a clean follow-up maintenance converges.
        let retry = st.maintain();
        assert!(retry.is_clean(), "{ctx}: follow-up failed: {retry}");
        assert!(
            st.sealed_segments() <= 2,
            "{ctx}: compaction did not converge: {:?}",
            st.segment_lens()
        );
        let mut healed = oracle.clone();
        healed.push(encode(50));
        assert_matches_oracle(&reader.snapshot(), &healed, &ctx);
    }
}

#[test]
fn retrying_maintenance_recovers_from_a_transient_panic() {
    quiet_injected_panics();
    let mut st = loaded_store();
    let oracle = contents(&st);
    let reader = st.reader();
    // Panics once at the first step; every later step (and the whole
    // retry pass) succeeds.
    let probe = PanicAt::new(0);
    let report = st.maintain_with(&Maintenance {
        threads: 1,
        retry: RetryPolicy {
            attempts: 3,
            base_backoff: Duration::ZERO,
            max_elapsed: None,
            jitter: None,
        },
        save_to: None,
        probe: &probe,
    });
    assert_eq!(report.passes, 2, "one failing pass + one clean: {report}");
    assert_eq!(report.failures.len(), 1, "{report}");
    assert!(report.published.is_some(), "{report}");
    assert!(st.sealed_segments() <= 2, "{:?}", st.segment_lens());
    assert_matches_oracle(&reader.snapshot(), &oracle, "after retry");
}

#[test]
fn maintenance_save_fault_at_every_io_op_is_old_or_new() {
    let mem = MemFs::new();
    let dir = std::path::Path::new("/store");

    // Commit an *old* image, then mutate so old and new states differ.
    let mut st = loaded_store();
    st.save_dir_with(&mem, dir).unwrap();
    let old_oracle = contents(&st);
    for i in 0..10u64 {
        st.append(encode(60 + i).as_bitstr()).unwrap();
    }
    let new_oracle = contents(&st);
    let baseline = st.publish();

    // Count the ops of a clean maintenance-save on a throwaway fork.
    let clean_ops = {
        let fork = mem.fork();
        let mut probe_st = st.clone();
        let fault = FaultStorage::new(&fork, FaultPlan::default());
        let report = probe_st.maintain_with(&Maintenance {
            save_to: Some((&fault, dir)),
            ..one_pass(&wt_store::NoProbe)
        });
        assert!(report.is_clean(), "clean save failed: {report}");
        assert!(report.saved, "{report}");
        fault.ops()
    };
    assert!(clean_ops >= 8, "save should take many ops: {clean_ops}");

    for k in 0..clean_ops {
        let ctx = format!("save fault at op {k}");
        let fork = mem.fork();
        let mut st_k = st.clone();
        let reader = st_k.reader();
        let fault = FaultStorage::new(
            &fork,
            FaultPlan {
                fail_from: Some(k),
                torn_writes: true,
                seed: 0xA11CE ^ k,
                ..FaultPlan::default()
            },
        );
        let report = st_k.maintain_with(&Maintenance {
            save_to: Some((&fault, dir)),
            ..one_pass(&wt_store::NoProbe)
        });

        // The save step failed (as an error, not a panic) — unless the
        // fault landed in the post-commit best-effort sweep, in which
        // case the save correctly still counts as committed.
        assert!(fault.fired(), "{ctx}: fault did not trigger");
        if report.is_clean() {
            assert!(report.saved, "{ctx}: clean report must mean committed");
        } else {
            assert_eq!(report.failures.len(), 1, "{ctx}: {report}");
            assert_eq!(report.failures[0].step(), MaintenanceStep::Save, "{ctx}");
            assert!(!report.saved, "{ctx}");
        }

        // Served state is never perturbed by a failed save: the epoch
        // published by the same (partially failed) pass and the baseline
        // snapshot both still answer exactly.
        assert_eq!(contents(&st_k), new_oracle, "{ctx}: live store");
        assert_matches_oracle(&reader.snapshot(), &new_oracle, &ctx);
        assert_matches_oracle(&baseline, &new_oracle, &ctx);

        // The directory is the old committed image or the new one — a
        // torn save must never produce a third loadable state.
        let loaded = TieredStore::load_dir_with(&fork, dir).unwrap_or_else(|e| {
            panic!("{ctx}: directory must stay loadable, got {e}");
        });
        let got = contents(&loaded);
        assert!(
            got == old_oracle || got == new_oracle,
            "{ctx}: loaded a third state ({} strings)",
            got.len()
        );
    }
}

#[test]
fn lockstep_reader_observes_only_prefix_consistent_epochs() {
    let mut st = TieredStore::with_config(StoreConfig {
        seal_at: 16,
        max_sealed: 3,
    });
    let reader = st.reader();
    // version -> oracle contents at that publish. Version 0 is the
    // construction epoch (empty store).
    let oracle: Mutex<HashMap<u64, Vec<BitString>>> = Mutex::new(HashMap::new());
    oracle.lock().unwrap().insert(0, Vec::new());

    const ROUNDS: u64 = 16;
    let barrier = Barrier::new(2);

    std::thread::scope(|scope| {
        let observer = scope.spawn(|| {
            let mut retained: Vec<StoreSnapshot> = Vec::new();
            for _ in 0..ROUNDS {
                barrier.wait(); // writer has published + recorded
                let snap = reader.snapshot();
                let map = oracle.lock().unwrap();
                let state = map
                    .get(&snap.version())
                    .unwrap_or_else(|| panic!("unknown epoch v{}", snap.version()));
                assert_matches_oracle(&snap, state, &format!("observer v{}", snap.version()));
                drop(map);
                retained.push(snap);
                barrier.wait(); // release the writer for the next round
            }
            retained
        });

        let mut next = 1u64;
        for round in 0..ROUNDS {
            // Mutation batch: appends, plus periodic edits and deletes.
            for _ in 0..7 {
                st.append(encode(next % 61).as_bitstr()).unwrap();
                next += 1;
            }
            if round % 3 == 1 && st.len() > 4 {
                st.insert(encode(next % 61).as_bitstr(), 2).unwrap();
                st.delete(st.len() / 2);
            }
            // Publish point: plain swap or a full maintenance pass.
            let version = if round % 4 == 3 {
                let report = st.maintain();
                assert!(report.is_clean(), "round {round}: {report}");
                report.published.unwrap()
            } else {
                st.publish().version()
            };
            oracle.lock().unwrap().insert(version, contents(&st));
            barrier.wait(); // boundary: observer samples here
            barrier.wait(); // observer done; safe to mutate again
        }

        // Every retained snapshot must still match its capture-time
        // oracle after the full schedule of later mutation.
        let retained = observer.join().unwrap();
        assert_eq!(retained.len(), ROUNDS as usize);
        let map = oracle.lock().unwrap();
        for snap in &retained {
            let state = &map[&snap.version()];
            assert_matches_oracle(snap, state, &format!("retained v{}", snap.version()));
        }
        // The observer saw a monotone, prefix-consistent version history.
        let versions: Vec<u64> = retained.iter().map(|s| s.version()).collect();
        assert!(
            versions.windows(2).all(|w| w[0] <= w[1]),
            "versions regressed: {versions:?}"
        );
    });
}
