//! Space-bound assertions (experiments E4/E10 in machine-checkable form):
//! measured sizes against the information-theoretic quantities of §2/§3
//! and Appendix A, on the synthetic workloads.

use wavelet_trie::binarize::{Coder, NinthBitCoder};
use wavelet_trie::{
    AppendWaveletTrie, BitString, DynamicWaveletTrie, SeqIndex, SequenceStats, WaveletTrie,
};
use wt_baselines::BTreeIndex;
use wt_bits::SpaceUsage;
use wt_workloads::{url_log, word_text, UrlLogConfig};

fn encode_all(data: &[String]) -> Vec<BitString> {
    let c = NinthBitCoder;
    data.iter().map(|s| c.encode(s.as_bytes())).collect()
}

#[test]
fn lemma_3_5_avg_height_bounds() {
    // H0(S) <= h̃ <= (1/n)·Σ|s_i| on every workload.
    for (name, data) in [
        ("urls", url_log(2000, UrlLogConfig::default(), 1)),
        ("words", word_text(2000, 200, 2)),
    ] {
        let seq = encode_all(&data);
        let stats = SequenceStats::from_bitstrings(&seq).expect("prefix-free");
        let wt = WaveletTrie::build(&seq).unwrap();
        let h = wt.avg_height();
        assert!(
            stats.h0_per_string() <= h + 1e-9,
            "{name}: H0 {} > h̃ {h}",
            stats.h0_per_string()
        );
        assert!(
            h <= stats.avg_input_bits() + 1e-9,
            "{name}: h̃ {h} > avg input {}",
            stats.avg_input_bits()
        );
        // h̃n = Σ|β| exactly (§3).
        assert_eq!(
            wt.total_bitvector_bits(),
            (h * seq.len() as f64).round() as usize
        );
    }
}

#[test]
fn static_space_close_to_lower_bound() {
    // Theorem 3.7: total = LB + o(h̃n). At our scales the directories cost a
    // constant fraction of h̃n, so we check total <= LB + c·h̃n + constant
    // with a small engineering constant c, and that compression actually
    // beats the raw input and the uncompressed BTreeIndex baseline.
    for (name, data) in [
        ("urls", url_log(5000, UrlLogConfig::default(), 3)),
        ("words", word_text(5000, 300, 4)),
    ] {
        let seq = encode_all(&data);
        let wt = WaveletTrie::build(&seq).unwrap();
        let sp = wt.space_breakdown();
        let input_bits: usize = data.iter().map(|s| s.len() * 8).sum();
        assert!(
            (sp.total_bits as f64)
                < sp.lb_bits + 0.75 * sp.hn_bits as f64 + 64.0 * sp.distinct as f64 + 8192.0,
            "{name}: total {} vs LB {} + redundancy budget (h̃n = {})",
            sp.total_bits,
            sp.lb_bits,
            sp.hn_bits
        );
        assert!(
            sp.total_bits < input_bits,
            "{name}: compressed {} should beat raw input {input_bits}",
            sp.total_bits
        );
        let btree = BTreeIndex::from_iter(data.iter());
        assert!(
            sp.total_bits * 2 < btree.size_bits(),
            "{name}: WT {} should be far below the 2-copy index {}",
            sp.total_bits,
            btree.size_bits()
        );
    }
}

#[test]
fn append_only_space_parts_track_theorem_4_3() {
    // Theorem 4.3: O(|Sset|·w) + |L| + nH0 + o(h̃n). The Patricia part must
    // scale with the number of distinct strings, not with n.
    let data = url_log(20_000, UrlLogConfig::default(), 5);
    let seq = encode_all(&data);
    let mut wt = AppendWaveletTrie::new();
    for s in &seq {
        wt.append(s.as_bitstr()).unwrap();
    }
    let stats = SequenceStats::from_bitstrings(&seq).unwrap();
    let (pt_bits, bv_bits) = wt.space_parts();
    let k = stats.distinct as f64;
    // PT = O(k·w) + |L|: allow a generous constant (node structs are fat).
    assert!(
        (pt_bits as f64) < 6000.0 * k + 2.0 * stats.l_bits as f64 + 4096.0,
        "PT {} vs k={k}, |L|={}",
        pt_bits,
        stats.l_bits
    );
    // Bitvector part: nH0 + o(h̃n); again a constant-fraction budget.
    let wt_static = WaveletTrie::build(&seq).unwrap();
    let hn = wt_static.total_bitvector_bits() as f64;
    assert!(
        (bv_bits as f64) < stats.nh0_bits + 1.25 * hn + 5000.0 * k,
        "BV {} vs nH0 {} (h̃n = {hn})",
        bv_bits,
        stats.nh0_bits
    );
}

#[test]
fn dynamic_space_is_o_nh0_plus_pt() {
    // Theorem 4.4: O(nH0 + |Sset|·w) + L. RLE+γ has a constant > 1 on the
    // entropy term; assert a fixed multiple.
    let data = word_text(20_000, 150, 6);
    let seq = encode_all(&data);
    let mut wt = DynamicWaveletTrie::new();
    for s in &seq {
        wt.append(s.as_bitstr()).unwrap();
    }
    let stats = SequenceStats::from_bitstrings(&seq).unwrap();
    let (pt_bits, bv_bits) = wt.space_parts();
    let k = stats.distinct as f64;
    let budget = 8.0 * stats.nh0_bits + 7000.0 * k + 2.0 * stats.l_bits as f64 + 8192.0;
    assert!(
        ((bv_bits + pt_bits) as f64) < budget,
        "dynamic total {} vs O(nH0={}, k={k}) budget {budget}",
        bv_bits + pt_bits,
        stats.nh0_bits
    );
}

#[test]
fn figure2_h_tilde_matches_hand_computation() {
    // For Figure 2: h̃n = Σ|β| = 7 + 4 + 3 = 14, so h̃ = 2.
    let seq: Vec<BitString> = ["0001", "0011", "0100", "00100", "0100", "00100", "0100"]
        .iter()
        .map(|s| BitString::parse(s))
        .collect();
    let wt = WaveletTrie::build(&seq).unwrap();
    assert_eq!(wt.total_bitvector_bits(), 14);
    assert!((wt.avg_height() - 2.0).abs() < 1e-12);
}

#[test]
fn delete_releases_space() {
    let data = word_text(3000, 60, 7);
    let seq = encode_all(&data);
    let mut wt = DynamicWaveletTrie::new();
    for s in &seq {
        wt.append(s.as_bitstr()).unwrap();
    }
    let full = wt.size_bits();
    for _ in 0..2500 {
        wt.delete(0);
    }
    // Bitvector content shrinks with n, but the per-node fixed costs of the
    // surviving alphabet (|Sset| unchanged until last occurrences go) stay.
    let small = wt.size_bits();
    assert!(
        (small as f64) < 0.85 * full as f64,
        "space should shrink: {small} vs {full}"
    );
    // Draining everything releases the trie itself.
    for _ in 0..wt.len() {
        wt.delete(0);
    }
    assert!(wt.is_empty());
    assert!(
        wt.size_bits() < 1024,
        "empty trie must be tiny: {}",
        wt.size_bits()
    );
}
