//! Golden-fixture compatibility suite: small canonical `.wt` archives
//! checked into `tests/fixtures/` freeze format version 1 on disk. Two
//! guarantees per fixture:
//!
//! * **reader compat** — the loader reads the checked-in bytes and answers
//!   bit-identically to a structure freshly built from the same input;
//! * **writer compat** — re-serializing that freshly built structure
//!   reproduces the checked-in bytes exactly.
//!
//! Any intentional format change must bump `FORMAT_VERSION` and regenerate
//! the fixtures: `WT_REGEN_FIXTURES=1 cargo test --test golden_fixtures`.

use std::path::{Path, PathBuf};

use wavelet_trie::{BitString, IndexedStrings, PathDecompTrie, SeqIndex, WaveletTrie};
use wt_bits::persist::{kind, to_bytes};
use wt_bits::{
    BitAccess, BitRank, EliasFano, FaultPlan, FaultStorage, FsStorage, RawBitVec, RrrVector,
};
use wt_store::{StoreConfig, TieredStrings};

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn regen() -> bool {
    std::env::var_os("WT_REGEN_FIXTURES").is_some()
}

/// Checks (or regenerates) one single-file fixture.
fn check_fixture(name: &str, canonical: &[u8]) {
    let path = fixture_dir().join(name);
    if regen() {
        std::fs::create_dir_all(fixture_dir()).unwrap();
        std::fs::write(&path, canonical).unwrap();
        return;
    }
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!("missing fixture {name} ({e}); regenerate with WT_REGEN_FIXTURES=1")
    });
    assert_eq!(
        golden, canonical,
        "writer no longer reproduces fixture {name}: the on-disk format \
         changed without a FORMAT_VERSION bump"
    );
}

/// Deterministic bit pattern shared by the bits-level fixtures.
fn fixture_bits() -> Vec<bool> {
    let mut s = 0x5EEDu64;
    (0..777)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s.is_multiple_of(3)
        })
        .collect()
}

/// The URL log behind the trie-level fixtures (the §1 workload in
/// miniature, with duplicates and shared prefixes).
fn fixture_urls() -> Vec<String> {
    let hosts = ["a.com", "b.org", "c.net"];
    let mut urls = Vec::new();
    for round in 0..5 {
        for (i, h) in hosts.iter().enumerate() {
            urls.push(format!("http://{h}/page{}", (round * 7 + i * 3) % 9));
            urls.push(format!("http://{h}/"));
        }
    }
    urls
}

#[test]
fn raw_bitvec_fixture() {
    let mut bv = RawBitVec::new();
    for b in fixture_bits() {
        bv.push(b);
    }
    check_fixture("raw-v1.wt", &to_bytes(kind::RAW, &bv));
    if regen() {
        return;
    }
    let bytes = std::fs::read(fixture_dir().join("raw-v1.wt")).unwrap();
    let loaded: RawBitVec = wt_bits::persist::from_bytes(kind::RAW, &bytes).unwrap();
    for (i, b) in fixture_bits().into_iter().enumerate() {
        assert_eq!(loaded.get(i), b, "bit {i}");
    }
}

#[test]
fn rrr_fixture() {
    let rrr = RrrVector::from_bits(fixture_bits());
    check_fixture("rrr-v1.wt", &to_bytes(kind::RRR, &rrr));
    if regen() {
        return;
    }
    let bytes = std::fs::read(fixture_dir().join("rrr-v1.wt")).unwrap();
    let loaded: RrrVector = wt_bits::persist::from_bytes(kind::RRR, &bytes).unwrap();
    let bits = fixture_bits();
    assert_eq!(loaded.len(), bits.len());
    let mut ones = 0;
    for (i, b) in bits.into_iter().enumerate() {
        assert_eq!(loaded.rank1(i), ones, "rank1({i})");
        assert_eq!(loaded.get(i), b, "bit {i}");
        ones += b as usize;
    }
}

#[test]
fn elias_fano_fixture() {
    let values: Vec<u64> = (0..300u64).map(|i| i * i % 7919 + i).collect();
    let mut sorted = values;
    sorted.sort_unstable();
    let ef = EliasFano::new(&sorted);
    check_fixture("ef-v1.wt", &to_bytes(kind::ELIAS_FANO, &ef));
    if regen() {
        return;
    }
    let bytes = std::fs::read(fixture_dir().join("ef-v1.wt")).unwrap();
    let loaded: EliasFano = wt_bits::persist::from_bytes(kind::ELIAS_FANO, &bytes).unwrap();
    for (i, &v) in sorted.iter().enumerate() {
        assert_eq!(loaded.get(i), v, "get({i})");
    }
}

#[test]
fn indexed_strings_fixture() {
    let idx = IndexedStrings::build(fixture_urls());
    check_fixture("urls-v1.wt", &idx.save_bytes());
    if regen() {
        return;
    }
    let loaded = IndexedStrings::load(fixture_dir().join("urls-v1.wt")).unwrap();
    let urls = fixture_urls();
    assert_eq!(loaded.len(), urls.len());
    for (i, u) in urls.iter().enumerate() {
        assert_eq!(&loaded.get_string(i), u, "access({i})");
    }
    assert_eq!(loaded.count("http://a.com/"), 5);
    assert_eq!(loaded.count_prefix("http://b.org/"), 10);
    assert_eq!(
        loaded.distinct_len(),
        IndexedStrings::build(fixture_urls()).distinct_len()
    );
}

/// Bit-level codes behind the path-decomposition fixture: a mix of
/// repeated shallow values and an all-distinct stretch, so the fixture
/// trie has both fat multi-step paths and degenerate one-step ones.
fn fixture_codes() -> Vec<BitString> {
    let encode = |v: u64| BitString::from_bits((0..10).rev().map(move |k| (v >> k) & 1 != 0));
    let mut codes: Vec<BitString> = (0..120u64).map(|i| encode(i * i % 23)).collect();
    codes.extend((0..80u64).map(|v| encode(512 + v)));
    codes
}

#[test]
fn path_decomp_fixture() {
    let wt = WaveletTrie::build(&fixture_codes()).expect("prefix-free");
    let pd = PathDecompTrie::from_static(&wt);
    check_fixture("pd-v1.wt", &pd.save_bytes());
    if regen() {
        return;
    }
    let bytes = std::fs::read(fixture_dir().join("pd-v1.wt")).unwrap();
    let loaded = PathDecompTrie::load_bytes(&bytes).unwrap();
    // Reader compat: the loaded view answers like the wavelet-trie oracle.
    let codes = fixture_codes();
    assert_eq!(loaded.len(), codes.len());
    for (i, c) in codes.iter().enumerate() {
        assert_eq!(&SeqIndex::access(&loaded, i), c, "access({i})");
    }
    for c in codes.iter().step_by(7) {
        let s = c.as_bitstr();
        assert_eq!(loaded.rank(s, codes.len()), wt.rank(s, codes.len()));
        assert_eq!(loaded.select(s, 0), wt.select(s, 0));
    }
    // Writer compat round-trips through the zero-copy view.
    assert_eq!(loaded.save_bytes(), bytes);
}

/// The canonical fixture store: sealed segments AND a non-empty hot tail,
/// built deterministically (freezes are bit-identical serial or parallel).
fn fixture_store() -> TieredStrings {
    let mut st = TieredStrings::with_config(StoreConfig {
        seal_at: 10,
        max_sealed: 4,
    });
    for u in fixture_urls() {
        st.push(u);
    }
    st
}

/// Sorted file names of a directory.
fn dir_names(dir: &Path, what: &str) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| {
            panic!("missing fixture dir {what} ({e}); regenerate with WT_REGEN_FIXTURES=1")
        })
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    names
}

/// Copies a fixture directory into a scratch dir (recovery sweeps temps, so
/// resilient-load tests must never run on the checked-in tree).
fn copy_dir(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    for name in dir_names(src, "copy source") {
        std::fs::copy(src.join(&name), dst.join(&name)).unwrap();
    }
}

/// Asserts the loaded store answers exactly like the freshly built one.
fn assert_store_matches(loaded: &TieredStrings, st: &TieredStrings) {
    assert_eq!(loaded.len(), st.len());
    assert_eq!(loaded.sealed_segments(), st.sealed_segments());
    for i in 0..st.len() {
        assert_eq!(loaded.get_string(i), st.get_string(i), "access({i})");
    }
    assert_eq!(
        loaded.count_prefix("http://c.net/"),
        st.count_prefix("http://c.net/")
    );
}

#[test]
fn tiered_store_legacy_fixture() {
    // `store-v1` is the pre-generation layout (bare `manifest.wt` +
    // `seg-NNN.*`, no atomic-commit naming). The current writer no longer
    // produces it — this fixture is **reader compat only**, pinning that
    // images written before the commit protocol keep loading, as
    // generation 0. It is never regenerated.
    let st = fixture_store();
    let dir = fixture_dir().join("store-v1");
    if regen() {
        return; // checked-in legacy bytes are immutable
    }
    let loaded = TieredStrings::load_dir(&dir).unwrap();
    assert_store_matches(&loaded, &st);
    // The resilient path agrees and reports a clean generation-0 image.
    let tmp = std::env::temp_dir().join(format!("wt-golden-legacy-{}", std::process::id()));
    copy_dir(&dir, &tmp);
    let (recovered, report) = TieredStrings::recover_dir(&tmp).unwrap();
    assert!(report.is_clean(), "legacy fixture not clean: {report}");
    assert_eq!(report.generation, 0);
    assert_store_matches(&recovered, &st);
    std::fs::remove_dir_all(&tmp).unwrap();
}

#[test]
fn tiered_store_generation_fixture() {
    // `store-gen-v1` freezes the atomic-commit layout: generation-numbered
    // segments plus `manifest-g00000001.wt` as the commit point.
    let st = fixture_store();
    let dir = fixture_dir().join("store-gen-v1");
    if regen() {
        let _ = std::fs::remove_dir_all(&dir);
        st.save_dir(&dir).unwrap();
        return;
    }
    // Writer compat: every file byte-identical to a fresh save.
    let tmp = std::env::temp_dir().join(format!("wt-golden-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    st.save_dir(&tmp).unwrap();
    let names = dir_names(&dir, "store-gen-v1");
    assert_eq!(names, dir_names(&tmp, "fresh save"), "file set changed");
    assert!(
        names.contains(&"manifest-g00000001.wt".to_string()),
        "fixture must be a generation-1 commit: {names:?}"
    );
    for name in &names {
        assert_eq!(
            std::fs::read(dir.join(name)).unwrap(),
            std::fs::read(tmp.join(name)).unwrap(),
            "store fixture file {name} changed"
        );
    }
    std::fs::remove_dir_all(&tmp).unwrap();
    // Reader compat, strict and resilient.
    let loaded = TieredStrings::load_dir(&dir).unwrap();
    assert_store_matches(&loaded, &st);
}

/// Extends the fixture store — the image a torn save *almost* committed.
fn fixture_store_next() -> TieredStrings {
    let mut st = fixture_store();
    for i in 0..12 {
        st.push(format!("http://new.example/p{i}"));
    }
    st
}

/// Writes the torn-save image into `dir`: generation 1 fully committed,
/// then a save of the extended store killed at its first segment write,
/// leaving one torn `*.tmp` behind. Deterministic (fixed fault seed).
fn write_torn_fixture(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
    fixture_store().save_dir(dir).unwrap();
    // Ops 0/1 of the second save are create-dir + list; op 2 is the first
    // temp-file write — kill there, tearing the write mid-buffer.
    let faulty = FaultStorage::new(
        &FsStorage,
        FaultPlan {
            fail_from: Some(2),
            torn_writes: true,
            seed: 0x70_12_5A_FE,
            ..FaultPlan::default()
        },
    );
    let err = fixture_store_next()
        .inner()
        .save_dir_with(&faulty, dir)
        .expect_err("save must die at the injected fault");
    assert!(err.file().is_some(), "fault should name the torn file");
}

#[test]
fn tiered_store_torn_fixture() {
    // `store-torn-v1` freezes the aftermath of a crash mid-save: the old
    // committed generation plus a partial temp of the never-committed next
    // one. Both loaders must serve the OLD image — and keep doing so
    // byte-for-byte as the recovery code evolves.
    let st = fixture_store();
    let dir = fixture_dir().join("store-torn-v1");
    if regen() {
        write_torn_fixture(&dir);
        return;
    }
    let names = dir_names(&dir, "store-torn-v1");
    assert!(
        names.iter().any(|n| n.ends_with(".tmp")),
        "torn fixture must hold a partial temp: {names:?}"
    );
    // Writer compat of the torn state itself: replaying the same crash
    // reproduces the fixture exactly (same commit bytes, same torn prefix).
    let tmp = std::env::temp_dir().join(format!("wt-golden-torn-{}", std::process::id()));
    write_torn_fixture(&tmp);
    assert_eq!(names, dir_names(&tmp, "replayed torn save"));
    for name in &names {
        assert_eq!(
            std::fs::read(dir.join(name)).unwrap(),
            std::fs::read(tmp.join(name)).unwrap(),
            "torn fixture file {name} changed"
        );
    }
    // Strict load (read-only) serves the old committed generation.
    let loaded = TieredStrings::load_dir(&dir).unwrap();
    assert_store_matches(&loaded, &st);
    // Resilient load agrees, sweeps exactly the torn temp, loses nothing.
    let (recovered, report) = TieredStrings::recover_dir(&tmp).unwrap();
    assert!(report.is_clean(), "torn dir should recover clean: {report}");
    assert_eq!(report.generation, 1);
    assert_eq!(report.temps_removed.len(), 1, "{report}");
    assert_store_matches(&recovered, &st);
    // After recovery the swept dir still loads byte-compatibly: a re-save
    // of the recovered store reproduces the committed generation's bytes.
    let resaved =
        std::env::temp_dir().join(format!("wt-golden-torn-resave-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&resaved);
    recovered.save_dir(&resaved).unwrap();
    for name in dir_names(&resaved, "resaved recovery") {
        assert_eq!(
            std::fs::read(resaved.join(&name)).unwrap(),
            std::fs::read(dir.join(&name)).unwrap(),
            "recovered image diverged from the committed generation ({name})"
        );
    }
    std::fs::remove_dir_all(&tmp).unwrap();
    std::fs::remove_dir_all(&resaved).unwrap();
}
