//! Golden-fixture compatibility suite: small canonical `.wt` archives
//! checked into `tests/fixtures/` freeze format version 1 on disk. Two
//! guarantees per fixture:
//!
//! * **reader compat** — the loader reads the checked-in bytes and answers
//!   bit-identically to a structure freshly built from the same input;
//! * **writer compat** — re-serializing that freshly built structure
//!   reproduces the checked-in bytes exactly.
//!
//! Any intentional format change must bump `FORMAT_VERSION` and regenerate
//! the fixtures: `WT_REGEN_FIXTURES=1 cargo test --test golden_fixtures`.

use std::path::PathBuf;

use wavelet_trie::IndexedStrings;
use wt_bits::persist::{kind, to_bytes};
use wt_bits::{BitAccess, BitRank, EliasFano, RawBitVec, RrrVector};
use wt_store::{StoreConfig, TieredStrings};

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn regen() -> bool {
    std::env::var_os("WT_REGEN_FIXTURES").is_some()
}

/// Checks (or regenerates) one single-file fixture.
fn check_fixture(name: &str, canonical: &[u8]) {
    let path = fixture_dir().join(name);
    if regen() {
        std::fs::create_dir_all(fixture_dir()).unwrap();
        std::fs::write(&path, canonical).unwrap();
        return;
    }
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!("missing fixture {name} ({e}); regenerate with WT_REGEN_FIXTURES=1")
    });
    assert_eq!(
        golden, canonical,
        "writer no longer reproduces fixture {name}: the on-disk format \
         changed without a FORMAT_VERSION bump"
    );
}

/// Deterministic bit pattern shared by the bits-level fixtures.
fn fixture_bits() -> Vec<bool> {
    let mut s = 0x5EEDu64;
    (0..777)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s.is_multiple_of(3)
        })
        .collect()
}

/// The URL log behind the trie-level fixtures (the §1 workload in
/// miniature, with duplicates and shared prefixes).
fn fixture_urls() -> Vec<String> {
    let hosts = ["a.com", "b.org", "c.net"];
    let mut urls = Vec::new();
    for round in 0..5 {
        for (i, h) in hosts.iter().enumerate() {
            urls.push(format!("http://{h}/page{}", (round * 7 + i * 3) % 9));
            urls.push(format!("http://{h}/"));
        }
    }
    urls
}

#[test]
fn raw_bitvec_fixture() {
    let mut bv = RawBitVec::new();
    for b in fixture_bits() {
        bv.push(b);
    }
    check_fixture("raw-v1.wt", &to_bytes(kind::RAW, &bv));
    if regen() {
        return;
    }
    let bytes = std::fs::read(fixture_dir().join("raw-v1.wt")).unwrap();
    let loaded: RawBitVec = wt_bits::persist::from_bytes(kind::RAW, &bytes).unwrap();
    for (i, b) in fixture_bits().into_iter().enumerate() {
        assert_eq!(loaded.get(i), b, "bit {i}");
    }
}

#[test]
fn rrr_fixture() {
    let rrr = RrrVector::from_bits(fixture_bits());
    check_fixture("rrr-v1.wt", &to_bytes(kind::RRR, &rrr));
    if regen() {
        return;
    }
    let bytes = std::fs::read(fixture_dir().join("rrr-v1.wt")).unwrap();
    let loaded: RrrVector = wt_bits::persist::from_bytes(kind::RRR, &bytes).unwrap();
    let bits = fixture_bits();
    assert_eq!(loaded.len(), bits.len());
    let mut ones = 0;
    for (i, b) in bits.into_iter().enumerate() {
        assert_eq!(loaded.rank1(i), ones, "rank1({i})");
        assert_eq!(loaded.get(i), b, "bit {i}");
        ones += b as usize;
    }
}

#[test]
fn elias_fano_fixture() {
    let values: Vec<u64> = (0..300u64).map(|i| i * i % 7919 + i).collect();
    let mut sorted = values;
    sorted.sort_unstable();
    let ef = EliasFano::new(&sorted);
    check_fixture("ef-v1.wt", &to_bytes(kind::ELIAS_FANO, &ef));
    if regen() {
        return;
    }
    let bytes = std::fs::read(fixture_dir().join("ef-v1.wt")).unwrap();
    let loaded: EliasFano = wt_bits::persist::from_bytes(kind::ELIAS_FANO, &bytes).unwrap();
    for (i, &v) in sorted.iter().enumerate() {
        assert_eq!(loaded.get(i), v, "get({i})");
    }
}

#[test]
fn indexed_strings_fixture() {
    let idx = IndexedStrings::build(fixture_urls());
    check_fixture("urls-v1.wt", &idx.save_bytes());
    if regen() {
        return;
    }
    let loaded = IndexedStrings::load(fixture_dir().join("urls-v1.wt")).unwrap();
    let urls = fixture_urls();
    assert_eq!(loaded.len(), urls.len());
    for (i, u) in urls.iter().enumerate() {
        assert_eq!(&loaded.get_string(i), u, "access({i})");
    }
    assert_eq!(loaded.count("http://a.com/"), 5);
    assert_eq!(loaded.count_prefix("http://b.org/"), 10);
    assert_eq!(
        loaded.distinct_len(),
        IndexedStrings::build(fixture_urls()).distinct_len()
    );
}

#[test]
fn tiered_store_fixture() {
    // A store with sealed segments AND a non-empty hot tail, built
    // deterministically (serial seal so the image is machine-independent).
    let mut st = TieredStrings::with_config(StoreConfig {
        seal_at: 10,
        max_sealed: 4,
    });
    for u in fixture_urls() {
        st.push(u);
    }
    let dir = fixture_dir().join("store-v1");
    if regen() {
        let _ = std::fs::remove_dir_all(&dir);
        st.save_dir(&dir).unwrap();
        return;
    }
    // Writer compat: every file byte-identical to a fresh save.
    let tmp = std::env::temp_dir().join(format!("wt-golden-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    st.save_dir(&tmp).unwrap();
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("missing fixture dir store-v1; regenerate with WT_REGEN_FIXTURES=1")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    let mut fresh: Vec<String> = std::fs::read_dir(&tmp)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    fresh.sort();
    assert_eq!(names, fresh, "store fixture file set changed");
    for name in &names {
        assert_eq!(
            std::fs::read(dir.join(name)).unwrap(),
            std::fs::read(tmp.join(name)).unwrap(),
            "store fixture file {name} changed"
        );
    }
    std::fs::remove_dir_all(&tmp).unwrap();
    // Reader compat: the checked-in directory loads and answers like the
    // freshly built store.
    let loaded = TieredStrings::load_dir(&dir).unwrap();
    assert_eq!(loaded.len(), st.len());
    assert_eq!(loaded.sealed_segments(), st.sealed_segments());
    for i in 0..st.len() {
        assert_eq!(loaded.get_string(i), st.get_string(i), "access({i})");
    }
    assert_eq!(
        loaded.count_prefix("http://c.net/"),
        st.count_prefix("http://c.net/")
    );
}
