//! Fault-injection suite for the sharded front-end: the proof artifact of
//! the ISSUE-10 robustness claims.
//!
//! For every injected fault class — shard delay past the deadline, shard
//! panic, failed shard op, damaged (quarantined) generation on disk — the
//! router must return a *correct* `PartialResult`: every `Some` answer
//! bit-identical to an unsharded oracle `TieredStore` holding the same
//! corpus, every miss attributed to the faulted shard with a structured
//! cause, zero panics escaping. And in every scenario the shard must
//! *heal* within the test: circuit opens (Healthy → Degraded →
//! Quarantined), the fault is cleared, a half-open probe closes the
//! circuit, and a final batch completes cleanly.
//!
//! Faults are keyed by operation index (`FaultScript`), so every run
//! replays identically.

use std::sync::{Arc, Once};
use std::time::Duration;

use wavelet_trie::binarize::{Coder, NinthBitCoder};
use wavelet_trie::SeqIndex;
use wt_bits::{MemFs, RetryPolicy, Storage};
use wt_server::{
    Answer, FaultScript, FaultyShard, HealthConfig, HealthState, MissCause, PartialResult, Query,
    RouterConfig, Shard, ShardRouter, StoreShard,
};
use wt_store::TieredStore;
use wt_trie::BitString;

/// Injected panics are expected here; keep them out of the test output
/// while still printing anything unexpected.
fn quiet_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected"));
            if !injected {
                prev(info);
            }
        }));
    });
}

const CORPUS: &[&str] = &[
    "example.com/index",
    "example.com/about",
    "example.com/about",
    "example.org/blog/post-1",
    "example.org/blog/post-2",
    "example.org/blog/post-1",
    "cdn.example.net/asset/logo",
    "cdn.example.net/asset/app",
    "example.com/index",
    "api.example.com/v1/users",
    "api.example.com/v1/items",
    "api.example.com/v2/users",
];

fn encode(s: &str) -> BitString {
    NinthBitCoder.encode(s.as_bytes())
}

fn encode_prefix(p: &str) -> BitString {
    NinthBitCoder.encode_prefix(p.as_bytes())
}

/// Snappy, test-friendly tuning: small budgets, instant-ish retries,
/// zero probe cooldown (the heal step drives probes explicitly).
fn test_config(deadline: Duration) -> RouterConfig {
    RouterConfig {
        deadline,
        retry: RetryPolicy {
            attempts: 2,
            base_backoff: Duration::from_micros(100),
            max_elapsed: None,
            jitter: Some(0xFA17),
        },
        max_in_flight: 64,
        health: HealthConfig {
            window: 8,
            degrade_errors: 2,
            quarantine_errors: 3,
            probe_cooldown: Duration::ZERO,
            latency_budget: None,
        },
    }
}

/// A router whose shard 0 is wrapped in a `FaultyShard` (initially
/// transparent), the wrapper handle for scripting it, and an unsharded
/// oracle holding the identical corpus.
fn faulted_fixture(
    shards: usize,
    deadline: Duration,
) -> (ShardRouter, Arc<FaultyShard>, TieredStore) {
    let mut members: Vec<Arc<dyn Shard>> = Vec::new();
    let faulty = Arc::new(FaultyShard::new(
        Arc::new(StoreShard::new(TieredStore::new())),
        FaultScript::new(),
    ));
    members.push(Arc::clone(&faulty) as Arc<dyn Shard>);
    for _ in 1..shards {
        members.push(Arc::new(StoreShard::new(TieredStore::new())));
    }
    let router = ShardRouter::new(members, test_config(deadline));
    let mut oracle = TieredStore::new();
    for s in CORPUS {
        let b = encode(s);
        router.append(b.as_bitstr()).expect("clean append");
        oracle.append(b.as_bitstr()).expect("prefix-free corpus");
    }
    (router, faulty, oracle)
}

fn count_queries() -> Vec<Query> {
    CORPUS
        .iter()
        .map(|s| Query::Count(encode(s)))
        .chain(
            ["example.", "example.org/", "api.", "nosuch."]
                .iter()
                .map(|p| Query::CountPrefix(encode_prefix(p))),
        )
        .collect()
}

/// Every `Some` answer must equal the unsharded oracle's; every `None`
/// must be explained by a miss on a shard the query depends on.
fn assert_answers_match_oracle(queries: &[Query], result: &PartialResult, oracle: &TieredStore) {
    assert_eq!(result.answers.len(), queries.len());
    for (q, a) in queries.iter().zip(&result.answers) {
        match (q, a) {
            (Query::Count(s), Some(Answer::Count(c))) => {
                assert_eq!(*c, oracle.count(s.as_bitstr()), "Count({s:?})");
            }
            (Query::CountPrefix(p), Some(Answer::CountPrefix(c))) => {
                assert_eq!(*c, oracle.count_prefix(p.as_bitstr()), "CountPrefix({p:?})");
            }
            (_, None) => {
                assert!(
                    !result.missing.is_empty(),
                    "unanswered query {q:?} without any miss entry"
                );
            }
            (q, a) => panic!("mismatched query/answer kinds: {q:?} vs {a:?}"),
        }
    }
}

/// Drive the quarantined shard 0 through heal: clear the fault script,
/// then issue probe batches until the circuit closes. Returns batches
/// used.
fn heal_shard_zero(router: &ShardRouter, faulty: &FaultyShard, queries: &[Query]) -> usize {
    faulty.set_script(FaultScript::new());
    for round in 1..=10 {
        let _ = router.query(queries);
        let health = &router.health_report()[0];
        if health.state == HealthState::Healthy {
            assert!(health.recoveries >= 1, "heal must go through a probe");
            return round;
        }
    }
    panic!(
        "shard 0 did not heal within 10 rounds: {:?}",
        router.health_report()[0]
    );
}

#[test]
fn clean_sharded_serving_matches_oracle() {
    let (router, _faulty, oracle) = faulted_fixture(4, Duration::from_secs(5));
    let queries = count_queries();
    let result = router.query(&queries);
    assert!(result.is_complete(), "missing: {:?}", result.missing);
    assert_answers_match_oracle(&queries, &result, &oracle);

    // Access round-trips by DocId through the owning shard.
    let s = encode("example.com/new-doc");
    let doc = router.append(s.as_bitstr()).expect("clean append");
    let access = router.query(&[Query::Access(doc)]);
    assert_eq!(access.answers[0], Some(Answer::Access(Some(s))));
}

#[test]
fn slow_shard_trips_breaker_and_heals() {
    let deadline = Duration::from_millis(40);
    let (router, faulty, oracle) = faulted_fixture(4, deadline);
    // Fault class 1: shard delay > deadline. Three delayed batches trip
    // the breaker (quarantine_errors = 3).
    let slow = deadline * 4;
    // Appends during the fixture consumed op indices; script relative to
    // the counter's current position.
    let base = faulty.ops_seen();
    faulty.set_script(
        FaultScript::new()
            .delay(base, slow)
            .delay(base + 1, slow)
            .delay(base + 2, slow),
    );

    let queries = count_queries();
    for expected_state in [
        None,                           // 1st timeout: window warming
        Some(HealthState::Degraded),    // 2nd
        Some(HealthState::Quarantined), // 3rd
    ] {
        let result = router.query(&queries);
        assert!(!result.is_complete());
        assert_answers_match_oracle(&queries, &result, &oracle);
        assert!(
            result
                .missing
                .iter()
                .all(|m| m.shard == 0 && m.cause == MissCause::DeadlineExpired),
            "missing: {:?}",
            result.missing
        );
        if let Some(state) = expected_state {
            assert_eq!(router.health_report()[0].state, state);
        }
    }
    assert_eq!(router.health_report()[0].trips, 1);

    // While quarantined, shard 0 is skipped without waiting on it.
    let result = router.query(&queries);
    assert_answers_match_oracle(&queries, &result, &oracle);
    assert!(result
        .missing
        .iter()
        .all(|m| m.shard == 0 && m.cause == MissCause::Quarantined));

    // Heal: clear the fault, half-open probe closes the circuit.
    heal_shard_zero(&router, &faulty, &queries);
    let result = router.query(&queries);
    assert!(result.is_complete(), "missing: {:?}", result.missing);
    assert_answers_match_oracle(&queries, &result, &oracle);
}

#[test]
fn panicking_shard_is_contained_and_heals() {
    quiet_injected_panics();
    let (router, faulty, oracle) = faulted_fixture(4, Duration::from_secs(5));
    // Fault class 2: shard panic on every call until cleared (scripted
    // past the op indices the fixture's appends consumed).
    let base = faulty.ops_seen();
    faulty.set_script(
        FaultScript::new()
            .panic(base)
            .panic(base + 1)
            .panic(base + 2)
            .panic(base + 3),
    );

    let queries = count_queries();
    for _ in 0..3 {
        let result = router.query(&queries);
        assert!(!result.is_complete());
        assert_answers_match_oracle(&queries, &result, &oracle);
        for miss in &result.missing {
            assert_eq!(miss.shard, 0);
            match &miss.cause {
                MissCause::Panicked(msg) => assert!(msg.contains("injected panic")),
                other => panic!("expected Panicked, got {other:?}"),
            }
        }
    }
    assert_eq!(router.health_report()[0].state, HealthState::Quarantined);

    heal_shard_zero(&router, &faulty, &queries);
    let result = router.query(&queries);
    assert!(result.is_complete(), "missing: {:?}", result.missing);
    assert_answers_match_oracle(&queries, &result, &oracle);
}

#[test]
fn failing_shard_exhausts_retries_and_heals() {
    let (router, faulty, oracle) = faulted_fixture(4, Duration::from_secs(5));
    // Fault class 3: failed shard ops (every attempt, until cleared) —
    // the retry layer must try again (attempts = 2 consumes two op
    // indices per batch) and then degrade gracefully.
    faulty.set_script(FaultScript::new().fail_from(0));

    let queries = count_queries();
    for _ in 0..3 {
        let result = router.query(&queries);
        assert!(!result.is_complete());
        assert_answers_match_oracle(&queries, &result, &oracle);
        for miss in &result.missing {
            assert_eq!(miss.shard, 0);
            match &miss.cause {
                MissCause::Failed(msg) => assert!(msg.contains("injected failure")),
                other => panic!("expected Failed, got {other:?}"),
            }
        }
    }
    assert_eq!(router.health_report()[0].state, HealthState::Quarantined);
    // Retries happened: more ops consumed than batches issued.
    assert!(faulty.ops_seen() > 3, "ops: {}", faulty.ops_seen());

    heal_shard_zero(&router, &faulty, &queries);
    let result = router.query(&queries);
    assert!(result.is_complete(), "missing: {:?}", result.missing);
    assert_answers_match_oracle(&queries, &result, &oracle);
}

#[test]
fn damaged_generation_quarantines_and_recovers() {
    // Fault class 4: a damaged generation on disk. The shard recovers
    // with the damaged segment quarantined, serves what survived, and a
    // re-save heals the image.
    let fs = MemFs::new();
    let dir = std::path::Path::new("/shard0");
    let mut store = TieredStore::new();
    for s in CORPUS {
        store
            .append(encode(s).as_bitstr())
            .expect("prefix-free corpus");
    }
    store.seal();
    store.save_dir_with(&fs, dir).expect("clean save");

    // Corrupt the sealed segment payload.
    let victim = fs
        .list(dir)
        .expect("listable dir")
        .into_iter()
        .find(|n| n.contains("seg") && n.contains("static"))
        .or_else(|| {
            fs.list(dir)
                .expect("listable dir")
                .into_iter()
                .find(|n| !n.contains("manifest"))
        })
        .expect("a segment file to corrupt");
    let path = dir.join(&victim);
    let mut bytes = fs.read(&path).expect("readable segment");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    fs.write(&path, &bytes).expect("corruptible segment");

    let (shard, report) = StoreShard::recover(&fs, dir).expect("recovery serves what survived");
    assert!(
        !report.quarantined.is_empty(),
        "corruption must be detected and quarantined: {report:?}"
    );
    assert!(report.strings_lost > 0);

    // The recovered shard serves the surviving strings behind a router;
    // the oracle is the recovered content itself (sharded serving adds no
    // further loss).
    let survived: Vec<BitString> = shard.snapshot().iter_seq_boxed().collect();
    let mut oracle = TieredStore::new();
    for s in &survived {
        oracle
            .append(s.as_bitstr())
            .expect("recovered set stays prefix-free");
    }
    let shard = Arc::new(shard);
    let router = ShardRouter::new(
        vec![Arc::clone(&shard) as Arc<dyn Shard>],
        test_config(Duration::from_secs(5)),
    );
    let queries: Vec<Query> = CORPUS.iter().map(|s| Query::Count(encode(s))).collect();
    let result = router.query(&queries);
    assert!(result.is_complete(), "missing: {:?}", result.missing);
    assert_answers_match_oracle(&queries, &result, &oracle);

    // Heal the on-disk image: a fresh save commits a new full generation
    // which recovers clean.
    shard.save_dir_with(&fs, dir).expect("healing save");
    let (_healed, report2) = StoreShard::recover(&fs, dir).expect("healed recovery");
    assert!(
        report2.is_clean(),
        "re-saved image must be clean: {report2:?}"
    );
}

#[test]
fn all_shards_quarantined_yields_structured_empty_result() {
    let deadline = Duration::from_secs(5);
    // Wrap EVERY shard in an always-failing FaultyShard.
    let mut members: Vec<Arc<dyn Shard>> = Vec::new();
    let mut handles: Vec<Arc<FaultyShard>> = Vec::new();
    for _ in 0..3 {
        let mut store = TieredStore::new();
        for s in CORPUS {
            store
                .append(encode(s).as_bitstr())
                .expect("prefix-free corpus");
        }
        let f = Arc::new(FaultyShard::new(
            Arc::new(StoreShard::new(store)),
            FaultScript::new().fail_from(0),
        ));
        handles.push(Arc::clone(&f));
        members.push(f as Arc<dyn Shard>);
    }
    // Long cooldown: the point of this test is the fully-open circuit, so
    // no half-open probes may sneak in.
    let mut config = test_config(deadline);
    config.health.probe_cooldown = Duration::from_secs(3600);
    let router = ShardRouter::new(members, config);
    let queries = vec![Query::CountPrefix(encode_prefix("example."))];

    // Trip every breaker.
    for _ in 0..3 {
        let _ = router.query(&queries);
    }
    assert!(router
        .health_report()
        .iter()
        .all(|h| h.state == HealthState::Quarantined));

    // All-quarantined: answers all None, all misses structured, no panic.
    let result = router.query(&queries);
    assert!(result.answers.iter().all(Option::is_none));
    assert!(result.answered_shards.is_empty());
    assert_eq!(result.missing.len(), 3);
    assert!(result
        .missing
        .iter()
        .all(|m| m.cause == MissCause::Quarantined));
}

#[test]
fn deadline_expiring_mid_gather_returns_partial() {
    let deadline = Duration::from_millis(50);
    let (router, faulty, oracle) = faulted_fixture(4, deadline);
    faulty.set_script(FaultScript::new().delay(faulty.ops_seen(), deadline * 4));

    // Mixed batch: single-shard Counts land on every shard, so healthy
    // shards answer while shard 0 sleeps past the budget.
    let queries = count_queries();
    let result = router.query(&queries);
    assert!(!result.is_complete());
    assert_answers_match_oracle(&queries, &result, &oracle);
    assert!(result.missing.iter().all(|m| m.shard == 0));
    assert!(!result.answered_shards.contains(&0));
    assert!(result.answered_shards.len() >= 2, "healthy shards answered");
    // Prefix queries fan out to all shards, so they are unanswered; the
    // Count queries owned by healthy shards must be answered.
    let answered = result.answers.iter().filter(|a| a.is_some()).count();
    assert!(answered > 0, "healthy single-shard answers survive");
}
