//! Tests for the §5 stop-early prefix enumeration ("enumerating the
//! distinct prefixes … for example in an URL access log we can find
//! efficiently the distinct hostnames in a given time range").

use std::collections::BTreeMap;
use wavelet_trie::{AppendLog, BitString, DynamicWaveletTrie, SeqIndex, WaveletTrie};
use wt_workloads::{url_log, UrlLogConfig};

fn bs(s: &str) -> BitString {
    BitString::parse(s)
}

#[test]
fn bit_level_prefixes_figure2() {
    let seq: Vec<BitString> = ["0001", "0011", "0100", "00100", "0100", "00100", "0100"]
        .iter()
        .map(|s| bs(s))
        .collect();
    let wt = WaveletTrie::build(&seq).unwrap();
    // depth-2 prefixes: 00 (0001, 0011, 00100 ×2 → 4), 01 (0100 ×3)
    let got: Vec<(String, usize)> = wt
        .distinct_prefixes_in_range(0, 7, 2)
        .iter()
        .map(|(s, c)| (s.to_string(), *c))
        .collect();
    assert_eq!(got, vec![("00".into(), 4), ("01".into(), 3)]);
    // depth-3: 000 (1), 001 (3), 010 (3)
    let got: Vec<(String, usize)> = wt
        .distinct_prefixes_in_range(0, 7, 3)
        .iter()
        .map(|(s, c)| (s.to_string(), *c))
        .collect();
    assert_eq!(
        got,
        vec![("000".into(), 1), ("001".into(), 3), ("010".into(), 3)]
    );
    // depth beyond all strings = full distinct enumeration
    let deep = wt.distinct_prefixes_in_range(0, 7, 64);
    let full = wt.distinct_in_range(0, 7);
    assert_eq!(deep, full);
    // depth 0: single empty prefix covering the window
    let all = wt.distinct_prefixes_in_range(1, 6, 0);
    assert_eq!(all.len(), 1);
    assert_eq!(all[0].1, 5);
    // sub-window
    let got: Vec<(String, usize)> = wt
        .distinct_prefixes_in_range(2, 6, 2)
        .iter()
        .map(|(s, c)| (s.to_string(), *c))
        .collect();
    assert_eq!(got, vec![("00".into(), 2), ("01".into(), 2)]);
}

#[test]
fn hostnames_in_time_window_match_naive() {
    let n = 5000;
    let data = url_log(n, UrlLogConfig::default(), 11);
    let mut log = AppendLog::new();
    for s in &data {
        log.append(s);
    }
    // hostnames are the first 22 bytes: "http://hostNNN.example"
    let hlen = "http://host000.example".len();
    for (l, r) in [(0, n), (n / 4, n / 2), (10, 11)] {
        let got = log.distinct_byte_prefixes_in_range(l, r, hlen);
        let mut naive: BTreeMap<String, usize> = BTreeMap::new();
        for s in &data[l..r] {
            *naive.entry(s[..hlen.min(s.len())].to_string()).or_default() += 1;
        }
        let want: Vec<(String, usize)> = naive.into_iter().collect();
        assert_eq!(got, want, "window [{l},{r})");
        // counts must sum to the window size
        let total: usize = got.iter().map(|(_, c)| c).sum();
        assert_eq!(total, r - l);
    }
}

#[test]
fn strings_shorter_than_depth_reported_whole() {
    let mut wt = DynamicWaveletTrie::new();
    for s in ["01", "01", "0011", "000111"] {
        wt.append(bs(s).as_bitstr()).unwrap();
    }
    let got: Vec<(String, usize)> = wt
        .distinct_prefixes_in_range(0, 4, 4)
        .iter()
        .map(|(s, c)| (s.to_string(), *c))
        .collect();
    // "000111" truncates to "0001"; "0011" fits exactly; "01" is shorter.
    assert_eq!(
        got,
        vec![("0001".into(), 1), ("0011".into(), 1), ("01".into(), 2)]
    );
}

#[test]
fn works_across_all_variants() {
    let data = url_log(800, UrlLogConfig::default(), 3);
    let stat = wavelet_trie::IndexedStrings::build(data.iter());
    let mut app = AppendLog::new();
    let mut dy = wavelet_trie::DynamicStrings::new();
    for s in &data {
        app.append(s);
        dy.push(s);
    }
    let hlen = 22;
    let a = stat.distinct_byte_prefixes_in_range(100, 700, hlen);
    let b = app.distinct_byte_prefixes_in_range(100, 700, hlen);
    let c = dy.distinct_byte_prefixes_in_range(100, 700, hlen);
    assert_eq!(a, b);
    assert_eq!(a, c);
    assert!(!a.is_empty());
}
