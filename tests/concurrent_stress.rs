//! Free-running concurrent stress: N reader threads hammering snapshots
//! with `access` / `rank` / `select` / `count_prefix_batch` while the
//! writer appends, edits, seals, compacts and saves — every read checked
//! bit-identical against the frozen oracle recorded for that snapshot's
//! epoch version.
//!
//! Protocol: the writer records `version -> contents` into a shared map
//! immediately after each publish (same thread, so the recorded contents
//! are exactly the published state); readers that observe a version
//! before its oracle lands briefly spin for it. Readers never block the
//! writer and vice versa beyond that map lock.
//!
//! Runs in debug and release (the CI concurrency lane runs both).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::RwLock;

use wavelet_trie::SeqIndex;
use wt_bits::MemFs;
use wt_store::{StoreConfig, TieredStore};
use wt_trie::{BitStr, BitString};

fn encode(v: u64) -> BitString {
    BitString::from_bits((0..10).rev().map(move |k| (v >> k) & 1 != 0))
}

fn prefix4(v: u64) -> BitString {
    BitString::from_bits((0..4).rev().map(move |k| (v >> k) & 1 != 0))
}

fn contents(idx: &dyn SeqIndex) -> Vec<BitString> {
    idx.iter_seq_boxed().collect()
}

/// Deterministic per-thread xorshift so reader access patterns differ but
/// replays are stable.
fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

const READERS: usize = 4;
const ROUNDS: u64 = 60;

#[test]
fn readers_stay_bit_identical_under_concurrent_maintenance() {
    let mut st = TieredStore::with_config(StoreConfig {
        seal_at: 64,
        max_sealed: 3,
    });
    let reader = st.reader();
    let mem = MemFs::new();
    let dir = std::path::Path::new("/stress");

    // version -> frozen contents at that publish (version 0 = empty).
    let oracle: RwLock<HashMap<u64, Vec<BitString>>> = RwLock::new(HashMap::new());
    oracle.write().unwrap().insert(0, Vec::new());
    let done = AtomicBool::new(false);
    let checks = AtomicU64::new(0);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..READERS)
            .map(|r| {
                let reader = reader.clone();
                let oracle = &oracle;
                let done = &done;
                let checks = &checks;
                scope.spawn(move || {
                    let mut rng = 0x5EED ^ (r as u64) << 17 | 1;
                    let mut last_version = 0u64;
                    while !done.load(Ordering::Acquire) {
                        let snap = reader.snapshot();
                        let v = snap.version();
                        assert!(v >= last_version, "reader {r}: version regressed");
                        last_version = v;
                        // Spin until the writer's oracle for v lands (it is
                        // recorded right after the publish we just saw).
                        let state = loop {
                            if let Some(s) = oracle.read().unwrap().get(&v) {
                                break s.clone();
                            }
                            std::thread::yield_now();
                        };
                        assert_eq!(snap.len(), state.len(), "reader {r} v{v}: len");
                        if state.is_empty() {
                            continue;
                        }
                        // access
                        let pos = (xorshift(&mut rng) as usize) % state.len();
                        assert_eq!(snap.access(pos), state[pos], "reader {r} v{v}: access");
                        // rank at a random bound
                        let probe = state[(xorshift(&mut rng) as usize) % state.len()].clone();
                        let s = probe.as_bitstr();
                        let bound = (xorshift(&mut rng) as usize) % (state.len() + 1);
                        let want = state[..bound].iter().filter(|t| t.as_bitstr() == s).count();
                        assert_eq!(snap.rank(s, bound), want, "reader {r} v{v}: rank");
                        // select of a random occurrence
                        let total = state.iter().filter(|t| t.as_bitstr() == s).count();
                        let idx = (xorshift(&mut rng) as usize) % total;
                        let want = state
                            .iter()
                            .enumerate()
                            .filter(|(_, t)| t.as_bitstr() == s)
                            .nth(idx)
                            .map(|(i, _)| i);
                        assert_eq!(snap.select(s, idx), want, "reader {r} v{v}: select");
                        // count_prefix_batch over a handful of 4-bit prefixes
                        let prefixes: Vec<BitString> =
                            (0..8).map(|k| prefix4(xorshift(&mut rng) ^ k)).collect();
                        let refs: Vec<BitStr<'_>> =
                            prefixes.iter().map(|p| p.as_bitstr()).collect();
                        let want: Vec<usize> = refs
                            .iter()
                            .map(|&p| {
                                state
                                    .iter()
                                    .filter(|t| t.as_bitstr().lcp(&p) == p.len())
                                    .count()
                            })
                            .collect();
                        assert_eq!(
                            snap.count_prefix_batch(&refs),
                            want,
                            "reader {r} v{v}: count_prefix_batch"
                        );
                        checks.fetch_add(1, Ordering::Relaxed);
                    }
                    last_version
                })
            })
            .collect();

        // The writer: append batches, periodic middle edits, and every
        // few rounds a full maintenance pass (seal + compact + save).
        let mut next = 0u64;
        for round in 0..ROUNDS {
            for _ in 0..9 {
                st.append(encode(next % 97).as_bitstr()).unwrap();
                next += 1;
            }
            if round % 5 == 2 && st.len() > 10 {
                st.insert(encode(next % 97).as_bitstr(), 3).unwrap();
                st.delete(st.len() / 3);
            }
            let version = if round % 6 == 5 {
                let report = if round % 12 == 11 {
                    st.maintain_with(&wt_store::Maintenance {
                        save_to: Some((&mem, dir)),
                        ..Default::default()
                    })
                } else {
                    st.maintain()
                };
                assert!(report.is_clean(), "round {round}: {report}");
                report.published.unwrap()
            } else {
                st.publish().version()
            };
            oracle.write().unwrap().insert(version, contents(&st));
        }
        done.store(true, Ordering::Release);
        for h in handles {
            h.join().expect("reader thread panicked");
        }
    });

    assert!(
        checks.load(Ordering::Relaxed) > 0,
        "readers never completed a verification pass"
    );
    // The saved image loads back to some published oracle state.
    let loaded = TieredStore::load_dir_with(&mem, dir).expect("stress save must be loadable");
    let got = contents(&loaded);
    let map = oracle.read().unwrap();
    assert!(
        map.values().any(|state| *state == got),
        "loaded state matches no published oracle"
    );
}
