//! Self-healing recovery: graceful degradation under real damage.
//!
//! Where `crash_points.rs` proves crashes alone never corrupt a committed
//! image, this suite damages committed bytes on purpose — bit rot, lost
//! files, truncation — and checks [`wt_store::TieredStore::recover_dir`]
//! degrades gracefully: serve every byte that validates, quarantine
//! exactly what doesn't, fall back a generation when the commit point
//! itself is gone, and report the whole story.

use std::path::Path;

use wavelet_trie::SeqIndex;
use wt_bits::{FaultPlan, FaultStorage, MemFs, Storage};
use wt_store::{StoreConfig, StoreErrorCause, TieredStore};
use wt_trie::BitString;

fn encode(v: u64) -> BitString {
    BitString::from_bits((0..10).rev().map(move |k| (v >> k) & 1 != 0))
}

/// A store with several sealed segments and a non-empty hot tail.
fn sample_store() -> TieredStore {
    let mut st = TieredStore::with_config(StoreConfig {
        seal_at: 10,
        max_sealed: 8,
    });
    for i in 0..47u64 {
        st.append(encode(i).as_bitstr()).unwrap();
    }
    st
}

/// The strings a store serves, in order.
fn strings_of(st: &TieredStore) -> Vec<BitString> {
    st.iter_range_boxed(0, st.len()).collect()
}

/// Flips one byte in the middle of `name`, breaking its checksum.
fn corrupt(fs: &MemFs, dir: &Path, name: &str) {
    let path = dir.join(name);
    let mut bytes = fs.read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs.write(&path, &bytes).unwrap();
    fs.sync_file(&path).unwrap();
}

/// Sealed-segment file names of the only generation in `dir`, sorted.
fn sealed_files(fs: &MemFs, dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = fs
        .list_names(dir)
        .into_iter()
        .filter(|n| n.starts_with("seg-") && n.ends_with(".wt"))
        .collect();
    names.sort();
    names
}

#[test]
fn one_corrupt_sealed_segment_quarantines_exactly_that_segment() {
    // The acceptance scenario: flip a byte in one sealed segment of a
    // multi-segment directory. The resilient load serves every OTHER
    // segment's strings, in order, and reports exactly one quarantine.
    let dir = Path::new("store");
    let st = sample_store();
    let seg_lens = st.segment_lens();
    assert!(
        st.sealed_segments() >= 3,
        "want several segments to survive"
    );
    let fs = MemFs::new();
    st.save_dir_with(&fs, dir).unwrap();
    let victims = sealed_files(&fs, dir);
    // Corrupt sealed segment #1 (the second one).
    corrupt(&fs, dir, &victims[1]);
    // Strict load refuses: a damaged generation is all-or-nothing, and the
    // error names the damaged file.
    let err = TieredStore::load_dir_with(&fs, dir).expect_err("strict must fail");
    assert_eq!(err.file().unwrap(), dir.join(&victims[1]));
    assert!(matches!(err.cause(), StoreErrorCause::Format(_)), "{err}");
    assert!(!err.is_retryable(), "corruption is not transient");
    // Resilient load degrades gracefully.
    let (rec, report) = TieredStore::recover_dir_with(&fs, dir).unwrap();
    assert_eq!(report.quarantined.len(), 1, "{report}");
    assert_eq!(report.quarantined[0].file, dir.join(&victims[1]));
    assert_eq!(report.quarantined[0].strings_lost, seg_lens[1]);
    assert_eq!(report.strings_lost, seg_lens[1]);
    assert_eq!(rec.len(), st.len() - seg_lens[1]);
    // Every surviving string is served, in the original order.
    let mut expected = strings_of(&st);
    expected.drain(seg_lens[0]..seg_lens[0] + seg_lens[1]);
    assert_eq!(strings_of(&rec), expected, "surviving segments must serve");
    assert!(!report.is_clean());
}

#[test]
fn missing_segment_file_is_quarantined_not_fatal() {
    let dir = Path::new("store");
    let st = sample_store();
    let fs = MemFs::new();
    st.save_dir_with(&fs, dir).unwrap();
    let victims = sealed_files(&fs, dir);
    fs.remove(&dir.join(&victims[0])).unwrap();
    let (rec, report) = TieredStore::recover_dir_with(&fs, dir).unwrap();
    assert_eq!(report.quarantined.len(), 1, "{report}");
    assert!(report.quarantined[0].reason.contains("read"), "{report}");
    assert_eq!(rec.len() + report.strings_lost, st.len());
}

#[test]
fn torn_hot_log_replays_its_valid_prefix() {
    let dir = Path::new("store");
    let st = sample_store();
    let tail_len = *st.segment_lens().last().unwrap();
    assert!(tail_len >= 2, "need a non-trivial hot tail");
    let fs = MemFs::new();
    st.save_dir_with(&fs, dir).unwrap();
    // Rewrite the hot log with a correct archive envelope whose length
    // table over-promises: CRC passes, replay hits the table fault. This is
    // the in-payload damage a torn-then-checksum-patched log would show.
    let log_name = fs
        .list_names(dir)
        .into_iter()
        .find(|n| n.ends_with(".log"))
        .unwrap();
    // Build a half-length hot store and graft its (valid) log bytes in
    // place of the full tail: fewer strings than the manifest promises.
    let mut short = TieredStore::with_config(st.config());
    for s in strings_of(&st)
        .iter()
        .take(st.len() - tail_len + tail_len / 2)
    {
        short.append(s.as_bitstr()).unwrap();
    }
    let fs2 = MemFs::new();
    short.save_dir_with(&fs2, dir).unwrap();
    let short_log = fs2
        .list_names(dir)
        .into_iter()
        .find(|n| n.ends_with(".log"))
        .unwrap();
    let log_bytes = fs2.read(&dir.join(short_log)).unwrap();
    fs.write(&dir.join(&log_name), &log_bytes).unwrap();
    // Strict load cross-checks the manifest and refuses.
    assert!(TieredStore::load_dir_with(&fs, dir).is_err());
    // Recovery keeps the shortened tail and accounts for the loss.
    let (rec, report) = TieredStore::recover_dir_with(&fs, dir).unwrap();
    assert_eq!(report.quarantined.len(), 1, "{report}");
    assert_eq!(report.hot_replayed, tail_len / 2, "{report}");
    assert_eq!(report.strings_lost, tail_len - tail_len / 2, "{report}");
    assert_eq!(rec.len(), st.len() - report.strings_lost);
}

#[test]
fn corrupt_manifest_falls_back_one_generation() {
    let dir = Path::new("store");
    let old = sample_store();
    let mut new = sample_store();
    for i in 100..110u64 {
        new.append(encode(i).as_bitstr()).unwrap();
    }
    // Build a directory holding BOTH generations: kill the second save
    // during its post-commit sweep (searching from the last op backwards
    // for the first crash point that leaves both manifests).
    let mut both: Option<MemFs> = None;
    let total = {
        let fs = MemFs::new();
        old.save_dir_with(&fs, dir).unwrap();
        let counter = FaultStorage::new(&fs, FaultPlan::default());
        new.save_dir_with(&counter, dir).unwrap();
        counter.ops()
    };
    for k in (0..=total).rev() {
        let fs = MemFs::with_seed(k);
        old.save_dir_with(&fs, dir).unwrap();
        let faulty = FaultStorage::new(
            &fs,
            FaultPlan {
                fail_from: Some(k),
                ..FaultPlan::default()
            },
        );
        let _ = new.save_dir_with(&faulty, dir);
        let names = fs.list_names(dir);
        if names.iter().any(|n| n == "manifest-g00000001.wt")
            && names.iter().any(|n| n == "manifest-g00000002.wt")
        {
            both = Some(fs);
            break;
        }
    }
    let fs = both.expect("some crash point leaves both generations");
    // Sanity: with both generations intact, the newest wins.
    assert_eq!(
        TieredStore::load_dir_with(&fs, dir).unwrap().len(),
        new.len()
    );
    // Now lose generation 2's commit point.
    corrupt(&fs, dir, "manifest-g00000002.wt");
    let loaded = TieredStore::load_dir_with(&fs, dir).unwrap();
    assert_eq!(loaded.len(), old.len(), "strict load must fall back");
    let (rec, report) = TieredStore::recover_dir_with(&fs, dir).unwrap();
    assert_eq!(report.generation, 1, "{report}");
    assert_eq!(report.manifests_skipped, 1, "{report}");
    assert_eq!(rec.len(), old.len());
    assert_eq!(strings_of(&rec), strings_of(&old));
}

#[test]
fn recovery_quarantine_then_resave_is_stable() {
    // Damage → recover → save → load: the healed image is a first-class
    // committed generation with nothing left to heal.
    let dir = Path::new("store");
    let st = sample_store();
    let fs = MemFs::new();
    st.save_dir_with(&fs, dir).unwrap();
    let victims = sealed_files(&fs, dir);
    corrupt(&fs, dir, &victims[2]);
    let (rec, r1) = TieredStore::recover_dir_with(&fs, dir).unwrap();
    assert!(!r1.is_clean());
    rec.save_dir_with(&fs, dir).unwrap();
    let (again, r2) = TieredStore::recover_dir_with(&fs, dir).unwrap();
    assert!(r2.is_clean(), "healed image must recover clean: {r2}");
    assert_eq!(strings_of(&again), strings_of(&rec));
    assert_eq!(
        TieredStore::load_dir_with(&fs, dir).unwrap().len(),
        rec.len(),
        "strict load accepts the healed image"
    );
}

#[test]
fn empty_or_foreign_directory_reports_no_generation() {
    let dir = Path::new("store");
    let fs = MemFs::new();
    fs.create_dir_all(dir).unwrap();
    fs.write(&dir.join("notes.txt"), b"not a store").unwrap();
    let err = TieredStore::load_dir_with(&fs, dir).expect_err("nothing committed");
    assert!(
        matches!(err.cause(), StoreErrorCause::NoCommittedGeneration),
        "{err}"
    );
    assert!(TieredStore::recover_dir_with(&fs, dir).is_err());
}
