//! Reproduction of the paper's figures as structural assertions.
//!
//! * Figure 1 — the Wavelet Tree of `abracadabra` over `{a,b,c,d,r}`;
//! * Figure 2 — the Wavelet Trie of `〈0001,0011,0100,00100,0100,00100,0100〉`,
//!   node by node (labels α and bitvectors β);
//! * Figure 3 — the node split performed when inserting a new string.

use wavelet_trie::{
    AppendWaveletTrie, BitString, DynamicWaveletTrie, SeqIndex, TrieNav, WaveletTrie,
};
use wt_baselines::IntWaveletTree;

fn bs(s: &str) -> BitString {
    BitString::parse(s)
}

fn figure2_seq() -> Vec<BitString> {
    ["0001", "0011", "0100", "00100", "0100", "00100", "0100"]
        .iter()
        .map(|s| bs(s))
        .collect()
}

/// Collects (label, bitvector-as-string) per node in preorder.
fn dump_trie<T: TrieNav>(t: &T) -> Vec<(String, Option<String>)> {
    fn rec<'a, T: TrieNav>(t: &'a T, v: T::Node<'a>, out: &mut Vec<(String, Option<String>)>) {
        let mut label = BitString::new();
        t.nav_label_append(v, &mut label);
        if t.nav_is_leaf(v) {
            out.push((label.to_string(), None));
        } else {
            let beta: String = (0..t.nav_bv_len(v))
                .map(|i| if t.nav_bv_get(v, i) { '1' } else { '0' })
                .collect();
            out.push((label.to_string(), Some(beta)));
            rec(t, t.nav_child(v, false), out);
            rec(t, t.nav_child(v, true), out);
        }
    }
    let mut out = Vec::new();
    if let Some(r) = t.nav_root() {
        rec(t, r, &mut out);
    }
    out
}

/// The exact Figure 2 trie, in preorder:
/// root(α=0, β=0010101) → [ (ε, 0111) → [ leaf(1), (ε, 100) → [leaf(0),
/// leaf(ε)] ], leaf(00) ].
fn figure2_expected() -> Vec<(String, Option<String>)> {
    vec![
        ("0".into(), Some("0010101".into())),
        ("".into(), Some("0111".into())),
        ("1".into(), None),
        ("".into(), Some("100".into())),
        ("0".into(), None),
        ("".into(), None),
        ("00".into(), None),
    ]
}

#[test]
fn figure2_static_structure_is_exact() {
    let wt = WaveletTrie::build(&figure2_seq()).unwrap();
    assert_eq!(dump_trie(&wt), figure2_expected());
}

#[test]
fn figure2_append_only_structure_is_exact() {
    let mut wt = AppendWaveletTrie::new();
    for s in figure2_seq() {
        wt.append(s.as_bitstr()).unwrap();
    }
    assert_eq!(dump_trie(&wt), figure2_expected());
}

#[test]
fn figure2_dynamic_structure_is_exact() {
    let mut wt = DynamicWaveletTrie::new();
    for s in figure2_seq() {
        wt.append(s.as_bitstr()).unwrap();
    }
    assert_eq!(dump_trie(&wt), figure2_expected());
    // and when built by front-insertion in reverse order, the shape is the
    // same (the trie shape depends only on Sset; bitvectors on the order).
    let mut wt2 = DynamicWaveletTrie::new();
    for s in figure2_seq().into_iter().rev() {
        wt2.insert(s.as_bitstr(), 0).unwrap();
    }
    assert_eq!(dump_trie(&wt2), figure2_expected());
}

#[test]
fn figure1_wavelet_tree_abracadabra() {
    // Figure 1: input abracadabra over {a,b,c,d,r}; root bitvector
    // 00101010010 splits {a,b} (0) from {c,d,r} (1).
    // With the balanced code a=000,b=001,c=010,d=011,r=100 the top-level
    // bits are: a0 b0 r1 a0 c1 a0 d1 a0 b0 r1 a0 — but Figure 1 uses the
    // 2-way partition {a,b} vs {c,d,r}; our IntWaveletTree with a=0 b=1 c=2
    // d=3 r=4 at width 3 splits on the top bit: {0..3} vs {4} — a different
    // (also valid) balanced shape. We therefore verify the figure through
    // counts, which are shape-independent, plus the root bitvector of the
    // figure's own partition computed directly.
    let text = "abracadabra";
    let sym = |c: char| "abcdr".find(c).unwrap() as u64;
    let seq: Vec<u64> = text.chars().map(sym).collect();
    let wt = IntWaveletTree::new(&seq, 5);
    for (c, count) in [('a', 5), ('b', 2), ('c', 1), ('d', 1), ('r', 2)] {
        assert_eq!(wt.count(sym(c)), count, "count({c})");
    }
    assert_eq!(wt.access(0), sym('a'));
    assert_eq!(wt.access(2), sym('r'));
    assert_eq!(wt.rank(sym('a'), 8), 4);
    assert_eq!(wt.select(sym('r'), 1), Some(9));
    // Figure's root bitvector for the partition {a,b} | {c,d,r}:
    let root: String = text
        .chars()
        .map(|c| if "cdr".contains(c) { '1' } else { '0' })
        .collect();
    assert_eq!(root, "00101010010");
    // Left subsequence "abaaaba" gets 0100010 on the {a}|{b} split:
    let left: String = text
        .chars()
        .filter(|c| "ab".contains(*c))
        .map(|c| if c == 'b' { '1' } else { '0' })
        .collect();
    assert_eq!(left, "0100010");
}

#[test]
fn figure3_insert_splits_node() {
    // Figure 3: inserting a string that diverges inside an existing label
    // γbδ splits the node into an internal node labeled γ whose bitvector
    // is initialized constant (Init(b, m)) before the new string's bit is
    // inserted; the old node keeps δ, the new leaf gets λ.
    // Instantiation: old leaf label "1011" = γ·1·δ with γ = "101", δ = ε;
    // new string "01010" provides branch bit 0 and λ = ε.
    let mut wt = DynamicWaveletTrie::new();
    for s in ["01011", "01011", "11", "01011"] {
        wt.append(bs(s).as_bitstr()).unwrap();
    }
    let before = dump_trie(&wt);
    assert_eq!(
        before,
        vec![
            ("".into(), Some("0010".into())),
            ("1011".into(), None), // the node that will split
            ("1".into(), None),
        ]
    );
    wt.insert(bs("01010").as_bitstr(), 3).unwrap();
    let after = dump_trie(&wt);
    assert_eq!(
        after,
        vec![
            ("".into(), Some("00100".into())),
            // γ = "101"; bitvector Init(1, 3) = 111 with the new 0 inserted
            // at the mapped position 2 → 1101.
            ("101".into(), Some("1101".into())),
            ("".into(), None), // new leaf λ = ε
            ("".into(), None), // old node, label δ = ε
            ("1".into(), None),
        ]
    );
    assert_eq!(wt.access(3).to_string(), "01010");
    assert_eq!(wt.count(bs("01011").as_bitstr()), 3);
    assert_eq!(wt.count(bs("01010").as_bitstr()), 1);
}

#[test]
fn figure3_inverse_delete_merges_back() {
    let mut wt = DynamicWaveletTrie::new();
    for s in ["01011", "01011", "11", "01011"] {
        wt.append(bs(s).as_bitstr()).unwrap();
    }
    let before = dump_trie(&wt);
    wt.insert(bs("01010").as_bitstr(), 3).unwrap();
    let removed = wt.delete(3);
    assert_eq!(removed.to_string(), "01010");
    assert_eq!(dump_trie(&wt), before, "delete must undo the split exactly");
}
