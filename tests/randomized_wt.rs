//! §6 / Theorem 6.2 behaviour (experiment E8 in machine-checkable form):
//! the randomized Wavelet Tree stays balanced w.h.p. on working alphabets
//! tiny inside a 2^64 universe, while matching a naive model exactly.

use rand::{RngExt, SeedableRng};
use wavelet_trie::RandomizedWaveletTree;
use wt_bits::SpaceUsage;
use wt_workloads::{power_comb, small_alphabet_u64};

#[test]
fn matches_naive_model_on_sparse_alphabet() {
    let values = small_alphabet_u64(2000, 40, 64, 0xAB);
    let mut t = RandomizedWaveletTree::new(64, 7);
    for &v in &values {
        t.push(v);
    }
    assert_eq!(t.len(), values.len());
    for i in (0..values.len()).step_by(37) {
        assert_eq!(t.get(i), values[i], "get({i})");
    }
    let mut distinct: Vec<u64> = values.clone();
    distinct.sort_unstable();
    distinct.dedup();
    assert_eq!(t.distinct_len(), distinct.len());
    for &x in distinct.iter().take(20) {
        let occs: Vec<usize> = (0..values.len()).filter(|&i| values[i] == x).collect();
        assert_eq!(t.count(x), occs.len());
        for pos in [0, 500, 2000] {
            assert_eq!(t.rank(x, pos), occs.iter().filter(|&&p| p < pos).count());
        }
        for (k, &p) in occs.iter().enumerate().take(5) {
            assert_eq!(t.select(x, k), Some(p));
        }
    }
}

#[test]
fn height_bound_holds_across_seeds() {
    // Theorem 6.2 with α = 2: height ≤ 4·log|Σ| with prob ≥ 1 − |Σ|^−2.
    // Over 30 seeds on |Σ| = 64 we expect zero (or at most one) violations.
    let comb = power_comb(64); // adversarial without hashing
    let bound = 4 * 6; // (α+2)·log2(64) with α = 2
    let mut violations = 0;
    for seed in 0..30u64 {
        let mut t = RandomizedWaveletTree::new(64, seed);
        for &v in &comb {
            t.push(v);
        }
        if t.height() > bound {
            violations += 1;
        }
    }
    assert!(
        violations <= 1,
        "{violations}/30 seeds exceeded the (α+2)log|Σ| bound {bound}"
    );
    // The unhashed baseline is pathological on the same input.
    assert!(wavelet_trie::hashed::unhashed_height(&comb, 64) >= 50);
}

#[test]
fn mixed_insert_delete_fuzz() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut t = RandomizedWaveletTree::new(48, 11);
    let mut model: Vec<u64> = Vec::new();
    for _ in 0..1200 {
        if model.is_empty() || rng.random_range(0..3u32) > 0 {
            let v = rng.random_range(0..99u64) * 0x0012_3456_789A % (1 << 48);
            let pos = rng.random_range(0..=model.len());
            t.insert(v, pos);
            model.insert(pos, v);
        } else {
            let pos = rng.random_range(0..model.len());
            assert_eq!(t.remove(pos), model.remove(pos));
        }
    }
    let collected: Vec<u64> = t.iter().collect();
    assert_eq!(collected, model);
}

#[test]
fn space_scales_with_working_alphabet_not_universe() {
    // Same n, same |Σ|, universes 2^16 vs 2^64: space should be comparable
    // (within a small factor), since labels absorb the unused width.
    let narrow = small_alphabet_u64(5000, 32, 16, 1);
    let wide = small_alphabet_u64(5000, 32, 64, 1);
    let mut t16 = RandomizedWaveletTree::new(16, 3);
    let mut t64 = RandomizedWaveletTree::new(64, 3);
    for &v in &narrow {
        t16.push(v);
    }
    for &v in &wide {
        t64.push(v);
    }
    let (b16, b64) = (t16.size_bits(), t64.size_bits());
    assert!(
        b64 < 3 * b16,
        "64-bit universe should not blow space up: {b64} vs {b16}"
    );
}
