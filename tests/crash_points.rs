//! Crash-point enumeration: the proof artifact of the atomic commit
//! protocol. A save of a tiered store is killed at I/O operation *k*, for
//! **every** k from 0 to the op count of a clean save, over a crash-aware
//! in-memory filesystem ([`wt_bits::MemFs`]) whose `crash()` models what a
//! real kernel may do to unsynced state: renames not yet followed by a
//! directory fsync roll back, unsynced file content decays to a torn
//! prefix. After each kill + crash, recovery must observe exactly the
//! **old** committed image or the **new** one — bit-identical answers,
//! never a panic, never a third state — and the clean (post-crash-free)
//! case must report zero quarantines.

use wavelet_trie::SeqIndex;
use wt_bits::{FaultPlan, FaultStorage, MemFs, Storage};
use wt_store::{StoreConfig, TieredStore};
use wt_trie::BitString;

fn encode(v: u64) -> BitString {
    BitString::from_bits((0..10).rev().map(move |k| (v >> k) & 1 != 0))
}

/// A store with sealed segments, a melted middle, and a hot tail — every
/// segment flavor the save path handles.
fn old_store() -> TieredStore {
    let mut st = TieredStore::with_config(StoreConfig {
        seal_at: 8,
        max_sealed: 4,
    });
    for i in 0..40u64 {
        st.append(encode(i % 23).as_bitstr()).unwrap();
    }
    st.insert(encode(100).as_bitstr(), 11).unwrap(); // melt a middle
    st
}

/// The image the interrupted save was trying to commit.
fn new_store() -> TieredStore {
    let mut st = old_store();
    for i in 0..13u64 {
        st.append(encode(200 + i).as_bitstr()).unwrap();
    }
    st.delete(5);
    st
}

/// Fingerprints a store's observable behavior: length, per-segment
/// lengths, every string in order, and a few rank probes.
fn fingerprint(st: &TieredStore) -> Vec<u64> {
    let mut out = vec![st.len() as u64, st.num_segments() as u64];
    out.extend(st.segment_lens().iter().map(|&l| l as u64));
    for s in st.iter_range_boxed(0, st.len()) {
        out.push(s.len() as u64);
        for b in (0..s.len()).map(|i| s.as_bitstr().get(i)) {
            out.push(b as u64);
        }
    }
    for v in [0u64, 7, 100, 205] {
        out.push(st.count(encode(v).as_bitstr()) as u64);
    }
    out
}

/// Ops a clean save of `new_store` over `old_store`'s directory performs.
fn clean_save_ops(dir: &std::path::Path) -> u64 {
    let fs = MemFs::with_seed(7);
    old_store().save_dir_with(&fs, dir).unwrap();
    let counter = FaultStorage::new(&fs, FaultPlan::default());
    new_store().save_dir_with(&counter, dir).unwrap();
    counter.ops()
}

#[test]
fn save_crash_at_every_op_recovers_old_or_new() {
    let dir = std::path::Path::new("store");
    let old = old_store();
    let new = new_store();
    let old_print = fingerprint(&old);
    let new_print = fingerprint(&new);
    assert_ne!(old_print, new_print);
    let total_ops = clean_save_ops(dir);
    assert!(total_ops > 10, "expected a multi-op save, got {total_ops}");
    let mut saw_old = 0u32;
    let mut saw_new = 0u32;
    for k in 0..=total_ops {
        // A fresh filesystem with the OLD image committed.
        let fs = MemFs::with_seed(0xC0FFEE ^ k);
        old.save_dir_with(&fs, dir).unwrap();
        // Kill the save of the NEW image at op k (torn final write).
        let faulty = FaultStorage::new(
            &fs,
            FaultPlan {
                fail_from: Some(k),
                torn_writes: true,
                seed: 0xDEAD ^ k,
                ..FaultPlan::default()
            },
        );
        let save = new.save_dir_with(&faulty, dir);
        // The process is gone; the machine loses unsynced state.
        fs.crash();
        // Strict load must serve a committed image.
        let loaded = TieredStore::load_dir_with(&fs, dir)
            .unwrap_or_else(|e| panic!("crash point {k}: strict load failed: {e}"));
        let print = fingerprint(&loaded);
        if print == new_print {
            saw_new += 1;
            // The new image may only be visible once the commit happened —
            // and then the save either succeeded fully or died during the
            // post-commit sweep.
        } else if print == old_print {
            saw_old += 1;
            assert!(
                save.is_err() || k >= total_ops,
                "crash point {k}: save claimed success but old image served"
            );
        } else {
            panic!("crash point {k}: a third state appeared");
        }
        // Resilient recovery agrees with the strict loader and quarantines
        // nothing: crash debris is stale temps and orphans, never damage
        // inside a committed generation.
        let (recovered, report) = TieredStore::recover_dir_with(&fs, dir)
            .unwrap_or_else(|e| panic!("crash point {k}: recovery failed: {e}"));
        assert_eq!(
            fingerprint(&recovered),
            print,
            "crash point {k}: recovery disagrees with strict load"
        );
        assert!(
            report.quarantined.is_empty(),
            "crash point {k}: clean crash quarantined {report}"
        );
        assert_eq!(report.strings_lost, 0, "crash point {k}: {report}");
    }
    // The enumeration must actually exercise both outcomes.
    assert!(saw_old > 0, "no crash point preserved the old image");
    assert!(saw_new > 0, "no crash point committed the new image");
}

#[test]
fn recovery_after_crash_is_idempotent_at_every_point() {
    // Satellite (c): recover → save → crash again (at every point of THAT
    // save) → recover. The double recovery must equal the single one.
    let dir = std::path::Path::new("store");
    let old = old_store();
    let new = new_store();
    let total_ops = clean_save_ops(dir);
    for k in (0..=total_ops).step_by(3) {
        let fs = MemFs::with_seed(0xAB ^ k);
        old.save_dir_with(&fs, dir).unwrap();
        let faulty = FaultStorage::new(
            &fs,
            FaultPlan {
                fail_from: Some(k),
                torn_writes: true,
                seed: k,
                ..FaultPlan::default()
            },
        );
        let _ = new.save_dir_with(&faulty, dir);
        fs.crash();
        let (first, r1) = TieredStore::recover_dir_with(&fs, dir).unwrap();
        let first_print = fingerprint(&first);
        // Persist the recovered image, crash that save too, recover again —
        // at every crash point of the re-save.
        let resave_ops = {
            let counter = FaultStorage::new(&fs, FaultPlan::default());
            first.save_dir_with(&counter, dir).unwrap();
            counter.ops()
        };
        for j in (0..=resave_ops).step_by(4) {
            let fs2 = fs.fork();
            let faulty2 = FaultStorage::new(
                &fs2,
                FaultPlan {
                    fail_from: Some(j),
                    torn_writes: true,
                    seed: j ^ 0x55,
                    ..FaultPlan::default()
                },
            );
            let _ = first.save_dir_with(&faulty2, dir);
            fs2.crash();
            let (second, r2) = TieredStore::recover_dir_with(&fs2, dir).unwrap();
            assert_eq!(
                fingerprint(&second),
                first_print,
                "crash {k}/re-crash {j}: double recovery diverged \
                 (first: {r1}; second: {r2})"
            );
            assert!(r2.quarantined.is_empty(), "crash {k}/re-crash {j}: {r2}");
        }
    }
}

#[test]
fn transient_faults_are_retried_to_success() {
    // A save whose ops 2, 5 and 9 each fail once with `Interrupted` must
    // succeed end-to-end through the retry layer and commit the exact
    // image a fault-free save commits.
    let dir = std::path::Path::new("store");
    let st = old_store();
    let fs = MemFs::with_seed(3);
    let flaky = FaultStorage::new(
        &fs,
        FaultPlan {
            transient: vec![2, 5, 9],
            ..FaultPlan::default()
        },
    );
    let retrying = wt_bits::RetryingStorage::new(&flaky, wt_bits::RetryPolicy::default());
    st.save_dir_with(&retrying, dir).unwrap();
    let loaded = TieredStore::load_dir_with(&fs, dir).unwrap();
    assert_eq!(fingerprint(&loaded), fingerprint(&st));
    // Without the retry layer the same plan kills the save, and the error
    // is classified transient.
    let fs2 = MemFs::with_seed(3);
    let flaky2 = FaultStorage::new(
        &fs2,
        FaultPlan {
            transient: vec![2],
            ..FaultPlan::default()
        },
    );
    let err = st.save_dir_with(&flaky2, dir).expect_err("no retry layer");
    assert!(err.is_retryable(), "Interrupted must classify retryable");
    assert!(err.file().is_some(), "transient error still names its file");
}

#[test]
fn fault_free_save_gc_leaves_exactly_one_generation() {
    // Satellite (b): after a clean second save, the directory holds only
    // the new generation — no stale temps, no orphan segments, no old
    // manifest left behind.
    let dir = std::path::Path::new("store");
    let fs = MemFs::new();
    old_store().save_dir_with(&fs, dir).unwrap();
    // Plant an orphan that matches the store's segment pattern plus a
    // foreign file that must survive the sweep.
    fs.write(&dir.join("seg-g00000009-042.wt"), b"orphan")
        .unwrap();
    fs.write(&dir.join("notes.txt"), b"keep me").unwrap();
    new_store().save_dir_with(&fs, dir).unwrap();
    let names = fs.list_names(dir);
    assert!(
        names.contains(&"manifest-g00000002.wt".to_string()),
        "{names:?}"
    );
    assert!(names.contains(&"notes.txt".to_string()), "{names:?}");
    for n in &names {
        assert!(
            n == "notes.txt" || n.contains("-g00000002"),
            "stale file survived GC: {n} in {names:?}"
        );
    }
}
