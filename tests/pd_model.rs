//! Path-decomposition oracle suite.
//!
//! The path-decomposed static trie is a *drop-in* representation: it must
//! answer every `SeqIndex` operation — scalar, prefix, range-analytic and
//! batched — **bit-identically** to the preorder [`WaveletTrie`] it was
//! converted from, on every trie shape (random, all-equal, all-distinct,
//! deep-skewed, empty, singleton). The tiered store then mixes both
//! representations across segments; the mix must stay invisible through
//! seal, compact and melt.

use wavelet_trie::{BitStr, BitString, DynamicWaveletTrie, PathDecompTrie, SeqIndex, WaveletTrie};
use wt_store::{SegmentKind, StoreConfig, TieredStore};

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed.max(1);
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

/// Fixed-width binary code (prefix-free by construction).
fn encode(v: u64, width: usize) -> BitString {
    BitString::from_bits((0..width).rev().map(move |k| (v >> k) & 1 != 0))
}

/// Deep-skewed prefix-free string: `1^depth 0` + a 4-bit tail.
fn deep(depth: usize, tail: u64) -> BitString {
    let mut s = BitString::new();
    for _ in 0..depth {
        s.push(true);
    }
    s.push(false);
    for k in (0..4).rev() {
        s.push((tail >> k) & 1 != 0);
    }
    s
}

/// The sequence shapes the oracle runs over. Each stresses a different
/// part of the decomposition: random (mixed fanout), all-equal (a single
/// root leaf), all-distinct (maximal P), deep-skewed (long heavy paths),
/// empty and singleton (degenerate skeletons).
fn shapes() -> Vec<(&'static str, Vec<BitString>)> {
    let mut next = xorshift(0x9D_0DE1);
    let random: Vec<BitString> = (0..1200).map(|_| encode(next() % 90, 9)).collect();
    let all_equal = vec![encode(5, 7); 400];
    let all_distinct: Vec<BitString> = (0..700).map(|v| encode(v, 12)).collect();
    let mut deep_skewed: Vec<BitString> = (0..80).map(|d| deep(d, next() % 16)).collect();
    deep_skewed.extend((0..400).map(|_| deep((next() % 60) as usize, next() % 16)));
    vec![
        ("random", random),
        ("all_equal", all_equal),
        ("all_distinct", all_distinct),
        ("deep_skewed", deep_skewed),
        ("empty", Vec::new()),
        ("singleton", vec![encode(3, 5)]),
    ]
}

/// Probe strings for a shape: every distinct stored string plus absent
/// cousins (bit-flipped tails, extensions, truncations).
fn probes(seq: &[BitString]) -> Vec<BitString> {
    let mut out: Vec<BitString> = seq.to_vec();
    out.sort();
    out.dedup();
    let stored = out.len();
    for i in 0..stored.min(40) {
        let s = out[i].clone();
        if !s.is_empty() {
            // Flip the last bit: shares the whole path except the leaf arc.
            let mut flipped = BitString::from_bits(s.iter().take(s.len() - 1));
            flipped.push(!s.get(s.len() - 1));
            out.push(flipped);
            // Strict extension: descends past a leaf.
            let mut ext = s.clone();
            ext.push(true);
            out.push(ext);
        }
    }
    out.push(deep(300, 0)); // deeper than anything stored
    out.push(BitString::new());
    out
}

/// Full-surface bit-identity: `got` (the path-decomposed trie) must match
/// `want` (the preorder wavelet trie) on every operation.
fn assert_same_index(name: &str, want: &dyn SeqIndex, got: &dyn SeqIndex, seq: &[BitString]) {
    let n = want.seq_len();
    assert_eq!(got.seq_len(), n, "{name}: len");
    assert_eq!(got.seq_is_empty(), want.seq_is_empty(), "{name}");

    for i in 0..n {
        assert_eq!(got.access(i), want.access(i), "{name}: access({i})");
    }

    let probes = probes(seq);
    let positions = [0, n / 3, n / 2, n.saturating_sub(1), n];
    for p in &probes {
        let s = p.as_bitstr();
        assert_eq!(got.admits(s), want.admits(s), "{name}: admits({p:?})");
        for &pos in &positions {
            assert_eq!(
                got.rank(s, pos),
                want.rank(s, pos),
                "{name}: rank({p:?},{pos})"
            );
            assert_eq!(
                got.rank_prefix(s, pos),
                want.rank_prefix(s, pos),
                "{name}: rank_prefix({p:?},{pos})"
            );
        }
        assert_eq!(got.count(s), want.count(s), "{name}: count({p:?})");
        assert_eq!(
            got.count_prefix(s),
            want.count_prefix(s),
            "{name}: count_prefix({p:?})"
        );
        let total = want.count(s);
        for k in [0, total / 2, total.saturating_sub(1), total, total + 3] {
            assert_eq!(
                got.select(s, k),
                want.select(s, k),
                "{name}: select({p:?},{k})"
            );
        }
        let ptotal = want.count_prefix(s);
        for k in [0, ptotal / 2, ptotal.saturating_sub(1), ptotal] {
            assert_eq!(
                got.select_prefix(s, k),
                want.select_prefix(s, k),
                "{name}: select_prefix({p:?},{k})"
            );
        }
        // Prefix truncations exercise mid-path and mid-label stops.
        for cut in [0, p.len() / 2, p.len().saturating_sub(1)] {
            let q = s.prefix(cut);
            assert_eq!(
                got.count_prefix(q),
                want.count_prefix(q),
                "{name}: count_prefix({p:?}[..{cut}])"
            );
            assert_eq!(
                got.select_prefix(q, 0),
                want.select_prefix(q, 0),
                "{name}: select_prefix({p:?}[..{cut}], 0)"
            );
        }
    }

    // Range analytics (§5) over a few windows.
    for (l, r) in [(0, n), (n / 4, 3 * n / 4), (n / 2, n / 2), (0, n / 10)] {
        assert_eq!(
            got.distinct_in_range(l, r),
            want.distinct_in_range(l, r),
            "{name}: distinct [{l},{r})"
        );
        assert_eq!(
            got.range_majority(l, r),
            want.range_majority(l, r),
            "{name}: majority [{l},{r})"
        );
        let t = 1 + (r - l) / 16;
        assert_eq!(
            got.range_frequent(l, r, t),
            want.range_frequent(l, r, t),
            "{name}: frequent [{l},{r})"
        );
        let got_iter: Vec<BitString> = got.iter_range_boxed(l, r).collect();
        let want_iter: Vec<BitString> = want.iter_range_boxed(l, r).collect();
        assert_eq!(got_iter, want_iter, "{name}: iter [{l},{r})");
    }
}

/// Batch-vs-oracle: every `*_batch` op on `got` equals the oracle's
/// answers (scalar, on `want` — so batch bugs can't self-confirm).
fn assert_same_batches(name: &str, want: &dyn SeqIndex, got: &dyn SeqIndex, seq: &[BitString]) {
    let mut next = xorshift(0xBA7C9);
    let n = want.seq_len();
    let probes = probes(seq);
    for &bs in &[1usize, 7, 64, 257] {
        let positions: Vec<usize> = if n == 0 {
            Vec::new()
        } else {
            (0..bs).map(|_| (next() % n as u64) as usize).collect()
        };
        let got_acc = got.access_batch(&positions);
        for (k, &p) in positions.iter().enumerate() {
            assert_eq!(got_acc[k], want.access(p), "{name}: access_batch lane {k}");
        }
        let queries: Vec<(BitStr<'_>, usize)> = (0..bs)
            .map(|k| {
                (
                    probes[k % probes.len()].as_bitstr(),
                    (next() % (n as u64 + 1)) as usize,
                )
            })
            .collect();
        let got_rank = got.rank_batch(&queries);
        for (k, &(s, pos)) in queries.iter().enumerate() {
            assert_eq!(
                got_rank[k],
                want.rank(s, pos),
                "{name}: rank_batch lane {k}"
            );
        }
        let sel: Vec<(BitStr<'_>, usize)> = (0..bs)
            .map(|k| (probes[k % probes.len()].as_bitstr(), (next() % 40) as usize))
            .collect();
        let got_sel = got.select_batch(&sel);
        for (k, &(s, i)) in sel.iter().enumerate() {
            assert_eq!(
                got_sel[k],
                want.select(s, i),
                "{name}: select_batch lane {k}"
            );
        }
        let prefixes: Vec<BitStr<'_>> = (0..bs)
            .map(|k| {
                let p = &probes[k % probes.len()];
                p.as_bitstr()
                    .prefix((next() % (p.len() as u64 + 1)) as usize)
            })
            .collect();
        let got_cp = got.count_prefix_batch(&prefixes);
        for (k, &p) in prefixes.iter().enumerate() {
            assert_eq!(
                got_cp[k],
                want.count_prefix(p),
                "{name}: count_prefix_batch lane {k}"
            );
        }
    }
    // Empty batches.
    assert!(got.access_batch(&[]).is_empty(), "{name}");
    assert!(got.rank_batch(&[]).is_empty(), "{name}");
    assert!(got.select_batch(&[]).is_empty(), "{name}");
    assert!(got.count_prefix_batch(&[]).is_empty(), "{name}");
}

/// Structural accessors must agree too when both sides index the *same*
/// whole sequence (the tiered store is exempt: its per-segment tries are
/// built over subsets, so global trie shape legitimately differs).
fn assert_same_structure(name: &str, want: &dyn SeqIndex, got: &dyn SeqIndex) {
    assert_eq!(got.distinct_len(), want.distinct_len(), "{name}: distinct");
    assert_eq!(got.height(), want.height(), "{name}: height");
    assert_eq!(
        got.total_bitvector_bits(),
        want.total_bitvector_bits(),
        "{name}: total bitvector bits"
    );
    assert!(
        (got.avg_height() - want.avg_height()).abs() < 1e-9,
        "{name}: avg height"
    );
}

#[test]
fn pd_matches_wavelet_trie_on_every_shape() {
    for (name, seq) in shapes() {
        let wt = WaveletTrie::build(&seq).expect("prefix-free");
        let pd = PathDecompTrie::from_static(&wt);
        assert_same_structure(name, &wt, &pd);
        assert_same_index(name, &wt, &pd, &seq);
        assert_same_batches(name, &wt, &pd, &seq);
    }
}

#[test]
fn pd_from_dynamic_matches_oracle() {
    for (name, seq) in shapes() {
        let mut d = DynamicWaveletTrie::new();
        for s in &seq {
            d.append(s.as_bitstr()).unwrap();
        }
        let pd = PathDecompTrie::from_dynamic(&d);
        let wt = WaveletTrie::build(&seq).expect("prefix-free");
        assert_same_structure(name, &wt, &pd);
        assert_same_index(name, &wt, &pd, &seq);
    }
}

/// Appends `seq` into a store whose policy seals every `seal_at` strings,
/// maintaining after each append so segments freeze as they fill.
fn fill_store(seq: &[BitString], seal_at: usize, max_sealed: usize) -> TieredStore {
    let mut store = TieredStore::with_config(StoreConfig {
        seal_at,
        max_sealed,
    });
    for s in seq {
        store.append(s.as_bitstr()).unwrap();
    }
    store
}

/// A sequence whose sealed segments split between representations: the
/// first half is 40 shallow values repeated (h̃ ≪ log n → wavelet trie),
/// the second half all-distinct 16-bit codes (h̃ = 16 > 0.8·log n → path
/// decomposition). Segment size 1500 clears the `PD_MIN_N = 1024` floor.
fn mixed_repr_sequence() -> Vec<BitString> {
    let mut next = xorshift(0x3A7ED);
    let mut seq: Vec<BitString> = (0..3000).map(|_| encode(next() % 40, 16)).collect();
    seq.extend((0..3000).map(|v| encode(4096 + v, 16)));
    seq
}

#[test]
fn store_mixes_representations_and_stays_bit_identical() {
    let seq = mixed_repr_sequence();
    let store = fill_store(&seq, 1500, 64);
    let kinds = store.segment_kinds();
    assert!(
        kinds.contains(&SegmentKind::Wavelet),
        "expected a wavelet-trie segment, got {kinds:?}"
    );
    assert!(
        kinds.contains(&SegmentKind::PathDecomp),
        "expected a path-decomposed segment, got {kinds:?}"
    );
    let oracle = WaveletTrie::build(&seq).expect("prefix-free");
    assert_same_index("mixed store", &oracle, &store, &seq);
    assert_same_batches("mixed store", &oracle, &store, &seq);

    // The shape probe agrees with the adaptive choice, segment by segment.
    for (shape, kind) in store.segment_shapes().iter().zip(&kinds) {
        match kind {
            SegmentKind::Wavelet => assert!(!shape.prefers_path_decomposition()),
            SegmentKind::PathDecomp => assert!(shape.prefers_path_decomposition()),
            SegmentKind::Hot => {}
        }
    }
}

#[test]
fn mixed_store_save_load_recover_round_trip() {
    let seq = mixed_repr_sequence();
    let store = fill_store(&seq, 1500, 64);
    let kinds = store.segment_kinds();
    assert!(kinds.contains(&SegmentKind::Wavelet) && kinds.contains(&SegmentKind::PathDecomp));

    let dir = std::env::temp_dir().join(format!("wt-pd-mixed-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    store.save_dir(&dir).unwrap();

    // Strict load preserves the per-segment representation choice and the
    // bytes: a re-save of the loaded store reproduces every file.
    let loaded = TieredStore::load_dir(&dir).unwrap();
    assert_eq!(loaded.segment_kinds(), kinds);
    assert_eq!(loaded.segment_lens(), store.segment_lens());
    let oracle = WaveletTrie::build(&seq).expect("prefix-free");
    assert_same_index("loaded mixed store", &oracle, &loaded, &seq);

    let resave = std::env::temp_dir().join(format!("wt-pd-mixed-resave-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&resave);
    loaded.save_dir(&resave).unwrap();
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    for name in &names {
        // The resave dir is fresh, so it commits as generation 1 too —
        // names and bytes must match exactly.
        assert_eq!(
            std::fs::read(dir.join(name)).unwrap(),
            std::fs::read(resave.join(name)).unwrap(),
            "{name} changed across a load/save round trip"
        );
    }

    // Resilient recovery of the healthy image is clean and identical.
    let (recovered, report) = TieredStore::recover_dir(&dir).unwrap();
    assert!(report.is_clean(), "healthy mixed dir not clean: {report}");
    assert_eq!(recovered.segment_kinds(), kinds);
    assert_same_index("recovered mixed store", &oracle, &recovered, &seq);

    // A corrupted path-decomposed segment is quarantined, not fatal: the
    // rest of the store keeps serving.
    let pd_seg = kinds
        .iter()
        .position(|k| *k == SegmentKind::PathDecomp)
        .unwrap();
    let victim = dir.join(format!("seg-g00000001-{pd_seg:03}.wt"));
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&victim, &bytes).unwrap();
    let (damaged, report) = TieredStore::recover_dir(&dir).unwrap();
    assert_eq!(report.quarantined.len(), 1, "{report}");
    assert_eq!(report.strings_lost, store.segment_lens()[pd_seg]);
    assert_eq!(damaged.len(), store.len() - report.strings_lost);

    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&resave).unwrap();
}

#[test]
fn store_mix_survives_seal_compact_and_melt() {
    let seq = mixed_repr_sequence();
    let mut store = fill_store(&seq, 1500, 64);
    let oracle = WaveletTrie::build(&seq).expect("prefix-free");

    // Melt a path-decomposed middle: insert into a sealed segment.
    let kinds = store.segment_kinds();
    let pd_seg = kinds
        .iter()
        .position(|k| *k == SegmentKind::PathDecomp)
        .expect("a path-decomposed segment");
    let lens = store.segment_lens();
    let pos: usize = lens[..pd_seg].iter().sum::<usize>() + lens[pd_seg] / 2;
    let extra = encode(40_000, 16);
    store.insert(extra.as_bitstr(), pos).unwrap();
    let mut expect: Vec<BitString> = seq.clone();
    expect.insert(pos, extra);
    assert!(
        store.segment_kinds().contains(&SegmentKind::Hot),
        "insert into a sealed segment must melt it"
    );

    // Re-seal: the melted middle re-freezes, choosing its representation
    // afresh — the all-distinct segment comes back path-decomposed.
    store.seal();
    assert!(store.segment_kinds().contains(&SegmentKind::PathDecomp));
    let oracle2 = WaveletTrie::build(&expect).expect("prefix-free");
    assert_same_index("resealed store", &oracle2, &store, &expect);

    // Compact down to few segments: merges melt + re-freeze pairs, again
    // re-deciding the representation per merged segment.
    let mut store = fill_store(&seq, 700, 3);
    store.compact();
    assert!(store.sealed_segments() <= store.config().max_sealed);
    assert_same_index("compacted store", &oracle, &store, &seq);
    assert_same_batches("compacted store", &oracle, &store, &seq);
}
