//! # wavelet-trie-repro — umbrella crate
//!
//! Reproduction of *"The Wavelet Trie: Maintaining an Indexed Sequence of
//! Strings in Compressed Space"* (Grossi & Ottaviano, PODS 2012).
//!
//! This crate re-exports the whole workspace so the examples under
//! `examples/` and the integration tests under `tests/` can reach every
//! component from one place. See `README.md` for a tour and `DESIGN.md` for
//! the paper-to-module map.

pub use wavelet_trie;
pub use wt_baselines as baselines;
pub use wt_bits as bits;
pub use wt_server as server;
pub use wt_store as store;
pub use wt_trie as trie;
pub use wt_workloads as workloads;
