//! Offline shim for the subset of `rand_distr` this workspace uses:
//! the [`Distribution`] trait and the [`Geometric`] distribution.

use rand::{RngCore, RngExt};

/// Types that can draw samples of `T` from a generator.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error produced by invalid distribution parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParamError;

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter")
    }
}

impl std::error::Error for ParamError {}

/// Geometric distribution: number of failures before the first success of
/// a Bernoulli(`p`) trial; support `{0, 1, 2, …}`.
#[derive(Clone, Copy, Debug)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    pub fn new(p: f64) -> Result<Self, ParamError> {
        if p.is_finite() && (0.0..=1.0).contains(&p) && p > 0.0 {
            Ok(Geometric { p })
        } else {
            Err(ParamError)
        }
    }
}

impl Distribution<u64> for Geometric {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p >= 1.0 {
            return 0;
        }
        // Inverse-CDF transform: floor(ln(1-u) / ln(1-p)).
        let u: f64 = rng.random();
        let k = ((1.0 - u).ln() / (1.0 - self.p).ln()).floor();
        if k.is_finite() && k >= 0.0 {
            k as u64
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_p() {
        assert!(Geometric::new(0.0).is_err());
        assert!(Geometric::new(-0.1).is_err());
        assert!(Geometric::new(1.5).is_err());
        assert!(Geometric::new(f64::NAN).is_err());
        assert!(Geometric::new(0.3).is_ok());
        assert!(Geometric::new(1.0).is_ok());
    }

    #[test]
    fn mean_matches_theory() {
        // E[X] = (1-p)/p; p = 0.4 → 1.5.
        let g = Geometric::new(0.4).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| g.sample(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 1.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn p_one_is_always_zero() {
        let g = Geometric::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(g.sample(&mut rng), 0);
        }
    }
}
