//! Offline shim for the subset of the `rand` 0.9-style API this workspace
//! uses. The build container has no crates.io access, so this vendored
//! mini-crate stands in for the real thing: same trait/method names
//! (`SeedableRng::seed_from_u64`, `RngExt::random`/`random_range`,
//! `seq::IndexedRandom::choose`), deterministic, and statistically good
//! enough for seeded workload generation (splitmix64 core).
//!
//! It is **not** a cryptographic or research-grade RNG; swap in the real
//! `rand` crate by deleting `vendor/` entries once network is available.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the full value domain (`rng.random()`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types usable as `random_range` bounds.
pub trait UniformInt: Copy + PartialOrd {
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_exclusive: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_below<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "random_range: empty range");
                Self::sample_inclusive(rng, low, high - 1)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "random_range: empty range");
                // i128 arithmetic so full-domain ranges (0..=u64::MAX) can't
                // overflow. Modulo bias is < span/2^64 — irrelevant for
                // workload synthesis.
                let span = (high as i128 - low as i128 + 1) as u128;
                let r = rng.next_u64() as u128 % span;
                (low as i128 + r as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range argument forms accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_below(rng, self.start, self.end)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Compatibility alias: the pre-0.9 `rand` names this trait `Rng`.
pub use RngExt as Rng;

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                // Avoid the all-zero weak spot without perturbing distinct seeds
                // into collisions.
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::{RngCore, UniformInt};

    /// Uniform choice from a slice (`rand::seq::IndexedRandom`).
    pub trait IndexedRandom {
        type Output;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_below(rng, 0, self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::IndexedRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u32 = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.random_range(0..=5);
            assert!(y <= 5);
        }
        let z: usize = rng.random_range(4..=4);
        assert_eq!(z, 4);
        // Full-domain inclusive ranges must not overflow (rand 0.9 supports
        // them, so the shim must too).
        let _: u64 = rng.random_range(0..=u64::MAX);
        let _: u8 = rng.random_range(0..=u8::MAX);
        let lo: i64 = rng.random_range(i64::MIN..=i64::MAX);
        let _ = lo;
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[*items.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&b| b));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
