//! Offline shim for the subset of the `proptest` API this workspace's
//! property tests use. Strategies generate deterministic pseudo-random
//! values from a fixed per-test seed; there is **no shrinking** — a failing
//! case panics with the raw assertion message. Good enough to exercise the
//! properties offline; swap in real proptest for minimized counterexamples.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy for the full domain of a primitive (`proptest::num::u8::ANY`…).
pub struct Any<T>(PhantomData<T>);

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

pub mod num {
    macro_rules! any_mod {
        ($($m:ident : $t:ty),*) => {$(
            pub mod $m {
                pub const ANY: crate::Any<$t> = crate::Any(std::marker::PhantomData);
            }
        )*};
    }
    any_mod!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize, i32: i32, i64: i64);
}

pub mod bool {
    pub const ANY: crate::Any<bool> = crate::Any(std::marker::PhantomData);
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s of `element` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Run configuration (`cases` is the only knob this shim honors).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Any, ProptestConfig, Strategy, TestRng};
}

/// Binds `name in strategy` parameters inside the [`proptest!`] expansion.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:ident,) => {};
    ($rng:ident, mut $name:ident in $strat:expr) => {
        let mut $name = $crate::Strategy::generate(&$strat, &mut $rng);
    };
    ($rng:ident, mut $name:ident in $strat:expr, $($rest:tt)*) => {
        let mut $name = $crate::Strategy::generate(&$strat, &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::generate(&$strat, &mut $rng);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&$strat, &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
}

/// Shim of proptest's main macro: each property becomes a `#[test]` that
/// replays `cases` deterministic pseudo-random inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($params:tt)* ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases as u64 {
                    // Per-test, per-case seed: stable across runs.
                    let seed = $crate::fnv1a(stringify!($name)) ^ (case.wrapping_mul(0xA24B_AED4_963E_E407));
                    let mut __rng = $crate::TestRng::new(seed);
                    $crate::__proptest_bind!(__rng, $($params)*);
                    $body
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Assertion macros: identical to `assert!`/`assert_eq!` (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// FNV-1a over a test name, used to derive per-test seeds.
#[doc(hidden)]
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_generate_in_domain() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let x = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&x));
        }
        let v = collection::vec(num::u8::ANY, 0..6).generate(&mut rng);
        assert!(v.len() < 6);
        let (a, _b, _c) = (0u8..3, bool::ANY, num::u16::ANY).generate(&mut rng);
        assert!(a < 3);
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        let s = collection::vec(num::u32::ANY, 1..50);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_and_iterates(xs in collection::vec(num::u8::ANY, 0..10), mut n in 1u32..5) {
            n += 1;
            prop_assert!(xs.len() < 10);
            prop_assert!((2..=5).contains(&n));
            prop_assert_eq!(xs.len(), xs.len());
        }
    }
}
