//! Offline shim for the subset of the `criterion` API this workspace's
//! benches use. It is a *functional* micro-benchmark runner — `b.iter`
//! really times the closure and a best-of-samples ns/op line is printed —
//! but it performs no statistics, HTML reports, or CLI filtering beyond a
//! first-positional-argument substring match. `cargo bench` therefore runs
//! and prints something meaningful; swap in real criterion for serious
//! measurement once network is available.

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark configuration and top-level entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Substring filter, mirroring `cargo bench -- <filter>`.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(300),
            filter,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one(None, id.into_benchmark_id(), sample_size, f);
        self
    }

    fn run_one<F>(&self, group: Option<&str>, id: BenchmarkId, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = match group {
            Some(g) => format!("{g}/{id}"),
            None => id.to_string(),
        };
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size,
            best_ns: f64::INFINITY,
            ran: false,
        };
        f(&mut b);
        if b.ran {
            println!("{full:<50} {:>12}/iter", fmt_ns(b.best_ns));
        } else {
            println!("{full:<50} {:>12}", "(no iter)");
        }
    }
}

/// A named benchmark within a group.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.criterion.run_one(
            Some(&self.name),
            id.into_benchmark_id(),
            self.sample_size,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.criterion.run_one(
            Some(&self.name),
            id.into_benchmark_id(),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Identifier of a single benchmark: a function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.function.is_empty(), &self.parameter) {
            (false, Some(p)) => write!(f, "{}/{p}", self.function),
            (false, None) => write!(f, "{}", self.function),
            (true, Some(p)) => write!(f, "{p}"),
            (true, None) => Ok(()),
        }
    }
}

/// Conversion accepted wherever a benchmark id is expected.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: self.to_string(),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: self,
            parameter: None,
        }
    }
}

/// Timing loop handle passed to the closure of `bench_function`.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    best_ns: f64,
    ran: bool,
}

impl Bencher {
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        self.ran = true;
        // Warm-up, also calibrating iterations-per-sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
            if ns < self.best_ns {
                self.best_ns = ns;
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{:.2} ms", ns / 1e6)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10))
    }

    #[test]
    fn bench_function_times_the_closure() {
        let mut c = cfg();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn groups_and_ids_run() {
        let mut c = cfg();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("sum", 10), &10usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.bench_function("plain", |b| b.iter(|| black_box(0)));
        g.finish();
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
