//! Panic-contained background maintenance: seal, compact, persist,
//! publish — with structured failure reporting and retries.
//!
//! Maintenance is the housekeeping half of the store's write path: freeze
//! hot segments into static ones ([`TieredStore::seal`]), bound the
//! segment count by merging ([`TieredStore::compact`]), persist through
//! the [`Storage`] stack, and publish the result as a new epoch for
//! concurrent readers. Each of those is decomposed here into enumerable
//! [`MaintenanceStep`]s, and every step runs under
//! [`std::panic::catch_unwind`] so that **no failure mode — I/O error or
//! outright panic — can poison the store or disturb readers**:
//!
//! * Heavy work (freezing, merging) happens on private data *before* any
//!   store state changes; the *install* of each result is a separate,
//!   panic-free single assignment. A panic during heavy work therefore
//!   aborts only that step's result, and a panic injected at an install
//!   boundary (via [`MaintenanceProbe`]) fires before the assignment —
//!   the store is always either pre-step or post-step, never torn.
//! * The previous published epoch keeps serving bit-identically until the
//!   final `Publish` step succeeds; a failure anywhere earlier means
//!   readers simply never see the half-finished pass.
//! * Failures are collected into a [`MaintenanceReport`] (the degraded-
//!   mode mirror of [`RecoveryReport`](crate::RecoveryReport)): what got
//!   sealed/merged/saved/published, and a [`MaintenanceFailure`] per step
//!   that didn't.
//! * [`TieredStore::maintain_with`] retries failed passes with the same
//!   exponential-backoff policy the storage stack uses
//!   ([`RetryPolicy`]), including its total-elapsed cap.
//!
//! The deterministic interleave harness (`tests/interleave.rs`) drives a
//! probe that panics at every enumerated step in turn — and a
//! [`FaultStorage`](wt_bits::storage::FaultStorage) that fails every save
//! I/O in turn — and checks the invariants above hold at each boundary.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use wavelet_trie::DynamicWaveletTrie;
use wt_bits::storage::{RetryPolicy, Storage};

use crate::error::StoreError;
use crate::{auto_freeze_threads, SealedSegment, Segment, StaticRepr, TieredStore};

use self::MaintenanceStep::*;

/// One enumerable unit of a maintenance pass, in execution order. The
/// `segment`/`left` payloads index the store's segment list at the time
/// the step runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MaintenanceStep {
    /// Freeze hot segment `segment` into a static trie (heavy, read-only).
    Freeze { segment: usize },
    /// Install the frozen result over segment `segment` (single assignment).
    InstallFrozen { segment: usize },
    /// Merge sealed segments `left` and `left + 1` (heavy, read-only).
    Merge { left: usize },
    /// Install the merged segment over `left`, dropping `left + 1`.
    InstallMerged { left: usize },
    /// Persist the store via the configured [`Storage`] backend.
    Save,
    /// Publish the new epoch to readers.
    Publish,
}

impl fmt::Display for MaintenanceStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Freeze { segment } => write!(f, "freeze(segment {segment})"),
            InstallFrozen { segment } => write!(f, "install-frozen(segment {segment})"),
            Merge { left } => write!(f, "merge(segments {left}+{})", left + 1),
            InstallMerged { left } => write!(f, "install-merged(segments {left}+{})", left + 1),
            Save => write!(f, "save"),
            Publish => write!(f, "publish"),
        }
    }
}

/// Observation/injection hook called at the start of every
/// [`MaintenanceStep`]. Steps may run on worker threads, so probes must
/// be `Sync`. A probe that **panics** models a fault at exactly that
/// step — the panic is contained and reported, never propagated; the
/// interleave harness uses this to enumerate every failure point.
pub trait MaintenanceProbe: Sync {
    /// Called immediately before the step's effect.
    fn step(&self, step: MaintenanceStep);
}

/// The default probe: observes nothing, injects nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoProbe;

impl MaintenanceProbe for NoProbe {
    fn step(&self, _step: MaintenanceStep) {}
}

/// Why one maintenance step failed. Collected (not thrown) — the pass
/// continues with the steps that can still make progress.
///
/// `Clone` + [`std::error::Error`]: a health layer can hold onto the
/// failure, thread it through error-reporting stacks, and surface it
/// later without stringly plumbing.
#[derive(Clone, Debug)]
pub enum MaintenanceFailure {
    /// The step panicked; the panic was contained by `catch_unwind`.
    Panicked {
        step: MaintenanceStep,
        /// The panic payload, if it was a string (the common case).
        message: String,
    },
    /// The `Save` step failed with a storage error.
    Save(StoreError),
}

impl MaintenanceFailure {
    pub(crate) fn panicked(step: MaintenanceStep, payload: &(dyn std::any::Any + Send)) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        MaintenanceFailure::Panicked { step, message }
    }

    /// The step that failed (`Save` for storage errors).
    pub fn step(&self) -> MaintenanceStep {
        match self {
            MaintenanceFailure::Panicked { step, .. } => *step,
            MaintenanceFailure::Save(_) => Save,
        }
    }
}

impl fmt::Display for MaintenanceFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaintenanceFailure::Panicked { step, message } => {
                write!(f, "{step} panicked: {message}")
            }
            MaintenanceFailure::Save(e) => write!(f, "save failed: {e}"),
        }
    }
}

impl std::error::Error for MaintenanceFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MaintenanceFailure::Panicked { .. } => None,
            MaintenanceFailure::Save(e) => Some(e),
        }
    }
}

/// What a [`TieredStore::maintain`] run accomplished — the degraded-mode
/// mirror of [`RecoveryReport`](crate::RecoveryReport). A non-clean
/// report means some step(s) failed after all retries; the store is still
/// fully valid and readers still serve the last successfully published
/// epoch.
///
/// `Clone` for the same reason as
/// [`RecoveryReport`](crate::RecoveryReport): health layers retain it.
#[derive(Clone, Debug, Default)]
pub struct MaintenanceReport {
    /// Passes executed (1 for a clean first pass; more means retries).
    pub passes: u32,
    /// Hot segments successfully frozen and installed.
    pub sealed: usize,
    /// Sealed-segment merges successfully installed.
    pub merged: usize,
    /// Whether a configured save completed.
    pub saved: bool,
    /// Version of the epoch published by this run, if publishing succeeded.
    pub published: Option<u64>,
    /// Every step failure across all passes, in order of occurrence.
    pub failures: Vec<MaintenanceFailure>,
}

impl MaintenanceReport {
    /// True when every step of some pass succeeded with no failures at all.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

impl fmt::Display for MaintenanceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "maintenance: {} pass(es), {} sealed, {} merged, saved={}, published={:?}",
            self.passes, self.sealed, self.merged, self.saved, self.published
        )?;
        if self.failures.is_empty() {
            write!(f, ", clean")
        } else {
            write!(f, ", {} failure(s):", self.failures.len())?;
            for failure in &self.failures {
                write!(f, "\n  - {failure}")?;
            }
            Ok(())
        }
    }
}

/// Options for [`TieredStore::maintain_with`].
pub struct Maintenance<'a> {
    /// Worker threads for segment freezes (defaults to the machine's
    /// available parallelism, bounded).
    pub threads: usize,
    /// Retry policy for failed passes: `attempts` passes total, sleeping
    /// `base_backoff << pass` between them, bounded by `max_elapsed`.
    pub retry: RetryPolicy,
    /// Persist into this backend + directory during the `Save` step
    /// (`None` skips saving).
    pub save_to: Option<(&'a dyn Storage, &'a Path)>,
    /// Step hook; see [`MaintenanceProbe`].
    pub probe: &'a dyn MaintenanceProbe,
}

impl Default for Maintenance<'_> {
    fn default() -> Self {
        Maintenance {
            threads: auto_freeze_threads(),
            retry: RetryPolicy::default(),
            save_to: None,
            probe: &NoProbe,
        }
    }
}

/// Runs `f` under panic containment, attributing a panic to `step`.
///
/// `AssertUnwindSafe` is sound here by construction of the call sites:
/// every closure either (a) only *reads* shared data and returns a fresh
/// value (freeze/merge work), or (b) is a probe call followed by nothing —
/// the store mutation happens *after* `run_step` returns `Ok` — so an
/// unwind can never leave a broken invariant behind the reference.
fn run_step<T>(step: MaintenanceStep, f: impl FnOnce() -> T) -> Result<T, MaintenanceFailure> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|p| MaintenanceFailure::panicked(step, p.as_ref()))
}

impl TieredStore {
    /// Freezes every non-empty hot segment among the first `limit`
    /// segments, on up to `threads` scoped workers, installing each result
    /// as it lands. Panics (real or probe-injected) are contained per
    /// segment: a failed freeze leaves that segment hot and valid.
    /// Returns the number of segments installed.
    fn freeze_probed(
        &mut self,
        limit: usize,
        threads: usize,
        probe: &dyn MaintenanceProbe,
        failures: &mut Vec<MaintenanceFailure>,
    ) -> usize {
        let jobs: Vec<(usize, Arc<DynamicWaveletTrie>)> = self.segments[..limit]
            .iter()
            .enumerate()
            .filter_map(|(i, g)| match g {
                Segment::Hot(h) if !h.is_empty() => Some((i, Arc::clone(h))),
                _ => None,
            })
            .collect();
        let threads = threads.max(1);
        type Frozen = (usize, Result<StaticRepr, MaintenanceFailure>);
        let frozen: Vec<Frozen> = if jobs.len() <= 1 || threads == 1 {
            // One hot segment (or one worker): spread its freeze across
            // the workers internally instead.
            jobs.iter()
                .map(|(i, h)| {
                    let step = Freeze { segment: *i };
                    (
                        *i,
                        run_step(step, || {
                            probe.step(step);
                            StaticRepr::choose_with_threads(h.freeze_with_threads(threads), threads)
                        }),
                    )
                })
                .collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = jobs
                    .iter()
                    .map(|(i, h)| {
                        let (i, h) = (*i, Arc::clone(h));
                        scope.spawn(move || {
                            let step = Freeze { segment: i };
                            (
                                i,
                                run_step(step, || {
                                    probe.step(step);
                                    StaticRepr::choose_with_threads(h.freeze(), 1)
                                }),
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .zip(&jobs)
                    .map(|(handle, (i, _))| {
                        // Workers contain their own panics, so join() can
                        // only fail on a non-unwinding abort; fold the
                        // impossible case into a reported failure anyway.
                        handle.join().unwrap_or_else(|p| {
                            (
                                *i,
                                Err(MaintenanceFailure::panicked(
                                    Freeze { segment: *i },
                                    p.as_ref(),
                                )),
                            )
                        })
                    })
                    .collect()
            })
        };
        let mut installed = 0;
        for (i, result) in frozen {
            let step = InstallFrozen { segment: i };
            match result.and_then(|repr| run_step(step, || probe.step(step)).map(|()| repr)) {
                Ok(repr) => {
                    self.segments[i] = Segment::Sealed(Arc::new(SealedSegment::new(repr)));
                    installed += 1;
                }
                Err(failure) => failures.push(failure),
            }
        }
        if installed > 0 {
            self.invalidate_directory();
        }
        installed
    }

    /// The probed form of [`TieredStore::seal`]: freeze all hot segments,
    /// drop empty ones, and start a fresh hot tail. Returns installs.
    pub(crate) fn seal_probed(
        &mut self,
        threads: usize,
        probe: &dyn MaintenanceProbe,
        failures: &mut Vec<MaintenanceFailure>,
    ) -> usize {
        let installed = self.freeze_probed(self.segments.len(), threads, probe, failures);
        self.segments.retain(|g| g.len() > 0);
        // The invariant "the list ends in a hot tail" must hold even after
        // failures: push a fresh tail unless a (failed, still-hot) tail
        // survived.
        if !matches!(self.segments.last(), Some(Segment::Hot(_))) {
            self.segments
                .push(Segment::Hot(Arc::new(DynamicWaveletTrie::new())));
        }
        self.invalidate_directory();
        installed
    }

    /// Merges sealed segments `left` and `left + 1` under panic
    /// containment. True iff the merge installed.
    fn merge_probed(
        &mut self,
        left: usize,
        probe: &dyn MaintenanceProbe,
        failures: &mut Vec<MaintenanceFailure>,
    ) -> bool {
        let step = Merge { left };
        let merged = run_step(step, || {
            probe.step(step);
            let (Segment::Sealed(a), Segment::Sealed(b)) =
                (&self.segments[left], &self.segments[left + 1])
            else {
                unreachable!("merge_probed called on a non-sealed pair");
            };
            let mut melted: DynamicWaveletTrie = a.repr.thaw();
            for s in b.repr.index().iter_seq_boxed() {
                // The two segments coexist in one store, whose inserts
                // check admits() across *all* segments — so their union
                // is prefix-free and append cannot fail.
                melted
                    .append(s.as_bitstr())
                    .expect("segments are jointly prefix-free");
            }
            StaticRepr::choose_with_threads(melted.freeze(), 1)
        });
        let merged = match merged {
            Ok(m) => m,
            Err(failure) => {
                failures.push(failure);
                return false;
            }
        };
        let step = InstallMerged { left };
        match run_step(step, || probe.step(step)) {
            Ok(()) => {
                self.segments[left] = Segment::Sealed(Arc::new(SealedSegment::new(merged)));
                self.segments.remove(left + 1);
                self.invalidate_directory();
                true
            }
            Err(failure) => {
                failures.push(failure);
                false
            }
        }
    }

    /// The probed form of [`TieredStore::compact`]: freeze melted middles
    /// (not the tail), then merge smallest adjacent sealed pairs until at
    /// most `max_sealed` remain or a merge fails. Returns (installs,
    /// merges).
    pub(crate) fn compact_probed(
        &mut self,
        threads: usize,
        probe: &dyn MaintenanceProbe,
        failures: &mut Vec<MaintenanceFailure>,
    ) -> (usize, usize) {
        let middles = self.segments.len().saturating_sub(1);
        let installed = self.freeze_probed(middles, threads, probe, failures);
        let mut merges = 0;
        while self.sealed_segments() > self.config().max_sealed {
            let best = self
                .sealed_adjacent_pairs()
                .min_by_key(|&(_, combined)| combined)
                .map(|(i, _)| i);
            match best {
                Some(left) => {
                    if !self.merge_probed(left, probe, failures) {
                        // A failed merge would be re-picked forever; the
                        // retry pass (or the next compact) will try again.
                        break;
                    }
                    merges += 1;
                }
                None => break,
            }
        }
        (installed, merges)
    }

    /// One full maintenance pass: seal → compact → save (if configured)
    /// → publish. Failures are appended to `report.failures`.
    fn maintenance_pass(&mut self, opts: &Maintenance<'_>, report: &mut MaintenanceReport) {
        let mut failures = Vec::new();
        report.sealed += self.seal_probed(opts.threads, opts.probe, &mut failures);
        let (installed, merged) = self.compact_probed(opts.threads, opts.probe, &mut failures);
        report.sealed += installed;
        report.merged += merged;
        if let Some((storage, dir)) = opts.save_to {
            match run_step(Save, || {
                opts.probe.step(Save);
                self.save_dir_with(storage, dir)
            }) {
                Ok(Ok(())) => report.saved = true,
                Ok(Err(e)) => failures.push(MaintenanceFailure::Save(e)),
                Err(failure) => failures.push(failure),
            }
        }
        match run_step(Publish, || opts.probe.step(Publish)) {
            Ok(()) => report.published = Some(self.publish().version()),
            Err(failure) => failures.push(failure),
        }
        report.failures.extend(failures);
    }

    /// Background-style maintenance with default options: seal everything,
    /// compact to policy, publish a fresh epoch (no persistence). Never
    /// panics; see [`MaintenanceReport`].
    pub fn maintain(&mut self) -> MaintenanceReport {
        self.maintain_with(&Maintenance::default())
    }

    /// Runs maintenance passes until one completes without new failures,
    /// the retry budget (`opts.retry.attempts` passes) is exhausted, or
    /// `opts.retry.max_elapsed` has elapsed — sleeping
    /// `base_backoff << pass` between passes, exactly like the storage
    /// stack's transient-I/O retries.
    ///
    /// This call **never panics and never poisons the store**: every step
    /// runs under `catch_unwind`, a failed step's effect is skipped whole,
    /// and readers keep serving the previous epoch until the pass's final
    /// `Publish` step succeeds.
    pub fn maintain_with(&mut self, opts: &Maintenance<'_>) -> MaintenanceReport {
        let mut report = MaintenanceReport::default();
        let attempts = opts.retry.attempts.max(1);
        let started = Instant::now();
        for pass in 0..attempts {
            let failures_before = report.failures.len();
            self.maintenance_pass(opts, &mut report);
            report.passes += 1;
            if report.failures.len() == failures_before {
                break; // clean pass
            }
            let out_of_time = opts
                .retry
                .max_elapsed
                .is_some_and(|cap| started.elapsed() >= cap);
            if pass + 1 >= attempts || out_of_time {
                break;
            }
            let backoff = opts.retry.base_backoff * (1 << pass.min(16));
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
        }
        report
    }
}
