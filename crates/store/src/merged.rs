//! The merged-query engine: every read of a tiered sequence — live
//! ([`TieredStore`](crate::TieredStore)) or frozen
//! ([`StoreSnapshot`](crate::StoreSnapshot)) — is the same computation
//! over a slice of segments, a total length, and an Elias–Fano directory
//! of cumulative segment lengths. [`SegmentedRead`] holds that computation
//! once as default methods; the two readers implement the three accessors
//! and inherit the rest, and [`impl_seq_index_for_segmented!`] turns the
//! engine into a [`SeqIndex`] impl so both answer bit-identically to a
//! monolithic Wavelet Trie over the concatenated sequence.

use std::collections::BTreeMap;

use wavelet_trie::SeqIndex;
use wt_bits::EliasFano;
use wt_trie::{BitStr, BitString};

use crate::Segment;

/// Internal read-side view of a segmented sequence. `rank`/`count` sum
/// across segments, `select` walks segment counts with early exit, and the
/// §5 analytics (distinct values, majority, frequent) combine per-segment
/// results exactly; see the crate docs for the architecture.
pub(crate) trait SegmentedRead {
    /// The segments, in sequence order.
    fn segments(&self) -> &[Segment];

    /// Total number of strings across the segments.
    fn total_len(&self) -> usize;

    /// Runs `f` with the Elias–Fano directory over cumulative segment
    /// lengths (`segments().len() + 1` values starting at 0).
    fn with_directory<R>(&self, f: impl FnOnce(&EliasFano) -> R) -> R;

    // --- position routing ----------------------------------------------------

    /// Maps a global position (`< total_len`) to `(segment, local offset)`.
    fn locate(&self, pos: usize) -> (usize, usize) {
        debug_assert!(pos < self.total_len());
        self.with_directory(|dir| {
            // Largest cumulative start <= pos; duplicates (empty segments)
            // resolve to the last, i.e. the non-empty segment owning `pos`.
            // `cum[0] = 0`, so every `pos >= 0` has a predecessor.
            let seg = dir.predecessor_index(pos as u64).expect("cum[0] = 0");
            let seg = seg.min(self.segments().len() - 1);
            (seg, pos - dir.get(seg) as usize)
        })
    }

    /// `(segment, local l, local r)` for every segment overlapping the
    /// global range `[l, r)`.
    fn overlaps(&self, l: usize, r: usize) -> Vec<(usize, usize, usize)> {
        assert!(l <= r && r <= self.total_len(), "range out of bounds");
        let mut out = Vec::new();
        let mut start = 0usize;
        for (i, g) in self.segments().iter().enumerate() {
            let end = start + g.len();
            if end > l && start < r {
                out.push((i, l.max(start) - start, r.min(end) - start));
            }
            start = end;
            if start >= r {
                break;
            }
        }
        out
    }

    /// Merges per-segment `(string, count)` lists (each lexicographically
    /// sorted) into one, summing counts of equal strings.
    fn merge_counts(
        &self,
        l: usize,
        r: usize,
        per_segment: impl Fn(&dyn SeqIndex, usize, usize) -> Vec<(BitString, usize)>,
    ) -> Vec<(BitString, usize)> {
        let mut merged: BTreeMap<BitString, usize> = BTreeMap::new();
        for (i, lo, hi) in self.overlaps(l, r) {
            for (s, c) in per_segment(self.segments()[i].index(), lo, hi) {
                *merged.entry(s).or_insert(0) += c;
            }
        }
        // BitString's Ord is lexicographic with prefixes first — the same
        // order a single trie's traversal emits.
        merged.into_iter().collect()
    }

    // --- point queries -------------------------------------------------------

    fn m_access(&self, pos: usize) -> BitString {
        assert!(pos < self.total_len(), "Access position out of bounds");
        let (seg, off) = self.locate(pos);
        self.segments()[seg].index().access(off)
    }

    fn m_rank(&self, s: BitStr<'_>, pos: usize) -> usize {
        assert!(pos <= self.total_len(), "Rank position out of bounds");
        let mut acc = 0usize;
        let mut remaining = pos;
        for g in self.segments() {
            if remaining == 0 {
                break;
            }
            let l = g.len();
            if remaining >= l {
                acc += g.index().count(s);
                remaining -= l;
            } else {
                acc += g.index().rank(s, remaining);
                break;
            }
        }
        acc
    }

    fn m_select(&self, s: BitStr<'_>, idx: usize) -> Option<usize> {
        let mut idx = idx;
        let mut base = 0usize;
        for g in self.segments() {
            let c = g.index().count(s);
            if idx < c {
                return g.index().select(s, idx).map(|p| base + p);
            }
            idx -= c;
            base += g.len();
        }
        None
    }

    fn m_rank_prefix(&self, p: BitStr<'_>, pos: usize) -> usize {
        assert!(pos <= self.total_len(), "RankPrefix position out of bounds");
        let mut acc = 0usize;
        let mut remaining = pos;
        for g in self.segments() {
            if remaining == 0 {
                break;
            }
            let l = g.len();
            if remaining >= l {
                acc += g.index().count_prefix(p);
                remaining -= l;
            } else {
                acc += g.index().rank_prefix(p, remaining);
                break;
            }
        }
        acc
    }

    fn m_select_prefix(&self, p: BitStr<'_>, idx: usize) -> Option<usize> {
        let mut idx = idx;
        let mut base = 0usize;
        for g in self.segments() {
            let c = g.index().count_prefix(p);
            if idx < c {
                return g.index().select_prefix(p, idx).map(|q| base + q);
            }
            idx -= c;
            base += g.len();
        }
        None
    }

    fn m_admits(&self, s: BitStr<'_>) -> bool {
        self.segments().iter().all(|g| g.admits(s))
    }

    // --- §5 analytics --------------------------------------------------------

    fn m_distinct_len(&self) -> usize {
        if self.total_len() == 0 {
            return 0;
        }
        self.merge_counts(0, self.total_len(), |g, lo, hi| g.distinct_in_range(lo, hi))
            .len()
    }

    fn m_height(&self) -> usize {
        self.segments()
            .iter()
            .map(|g| g.index().height())
            .max()
            .unwrap_or(0)
    }

    fn m_total_bitvector_bits(&self) -> usize {
        self.segments()
            .iter()
            .map(|g| g.index().total_bitvector_bits())
            .sum()
    }

    fn m_distinct_in_range(&self, l: usize, r: usize) -> Vec<(BitString, usize)> {
        self.merge_counts(l, r, |g, lo, hi| g.distinct_in_range(lo, hi))
    }

    fn m_distinct_in_range_with_prefix(
        &self,
        p: BitStr<'_>,
        l: usize,
        r: usize,
    ) -> Vec<(BitString, usize)> {
        self.merge_counts(l, r, |g, lo, hi| g.distinct_in_range_with_prefix(p, lo, hi))
    }

    fn m_distinct_prefixes_in_range(
        &self,
        l: usize,
        r: usize,
        depth: usize,
    ) -> Vec<(BitString, usize)> {
        self.merge_counts(l, r, |g, lo, hi| {
            g.distinct_prefixes_in_range(lo, hi, depth)
        })
    }

    fn m_range_majority(&self, l: usize, r: usize) -> Option<(BitString, usize)> {
        assert!(l <= r && r <= self.total_len(), "range out of bounds");
        if l == r {
            return None;
        }
        // Pigeonhole: a global majority of [l, r) must be a majority of at
        // least one overlapped part, so per-part majorities are the only
        // candidates; verify each against the merged count.
        let total = r - l;
        for (i, lo, hi) in self.overlaps(l, r) {
            if let Some((cand, _)) = self.segments()[i].index().range_majority(lo, hi) {
                let c = self.m_rank(cand.as_bitstr(), r) - self.m_rank(cand.as_bitstr(), l);
                if 2 * c > total {
                    return Some((cand, c));
                }
            }
        }
        None
    }

    fn m_range_frequent(&self, l: usize, r: usize, min_count: usize) -> Vec<(BitString, usize)> {
        assert!(l <= r && r <= self.total_len(), "range out of bounds");
        let min_count = min_count.max(1);
        if r - l < min_count {
            return Vec::new();
        }
        // A string can clear the threshold globally while staying below it
        // in every segment, so enumerate distinct values and filter.
        self.merge_counts(l, r, |g, lo, hi| g.distinct_in_range(lo, hi))
            .into_iter()
            .filter(|&(_, c)| c >= min_count)
            .collect()
    }

    fn m_iter_range_boxed(&self, l: usize, r: usize) -> Box<dyn Iterator<Item = BitString> + '_>
    where
        Self: Sized,
    {
        let parts = self.overlaps(l, r);
        Box::new(
            parts
                .into_iter()
                .flat_map(move |(i, lo, hi)| self.segments()[i].index().iter_range_boxed(lo, hi)),
        )
    }

    // --- batched queries -----------------------------------------------------
    //
    // A batch is routed through the Elias–Fano segment directory once and
    // dispatched as one sub-batch per segment, so static segments get
    // their software-pipelined group descent over every lane that lands in
    // them instead of per-lane dispatch.

    fn m_access_batch(&self, positions: &[usize]) -> Vec<BitString> {
        for &p in positions {
            assert!(p < self.total_len(), "Access position out of bounds");
        }
        let mut out: Vec<BitString> = vec![BitString::new(); positions.len()];
        if positions.is_empty() {
            return out;
        }
        let routed: Vec<(usize, usize)> = self.with_directory(|dir| {
            positions
                .iter()
                .map(|&p| {
                    // `cum[0] = 0`, so every position has a predecessor.
                    let seg = dir
                        .predecessor_index(p as u64)
                        .expect("cum[0] = 0")
                        .min(self.segments().len() - 1);
                    (seg, p - dir.get(seg) as usize)
                })
                .collect()
        });
        let mut by_seg: Vec<Vec<u32>> = vec![Vec::new(); self.segments().len()];
        for (lane, &(seg, _)) in routed.iter().enumerate() {
            by_seg[seg].push(lane as u32);
        }
        for (si, lanes) in by_seg.iter().enumerate() {
            if lanes.is_empty() {
                continue;
            }
            let locals: Vec<usize> = lanes.iter().map(|&l| routed[l as usize].1).collect();
            let res = self.segments()[si].index().access_batch(&locals);
            for (r, &l) in res.into_iter().zip(lanes) {
                out[l as usize] = r;
            }
        }
        out
    }

    fn m_rank_batch(&self, queries: &[(BitStr<'_>, usize)]) -> Vec<usize> {
        for &(_, pos) in queries {
            assert!(pos <= self.total_len(), "Rank position out of bounds");
        }
        let mut acc = vec![0usize; queries.len()];
        let mut start = 0usize;
        let mut sub: Vec<(BitStr<'_>, usize)> = Vec::new();
        let mut lanes: Vec<u32> = Vec::new();
        for g in self.segments() {
            let l = g.len();
            sub.clear();
            lanes.clear();
            for (k, &(s, pos)) in queries.iter().enumerate() {
                if pos > start {
                    sub.push((s, (pos - start).min(l)));
                    lanes.push(k as u32);
                }
            }
            if sub.is_empty() {
                break; // positions are exhausted for every lane
            }
            for (r, &k) in g.index().rank_batch(&sub).into_iter().zip(&lanes) {
                acc[k as usize] += r;
            }
            start += l;
        }
        acc
    }

    fn m_select_batch(&self, queries: &[(BitStr<'_>, usize)]) -> Vec<Option<usize>> {
        let mut res = vec![None; queries.len()];
        let mut remaining: Vec<usize> = queries.iter().map(|&(_, idx)| idx).collect();
        let mut unresolved: Vec<u32> = (0..queries.len() as u32).collect();
        let mut base = 0usize;
        for g in self.segments() {
            if unresolved.is_empty() {
                break;
            }
            // Occurrences of each unresolved lane's string in this segment.
            let sub: Vec<(BitStr<'_>, usize)> = unresolved
                .iter()
                .map(|&k| (queries[k as usize].0, g.len()))
                .collect();
            let counts = g.index().rank_batch(&sub);
            let mut here: Vec<u32> = Vec::new();
            let mut here_q: Vec<(BitStr<'_>, usize)> = Vec::new();
            let mut keep: Vec<u32> = Vec::new();
            for (j, &k) in unresolved.iter().enumerate() {
                if remaining[k as usize] < counts[j] {
                    here.push(k);
                    here_q.push((queries[k as usize].0, remaining[k as usize]));
                } else {
                    remaining[k as usize] -= counts[j];
                    keep.push(k);
                }
            }
            if !here_q.is_empty() {
                for (r, &k) in g.index().select_batch(&here_q).into_iter().zip(&here) {
                    res[k as usize] = r.map(|p| base + p);
                }
            }
            unresolved = keep;
            base += g.len();
        }
        res
    }

    fn m_count_prefix_batch(&self, prefixes: &[BitStr<'_>]) -> Vec<usize> {
        let mut acc = vec![0usize; prefixes.len()];
        for g in self.segments() {
            for (a, c) in acc.iter_mut().zip(g.index().count_prefix_batch(prefixes)) {
                *a += c;
            }
        }
        acc
    }
}

/// Implements [`SeqIndex`] for a [`SegmentedRead`] type by delegating
/// every method to the shared engine — one query implementation, two
/// readers, bit-identical answers.
macro_rules! impl_seq_index_for_segmented {
    ($ty:ty) => {
        impl wavelet_trie::SeqIndex for $ty {
            fn seq_len(&self) -> usize {
                $crate::merged::SegmentedRead::total_len(self)
            }

            fn access(&self, pos: usize) -> wt_trie::BitString {
                self.m_access(pos)
            }

            fn rank(&self, s: wt_trie::BitStr<'_>, pos: usize) -> usize {
                self.m_rank(s, pos)
            }

            fn select(&self, s: wt_trie::BitStr<'_>, idx: usize) -> Option<usize> {
                self.m_select(s, idx)
            }

            fn rank_prefix(&self, p: wt_trie::BitStr<'_>, pos: usize) -> usize {
                self.m_rank_prefix(p, pos)
            }

            fn select_prefix(&self, p: wt_trie::BitStr<'_>, idx: usize) -> Option<usize> {
                self.m_select_prefix(p, idx)
            }

            fn admits(&self, s: wt_trie::BitStr<'_>) -> bool {
                self.m_admits(s)
            }

            fn distinct_len(&self) -> usize {
                self.m_distinct_len()
            }

            fn height(&self) -> usize {
                self.m_height()
            }

            fn total_bitvector_bits(&self) -> usize {
                self.m_total_bitvector_bits()
            }

            fn distinct_in_range(&self, l: usize, r: usize) -> Vec<(wt_trie::BitString, usize)> {
                self.m_distinct_in_range(l, r)
            }

            fn distinct_in_range_with_prefix(
                &self,
                p: wt_trie::BitStr<'_>,
                l: usize,
                r: usize,
            ) -> Vec<(wt_trie::BitString, usize)> {
                self.m_distinct_in_range_with_prefix(p, l, r)
            }

            fn distinct_prefixes_in_range(
                &self,
                l: usize,
                r: usize,
                depth: usize,
            ) -> Vec<(wt_trie::BitString, usize)> {
                self.m_distinct_prefixes_in_range(l, r, depth)
            }

            fn range_majority(&self, l: usize, r: usize) -> Option<(wt_trie::BitString, usize)> {
                self.m_range_majority(l, r)
            }

            fn range_frequent(
                &self,
                l: usize,
                r: usize,
                min_count: usize,
            ) -> Vec<(wt_trie::BitString, usize)> {
                self.m_range_frequent(l, r, min_count)
            }

            fn iter_range_boxed(
                &self,
                l: usize,
                r: usize,
            ) -> Box<dyn Iterator<Item = wt_trie::BitString> + '_> {
                self.m_iter_range_boxed(l, r)
            }

            fn access_batch(&self, positions: &[usize]) -> Vec<wt_trie::BitString> {
                self.m_access_batch(positions)
            }

            fn rank_batch(&self, queries: &[(wt_trie::BitStr<'_>, usize)]) -> Vec<usize> {
                self.m_rank_batch(queries)
            }

            fn select_batch(&self, queries: &[(wt_trie::BitStr<'_>, usize)]) -> Vec<Option<usize>> {
                self.m_select_batch(queries)
            }

            fn count_prefix_batch(&self, prefixes: &[wt_trie::BitStr<'_>]) -> Vec<usize> {
                self.m_count_prefix_batch(prefixes)
            }
        }
    };
}

pub(crate) use impl_seq_index_for_segmented;
