//! Crash-safe directory persistence for [`TieredStore`]: atomic
//! generation commits, fallback loading, and self-healing recovery.
//!
//! # On-disk layout
//!
//! A store directory holds one *generation* per committed save:
//!
//! ```text
//! seg-g00000003-000.wt    sealed segment 0 of generation 3 (zero-copy archive)
//! seg-g00000003-001.log   hot segment 1 of generation 3 (string log)
//! manifest-g00000003.wt   THE commit point of generation 3
//! *.tmp                   in-flight writes; never read, swept on commit/recovery
//! ```
//!
//! (The pre-generation layout — bare `manifest.wt` + `seg-NNN.*` — is
//! read as generation 0, so PR 6 images keep loading.)
//!
//! # Commit protocol
//!
//! Every file lands via write-temp → fsync → rename → fsync-dir, and the
//! generation's manifest is written **last**; its rename plus directory
//! fsync is the single commit point:
//!
//! ```text
//!            ┌────────────────────────  per segment i  ───────────────────────┐
//! save:  ──▶ │ write seg.tmp ─ fsync ─ rename seg-g<G>-i ─ fsync dir │ ──▶ ...
//!            └──────────────────────────────────────────────────────────┘
//!        ──▶ write manifest.tmp ─ fsync ─ rename manifest-g<G> ─ fsync dir   ◀ COMMIT
//!        ──▶ best-effort GC: remove every store file not in generation G
//! ```
//!
//! A crash strictly before the commit point leaves the previous
//! generation fully intact (its files are only removed *after* the new
//! manifest is durable), so a reader sees the **old** image; a crash at
//! or after it (e.g. during GC) leaves the new manifest authoritative, so
//! a reader sees the **new** image. There is no third state — the
//! crash-point enumeration suite (`tests/crash_points.rs`) kills the save
//! at every operation index and checks exactly this.
//!
//! # Recovery state machine
//!
//! ```text
//!             list dir
//!                │
//!      newest manifest generation ──(read/parse fails)──▶ next older generation
//!                │ parsed                                       │ none left
//!                ▼                                              ▼
//!        load each segment                            NoCommittedGeneration
//!        │               │
//!   strict load      resilient recover
//!   any failure ▶    checksum failure / missing file ▶ QUARANTINE segment,
//!   fall back to     keep serving the rest; torn hot log ▶ replay the
//!   older gen        valid prefix; then sweep *.tmp, report everything
//! ```
//!
//! [`TieredStore::load_dir`] is the strict path (all-or-nothing per
//! generation, falls back to the last fully loadable generation);
//! [`TieredStore::recover_dir`] is the resilient path (serve what
//! survives, quarantine the rest, return a [`RecoveryReport`]).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use wavelet_trie::{DynamicWaveletTrie, PathDecompTrie, SeqIndex, WaveletTrie};
use wt_bits::persist::{kind, Archive, ArchiveWriter, LoadError};
use wt_bits::storage::{tmp_path, FsStorage, RetryPolicy, RetryingStorage, Storage};
use wt_trie::BitStr;

use crate::error::{Quarantine, RecoveryReport, StoreError, StoreOp};
use crate::{SealedSegment, Segment, SegmentKind, StaticRepr, StoreConfig, TieredStore};

// --- file naming -------------------------------------------------------------

/// Manifest file name of a generation (`manifest.wt` is the legacy,
/// generation-0 layout of PR 6 images).
fn manifest_name(generation: u64) -> String {
    if generation == 0 {
        TieredStore::MANIFEST_FILE.to_string()
    } else {
        format!("manifest-g{generation:08}.wt")
    }
}

/// Segment file name: `.wt` archives for sealed segments, `.log` string
/// logs for hot ones.
fn segment_name(generation: u64, i: usize, sealed: bool) -> String {
    let ext = if sealed { "wt" } else { "log" };
    if generation == 0 {
        format!("seg-{i:03}.{ext}")
    } else {
        format!("seg-g{generation:08}-{i:03}.{ext}")
    }
}

/// Parses a manifest file name back to its generation.
fn parse_manifest_name(name: &str) -> Option<u64> {
    if name == TieredStore::MANIFEST_FILE {
        return Some(0);
    }
    let digits = name.strip_prefix("manifest-g")?.strip_suffix(".wt")?;
    if digits.len() != 8 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Whether a file name belongs to the store's own layout (and is thus
/// fair game for garbage collection). Unknown files are never touched.
fn is_store_file(name: &str) -> bool {
    name.ends_with(".tmp")
        || parse_manifest_name(name.strip_suffix(".tmp").unwrap_or(name)).is_some()
        || (name.starts_with("seg-") && (name.ends_with(".wt") || name.ends_with(".log")))
}

// --- manifest encoding -------------------------------------------------------

/// Section 1 of a generation-numbered manifest holds the generation; the
/// legacy layout has only section 0.
const SEC_GENERATION: u32 = 1;

/// Parsed manifest: policy, total length, and the segment table.
struct ManifestData {
    config: StoreConfig,
    total_len: usize,
    /// `(kind, length)` per segment, in sequence order.
    entries: Vec<(SegmentKind, usize)>,
}

/// Manifest tag of a segment kind. Hot = 0 and Wavelet = 1 match the
/// pre-PR-9 `is_sealed as u64` encoding, so manifests of stores without
/// path-decomposed segments stay byte-identical and old images load.
fn kind_tag(kind: SegmentKind) -> u64 {
    match kind {
        SegmentKind::Hot => 0,
        SegmentKind::Wavelet => 1,
        SegmentKind::PathDecomp => 2,
    }
}

fn manifest_bytes(store: &TieredStore, generation: u64) -> Vec<u8> {
    let mut payload = vec![
        store.config.seal_at as u64,
        store.config.max_sealed as u64,
        store.len as u64,
        store.segments.len() as u64,
    ];
    for g in &store.segments {
        payload.push(kind_tag(g.kind()));
        payload.push(g.len() as u64);
    }
    let mut w = ArchiveWriter::new(kind::MANIFEST);
    w.section(0, payload);
    w.section(SEC_GENERATION, vec![generation]);
    w.finish()
}

/// Parses and validates a manifest image; `generation` is the value the
/// file name claims, cross-checked against the embedded one.
fn parse_manifest(bytes: &[u8], generation: u64) -> Result<ManifestData, LoadError> {
    let a = Archive::parse(bytes, kind::MANIFEST)?;
    let mut r = a.section(0)?;
    let seal_at = r.read_u64()? as usize;
    let max_sealed = r.read_u64()? as usize;
    let total_len = r.read_u64()? as usize;
    let n_segments = r.read_u64()? as usize;
    if r.remaining() != 2 * n_segments || n_segments == 0 {
        return Err(LoadError::Invalid("manifest segment table"));
    }
    let mut entries = Vec::with_capacity(n_segments);
    for _ in 0..n_segments {
        let kind = match r.read_u64()? {
            0 => SegmentKind::Hot,
            1 => SegmentKind::Wavelet,
            2 => SegmentKind::PathDecomp,
            _ => return Err(LoadError::Invalid("manifest segment tag")),
        };
        entries.push((kind, r.read_u64()? as usize));
    }
    r.finish()?;
    if generation > 0 {
        let mut g = a.section(SEC_GENERATION)?;
        if g.read_u64()? != generation {
            return Err(LoadError::Invalid("manifest generation vs file name"));
        }
        g.finish()?;
    }
    Ok(ManifestData {
        config: StoreConfig {
            seal_at,
            max_sealed,
        },
        total_len,
        entries,
    })
}

// --- hot-segment string logs -------------------------------------------------

/// Serializes a hot segment as a string log: the strings in order, as one
/// concatenated bitvector plus a length table. Unlike sealed segments this
/// is not zero-copy on load — the hot tail is small by policy (`seal_at`),
/// so re-appending its strings into a fresh dynamic trie is cheap.
fn hot_log_bytes(h: &DynamicWaveletTrie) -> Vec<u8> {
    let mut lens: Vec<u64> = Vec::new();
    let mut concat = wt_bits::RawBitVec::new();
    for s in h.iter_range_boxed(0, SeqIndex::seq_len(h)) {
        lens.push(s.len() as u64);
        s.as_bitstr().append_into(&mut concat);
    }
    let mut payload = vec![lens.len() as u64];
    payload.extend_from_slice(&lens);
    wt_bits::Persist::encode(&concat, &mut payload);
    let mut w = ArchiveWriter::new(kind::HOT_LOG);
    w.section(0, payload);
    w.finish()
}

/// Replays a hot-segment string log written by [`hot_log_bytes`]. With
/// `partial`, a fault *inside* the (checksum-valid) log — a bad length
/// table entry or a prefix-free violation — stops the replay and returns
/// the valid prefix plus the reason, instead of failing the whole load.
fn replay_hot_log(
    bytes: &[u8],
    partial: bool,
) -> Result<(DynamicWaveletTrie, Option<&'static str>), LoadError> {
    let a = Archive::parse(bytes, kind::HOT_LOG)?;
    let mut r = a.section(0)?;
    let n = r.read_len()?;
    let lens = r.view(n)?;
    let concat: wt_bits::RawBitVec = wt_bits::Persist::decode(&mut r)?;
    r.finish()?;
    let mut h = DynamicWaveletTrie::new();
    let mut start = 0usize;
    let mut stopped = None;
    for i in 0..n {
        let l = lens[i] as usize;
        if l > concat.len() - start {
            stopped = Some("hot log length table");
            break;
        }
        if h.append(BitStr::new(&concat, start, l)).is_err() {
            stopped = Some("hot log not prefix-free");
            break;
        }
        start += l;
    }
    if stopped.is_none() && start != concat.len() {
        stopped = Some("hot log length table");
    }
    match stopped {
        Some(what) if !partial => Err(LoadError::Invalid(what)),
        other => Ok((h, other)),
    }
}

// --- per-file helpers over Storage -------------------------------------------

/// Durably publishes one file, mapping each step to its [`StoreOp`] so a
/// failure names the exact file and operation.
fn put_file(storage: &dyn Storage, dir: &Path, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
    let path = dir.join(name);
    let tmp = tmp_path(&path);
    storage
        .write(&tmp, bytes)
        .map_err(|e| StoreError::io(StoreOp::Write, &tmp, e))?;
    storage
        .sync_file(&tmp)
        .map_err(|e| StoreError::io(StoreOp::SyncFile, &tmp, e))?;
    storage
        .rename(&tmp, &path)
        .map_err(|e| StoreError::io(StoreOp::Rename, &path, e))?;
    storage
        .sync_dir(dir)
        .map_err(|e| StoreError::io(StoreOp::SyncDir, dir, e))?;
    Ok(())
}

/// Default storage for the convenience entry points: the real filesystem
/// with transient-error retries.
fn default_storage() -> RetryingStorage<'static> {
    static FS: FsStorage = FsStorage;
    RetryingStorage::new(&FS, RetryPolicy::default())
}

// --- save --------------------------------------------------------------------

impl TieredStore {
    /// Name of the manifest file in the **legacy** (generation-0) layout;
    /// still recognized by [`TieredStore::load_dir`]. Generation-numbered
    /// saves write `manifest-g<NNNNNNNN>.wt` instead.
    pub const MANIFEST_FILE: &'static str = "manifest.wt";

    /// Persists the store into `dir` (created if needed) with an atomic
    /// generation commit (see the [module docs](self)): segments are
    /// written to temp names, fsynced and renamed; the generation's
    /// manifest is written last as the single commit point; files of
    /// older generations and stale temps are swept after the commit. A
    /// crash at any point leaves the directory loadable as either the
    /// previous image or this one.
    ///
    /// Runs on the real filesystem with transient-I/O retries; see
    /// [`TieredStore::save_dir_with`] to inject a different backend.
    pub fn save_dir(&self, dir: impl AsRef<Path>) -> Result<(), StoreError> {
        self.save_dir_with(&default_storage(), dir)
    }

    /// [`TieredStore::save_dir`] against an explicit [`Storage`] backend
    /// (fault-injection harnesses pass
    /// [`FaultStorage`](wt_bits::storage::FaultStorage) here).
    pub fn save_dir_with(
        &self,
        storage: &dyn Storage,
        dir: impl AsRef<Path>,
    ) -> Result<(), StoreError> {
        let dir = dir.as_ref();
        storage
            .create_dir_all(dir)
            .map_err(|e| StoreError::io(StoreOp::CreateDir, dir, e))?;
        let names = storage
            .list(dir)
            .map_err(|e| StoreError::io(StoreOp::List, dir, e))?;
        let committed = names.iter().filter_map(|n| parse_manifest_name(n)).max();
        let generation = committed.map_or(1, |g| g + 1);
        let mut keep: Vec<String> = Vec::with_capacity(self.segments.len() + 1);
        for (i, g) in self.segments.iter().enumerate() {
            let (name, bytes) = match g {
                Segment::Sealed(s) => (segment_name(generation, i, true), s.repr.save_bytes()),
                Segment::Hot(h) => (segment_name(generation, i, false), hot_log_bytes(h)),
            };
            put_file(storage, dir, &name, &bytes)?;
            keep.push(name);
        }
        // The commit point: once this manifest's rename + dir fsync land,
        // generation `generation` is the image every loader serves.
        let mname = manifest_name(generation);
        put_file(storage, dir, &mname, &manifest_bytes(self, generation))?;
        keep.push(mname);
        // Post-commit sweep of stale generations, orphan segments and
        // temps. Best-effort by design: the commit already happened, so a
        // failure here must not fail the save — the next save or recovery
        // sweeps again.
        let _ = gc(storage, dir, &keep);
        Ok(())
    }
}

/// Removes every store-owned file not in `keep`. Unknown (non-store)
/// files are left alone. Returns the removed paths; individual removal
/// failures are skipped.
fn gc(storage: &dyn Storage, dir: &Path, keep: &[String]) -> Vec<PathBuf> {
    let Ok(names) = storage.list(dir) else {
        return Vec::new();
    };
    let mut removed = Vec::new();
    for name in names {
        if !is_store_file(&name) || keep.contains(&name) {
            continue;
        }
        let path = dir.join(&name);
        if storage.remove(&path).is_ok() {
            removed.push(path);
        }
    }
    let _ = storage.sync_dir(dir);
    removed
}

// --- strict load -------------------------------------------------------------

impl TieredStore {
    /// Loads a store directory written by [`TieredStore::save_dir`],
    /// serving the **newest fully loadable generation**: if the newest
    /// manifest or any of its segments fails to read, parse or validate,
    /// the loader falls back to the next older committed generation.
    /// All-or-nothing per generation; see [`TieredStore::recover_dir`]
    /// for the resilient, per-segment-quarantine variant.
    ///
    /// Sealed segments load zero-copy (validate-then-view, no bitvector
    /// rebuilds); hot segments replay their string logs into fresh dynamic
    /// tries. Segment lengths are cross-checked against the manifest.
    /// Legacy (PR 6) directories load as generation 0.
    pub fn load_dir(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::load_dir_with(&default_storage(), dir)
    }

    /// [`TieredStore::load_dir`] against an explicit [`Storage`] backend.
    pub fn load_dir_with(storage: &dyn Storage, dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref();
        let mut generations = committed_generations(storage, dir)?;
        let mut newest_err: Option<StoreError> = None;
        while let Some(generation) = generations.pop() {
            match load_generation(storage, dir, generation) {
                Ok(store) => return Ok(store),
                // Remember the *newest* generation's failure — that is
                // the image the caller expected to read.
                Err(e) => {
                    let _ = newest_err.get_or_insert(e);
                }
            }
        }
        Err(newest_err.unwrap_or_else(|| StoreError::no_generation(dir)))
    }
}

/// Loads a sealed segment archive as the representation its manifest tag
/// names. The embedded archive kind (`WAVELET_TRIE` vs `PATH_DECOMP`)
/// cross-checks the tag: a mismatch fails with `WrongKind`.
fn load_sealed(kind: SegmentKind, bytes: &[u8]) -> Result<StaticRepr, LoadError> {
    match kind {
        SegmentKind::Wavelet => WaveletTrie::load_bytes(bytes).map(StaticRepr::Wt),
        SegmentKind::PathDecomp => PathDecompTrie::load_bytes(bytes).map(StaticRepr::Pd),
        SegmentKind::Hot => unreachable!("hot segments are string logs, not sealed archives"),
    }
}

/// Committed generations present in `dir`, sorted ascending.
fn committed_generations(storage: &dyn Storage, dir: &Path) -> Result<Vec<u64>, StoreError> {
    let names = storage
        .list(dir)
        .map_err(|e| StoreError::io(StoreOp::List, dir, e))?;
    let mut gens: Vec<u64> = names
        .iter()
        .filter_map(|n| parse_manifest_name(n))
        .collect();
    gens.sort_unstable();
    Ok(gens)
}

/// Strictly loads one committed generation: every file must read, parse
/// and cross-validate.
fn load_generation(
    storage: &dyn Storage,
    dir: &Path,
    generation: u64,
) -> Result<TieredStore, StoreError> {
    let mpath = dir.join(manifest_name(generation));
    let bytes = storage
        .read(&mpath)
        .map_err(|e| StoreError::io(StoreOp::Read, &mpath, e))?;
    let manifest = parse_manifest(&bytes, generation).map_err(|e| StoreError::format(&mpath, e))?;
    let mut segments = Vec::with_capacity(manifest.entries.len());
    let mut sum = 0usize;
    for (i, &(kind, seg_len)) in manifest.entries.iter().enumerate() {
        let sealed = kind != SegmentKind::Hot;
        let spath = dir.join(segment_name(generation, i, sealed));
        let bytes = storage
            .read(&spath)
            .map_err(|e| StoreError::io(StoreOp::Read, &spath, e))?;
        if sealed {
            let repr = load_sealed(kind, &bytes).map_err(|e| StoreError::format(&spath, e))?;
            if repr.len() != seg_len || seg_len == 0 {
                return Err(StoreError::validate(
                    &spath,
                    "sealed segment length vs manifest",
                ));
            }
            segments.push(Segment::Sealed(Arc::new(SealedSegment::new(repr))));
        } else {
            let (h, _) =
                replay_hot_log(&bytes, false).map_err(|e| StoreError::format(&spath, e))?;
            if SeqIndex::seq_len(&h) != seg_len {
                return Err(StoreError::validate(
                    &spath,
                    "hot segment length vs manifest",
                ));
            }
            segments.push(Segment::Hot(Arc::new(h)));
        }
        sum = sum
            .checked_add(seg_len)
            .ok_or_else(|| StoreError::validate(&mpath, "manifest segment lengths overflow"))?;
    }
    if sum != manifest.total_len {
        return Err(StoreError::validate(&mpath, "store length vs manifest"));
    }
    if !matches!(segments.last(), Some(Segment::Hot(_))) {
        return Err(StoreError::validate(&mpath, "store must end in a hot tail"));
    }
    Ok(TieredStore::from_parts(segments, sum, manifest.config))
}

// --- resilient recovery ------------------------------------------------------

impl TieredStore {
    /// Self-healing load: serves the newest generation whose *manifest*
    /// parses, validating each segment independently. Damaged segments —
    /// checksum mismatch, missing file, length mismatch — are
    /// **quarantined** (set aside; the store serves every surviving
    /// segment, in order) instead of failing the load. A torn hot log
    /// replays its valid prefix. Stale `*.tmp` files are swept. The
    /// returned [`RecoveryReport`] says exactly what happened;
    /// [`RecoveryReport::is_clean`] is true when the directory was a
    /// perfectly healthy image.
    ///
    /// Errors only when the directory cannot be listed or no manifest of
    /// any generation parses — i.e. when there is nothing to serve.
    pub fn recover_dir(dir: impl AsRef<Path>) -> Result<(Self, RecoveryReport), StoreError> {
        Self::recover_dir_with(&default_storage(), dir)
    }

    /// [`TieredStore::recover_dir`] against an explicit [`Storage`]
    /// backend.
    pub fn recover_dir_with(
        storage: &dyn Storage,
        dir: impl AsRef<Path>,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        let dir = dir.as_ref();
        let mut generations = committed_generations(storage, dir)?;
        if generations.is_empty() {
            return Err(StoreError::no_generation(dir));
        }
        let mut report = RecoveryReport::default();
        let mut newest_err: Option<StoreError> = None;
        let mut chosen: Option<(u64, ManifestData)> = None;
        while let Some(generation) = generations.pop() {
            let mpath = dir.join(manifest_name(generation));
            let attempt = storage
                .read(&mpath)
                .map_err(|e| StoreError::io(StoreOp::Read, &mpath, e))
                .and_then(|bytes| {
                    parse_manifest(&bytes, generation).map_err(|e| StoreError::format(&mpath, e))
                });
            match attempt {
                Ok(m) => {
                    chosen = Some((generation, m));
                    break;
                }
                Err(e) => {
                    let _ = newest_err.get_or_insert(e);
                    report.manifests_skipped += 1;
                }
            }
        }
        let Some((generation, manifest)) = chosen else {
            return Err(newest_err.unwrap_or_else(|| StoreError::no_generation(dir)));
        };
        report.generation = generation;
        let mut segments: Vec<Segment> = Vec::with_capacity(manifest.entries.len());
        for (i, &(kind, seg_len)) in manifest.entries.iter().enumerate() {
            let sealed = kind != SegmentKind::Hot;
            let spath = dir.join(segment_name(generation, i, sealed));
            let bytes = match storage.read(&spath) {
                Ok(b) => b,
                Err(e) => {
                    report.quarantined.push(Quarantine {
                        file: spath,
                        reason: format!("read: {e}"),
                        strings_lost: seg_len,
                    });
                    report.strings_lost += seg_len;
                    continue;
                }
            };
            if sealed {
                match load_sealed(kind, &bytes) {
                    Ok(repr) if repr.len() == seg_len && seg_len > 0 => {
                        report.strings_recovered += seg_len;
                        segments.push(Segment::Sealed(Arc::new(SealedSegment::new(repr))));
                    }
                    Ok(_) => {
                        report.quarantined.push(Quarantine {
                            file: spath,
                            reason: "sealed segment length vs manifest".to_string(),
                            strings_lost: seg_len,
                        });
                        report.strings_lost += seg_len;
                    }
                    Err(e) => {
                        report.quarantined.push(Quarantine {
                            file: spath,
                            reason: e.to_string(),
                            strings_lost: seg_len,
                        });
                        report.strings_lost += seg_len;
                    }
                }
            } else {
                match replay_hot_log(&bytes, true) {
                    Ok((h, stopped)) => {
                        let got = SeqIndex::seq_len(&h);
                        let lost = seg_len.saturating_sub(got);
                        if lost > 0 || stopped.is_some() || got > seg_len {
                            report.quarantined.push(Quarantine {
                                file: spath,
                                reason: stopped
                                    .unwrap_or("hot segment length vs manifest")
                                    .to_string(),
                                strings_lost: lost,
                            });
                        }
                        report.strings_lost += lost;
                        report.strings_recovered += got;
                        report.hot_replayed += got;
                        segments.push(Segment::Hot(Arc::new(h)));
                    }
                    Err(e) => {
                        report.quarantined.push(Quarantine {
                            file: spath,
                            reason: e.to_string(),
                            strings_lost: seg_len,
                        });
                        report.strings_lost += seg_len;
                    }
                }
            }
        }
        // The store invariant: the segment list ends in a hot tail.
        if !matches!(segments.last(), Some(Segment::Hot(_))) {
            segments.push(Segment::Hot(Arc::new(DynamicWaveletTrie::new())));
        }
        let len = segments.iter().map(|g| g.len()).sum();
        let store = TieredStore::from_parts(segments, len, manifest.config);
        // Sweep stale temps — in-flight writes of a save that died.
        if let Ok(names) = storage.list(dir) {
            for name in names {
                if name.ends_with(".tmp") && is_store_file(&name) {
                    let path = dir.join(&name);
                    if storage.remove(&path).is_ok() {
                        report.temps_removed.push(path);
                    }
                }
            }
            let _ = storage.sync_dir(dir);
        }
        Ok((store, report))
    }
}
