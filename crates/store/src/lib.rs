//! # wt-store — an LSM-style tiered store over Wavelet Trie segments
//!
//! The paper's Table 1 is a tradeoff: the static Wavelet Trie
//! (Theorem 3.7) is the smallest and fastest to query, while the §4
//! dynamic variants absorb updates at O(log n) cost per bit. The paper's
//! own motivating workload — a growing URL log (§1) — wants both at once.
//! [`TieredStore`] resolves the tension the way log-structured systems do:
//!
//! * a **hot tail** ([`wavelet_trie::DynamicWaveletTrie`]) absorbs
//!   appends/inserts/deletes;
//! * once the tail reaches `seal_at` strings it is **sealed** into an
//!   immutable static segment by the structural
//!   [`wavelet_trie::DynWaveletTrie::freeze`] — a single trie walk, no
//!   re-insertion of strings;
//! * an insert/delete that lands inside a sealed segment **melts** just
//!   that segment back to dynamic form ([`wavelet_trie::WaveletTrie::thaw`]);
//! * **compaction** merges adjacent small segments (thaw + append +
//!   freeze) so the segment count stays bounded by `max_sealed`.
//!
//! Global positions are routed through an Elias–Fano-backed segment
//! directory ([`wt_bits::EliasFano`] over the cumulative segment lengths).
//! Queries merge per-segment answers: `rank`/`count` sum across segments,
//! `select` walks segment counts with early exit, and the §5 analytics
//! (distinct values, majority, frequent) combine per-segment results
//! exactly — every operation returns the same answer a single monolithic
//! Wavelet Trie over the concatenated sequence would (the randomized
//! op-interleave suite pins this against a naive oracle).
//!
//! Heterogeneous segments — static or dynamic — sit behind the object-safe
//! [`SeqIndex`] trait; the store itself implements [`SeqIndex`] too, so a
//! `Box<dyn SeqIndex>` may hold a plain trie or a whole tiered store.
//!
//! The store keeps the global string set **prefix-free across segments**
//! (checked per insert with one descent per segment), preserving the §3
//! invariant the per-segment tries rely on and keeping results identical
//! to the monolithic equivalent.
//!
//! # Concurrency model: epoch-swapped snapshots
//!
//! The store serves concurrent traffic with a single-writer /
//! many-readers design (see the [`snapshot`] module docs for the full
//! picture):
//!
//! * Every handle here is thread-safe: [`TieredStore`], [`StoreReader`]
//!   and [`StoreSnapshot`] are all `Send + Sync` (compile-time asserted
//!   below). Mutation goes through `&mut self`, so Rust's borrow rules
//!   enforce the single writer statically.
//! * The writer calls [`TieredStore::publish`] at the consistency points
//!   it chooses; each publish freezes the current segment manifest into an
//!   immutable epoch and swaps it into a shared slot.
//! * Readers hold a [`StoreReader`] (from [`TieredStore::reader`]) and
//!   take [`StoreSnapshot`]s from any thread, wait-free of the query path:
//!   a snapshot is an `Arc` of the published epoch and keeps answering
//!   bit-identically to its publish point no matter what the writer does
//!   next — sealed segments are immutable behind `Arc`, and the hot tail
//!   is copy-on-write ([`std::sync::Arc::make_mut`]), so the writer's
//!   post-publish mutations land on a private copy.
//! * Background maintenance — seal, compact, persist, publish — runs
//!   under panic containment with retries and a structured report; see
//!   [`TieredStore::maintain`] and the [`maintain`] module. A maintenance
//!   step that fails or panics leaves the previous epoch served
//!   bit-identically; nothing observable from the query API ever panics
//!   or poisons a lock (the interleave harness in `tests/interleave.rs`
//!   enumerates every step and proves it).
//!
//! Interior caches (the lazily rebuilt segment directory and the
//! per-sealed-segment `admits` memo) are poison-proof mutexes: they hold
//! pure memoized values, so a panic mid-update cannot violate an
//! invariant, and both sides recover the lock instead of cascading the
//! panic.

pub mod durable;
pub mod error;
pub mod maintain;
pub(crate) mod merged;
pub mod snapshot;
pub mod text;

pub use error::{Quarantine, RecoveryReport, StoreError, StoreErrorCause, StoreOp};
pub use maintain::{
    Maintenance, MaintenanceFailure, MaintenanceProbe, MaintenanceReport, MaintenanceStep, NoProbe,
};
pub use snapshot::{StoreReader, StoreSnapshot};
pub use text::TieredStrings;

use std::sync::{Arc, Mutex, PoisonError};

use crate::merged::{impl_seq_index_for_segmented, SegmentedRead};
use crate::snapshot::{Epoch, EpochSlot};
use wavelet_trie::{DynamicWaveletTrie, PathDecompTrie, SeqIndex, TrieShape, WaveletTrie};
use wt_bits::{EliasFano, SpaceUsage};
use wt_trie::{BitStr, BitString, PrefixFreeViolation};

// Compile-time pins of the thread-safety story documented above: every
// public handle is fully thread-safe — the store itself (share `&TieredStore`
// for reads, `&mut` for the single writer), the reader handle, and the
// snapshots served to query threads — as are the shared read-only
// structures underneath (scoped-thread construction and cross-thread
// readers depend on those).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    // The store handle: thread-safe; `&mut` statically enforces one writer.
    assert_send_sync::<TieredStore>();
    assert_send_sync::<text::TieredStrings>();
    // The concurrent-serving surface.
    assert_send_sync::<StoreReader>();
    assert_send_sync::<StoreSnapshot>();
    // Sealed-segment payloads (and anything built from them): both static
    // representations a seal can choose.
    assert_send_sync::<WaveletTrie>();
    assert_send_sync::<PathDecompTrie>();
    // The compressed bitvector substrate of every static segment.
    assert_send_sync::<wt_bits::RrrVector>();
    // The hot tier freezes on worker threads via `&DynamicWaveletTrie`.
    assert_send_sync::<DynamicWaveletTrie>();
};

/// Worker threads for segment freezes: the machine's parallelism, bounded.
pub(crate) fn auto_freeze_threads() -> usize {
    std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1)
        .min(8)
}

/// Tiering policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Hot-segment size (in strings) that triggers an automatic seal.
    pub seal_at: usize,
    /// Compaction keeps at most this many sealed segments by merging the
    /// adjacent pair with the smallest combined length.
    pub max_sealed: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            seal_at: 8192,
            max_sealed: 8,
        }
    }
}

/// Slots in a sealed segment's `admits` memo: big enough for the working
/// set of a duplicate-heavy append stream, small enough to scan linearly.
const ADMITS_CACHE_SLOTS: usize = 8;

/// Per-generation memo of recent `admits` verdicts for one **sealed**
/// segment. A sealed segment's string set never changes, so a verdict is a
/// pure function of the segment and stays valid for its whole lifetime;
/// the memo is dropped with the segment when it melts or merges (the next
/// generation gets a fresh one). Append-heavy workloads repeat a small
/// working set of strings, and without the memo every insert re-ran one
/// prefix-check descent per sealed segment per call.
#[derive(Clone, Debug, Default)]
struct AdmitsCache {
    entries: Vec<(BitString, bool)>,
    /// Ring cursor: next slot to evict once full.
    next: usize,
}

impl AdmitsCache {
    fn lookup(&self, s: BitStr<'_>) -> Option<bool> {
        self.entries
            .iter()
            .find(|(k, _)| k.as_bitstr() == s)
            .map(|&(_, v)| v)
    }

    fn store(&mut self, s: BitStr<'_>, verdict: bool) {
        if self.entries.len() < ADMITS_CACHE_SLOTS {
            self.entries.push((s.to_owned_str(), verdict));
        } else {
            self.entries[self.next] = (s.to_owned_str(), verdict);
            self.next = (self.next + 1) % ADMITS_CACHE_SLOTS;
        }
    }
}

/// The representation of a sealed segment's payload, chosen adaptively at
/// seal/compact time (see [`StaticRepr::choose_with_threads`]): shallow
/// url-like segments keep the preorder wavelet trie, deep near-distinct
/// ints-like segments get the centroid path decomposition of the same
/// binary trie. The two answer every query bit-identically, so the choice
/// is invisible to the read path.
#[derive(Debug)]
pub(crate) enum StaticRepr {
    /// The preorder static wavelet trie (Theorem 3.7).
    Wt(WaveletTrie),
    /// The path-decomposed static trie over the same binary trie.
    Pd(PathDecompTrie),
}

impl StaticRepr {
    /// Picks the representation for a freshly frozen segment from its
    /// measured shape: path-decompose iff the segment is mostly-distinct
    /// AND its occurrence-weighted average trie depth `h̃` is a constant
    /// fraction of `log2 n` (all O(1) reads off the frozen trie — no
    /// extra walk for the decision itself). Duplication-heavy segments
    /// stay on the wavelet trie even when deep: their queries collapse
    /// into shared descents, which the grouped batch kernels exploit
    /// better on the preorder layout. The conversion, when chosen, is one
    /// structural walk with the RRR re-encoding spread over `threads`
    /// workers.
    pub(crate) fn choose_with_threads(wt: WaveletTrie, threads: usize) -> Self {
        if wavelet_trie::stats::prefers_path_decomposition(
            wt.len(),
            wt.n_distinct(),
            SeqIndex::avg_height(&wt),
        ) {
            StaticRepr::Pd(PathDecompTrie::from_static_with_threads(&wt, threads))
        } else {
            StaticRepr::Wt(wt)
        }
    }

    /// The object-safe query view.
    pub(crate) fn index(&self) -> &dyn SeqIndex {
        match self {
            StaticRepr::Wt(wt) => wt,
            StaticRepr::Pd(pd) => pd,
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            StaticRepr::Wt(wt) => wt.len(),
            StaticRepr::Pd(pd) => pd.len(),
        }
    }

    /// Melts back to the dynamic form, structurally for either layout.
    pub(crate) fn thaw(&self) -> DynamicWaveletTrie {
        match self {
            StaticRepr::Wt(wt) => wt.thaw(),
            StaticRepr::Pd(pd) => pd.thaw(),
        }
    }

    /// Versioned archive bytes; the embedded archive kind distinguishes
    /// the two layouts on load.
    pub(crate) fn save_bytes(&self) -> Vec<u8> {
        match self {
            StaticRepr::Wt(wt) => wt.save_bytes(),
            StaticRepr::Pd(pd) => pd.save_bytes(),
        }
    }

    pub(crate) fn size_bits(&self) -> usize {
        match self {
            StaticRepr::Wt(wt) => wt.size_bits(),
            StaticRepr::Pd(pd) => pd.size_bits(),
        }
    }
}

/// An immutable static segment plus its admits memo. Shared between the
/// live store and any number of published epochs behind an `Arc`.
#[derive(Debug)]
pub(crate) struct SealedSegment {
    pub(crate) repr: StaticRepr,
    /// Memoized `admits` verdicts. A poison-proof mutex, not a `RefCell`:
    /// concurrent readers may race on the memo, and a panic mid-update
    /// cannot corrupt it (entries are inserted whole), so a poisoned lock
    /// is recovered rather than propagated.
    admits: Mutex<AdmitsCache>,
}

impl SealedSegment {
    pub(crate) fn new(repr: StaticRepr) -> Self {
        SealedSegment {
            repr,
            admits: Mutex::new(AdmitsCache::default()),
        }
    }

    /// The §3 prefix-free check through the per-generation memo.
    fn admits_cached(&self, s: BitStr<'_>) -> bool {
        if let Some(v) = self
            .admits
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .lookup(s)
        {
            return v;
        }
        let v = self.repr.index().admits(s);
        self.admits
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .store(s, v);
        v
    }
}

/// Kind of a segment, as reported by [`TieredStore::segment_kinds`] — the
/// observable face of the adaptive representation choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegmentKind {
    /// Mutable dynamic segment (the hot tail or a melted middle).
    Hot,
    /// Sealed segment in the preorder wavelet-trie layout.
    Wavelet,
    /// Sealed segment in the path-decomposed layout.
    PathDecomp,
}

/// One tier member: an immutable sealed segment or a hot dynamic one.
/// Cloning is an `Arc` bump — epochs share segments with the live store;
/// the writer mutates hot segments copy-on-write via [`Arc::make_mut`].
#[derive(Clone, Debug)]
pub(crate) enum Segment {
    Sealed(Arc<SealedSegment>),
    Hot(Arc<DynamicWaveletTrie>),
}

impl Segment {
    fn new_hot() -> Self {
        Segment::Hot(Arc::new(DynamicWaveletTrie::new()))
    }

    /// The object-safe query view — static and dynamic segments are
    /// indistinguishable to the read path.
    pub(crate) fn index(&self) -> &dyn SeqIndex {
        match self {
            Segment::Sealed(s) => s.repr.index(),
            Segment::Hot(h) => h.as_ref(),
        }
    }

    pub(crate) fn kind(&self) -> SegmentKind {
        match self {
            Segment::Sealed(s) => match s.repr {
                StaticRepr::Wt(_) => SegmentKind::Wavelet,
                StaticRepr::Pd(_) => SegmentKind::PathDecomp,
            },
            Segment::Hot(_) => SegmentKind::Hot,
        }
    }

    /// `admits`, memoized for sealed segments (hot ones mutate, so their
    /// verdicts are computed fresh).
    pub(crate) fn admits(&self, s: BitStr<'_>) -> bool {
        match self {
            Segment::Sealed(g) => g.admits_cached(s),
            Segment::Hot(h) => SeqIndex::admits(h.as_ref(), s),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            Segment::Sealed(s) => s.repr.len(),
            Segment::Hot(h) => h.len(),
        }
    }

    pub(crate) fn is_sealed(&self) -> bool {
        matches!(self, Segment::Sealed(_))
    }
}

/// A tiered indexed sequence of binary strings (see the crate docs).
///
/// The segment list always ends in a hot tail (possibly empty); sealed
/// segments and melted middles precede it in sequence order.
///
/// Queries through `&TieredStore` read the **live** state (and are safe
/// from any thread — the handle is `Sync`); concurrent serving against a
/// mutating store goes through published [`StoreSnapshot`]s instead (see
/// [`TieredStore::publish`] / [`TieredStore::reader`]).
#[derive(Debug)]
pub struct TieredStore {
    segments: Vec<Segment>,
    len: usize,
    config: StoreConfig,
    /// Elias–Fano over cumulative segment lengths (`segments.len() + 1`
    /// values starting at 0); rebuilt lazily after any mutation. A
    /// poison-proof mutex: it memoizes a pure function of `segments`, so
    /// recovery from a poisoned lock is always sound.
    directory: Mutex<Option<EliasFano>>,
    /// The published-epoch slot shared with every [`StoreReader`].
    slot: Arc<EpochSlot>,
    /// Last published epoch version (0 = the construction-time epoch).
    version: u64,
}

impl Default for TieredStore {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for TieredStore {
    /// Clones the store: segments are shared structurally (`Arc`), but the
    /// clone gets its **own** epoch slot — existing [`StoreReader`]s keep
    /// following the original, and the clone starts its version counter
    /// afresh with its current state published.
    fn clone(&self) -> Self {
        let segments = self.segments.clone();
        let slot = Arc::new(EpochSlot::new(Epoch::new(0, segments.clone(), self.len)));
        TieredStore {
            segments,
            len: self.len,
            config: self.config,
            directory: Mutex::new(None),
            slot,
            version: 0,
        }
    }
}

impl TieredStore {
    /// An empty store with the default policy.
    pub fn new() -> Self {
        Self::with_config(StoreConfig::default())
    }

    /// An empty store with an explicit policy.
    pub fn with_config(config: StoreConfig) -> Self {
        Self::from_parts(vec![Segment::new_hot()], 0, config)
    }

    /// Assembles a store from loaded parts and publishes the initial
    /// epoch (version 0) so readers can serve immediately.
    pub(crate) fn from_parts(segments: Vec<Segment>, len: usize, config: StoreConfig) -> Self {
        let slot = Arc::new(EpochSlot::new(Epoch::new(0, segments.clone(), len)));
        TieredStore {
            segments,
            len,
            config,
            directory: Mutex::new(None),
            slot,
            version: 0,
        }
    }

    /// Number of strings stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The active policy.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Total number of segments (including the hot tail).
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Number of sealed (static) segments.
    pub fn sealed_segments(&self) -> usize {
        self.segments.iter().filter(|g| g.is_sealed()).count()
    }

    /// Lengths of the segments, in sequence order.
    pub fn segment_lens(&self) -> Vec<usize> {
        self.segments.iter().map(|g| g.len()).collect()
    }

    /// Representation of each segment, in sequence order.
    pub fn segment_kinds(&self) -> Vec<SegmentKind> {
        self.segments.iter().map(|g| g.kind()).collect()
    }

    /// Trie-shape probe of each segment, in sequence order. O(distinct)
    /// per segment — a diagnostic, not a hot-path call.
    pub fn segment_shapes(&self) -> Vec<TrieShape> {
        self.segments
            .iter()
            .map(|g| match g {
                Segment::Hot(h) => wavelet_trie::stats::trie_shape(&**h),
                Segment::Sealed(s) => match &s.repr {
                    StaticRepr::Wt(wt) => wavelet_trie::stats::trie_shape(wt),
                    StaticRepr::Pd(pd) => wavelet_trie::stats::trie_shape(pd),
                },
            })
            .collect()
    }

    /// Object-safe view of segment `i` (sequence order).
    pub fn segment(&self, i: usize) -> &dyn SeqIndex {
        self.segments[i].index()
    }

    /// Iterates the segments as object-safe indexes, in sequence order.
    pub fn segment_indexes(&self) -> impl Iterator<Item = &dyn SeqIndex> {
        self.segments.iter().map(|g| g.index())
    }

    // --- concurrent serving ------------------------------------------------

    /// Publishes the current state as a new immutable epoch and returns a
    /// snapshot of it. Readers (via [`TieredStore::reader`]) switch to the
    /// new epoch on their next `snapshot()`; snapshots already taken keep
    /// serving their own epoch unchanged.
    ///
    /// Cost: O(#segments) `Arc` clones plus one small Elias–Fano build,
    /// and the writer's *next* mutation of the hot tail pays one
    /// copy-on-write clone of it (none if the tail was empty here).
    pub fn publish(&mut self) -> StoreSnapshot {
        self.version += 1;
        let epoch = Arc::new(Epoch::new(self.version, self.segments.clone(), self.len));
        self.slot.swap(Arc::clone(&epoch));
        StoreSnapshot::from_epoch(epoch)
    }

    /// Version of the last published epoch (0 until the first
    /// [`TieredStore::publish`]).
    pub fn published_version(&self) -> u64 {
        self.version
    }

    /// A cloneable, `Send + Sync` handle for taking snapshots of this
    /// store's published state from any thread.
    pub fn reader(&self) -> StoreReader {
        StoreReader {
            slot: Arc::clone(&self.slot),
        }
    }

    // --- mutation ----------------------------------------------------------

    /// Appends `s` at the end (the hot tail), sealing/compacting per the
    /// policy afterwards.
    ///
    /// # Errors
    /// [`PrefixFreeViolation`] if `s` would break the global prefix-free
    /// invariant; the store is unchanged in that case.
    pub fn append(&mut self, s: BitStr<'_>) -> Result<(), PrefixFreeViolation> {
        let n = self.len;
        self.insert(s, n)
    }

    /// Inserts `s` immediately before global position `pos`. An insert
    /// into a sealed segment melts that segment back to dynamic form.
    ///
    /// # Errors
    /// [`PrefixFreeViolation`] if `s` would break the global prefix-free
    /// invariant; the store is unchanged in that case.
    ///
    /// # Panics
    /// If `pos > len()`.
    pub fn insert(&mut self, s: BitStr<'_>, pos: usize) -> Result<(), PrefixFreeViolation> {
        assert!(pos <= self.len, "insert position out of bounds");
        if !self.segments.iter().all(|g| g.admits(s)) {
            return Err(PrefixFreeViolation);
        }
        let (seg, off) = self.locate_for_insert(pos);
        self.melt(seg);
        match &mut self.segments[seg] {
            // `admits` above checked every segment, including this one, so
            // the insert cannot raise a prefix-free violation here.
            Segment::Hot(h) => Arc::make_mut(h)
                .insert(s, off)
                .expect("pre-checked by admits"),
            Segment::Sealed(_) => unreachable!("melted above"),
        }
        self.len += 1;
        self.invalidate_directory();
        self.roll();
        Ok(())
    }

    /// Removes and returns the string at global position `pos`, melting
    /// the owning segment if it was sealed.
    ///
    /// # Panics
    /// If `pos >= len()`.
    pub fn delete(&mut self, pos: usize) -> BitString {
        assert!(pos < self.len, "delete position out of bounds");
        let (seg, off) = self.locate(pos);
        self.melt(seg);
        let out = match &mut self.segments[seg] {
            Segment::Hot(h) => Arc::make_mut(h).delete(off),
            Segment::Sealed(_) => unreachable!("melted above"),
        };
        self.len -= 1;
        if self.segments[seg].len() == 0 && seg + 1 != self.segments.len() {
            self.segments.remove(seg);
        }
        self.invalidate_directory();
        out
    }

    /// Seals every hot segment (structural freeze) and starts a fresh hot
    /// tail. Never merges; call [`TieredStore::compact`] for that.
    /// Freezing uses the machine's available parallelism; see
    /// [`TieredStore::seal_with_threads`].
    pub fn seal(&mut self) {
        self.seal_with_threads(auto_freeze_threads());
    }

    /// [`TieredStore::seal`] with an explicit worker-thread count: multiple
    /// hot segments (a melted middle plus the tail) freeze concurrently on
    /// scoped threads; a single hot segment spreads its succinct assembly
    /// (RRR encode, DFUDS, delimiters) across the workers instead. The
    /// resulting segments are bit-identical to a serial seal.
    ///
    /// # Panics
    /// Re-raises a freeze-worker panic (a library bug, not an I/O
    /// condition) — after restoring the store to a valid, fully
    /// serviceable state; published epochs are never affected. For
    /// contained, reported failures use [`TieredStore::maintain`].
    pub fn seal_with_threads(&mut self, threads: usize) {
        let mut failures = Vec::new();
        self.seal_probed(threads, &NoProbe, &mut failures);
        if let Some(f) = failures.into_iter().next() {
            panic!("seal: {f}");
        }
    }

    /// Freezes melted middle segments and merges adjacent sealed segments
    /// (thaw + append + freeze, smallest combined length first) until at
    /// most `max_sealed` sealed segments remain. Freezing parallelizes as
    /// in [`TieredStore::seal`].
    pub fn compact(&mut self) {
        self.compact_with_threads(auto_freeze_threads());
    }

    /// [`TieredStore::compact`] with an explicit worker-thread count.
    ///
    /// # Panics
    /// Re-raises a freeze-worker panic, as [`TieredStore::seal_with_threads`]
    /// does; the store remains valid and published epochs are unaffected.
    pub fn compact_with_threads(&mut self, threads: usize) {
        let mut failures = Vec::new();
        self.compact_probed(threads, &NoProbe, &mut failures);
        if let Some(f) = failures.into_iter().next() {
            panic!("compact: {f}");
        }
    }

    /// Adjacent `(i, i+1)` sealed pairs with their combined length.
    pub(crate) fn sealed_adjacent_pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.segments
            .windows(2)
            .enumerate()
            .filter(|(_, w)| w[0].is_sealed() && w[1].is_sealed())
            .map(|(i, w)| (i, w[0].len() + w[1].len()))
    }

    /// Melts segment `seg` back to dynamic form if it is sealed.
    fn melt(&mut self, seg: usize) {
        if let Segment::Sealed(sealed) = &self.segments[seg] {
            let hot: DynamicWaveletTrie = sealed.repr.thaw();
            self.segments[seg] = Segment::Hot(Arc::new(hot));
        }
    }

    /// Policy hook run after every insert: auto-seal once the hot **tail**
    /// reaches `seal_at`, then bound the sealed-segment count. Melted
    /// middle segments are deliberately not a trigger — they must stay
    /// dynamic between edits (re-freezing them on every insert would make
    /// n middle edits cost O(n · segment bits)); they are re-frozen only
    /// when a tail roll or an explicit [`TieredStore::seal`] /
    /// [`TieredStore::compact`] happens.
    fn roll(&mut self) {
        let tail_full = matches!(
            self.segments.last(),
            Some(Segment::Hot(h)) if h.len() >= self.config.seal_at
        );
        if tail_full {
            self.seal();
            if self.sealed_segments() > self.config.max_sealed {
                self.compact();
            }
        }
    }

    // --- position routing --------------------------------------------------

    /// Drops the memoized position directory after a mutation.
    pub(crate) fn invalidate_directory(&mut self) {
        *self
            .directory
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner) = None;
    }

    /// Like [`SegmentedRead::locate`] but accepts `pos == len` (append)
    /// and redirects boundary positions to a preceding hot segment where
    /// that avoids melting a sealed one.
    fn locate_for_insert(&self, pos: usize) -> (usize, usize) {
        if pos == self.len {
            let last = self.segments.len() - 1;
            return (last, self.segments[last].len());
        }
        let (seg, off) = self.locate(pos);
        if off == 0 && seg > 0 && !self.segments[seg - 1].is_sealed() {
            // Inserting at a boundary: appending to the hot predecessor is
            // equivalent and cheaper than melting `seg`.
            return (seg - 1, self.segments[seg - 1].len());
        }
        (seg, off)
    }
}

impl SegmentedRead for TieredStore {
    fn segments(&self) -> &[Segment] {
        &self.segments
    }

    fn total_len(&self) -> usize {
        self.len
    }

    fn with_directory<R>(&self, f: impl FnOnce(&EliasFano) -> R) -> R {
        let mut slot = self
            .directory
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let ef = slot.get_or_insert_with(|| {
            EliasFano::prefix_sums(self.segments.iter().map(|g| g.len() as u64))
        });
        f(ef)
    }
}

impl_seq_index_for_segmented!(TieredStore);

impl SpaceUsage for TieredStore {
    fn size_bits(&self) -> usize {
        let segs: usize = self
            .segments
            .iter()
            .map(|g| match g {
                Segment::Sealed(s) => s.repr.size_bits(),
                Segment::Hot(h) => h.size_bits(),
            })
            .sum();
        let dir = self
            .directory
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map_or(0, |ef| ef.size_bits());
        segs + dir + 4 * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(s: &str) -> BitString {
        BitString::parse(s)
    }

    fn encode(v: u64) -> BitString {
        BitString::from_bits((0..10).rev().map(move |k| (v >> k) & 1 != 0))
    }

    fn tiny() -> TieredStore {
        TieredStore::with_config(StoreConfig {
            seal_at: 8,
            max_sealed: 3,
        })
    }

    #[test]
    fn appends_seal_and_compact_automatically() {
        let mut st = tiny();
        for i in 0..100u64 {
            st.append(encode(i % 30).as_bitstr()).unwrap();
        }
        assert_eq!(st.len(), 100);
        // seal_at = 8 ⇒ many seals happened; compaction bounds the count.
        assert!(st.sealed_segments() <= 3 + 1, "{:?}", st.segment_lens());
        assert!(st.num_segments() >= 2);
        for i in 0..100u64 {
            assert_eq!(st.access(i as usize), encode(i % 30), "access({i})");
        }
        let probe = encode(7);
        assert_eq!(st.count(probe.as_bitstr()), 4); // 7, 37, 67, 97
        assert_eq!(st.select(probe.as_bitstr(), 2), Some(67));
        assert_eq!(st.rank(probe.as_bitstr(), 68), 3);
    }

    #[test]
    fn inserts_melt_sealed_segments() {
        let mut st = tiny();
        for i in 0..32u64 {
            st.append(encode(i).as_bitstr()).unwrap();
        }
        st.seal();
        let sealed_before = st.sealed_segments();
        assert!(sealed_before >= 1);
        // Insert into the middle of a sealed segment.
        st.insert(encode(40).as_bitstr(), 3).unwrap();
        assert_eq!(st.access(3), encode(40));
        assert_eq!(st.access(2), encode(2));
        assert_eq!(st.access(4), encode(3));
        assert_eq!(st.len(), 33);
        // Delete from a sealed segment.
        let gone = st.delete(3);
        assert_eq!(gone, encode(40));
        assert_eq!(st.len(), 32);
        assert_eq!(st.access(3), encode(3));
        // compact() re-freezes the melted middles.
        st.compact();
        assert_eq!(st.num_segments() - 1, st.sealed_segments());
    }

    #[test]
    fn melted_middle_stays_hot_across_edits() {
        let mut st = tiny();
        for i in 0..16u64 {
            st.append(encode(i).as_bitstr()).unwrap();
        }
        st.seal();
        let sealed_before = st.sealed_segments();
        // Repeated edits at the front: the first melts, the rest must hit
        // the already-hot segment — no thaw/freeze cycle per insert, and
        // the melted middle must not trip the auto-seal even though its
        // length exceeds seal_at.
        for k in 0..6 {
            st.insert(encode(30 + k).as_bitstr(), 0).unwrap();
            st.delete(1);
        }
        assert_eq!(st.sealed_segments(), sealed_before - 1, "one melt only");
        assert_eq!(st.len(), 16);
        // An explicit compact re-freezes it.
        st.compact();
        assert_eq!(st.sealed_segments(), st.num_segments() - 1);
    }

    #[test]
    fn global_prefix_freeness_is_enforced() {
        let mut st = tiny();
        st.append(bs("0100").as_bitstr()).unwrap();
        st.seal();
        // "01" is a prefix of "0100", which lives in a *sealed* segment.
        assert!(st.append(bs("01").as_bitstr()).is_err());
        assert!(st.append(bs("01001").as_bitstr()).is_err());
        assert!(st.append(bs("0100").as_bitstr()).is_ok()); // duplicate
        assert!(st.append(bs("0111").as_bitstr()).is_ok());
        assert_eq!(st.len(), 3);
        assert!(!st.admits(bs("011").as_bitstr()));
        assert!(st.admits(bs("00").as_bitstr()));
    }

    #[test]
    fn boundary_insert_prefers_hot_predecessor() {
        let mut st = tiny();
        for i in 0..4u64 {
            st.append(encode(i).as_bitstr()).unwrap();
        }
        // segments: [hot(4)] — insert at 0 stays in the only segment.
        st.insert(encode(9).as_bitstr(), 0).unwrap();
        assert_eq!(st.access(0), encode(9));
        st.seal();
        // segments: [sealed(5), hot(0)]; insert at len lands in the tail.
        st.insert(encode(8).as_bitstr(), 5).unwrap();
        assert_eq!(st.sealed_segments(), 1, "no melt for a tail append");
        assert_eq!(st.access(5), encode(8));
    }

    #[test]
    fn empty_store_queries() {
        let st = TieredStore::new();
        assert!(st.is_empty());
        assert_eq!(st.count(bs("01").as_bitstr()), 0);
        assert_eq!(st.select(bs("01").as_bitstr(), 0), None);
        assert_eq!(st.distinct_len(), 0);
        assert_eq!(st.distinct_in_range(0, 0), vec![]);
        assert_eq!(st.range_majority(0, 0), None);
        assert_eq!(st.iter_seq_boxed().count(), 0);
    }

    /// Naive prefix-freeness oracle over the stored multiset: `s` may join
    /// iff every stored `t` equals `s` or diverges before either ends.
    fn naive_admits(strings: &[BitString], s: BitStr<'_>) -> bool {
        strings.iter().all(|t| {
            let t = t.as_bitstr();
            t == s || t.lcp(&s) < t.len().min(s.len())
        })
    }

    #[test]
    fn admits_cache_matches_uncached_oracle() {
        let mut s = 0xCAC4Eu64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut st = tiny();
        let mut model: Vec<BitString> = Vec::new();
        // Variable-length strings so prefix relations actually occur.
        let probe_pool: Vec<BitString> = (0..40)
            .map(|k| {
                let len = 3 + (k % 9);
                let v = k as u64 * 2654435761 % (1 << len);
                BitString::from_bits((0..len).rev().map(move |b| (v >> b) & 1 != 0))
            })
            .collect();
        for step in 0..400 {
            let q = &probe_pool[(next() % probe_pool.len() as u64) as usize];
            // Probe twice: the second hit exercises the sealed-segment memo.
            let want = naive_admits(&model, q.as_bitstr());
            assert_eq!(st.admits(q.as_bitstr()), want, "admits step {step}");
            assert_eq!(st.admits(q.as_bitstr()), want, "admits (cached) {step}");
            match next() % 10 {
                0..=5 => {
                    if want {
                        let pos = (next() % (model.len() as u64 + 1)) as usize;
                        st.insert(q.as_bitstr(), pos).unwrap();
                        model.insert(pos, q.clone());
                    } else {
                        assert!(st.insert(q.as_bitstr(), 0).is_err());
                    }
                }
                6 if !model.is_empty() => {
                    let pos = (next() % model.len() as u64) as usize;
                    assert_eq!(st.delete(pos), model.remove(pos));
                }
                7 => st.seal(),
                _ => {}
            }
        }
        // A mutation that changes a verdict must invalidate the memo: the
        // only occurrence of a string leaving flips its prefixes to valid.
        let mut st = tiny();
        st.append(bs("0100").as_bitstr()).unwrap();
        st.seal();
        assert!(!st.admits(bs("01").as_bitstr()));
        assert!(!st.admits(bs("01").as_bitstr())); // cached verdict
        st.delete(0);
        assert!(st.admits(bs("01").as_bitstr()), "stale admits verdict");
    }

    #[test]
    fn parallel_seal_and_compact_match_serial() {
        let build = |threads: usize| {
            let mut st = TieredStore::with_config(StoreConfig {
                seal_at: 64,
                max_sealed: 4,
            });
            for i in 0..200u64 {
                st.append(encode(i % 50).as_bitstr()).unwrap();
            }
            // Melt two middles so multiple hot segments freeze at once.
            st.insert(encode(51).as_bitstr(), 10).unwrap();
            st.insert(encode(52).as_bitstr(), 130).unwrap();
            assert!(st.segments.iter().filter(|g| !g.is_sealed()).count() > 1);
            st.seal_with_threads(threads);
            st.compact_with_threads(threads);
            st
        };
        let serial = build(1);
        let par = build(4);
        assert_eq!(serial.len(), par.len());
        assert_eq!(serial.segment_lens(), par.segment_lens());
        assert_eq!(serial.size_bits(), par.size_bits(), "bit-identical freeze");
        for i in (0..serial.len()).step_by(7) {
            assert_eq!(serial.access(i), par.access(i), "access({i})");
        }
        for v in 0..53u64 {
            let s = encode(v);
            assert_eq!(serial.count(s.as_bitstr()), par.count(s.as_bitstr()));
        }
    }

    #[test]
    fn store_is_object_safe_alongside_plain_tries() {
        let mut st = tiny();
        let mut dynamic = DynamicWaveletTrie::new();
        for i in 0..20u64 {
            st.append(encode(i % 6).as_bitstr()).unwrap();
            dynamic.append(encode(i % 6).as_bitstr()).unwrap();
        }
        st.seal();
        let indexes: Vec<Box<dyn SeqIndex>> = vec![Box::new(st), Box::new(dynamic)];
        for idx in &indexes {
            assert_eq!(idx.seq_len(), 20);
            assert_eq!(idx.count(encode(3).as_bitstr()), 3);
            assert_eq!(idx.count(encode(1).as_bitstr()), 4);
            assert_eq!(idx.distinct_len(), 6);
        }
    }

    #[test]
    fn snapshots_are_frozen_across_every_mutation_kind() {
        let mut st = tiny();
        for i in 0..20u64 {
            st.append(encode(i).as_bitstr()).unwrap();
        }
        let reader = st.reader();
        let snap = st.publish();
        assert_eq!(snap.version(), 1);
        let frozen: Vec<BitString> = snap.iter_seq_boxed().collect();
        assert_eq!(frozen.len(), 20);
        // Every mutation kind: append, middle insert (melts), delete,
        // seal, compact — the snapshot must not move.
        st.append(encode(90).as_bitstr()).unwrap();
        st.insert(encode(91).as_bitstr(), 3).unwrap();
        st.delete(0);
        st.seal();
        st.compact();
        assert_eq!(snap.len(), 20);
        let after: Vec<BitString> = snap.iter_seq_boxed().collect();
        assert_eq!(frozen, after, "published epoch must stay bit-identical");
        assert_eq!(snap.count(encode(90).as_bitstr()), 0, "no write leakage");
        // The reader still serves version 1 until the writer re-publishes.
        assert_eq!(reader.snapshot().version(), 1);
        let snap2 = st.publish();
        assert_eq!(snap2.version(), 2);
        assert_eq!(reader.snapshot().version(), 2);
        assert_eq!(snap2.count(encode(90).as_bitstr()), 1);
        // And the old snapshot still hasn't moved.
        assert_eq!(snap.iter_seq_boxed().collect::<Vec<_>>(), frozen);
    }

    #[test]
    fn snapshot_queries_match_live_store() {
        let mut st = tiny();
        for i in 0..60u64 {
            st.append(encode(i % 17).as_bitstr()).unwrap();
        }
        st.insert(encode(40).as_bitstr(), 5).unwrap(); // melt a middle
        let snap = st.publish();
        assert_eq!(snap.num_segments(), st.num_segments());
        assert_eq!(snap.sealed_segments(), st.sealed_segments());
        for i in 0..st.len() {
            assert_eq!(snap.access(i), st.access(i), "access({i})");
        }
        for v in 0..18u64 {
            let s = encode(v);
            assert_eq!(snap.count(s.as_bitstr()), st.count(s.as_bitstr()));
            assert_eq!(snap.select(s.as_bitstr(), 1), st.select(s.as_bitstr(), 1));
        }
        assert_eq!(snap.distinct_len(), st.distinct_len());
        let positions: Vec<usize> = (0..st.len()).collect();
        assert_eq!(snap.access_batch(&positions), st.access_batch(&positions));
    }

    #[test]
    fn reader_serves_from_other_threads() {
        let mut st = tiny();
        for i in 0..30u64 {
            st.append(encode(i % 7).as_bitstr()).unwrap();
        }
        st.publish();
        let reader = st.reader();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let r = reader.clone();
                    scope.spawn(move || {
                        let snap = r.snapshot();
                        (0..snap.len()).map(|i| snap.access(i)).collect::<Vec<_>>()
                    })
                })
                .collect();
            let expect: Vec<BitString> = (0..30u64).map(|i| encode(i % 7)).collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), expect);
            }
        });
    }
}
