//! # wt-store — an LSM-style tiered store over Wavelet Trie segments
//!
//! The paper's Table 1 is a tradeoff: the static Wavelet Trie
//! (Theorem 3.7) is the smallest and fastest to query, while the §4
//! dynamic variants absorb updates at O(log n) cost per bit. The paper's
//! own motivating workload — a growing URL log (§1) — wants both at once.
//! [`TieredStore`] resolves the tension the way log-structured systems do:
//!
//! * a **hot tail** ([`wavelet_trie::DynamicWaveletTrie`]) absorbs
//!   appends/inserts/deletes;
//! * once the tail reaches `seal_at` strings it is **sealed** into an
//!   immutable static segment by the structural
//!   [`wavelet_trie::DynWaveletTrie::freeze`] — a single trie walk, no
//!   re-insertion of strings;
//! * an insert/delete that lands inside a sealed segment **melts** just
//!   that segment back to dynamic form ([`wavelet_trie::WaveletTrie::thaw`]);
//! * **compaction** merges adjacent small segments (thaw + append +
//!   freeze) so the segment count stays bounded by `max_sealed`.
//!
//! Global positions are routed through an Elias–Fano-backed segment
//! directory ([`wt_bits::EliasFano`] over the cumulative segment lengths,
//! rebuilt lazily after mutations). Queries merge per-segment answers:
//! `rank`/`count` sum across segments, `select` walks segment counts with
//! early exit, and the §5 analytics (distinct values, majority, frequent)
//! combine per-segment results exactly — every operation returns the same
//! answer a single monolithic Wavelet Trie over the concatenated sequence
//! would (the randomized op-interleave suite pins this against a naive
//! oracle).
//!
//! Heterogeneous segments — static or dynamic — sit behind the object-safe
//! [`SeqIndex`] trait; the store itself implements [`SeqIndex`] too, so a
//! `Box<dyn SeqIndex>` may hold a plain trie or a whole tiered store.
//!
//! The store keeps the global string set **prefix-free across segments**
//! (checked per insert with one descent per segment), preserving the §3
//! invariant the per-segment tries rely on and keeping results identical
//! to the monolithic equivalent.
//!
//! Thread-safety story: the pieces a reader actually shares across threads
//! — the static [`wavelet_trie::WaveletTrie`] inside every sealed segment,
//! and the `wt_bits` substrates under it — are fully immutable and
//! `Send + Sync` (compile-time asserted below); the parallel construction
//! paths (`seal`/`compact` freezing segments on `std::thread::scope`
//! workers, the chunk-parallel RRR encode) rely on exactly that. The
//! `TieredStore` handle itself is `Send` but **not** `Sync`: the lazily
//! rebuilt segment directory and the per-sealed-segment `admits` memo live
//! in [`RefCell`]s. Move it between threads freely, shard per thread, or
//! wrap it in a lock for concurrent mutation; for read-mostly fan-out,
//! clone sealed segments out or query them through `&dyn SeqIndex` from
//! the owning thread's batched entry points.

pub mod durable;
pub mod error;
pub mod text;

pub use error::{Quarantine, RecoveryReport, StoreError, StoreErrorCause, StoreOp};
pub use text::TieredStrings;

use std::cell::RefCell;
use std::collections::BTreeMap;

use wavelet_trie::{DynamicWaveletTrie, SeqIndex, WaveletTrie};
use wt_bits::{EliasFano, SpaceUsage};
use wt_trie::{BitStr, BitString, PrefixFreeViolation};

// Compile-time pins of the thread-safety story documented above: the
// shared read-only structures must stay `Send + Sync` (scoped-thread
// construction and cross-thread readers depend on it), and the store
// handle must stay movable between threads despite its interior caches.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    // Sealed-segment payload (and anything built from it).
    assert_send_sync::<WaveletTrie>();
    // The compressed bitvector substrate of every static segment.
    assert_send_sync::<wt_bits::RrrVector>();
    // The hot tier freezes on worker threads via `&DynamicWaveletTrie`.
    assert_send_sync::<DynamicWaveletTrie>();
    // The store handle: `Send`, deliberately not `Sync` (RefCell caches).
    assert_send::<TieredStore>();
    assert_send::<text::TieredStrings>();
};

/// Worker threads for segment freezes: the machine's parallelism, bounded.
fn auto_freeze_threads() -> usize {
    std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1)
        .min(8)
}

/// Tiering policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Hot-segment size (in strings) that triggers an automatic seal.
    pub seal_at: usize,
    /// Compaction keeps at most this many sealed segments by merging the
    /// adjacent pair with the smallest combined length.
    pub max_sealed: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            seal_at: 8192,
            max_sealed: 8,
        }
    }
}

/// Slots in a sealed segment's `admits` memo: big enough for the working
/// set of a duplicate-heavy append stream, small enough to scan linearly.
const ADMITS_CACHE_SLOTS: usize = 8;

/// Per-generation memo of recent `admits` verdicts for one **sealed**
/// segment. A sealed segment's string set never changes, so a verdict is a
/// pure function of the segment and stays valid for its whole lifetime;
/// the memo is dropped with the segment when it melts or merges (the next
/// generation gets a fresh one). Append-heavy workloads repeat a small
/// working set of strings, and without the memo every insert re-ran one
/// prefix-check descent per sealed segment per call.
#[derive(Clone, Debug, Default)]
struct AdmitsCache {
    entries: Vec<(BitString, bool)>,
    /// Ring cursor: next slot to evict once full.
    next: usize,
}

impl AdmitsCache {
    fn lookup(&self, s: BitStr<'_>) -> Option<bool> {
        self.entries
            .iter()
            .find(|(k, _)| k.as_bitstr() == s)
            .map(|&(_, v)| v)
    }

    fn store(&mut self, s: BitStr<'_>, verdict: bool) {
        if self.entries.len() < ADMITS_CACHE_SLOTS {
            self.entries.push((s.to_owned_str(), verdict));
        } else {
            self.entries[self.next] = (s.to_owned_str(), verdict);
            self.next = (self.next + 1) % ADMITS_CACHE_SLOTS;
        }
    }
}

/// An immutable static segment plus its admits memo.
#[derive(Clone, Debug)]
struct SealedSegment {
    wt: WaveletTrie,
    admits: RefCell<AdmitsCache>,
}

impl SealedSegment {
    fn new(wt: WaveletTrie) -> Self {
        SealedSegment {
            wt,
            admits: RefCell::new(AdmitsCache::default()),
        }
    }

    /// The §3 prefix-free check through the per-generation memo.
    fn admits_cached(&self, s: BitStr<'_>) -> bool {
        if let Some(v) = self.admits.borrow().lookup(s) {
            return v;
        }
        let v = SeqIndex::admits(&self.wt, s);
        self.admits.borrow_mut().store(s, v);
        v
    }
}

/// One tier member: an immutable sealed segment or a hot dynamic one.
#[derive(Clone, Debug)]
enum Segment {
    Sealed(Box<SealedSegment>),
    Hot(DynamicWaveletTrie),
}

impl Segment {
    /// The object-safe query view — static and dynamic segments are
    /// indistinguishable to the read path.
    fn index(&self) -> &dyn SeqIndex {
        match self {
            Segment::Sealed(s) => &s.wt,
            Segment::Hot(h) => h,
        }
    }

    /// `admits`, memoized for sealed segments (hot ones mutate, so their
    /// verdicts are computed fresh).
    fn admits(&self, s: BitStr<'_>) -> bool {
        match self {
            Segment::Sealed(g) => g.admits_cached(s),
            Segment::Hot(h) => SeqIndex::admits(h, s),
        }
    }

    fn len(&self) -> usize {
        match self {
            Segment::Sealed(s) => s.wt.len(),
            Segment::Hot(h) => h.len(),
        }
    }

    fn is_sealed(&self) -> bool {
        matches!(self, Segment::Sealed(_))
    }
}

/// A tiered indexed sequence of binary strings (see the crate docs).
///
/// The segment list always ends in a hot tail (possibly empty); sealed
/// segments and melted middles precede it in sequence order.
#[derive(Clone, Debug)]
pub struct TieredStore {
    segments: Vec<Segment>,
    len: usize,
    config: StoreConfig,
    /// Elias–Fano over cumulative segment lengths (`segments.len() + 1`
    /// values starting at 0); rebuilt lazily after any mutation.
    directory: RefCell<Option<EliasFano>>,
}

impl Default for TieredStore {
    fn default() -> Self {
        Self::new()
    }
}

impl TieredStore {
    /// An empty store with the default policy.
    pub fn new() -> Self {
        Self::with_config(StoreConfig::default())
    }

    /// An empty store with an explicit policy.
    pub fn with_config(config: StoreConfig) -> Self {
        TieredStore {
            segments: vec![Segment::Hot(DynamicWaveletTrie::new())],
            len: 0,
            config,
            directory: RefCell::new(None),
        }
    }

    /// Number of strings stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The active policy.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Total number of segments (including the hot tail).
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Number of sealed (static) segments.
    pub fn sealed_segments(&self) -> usize {
        self.segments.iter().filter(|g| g.is_sealed()).count()
    }

    /// Lengths of the segments, in sequence order.
    pub fn segment_lens(&self) -> Vec<usize> {
        self.segments.iter().map(|g| g.len()).collect()
    }

    /// Object-safe view of segment `i` (sequence order).
    pub fn segment(&self, i: usize) -> &dyn SeqIndex {
        self.segments[i].index()
    }

    /// Iterates the segments as object-safe indexes, in sequence order.
    pub fn segment_indexes(&self) -> impl Iterator<Item = &dyn SeqIndex> {
        self.segments.iter().map(|g| g.index())
    }

    // --- mutation ----------------------------------------------------------

    /// Appends `s` at the end (the hot tail), sealing/compacting per the
    /// policy afterwards.
    ///
    /// # Errors
    /// [`PrefixFreeViolation`] if `s` would break the global prefix-free
    /// invariant; the store is unchanged in that case.
    pub fn append(&mut self, s: BitStr<'_>) -> Result<(), PrefixFreeViolation> {
        let n = self.len;
        self.insert(s, n)
    }

    /// Inserts `s` immediately before global position `pos`. An insert
    /// into a sealed segment melts that segment back to dynamic form.
    ///
    /// # Errors
    /// [`PrefixFreeViolation`] if `s` would break the global prefix-free
    /// invariant; the store is unchanged in that case.
    ///
    /// # Panics
    /// If `pos > len()`.
    pub fn insert(&mut self, s: BitStr<'_>, pos: usize) -> Result<(), PrefixFreeViolation> {
        assert!(pos <= self.len, "insert position out of bounds");
        if !self.segments.iter().all(|g| g.admits(s)) {
            return Err(PrefixFreeViolation);
        }
        let (seg, off) = self.locate_for_insert(pos);
        self.melt(seg);
        match &mut self.segments[seg] {
            Segment::Hot(h) => h.insert(s, off).expect("pre-checked by admits"),
            Segment::Sealed(_) => unreachable!("melted above"),
        }
        self.len += 1;
        *self.directory.get_mut() = None;
        self.roll();
        Ok(())
    }

    /// Removes and returns the string at global position `pos`, melting
    /// the owning segment if it was sealed.
    ///
    /// # Panics
    /// If `pos >= len()`.
    pub fn delete(&mut self, pos: usize) -> BitString {
        assert!(pos < self.len, "delete position out of bounds");
        let (seg, off) = self.locate(pos);
        self.melt(seg);
        let out = match &mut self.segments[seg] {
            Segment::Hot(h) => h.delete(off),
            Segment::Sealed(_) => unreachable!("melted above"),
        };
        self.len -= 1;
        if self.segments[seg].len() == 0 && seg + 1 != self.segments.len() {
            self.segments.remove(seg);
        }
        *self.directory.get_mut() = None;
        out
    }

    /// Seals every hot segment (structural freeze) and starts a fresh hot
    /// tail. Never merges; call [`TieredStore::compact`] for that.
    /// Freezing uses the machine's available parallelism; see
    /// [`TieredStore::seal_with_threads`].
    pub fn seal(&mut self) {
        self.seal_with_threads(auto_freeze_threads());
    }

    /// [`TieredStore::seal`] with an explicit worker-thread count: multiple
    /// hot segments (a melted middle plus the tail) freeze concurrently on
    /// scoped threads; a single hot segment spreads its succinct assembly
    /// (RRR encode, DFUDS, delimiters) across the workers instead. The
    /// resulting segments are bit-identical to a serial seal.
    pub fn seal_with_threads(&mut self, threads: usize) {
        let n_segs = self.segments.len();
        self.freeze_hot_segments(n_segs, threads);
        // The old (now empty) hot tail, if any, is dropped here.
        self.segments.retain(|g| g.len() > 0);
        self.segments.push(Segment::Hot(DynamicWaveletTrie::new()));
        *self.directory.get_mut() = None;
    }

    /// Structurally freezes the non-empty hot segments among the first
    /// `limit`, on scoped worker threads when more than one needs freezing.
    fn freeze_hot_segments(&mut self, limit: usize, threads: usize) {
        let jobs: Vec<usize> = self.segments[..limit]
            .iter()
            .enumerate()
            .filter(|(_, g)| matches!(g, Segment::Hot(h) if !h.is_empty()))
            .map(|(i, _)| i)
            .collect();
        let threads = threads.max(1);
        let frozen: Vec<(usize, WaveletTrie)> = if jobs.len() <= 1 || threads == 1 {
            // 0/1 segments to freeze: parallelize inside the freeze instead.
            jobs.iter()
                .map(|&i| {
                    let Segment::Hot(h) = &self.segments[i] else {
                        unreachable!("jobs hold hot segments");
                    };
                    (i, h.freeze_with_threads(threads))
                })
                .collect()
        } else {
            let segments = &self.segments;
            std::thread::scope(|s| {
                let handles: Vec<_> = jobs
                    .iter()
                    .map(|&i| {
                        let Segment::Hot(h) = &segments[i] else {
                            unreachable!("jobs hold hot segments");
                        };
                        s.spawn(move || (i, h.freeze()))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("freeze worker panicked"))
                    .collect()
            })
        };
        for (i, wt) in frozen {
            self.segments[i] = Segment::Sealed(Box::new(SealedSegment::new(wt)));
        }
    }

    /// Freezes melted middle segments and merges adjacent sealed segments
    /// (thaw + append + freeze, smallest combined length first) until at
    /// most `max_sealed` sealed segments remain. Freezing parallelizes as
    /// in [`TieredStore::seal`].
    pub fn compact(&mut self) {
        self.compact_with_threads(auto_freeze_threads());
    }

    /// [`TieredStore::compact`] with an explicit worker-thread count.
    pub fn compact_with_threads(&mut self, threads: usize) {
        let last = self.segments.len() - 1;
        self.freeze_hot_segments(last, threads);
        while self.sealed_segments() > self.config.max_sealed {
            let best = self
                .sealed_adjacent_pairs()
                .min_by_key(|&(_, combined)| combined)
                .map(|(i, _)| i);
            match best {
                Some(i) => self.merge_pair(i),
                None => break,
            }
        }
        *self.directory.get_mut() = None;
    }

    /// Adjacent `(i, i+1)` sealed pairs with their combined length.
    fn sealed_adjacent_pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.segments
            .windows(2)
            .enumerate()
            .filter(|(_, w)| w[0].is_sealed() && w[1].is_sealed())
            .map(|(i, w)| (i, w[0].len() + w[1].len()))
    }

    /// Merges sealed segments `i` and `i + 1`: thaw the left one into the
    /// append-only backend, append the right one's strings, freeze.
    fn merge_pair(&mut self, i: usize) {
        let merged = {
            let (Segment::Sealed(a), Segment::Sealed(b)) =
                (&self.segments[i], &self.segments[i + 1])
            else {
                unreachable!("merge_pair called on non-sealed segments");
            };
            let mut melted: wavelet_trie::AppendWaveletTrie = a.wt.thaw();
            for s in b.wt.iter_seq_boxed() {
                melted
                    .append(s.as_bitstr())
                    .expect("segments are jointly prefix-free");
            }
            melted.freeze()
        };
        self.segments[i] = Segment::Sealed(Box::new(SealedSegment::new(merged)));
        self.segments.remove(i + 1);
    }

    /// Melts segment `seg` back to dynamic form if it is sealed.
    fn melt(&mut self, seg: usize) {
        if let Segment::Sealed(sealed) = &self.segments[seg] {
            let hot: DynamicWaveletTrie = sealed.wt.thaw();
            self.segments[seg] = Segment::Hot(hot);
        }
    }

    /// Policy hook run after every insert: auto-seal once the hot **tail**
    /// reaches `seal_at`, then bound the sealed-segment count. Melted
    /// middle segments are deliberately not a trigger — they must stay
    /// dynamic between edits (re-freezing them on every insert would make
    /// n middle edits cost O(n · segment bits)); they are re-frozen only
    /// when a tail roll or an explicit [`TieredStore::seal`] /
    /// [`TieredStore::compact`] happens.
    fn roll(&mut self) {
        let tail_full = matches!(
            self.segments.last(),
            Some(Segment::Hot(h)) if h.len() >= self.config.seal_at
        );
        if tail_full {
            self.seal();
            if self.sealed_segments() > self.config.max_sealed {
                self.compact();
            }
        }
    }

    // --- position routing --------------------------------------------------

    /// Runs `f` with the Elias–Fano directory over cumulative segment
    /// lengths, rebuilding it if a mutation invalidated it.
    fn with_directory<R>(&self, f: impl FnOnce(&EliasFano) -> R) -> R {
        let mut slot = self.directory.borrow_mut();
        let ef = slot.get_or_insert_with(|| {
            EliasFano::prefix_sums(self.segments.iter().map(|g| g.len() as u64))
        });
        f(ef)
    }

    /// Maps a global position (`< len`) to `(segment, local offset)`.
    fn locate(&self, pos: usize) -> (usize, usize) {
        debug_assert!(pos < self.len);
        self.with_directory(|dir| {
            // Largest cumulative start <= pos; duplicates (empty segments)
            // resolve to the last, i.e. the non-empty segment owning `pos`.
            let seg = dir.predecessor_index(pos as u64).expect("cum[0] = 0");
            let seg = seg.min(self.segments.len() - 1);
            (seg, pos - dir.get(seg) as usize)
        })
    }

    /// Like [`TieredStore::locate`] but accepts `pos == len` (append) and
    /// redirects boundary positions to a preceding hot segment where that
    /// avoids melting a sealed one.
    fn locate_for_insert(&self, pos: usize) -> (usize, usize) {
        if pos == self.len {
            let last = self.segments.len() - 1;
            return (last, self.segments[last].len());
        }
        let (seg, off) = self.locate(pos);
        if off == 0 && seg > 0 && !self.segments[seg - 1].is_sealed() {
            // Inserting at a boundary: appending to the hot predecessor is
            // equivalent and cheaper than melting `seg`.
            return (seg - 1, self.segments[seg - 1].len());
        }
        (seg, off)
    }

    /// `(segment, local l, local r)` for every segment overlapping the
    /// global range `[l, r)`.
    fn overlaps(&self, l: usize, r: usize) -> Vec<(usize, usize, usize)> {
        assert!(l <= r && r <= self.len, "range out of bounds");
        let mut out = Vec::new();
        let mut start = 0usize;
        for (i, g) in self.segments.iter().enumerate() {
            let end = start + g.len();
            if end > l && start < r {
                out.push((i, l.max(start) - start, r.min(end) - start));
            }
            start = end;
            if start >= r {
                break;
            }
        }
        out
    }

    /// Merges per-segment `(string, count)` lists (each lexicographically
    /// sorted) into one, summing counts of equal strings.
    fn merge_counts(
        &self,
        l: usize,
        r: usize,
        per_segment: impl Fn(&dyn SeqIndex, usize, usize) -> Vec<(BitString, usize)>,
    ) -> Vec<(BitString, usize)> {
        let mut merged: BTreeMap<BitString, usize> = BTreeMap::new();
        for (i, lo, hi) in self.overlaps(l, r) {
            for (s, c) in per_segment(self.segments[i].index(), lo, hi) {
                *merged.entry(s).or_insert(0) += c;
            }
        }
        // BitString's Ord is lexicographic with prefixes first — the same
        // order a single trie's traversal emits.
        merged.into_iter().collect()
    }
}

impl SeqIndex for TieredStore {
    fn seq_len(&self) -> usize {
        self.len
    }

    fn access(&self, pos: usize) -> BitString {
        assert!(pos < self.len, "Access position out of bounds");
        let (seg, off) = self.locate(pos);
        self.segments[seg].index().access(off)
    }

    fn rank(&self, s: BitStr<'_>, pos: usize) -> usize {
        assert!(pos <= self.len, "Rank position out of bounds");
        let mut acc = 0usize;
        let mut remaining = pos;
        for g in &self.segments {
            if remaining == 0 {
                break;
            }
            let l = g.len();
            if remaining >= l {
                acc += g.index().count(s);
                remaining -= l;
            } else {
                acc += g.index().rank(s, remaining);
                break;
            }
        }
        acc
    }

    fn select(&self, s: BitStr<'_>, idx: usize) -> Option<usize> {
        let mut idx = idx;
        let mut base = 0usize;
        for g in &self.segments {
            let c = g.index().count(s);
            if idx < c {
                return g.index().select(s, idx).map(|p| base + p);
            }
            idx -= c;
            base += g.len();
        }
        None
    }

    fn rank_prefix(&self, p: BitStr<'_>, pos: usize) -> usize {
        assert!(pos <= self.len, "RankPrefix position out of bounds");
        let mut acc = 0usize;
        let mut remaining = pos;
        for g in &self.segments {
            if remaining == 0 {
                break;
            }
            let l = g.len();
            if remaining >= l {
                acc += g.index().count_prefix(p);
                remaining -= l;
            } else {
                acc += g.index().rank_prefix(p, remaining);
                break;
            }
        }
        acc
    }

    fn select_prefix(&self, p: BitStr<'_>, idx: usize) -> Option<usize> {
        let mut idx = idx;
        let mut base = 0usize;
        for g in &self.segments {
            let c = g.index().count_prefix(p);
            if idx < c {
                return g.index().select_prefix(p, idx).map(|q| base + q);
            }
            idx -= c;
            base += g.len();
        }
        None
    }

    fn admits(&self, s: BitStr<'_>) -> bool {
        self.segments.iter().all(|g| g.admits(s))
    }

    fn distinct_len(&self) -> usize {
        if self.len == 0 {
            return 0;
        }
        self.merge_counts(0, self.len, |g, lo, hi| g.distinct_in_range(lo, hi))
            .len()
    }

    fn height(&self) -> usize {
        self.segments
            .iter()
            .map(|g| g.index().height())
            .max()
            .unwrap_or(0)
    }

    fn total_bitvector_bits(&self) -> usize {
        self.segments
            .iter()
            .map(|g| g.index().total_bitvector_bits())
            .sum()
    }

    fn distinct_in_range(&self, l: usize, r: usize) -> Vec<(BitString, usize)> {
        self.merge_counts(l, r, |g, lo, hi| g.distinct_in_range(lo, hi))
    }

    fn distinct_in_range_with_prefix(
        &self,
        p: BitStr<'_>,
        l: usize,
        r: usize,
    ) -> Vec<(BitString, usize)> {
        self.merge_counts(l, r, |g, lo, hi| g.distinct_in_range_with_prefix(p, lo, hi))
    }

    fn distinct_prefixes_in_range(
        &self,
        l: usize,
        r: usize,
        depth: usize,
    ) -> Vec<(BitString, usize)> {
        self.merge_counts(l, r, |g, lo, hi| {
            g.distinct_prefixes_in_range(lo, hi, depth)
        })
    }

    fn range_majority(&self, l: usize, r: usize) -> Option<(BitString, usize)> {
        assert!(l <= r && r <= self.len, "range out of bounds");
        if l == r {
            return None;
        }
        // Pigeonhole: a global majority of [l, r) must be a majority of at
        // least one overlapped part, so per-part majorities are the only
        // candidates; verify each against the merged count.
        let total = r - l;
        for (i, lo, hi) in self.overlaps(l, r) {
            if let Some((cand, _)) = self.segments[i].index().range_majority(lo, hi) {
                let c = self.range_count(cand.as_bitstr(), l, r);
                if 2 * c > total {
                    return Some((cand, c));
                }
            }
        }
        None
    }

    fn range_frequent(&self, l: usize, r: usize, min_count: usize) -> Vec<(BitString, usize)> {
        assert!(l <= r && r <= self.len, "range out of bounds");
        let min_count = min_count.max(1);
        if r - l < min_count {
            return Vec::new();
        }
        // A string can clear the threshold globally while staying below it
        // in every segment, so enumerate distinct values and filter.
        self.merge_counts(l, r, |g, lo, hi| g.distinct_in_range(lo, hi))
            .into_iter()
            .filter(|&(_, c)| c >= min_count)
            .collect()
    }

    fn iter_range_boxed(&self, l: usize, r: usize) -> Box<dyn Iterator<Item = BitString> + '_> {
        let parts = self.overlaps(l, r);
        Box::new(
            parts
                .into_iter()
                .flat_map(move |(i, lo, hi)| self.segments[i].index().iter_range_boxed(lo, hi)),
        )
    }

    // --- batched queries ---------------------------------------------------
    //
    // The store routes a batch through the Elias–Fano segment directory
    // once and dispatches one sub-batch per segment, so static segments get
    // their software-pipelined group descent over every lane that lands in
    // them instead of per-lane dispatch.

    fn access_batch(&self, positions: &[usize]) -> Vec<BitString> {
        for &p in positions {
            assert!(p < self.len, "Access position out of bounds");
        }
        let mut out: Vec<BitString> = vec![BitString::new(); positions.len()];
        if positions.is_empty() {
            return out;
        }
        let routed: Vec<(usize, usize)> = self.with_directory(|dir| {
            positions
                .iter()
                .map(|&p| {
                    let seg = dir
                        .predecessor_index(p as u64)
                        .expect("cum[0] = 0")
                        .min(self.segments.len() - 1);
                    (seg, p - dir.get(seg) as usize)
                })
                .collect()
        });
        let mut by_seg: Vec<Vec<u32>> = vec![Vec::new(); self.segments.len()];
        for (lane, &(seg, _)) in routed.iter().enumerate() {
            by_seg[seg].push(lane as u32);
        }
        for (si, lanes) in by_seg.iter().enumerate() {
            if lanes.is_empty() {
                continue;
            }
            let locals: Vec<usize> = lanes.iter().map(|&l| routed[l as usize].1).collect();
            let res = self.segments[si].index().access_batch(&locals);
            for (r, &l) in res.into_iter().zip(lanes) {
                out[l as usize] = r;
            }
        }
        out
    }

    fn rank_batch(&self, queries: &[(BitStr<'_>, usize)]) -> Vec<usize> {
        for &(_, pos) in queries {
            assert!(pos <= self.len, "Rank position out of bounds");
        }
        let mut acc = vec![0usize; queries.len()];
        let mut start = 0usize;
        let mut sub: Vec<(BitStr<'_>, usize)> = Vec::new();
        let mut lanes: Vec<u32> = Vec::new();
        for g in &self.segments {
            let l = g.len();
            sub.clear();
            lanes.clear();
            for (k, &(s, pos)) in queries.iter().enumerate() {
                if pos > start {
                    sub.push((s, (pos - start).min(l)));
                    lanes.push(k as u32);
                }
            }
            if sub.is_empty() {
                break; // positions are exhausted for every lane
            }
            for (r, &k) in g.index().rank_batch(&sub).into_iter().zip(&lanes) {
                acc[k as usize] += r;
            }
            start += l;
        }
        acc
    }

    fn select_batch(&self, queries: &[(BitStr<'_>, usize)]) -> Vec<Option<usize>> {
        let mut res = vec![None; queries.len()];
        let mut remaining: Vec<usize> = queries.iter().map(|&(_, idx)| idx).collect();
        let mut unresolved: Vec<u32> = (0..queries.len() as u32).collect();
        let mut base = 0usize;
        for g in &self.segments {
            if unresolved.is_empty() {
                break;
            }
            // Occurrences of each unresolved lane's string in this segment.
            let sub: Vec<(BitStr<'_>, usize)> = unresolved
                .iter()
                .map(|&k| (queries[k as usize].0, g.len()))
                .collect();
            let counts = g.index().rank_batch(&sub);
            let mut here: Vec<u32> = Vec::new();
            let mut here_q: Vec<(BitStr<'_>, usize)> = Vec::new();
            let mut keep: Vec<u32> = Vec::new();
            for (j, &k) in unresolved.iter().enumerate() {
                if remaining[k as usize] < counts[j] {
                    here.push(k);
                    here_q.push((queries[k as usize].0, remaining[k as usize]));
                } else {
                    remaining[k as usize] -= counts[j];
                    keep.push(k);
                }
            }
            if !here_q.is_empty() {
                for (r, &k) in g.index().select_batch(&here_q).into_iter().zip(&here) {
                    res[k as usize] = r.map(|p| base + p);
                }
            }
            unresolved = keep;
            base += g.len();
        }
        res
    }

    fn count_prefix_batch(&self, prefixes: &[BitStr<'_>]) -> Vec<usize> {
        let mut acc = vec![0usize; prefixes.len()];
        for g in &self.segments {
            for (a, c) in acc.iter_mut().zip(g.index().count_prefix_batch(prefixes)) {
                *a += c;
            }
        }
        acc
    }
}

impl SpaceUsage for TieredStore {
    fn size_bits(&self) -> usize {
        let segs: usize = self
            .segments
            .iter()
            .map(|g| match g {
                Segment::Sealed(s) => s.wt.size_bits(),
                Segment::Hot(h) => h.size_bits(),
            })
            .sum();
        let dir = self
            .directory
            .borrow()
            .as_ref()
            .map_or(0, |ef| ef.size_bits());
        segs + dir + 4 * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(s: &str) -> BitString {
        BitString::parse(s)
    }

    fn encode(v: u64) -> BitString {
        BitString::from_bits((0..10).rev().map(move |k| (v >> k) & 1 != 0))
    }

    fn tiny() -> TieredStore {
        TieredStore::with_config(StoreConfig {
            seal_at: 8,
            max_sealed: 3,
        })
    }

    #[test]
    fn appends_seal_and_compact_automatically() {
        let mut st = tiny();
        for i in 0..100u64 {
            st.append(encode(i % 30).as_bitstr()).unwrap();
        }
        assert_eq!(st.len(), 100);
        // seal_at = 8 ⇒ many seals happened; compaction bounds the count.
        assert!(st.sealed_segments() <= 3 + 1, "{:?}", st.segment_lens());
        assert!(st.num_segments() >= 2);
        for i in 0..100u64 {
            assert_eq!(st.access(i as usize), encode(i % 30), "access({i})");
        }
        let probe = encode(7);
        assert_eq!(st.count(probe.as_bitstr()), 4); // 7, 37, 67, 97
        assert_eq!(st.select(probe.as_bitstr(), 2), Some(67));
        assert_eq!(st.rank(probe.as_bitstr(), 68), 3);
    }

    #[test]
    fn inserts_melt_sealed_segments() {
        let mut st = tiny();
        for i in 0..32u64 {
            st.append(encode(i).as_bitstr()).unwrap();
        }
        st.seal();
        let sealed_before = st.sealed_segments();
        assert!(sealed_before >= 1);
        // Insert into the middle of a sealed segment.
        st.insert(encode(40).as_bitstr(), 3).unwrap();
        assert_eq!(st.access(3), encode(40));
        assert_eq!(st.access(2), encode(2));
        assert_eq!(st.access(4), encode(3));
        assert_eq!(st.len(), 33);
        // Delete from a sealed segment.
        let gone = st.delete(3);
        assert_eq!(gone, encode(40));
        assert_eq!(st.len(), 32);
        assert_eq!(st.access(3), encode(3));
        // compact() re-freezes the melted middles.
        st.compact();
        assert_eq!(st.num_segments() - 1, st.sealed_segments());
    }

    #[test]
    fn melted_middle_stays_hot_across_edits() {
        let mut st = tiny();
        for i in 0..16u64 {
            st.append(encode(i).as_bitstr()).unwrap();
        }
        st.seal();
        let sealed_before = st.sealed_segments();
        // Repeated edits at the front: the first melts, the rest must hit
        // the already-hot segment — no thaw/freeze cycle per insert, and
        // the melted middle must not trip the auto-seal even though its
        // length exceeds seal_at.
        for k in 0..6 {
            st.insert(encode(30 + k).as_bitstr(), 0).unwrap();
            st.delete(1);
        }
        assert_eq!(st.sealed_segments(), sealed_before - 1, "one melt only");
        assert_eq!(st.len(), 16);
        // An explicit compact re-freezes it.
        st.compact();
        assert_eq!(st.sealed_segments(), st.num_segments() - 1);
    }

    #[test]
    fn global_prefix_freeness_is_enforced() {
        let mut st = tiny();
        st.append(bs("0100").as_bitstr()).unwrap();
        st.seal();
        // "01" is a prefix of "0100", which lives in a *sealed* segment.
        assert!(st.append(bs("01").as_bitstr()).is_err());
        assert!(st.append(bs("01001").as_bitstr()).is_err());
        assert!(st.append(bs("0100").as_bitstr()).is_ok()); // duplicate
        assert!(st.append(bs("0111").as_bitstr()).is_ok());
        assert_eq!(st.len(), 3);
        assert!(!st.admits(bs("011").as_bitstr()));
        assert!(st.admits(bs("00").as_bitstr()));
    }

    #[test]
    fn boundary_insert_prefers_hot_predecessor() {
        let mut st = tiny();
        for i in 0..4u64 {
            st.append(encode(i).as_bitstr()).unwrap();
        }
        // segments: [hot(4)] — insert at 0 stays in the only segment.
        st.insert(encode(9).as_bitstr(), 0).unwrap();
        assert_eq!(st.access(0), encode(9));
        st.seal();
        // segments: [sealed(5), hot(0)]; insert at len lands in the tail.
        st.insert(encode(8).as_bitstr(), 5).unwrap();
        assert_eq!(st.sealed_segments(), 1, "no melt for a tail append");
        assert_eq!(st.access(5), encode(8));
    }

    #[test]
    fn empty_store_queries() {
        let st = TieredStore::new();
        assert!(st.is_empty());
        assert_eq!(st.count(bs("01").as_bitstr()), 0);
        assert_eq!(st.select(bs("01").as_bitstr(), 0), None);
        assert_eq!(st.distinct_len(), 0);
        assert_eq!(st.distinct_in_range(0, 0), vec![]);
        assert_eq!(st.range_majority(0, 0), None);
        assert_eq!(st.iter_seq_boxed().count(), 0);
    }

    /// Naive prefix-freeness oracle over the stored multiset: `s` may join
    /// iff every stored `t` equals `s` or diverges before either ends.
    fn naive_admits(strings: &[BitString], s: BitStr<'_>) -> bool {
        strings.iter().all(|t| {
            let t = t.as_bitstr();
            t == s || t.lcp(&s) < t.len().min(s.len())
        })
    }

    #[test]
    fn admits_cache_matches_uncached_oracle() {
        let mut s = 0xCAC4Eu64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut st = tiny();
        let mut model: Vec<BitString> = Vec::new();
        // Variable-length strings so prefix relations actually occur.
        let probe_pool: Vec<BitString> = (0..40)
            .map(|k| {
                let len = 3 + (k % 9);
                let v = k as u64 * 2654435761 % (1 << len);
                BitString::from_bits((0..len).rev().map(move |b| (v >> b) & 1 != 0))
            })
            .collect();
        for step in 0..400 {
            let q = &probe_pool[(next() % probe_pool.len() as u64) as usize];
            // Probe twice: the second hit exercises the sealed-segment memo.
            let want = naive_admits(&model, q.as_bitstr());
            assert_eq!(st.admits(q.as_bitstr()), want, "admits step {step}");
            assert_eq!(st.admits(q.as_bitstr()), want, "admits (cached) {step}");
            match next() % 10 {
                0..=5 => {
                    if want {
                        let pos = (next() % (model.len() as u64 + 1)) as usize;
                        st.insert(q.as_bitstr(), pos).unwrap();
                        model.insert(pos, q.clone());
                    } else {
                        assert!(st.insert(q.as_bitstr(), 0).is_err());
                    }
                }
                6 if !model.is_empty() => {
                    let pos = (next() % model.len() as u64) as usize;
                    assert_eq!(st.delete(pos), model.remove(pos));
                }
                7 => st.seal(),
                _ => {}
            }
        }
        // A mutation that changes a verdict must invalidate the memo: the
        // only occurrence of a string leaving flips its prefixes to valid.
        let mut st = tiny();
        st.append(bs("0100").as_bitstr()).unwrap();
        st.seal();
        assert!(!st.admits(bs("01").as_bitstr()));
        assert!(!st.admits(bs("01").as_bitstr())); // cached verdict
        st.delete(0);
        assert!(st.admits(bs("01").as_bitstr()), "stale admits verdict");
    }

    #[test]
    fn parallel_seal_and_compact_match_serial() {
        let build = |threads: usize| {
            let mut st = TieredStore::with_config(StoreConfig {
                seal_at: 64,
                max_sealed: 4,
            });
            for i in 0..200u64 {
                st.append(encode(i % 50).as_bitstr()).unwrap();
            }
            // Melt two middles so multiple hot segments freeze at once.
            st.insert(encode(51).as_bitstr(), 10).unwrap();
            st.insert(encode(52).as_bitstr(), 130).unwrap();
            assert!(st.segments.iter().filter(|g| !g.is_sealed()).count() > 1);
            st.seal_with_threads(threads);
            st.compact_with_threads(threads);
            st
        };
        let serial = build(1);
        let par = build(4);
        assert_eq!(serial.len(), par.len());
        assert_eq!(serial.segment_lens(), par.segment_lens());
        assert_eq!(serial.size_bits(), par.size_bits(), "bit-identical freeze");
        for i in (0..serial.len()).step_by(7) {
            assert_eq!(serial.access(i), par.access(i), "access({i})");
        }
        for v in 0..53u64 {
            let s = encode(v);
            assert_eq!(serial.count(s.as_bitstr()), par.count(s.as_bitstr()));
        }
    }

    #[test]
    fn store_is_object_safe_alongside_plain_tries() {
        let mut st = tiny();
        let mut dynamic = DynamicWaveletTrie::new();
        for i in 0..20u64 {
            st.append(encode(i % 6).as_bitstr()).unwrap();
            dynamic.append(encode(i % 6).as_bitstr()).unwrap();
        }
        st.seal();
        let indexes: Vec<Box<dyn SeqIndex>> = vec![Box::new(st), Box::new(dynamic)];
        for idx in &indexes {
            assert_eq!(idx.seq_len(), 20);
            assert_eq!(idx.count(encode(3).as_bitstr()), 3);
            assert_eq!(idx.count(encode(1).as_bitstr()), 4);
            assert_eq!(idx.distinct_len(), 6);
        }
    }
}
