//! Snapshot-isolated concurrent reads: immutable epochs behind an
//! atomically swapped slot.
//!
//! The concurrency model is single-writer / many-readers with **epoch
//! swapping**: the writer owns the live [`TieredStore`](crate::TieredStore)
//! and, at publish points, freezes its current segment manifest into an
//! immutable epoch — `Arc`-shared segments, the total length, and a
//! *precomputed* Elias–Fano position directory — and swaps it into the
//! store's epoch slot in one pointer-sized critical section. Readers
//! hold a [`StoreReader`] (cheaply cloneable, `Send + Sync`) and take
//! [`StoreSnapshot`]s from it at any time, on any thread:
//!
//! ```text
//!  writer thread                    epoch slot                reader threads
//!  ─────────────                 ┌──────────────┐             ──────────────
//!  append/insert/delete          │ RwLock<Arc<Epoch>> │ ◀──── snapshot() ──── r1
//!  seal / compact / save    ──publish()──▶ swap │ ◀──── snapshot() ──── r2
//!  (hot tail copy-on-write)      └──────────────┘        (Arc clone, no wait)
//! ```
//!
//! A snapshot is a fully consistent point-in-time image: every query on it
//! answers exactly as the store answered at its publish point, *forever* —
//! later appends, seals, compactions, melts and failed maintenance never
//! perturb it. That is guaranteed structurally, not by locking discipline:
//! sealed segments are immutable behind `Arc`, and the hot tail is
//! copy-on-write (`Arc::make_mut`) — the writer's first mutation after a
//! publish clones the published tail and mutates the private copy, so the
//! epoch's view stays frozen. The cost model follows: `publish()` is
//! O(#segments) Arc clones plus one small Elias–Fano build, and the writer
//! pays at most one hot-tail clone per publish (nothing at all when the
//! tail was empty at publish time, as it is after a seal).
//!
//! The slot is a `RwLock<Arc<Epoch>>` used only for pointer swaps — no
//! query ever runs under it, writers hold it for one store, readers for
//! one `Arc` clone — and both sides recover a poisoned lock
//! ([`std::sync::PoisonError::into_inner`]): the invariant "the slot holds
//! a valid epoch" can never be violated mid-swap, so poisoning carries no
//! information here and must not cascade panics into readers.

use std::sync::{Arc, PoisonError, RwLock};

use wt_bits::{EliasFano, SpaceUsage};

use crate::merged::{impl_seq_index_for_segmented, SegmentedRead};
use crate::Segment;

/// One published, immutable view of the store: the segment manifest, the
/// total length, and the position directory, all frozen at publish time.
#[derive(Debug)]
pub(crate) struct Epoch {
    /// Monotone publish counter; 0 is the construction-time epoch.
    version: u64,
    /// Arc-shared segments, in sequence order (sealed segments are shared
    /// with the live store; the hot tail is a copy-on-write reference).
    segments: Vec<Segment>,
    /// Total strings across the segments.
    len: usize,
    /// Elias–Fano over cumulative segment lengths, built eagerly at
    /// publish time so readers never contend on a lazily filled cache.
    directory: EliasFano,
}

impl Epoch {
    /// Freezes a manifest into an epoch (the directory is built here).
    pub(crate) fn new(version: u64, segments: Vec<Segment>, len: usize) -> Self {
        let directory = EliasFano::prefix_sums(segments.iter().map(|g| g.len() as u64));
        Epoch {
            version,
            segments,
            len,
            directory,
        }
    }
}

/// The atomically swapped slot holding the latest published [`Epoch`].
#[derive(Debug)]
pub(crate) struct EpochSlot {
    slot: RwLock<Arc<Epoch>>,
}

impl EpochSlot {
    pub(crate) fn new(initial: Epoch) -> Self {
        EpochSlot {
            slot: RwLock::new(Arc::new(initial)),
        }
    }

    /// The latest published epoch (an `Arc` clone; never blocks on
    /// queries, only on a concurrent pointer swap).
    pub(crate) fn load(&self) -> Arc<Epoch> {
        Arc::clone(&self.slot.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Publishes `epoch`, replacing the previous one. Readers holding the
    /// old `Arc` keep serving it unchanged.
    pub(crate) fn swap(&self, epoch: Arc<Epoch>) {
        *self.slot.write().unwrap_or_else(PoisonError::into_inner) = epoch;
    }
}

/// A cloneable, thread-safe handle for taking [`StoreSnapshot`]s of a
/// [`TieredStore`](crate::TieredStore); obtained from
/// [`TieredStore::reader`](crate::TieredStore::reader). The handle stays
/// valid for the life of the store's epoch slot — snapshots taken from it
/// always see the latest *published* state.
#[derive(Clone, Debug)]
pub struct StoreReader {
    pub(crate) slot: Arc<EpochSlot>,
}

impl StoreReader {
    /// The latest published snapshot. O(1): one `Arc` clone under a
    /// read lock held for the duration of that clone.
    pub fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot {
            epoch: self.slot.load(),
        }
    }

    /// Version of the latest published epoch (monotone; bumped by every
    /// [`publish`](crate::TieredStore::publish)).
    pub fn version(&self) -> u64 {
        self.slot.load().version
    }
}

/// An immutable point-in-time view of a [`TieredStore`](crate::TieredStore):
/// the full [`SeqIndex`](wavelet_trie::SeqIndex) query surface (point,
/// range, analytics, and the software-pipelined `*_batch` kernels) over
/// the state as of one publish. `Send + Sync` and cheap to clone — share
/// one snapshot across a thread pool or take one per request.
///
/// Answers are frozen: a snapshot taken before further writes, seals,
/// compactions or maintenance failures keeps answering from its epoch,
/// bit-identically, until dropped.
#[derive(Clone, Debug)]
pub struct StoreSnapshot {
    epoch: Arc<Epoch>,
}

impl StoreSnapshot {
    pub(crate) fn from_epoch(epoch: Arc<Epoch>) -> Self {
        StoreSnapshot { epoch }
    }

    /// The epoch version this snapshot serves.
    pub fn version(&self) -> u64 {
        self.epoch.version
    }

    /// Number of strings in the snapshot.
    pub fn len(&self) -> usize {
        self.epoch.len
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.epoch.len == 0
    }

    /// Number of segments (including the hot-tail view).
    pub fn num_segments(&self) -> usize {
        self.epoch.segments.len()
    }

    /// Number of sealed (static) segments.
    pub fn sealed_segments(&self) -> usize {
        self.epoch.segments.iter().filter(|g| g.is_sealed()).count()
    }

    /// Object-safe query view of segment `i` (sequence order).
    pub fn segment(&self, i: usize) -> &dyn wavelet_trie::SeqIndex {
        self.epoch.segments[i].index()
    }
}

impl SegmentedRead for StoreSnapshot {
    fn segments(&self) -> &[Segment] {
        &self.epoch.segments
    }

    fn total_len(&self) -> usize {
        self.epoch.len
    }

    fn with_directory<R>(&self, f: impl FnOnce(&EliasFano) -> R) -> R {
        f(&self.epoch.directory)
    }
}

impl_seq_index_for_segmented!(StoreSnapshot);

impl SpaceUsage for StoreSnapshot {
    fn size_bits(&self) -> usize {
        let segs: usize = self
            .epoch
            .segments
            .iter()
            .map(|g| match g {
                Segment::Sealed(s) => s.repr.size_bits(),
                Segment::Hot(h) => h.size_bits(),
            })
            .sum();
        segs + self.epoch.directory.size_bits() + 3 * 64
    }
}
