//! Structured error and recovery reporting for store persistence.
//!
//! Every failure out of [`TieredStore::save_dir`](crate::TieredStore::save_dir)
//! / [`load_dir`](crate::TieredStore::load_dir) /
//! [`recover_dir`](crate::TieredStore::recover_dir) is a [`StoreError`]
//! carrying *which file*, *which operation*, and *what went wrong* — a
//! checksum failure in a 10-segment directory names the segment, not just
//! "checksum mismatch". Transient I/O classes are queryable via
//! [`StoreError::is_retryable`] (the default entry points already retry
//! them with backoff; see [`wt_bits::storage::RetryPolicy`]).
//!
//! [`RecoveryReport`] is the structured outcome of a resilient load: the
//! generation served, what was quarantined and why, how many strings were
//! recovered versus lost, and which stale temp files were swept.

use std::path::{Path, PathBuf};

use wt_bits::storage::is_retryable;
use wt_bits::LoadError;

/// The persistence operation that failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreOp {
    /// Creating the store directory.
    CreateDir,
    /// Listing the store directory.
    List,
    /// Reading a file.
    Read,
    /// Writing a file.
    Write,
    /// Fsyncing a file's content.
    SyncFile,
    /// Fsyncing the directory namespace.
    SyncDir,
    /// Renaming a temp file over its final name.
    Rename,
    /// Removing a stale file.
    Remove,
    /// Parsing / validating an archive already read.
    Parse,
    /// Cross-file validation (manifest vs segments).
    Validate,
}

impl std::fmt::Display for StoreOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            StoreOp::CreateDir => "create-dir",
            StoreOp::List => "list",
            StoreOp::Read => "read",
            StoreOp::Write => "write",
            StoreOp::SyncFile => "sync-file",
            StoreOp::SyncDir => "sync-dir",
            StoreOp::Rename => "rename",
            StoreOp::Remove => "remove",
            StoreOp::Parse => "parse",
            StoreOp::Validate => "validate",
        };
        f.write_str(s)
    }
}

/// Root cause of a [`StoreError`].
#[derive(Debug)]
pub enum StoreErrorCause {
    /// The operating system failed the operation.
    Io(std::io::Error),
    /// The bytes were read but are not a valid archive.
    Format(LoadError),
    /// The directory holds no manifest of any generation — nothing was
    /// ever committed here (or this is not a store directory).
    NoCommittedGeneration,
}

impl Clone for StoreErrorCause {
    /// Structure-preserving clone; the `Io` variant clones as a new
    /// `io::Error` of the same kind carrying the original's message (the
    /// OS error type itself is not `Clone`). This is what lets a health
    /// layer *store* a failure and keep surfacing it later without
    /// flattening it to a string.
    fn clone(&self) -> Self {
        match self {
            StoreErrorCause::Io(e) => {
                StoreErrorCause::Io(std::io::Error::new(e.kind(), e.to_string()))
            }
            StoreErrorCause::Format(e) => StoreErrorCause::Format(e.clone()),
            StoreErrorCause::NoCommittedGeneration => StoreErrorCause::NoCommittedGeneration,
        }
    }
}

/// A persistence failure: file × operation × cause.
#[derive(Clone, Debug)]
pub struct StoreError {
    file: Option<PathBuf>,
    op: StoreOp,
    cause: StoreErrorCause,
}

impl StoreError {
    pub(crate) fn io(op: StoreOp, file: impl Into<PathBuf>, e: std::io::Error) -> Self {
        StoreError {
            file: Some(file.into()),
            op,
            cause: StoreErrorCause::Io(e),
        }
    }

    pub(crate) fn format(file: impl Into<PathBuf>, e: LoadError) -> Self {
        StoreError {
            file: Some(file.into()),
            op: StoreOp::Parse,
            cause: StoreErrorCause::Format(e),
        }
    }

    pub(crate) fn validate(file: impl Into<PathBuf>, what: &'static str) -> Self {
        StoreError {
            file: Some(file.into()),
            op: StoreOp::Validate,
            cause: StoreErrorCause::Format(LoadError::Invalid(what)),
        }
    }

    pub(crate) fn no_generation(dir: impl Into<PathBuf>) -> Self {
        StoreError {
            file: Some(dir.into()),
            op: StoreOp::List,
            cause: StoreErrorCause::NoCommittedGeneration,
        }
    }

    /// The file (or directory) the failure is about, when known.
    pub fn file(&self) -> Option<&Path> {
        self.file.as_deref()
    }

    /// The operation that failed.
    pub fn op(&self) -> StoreOp {
        self.op
    }

    /// The root cause.
    pub fn cause(&self) -> &StoreErrorCause {
        &self.cause
    }

    /// Whether retrying the whole save/load is reasonable: true only for
    /// transient I/O classes (interrupted, would-block, timed out).
    /// Corruption and missing files are never retryable.
    pub fn is_retryable(&self) -> bool {
        match &self.cause {
            StoreErrorCause::Io(e) => is_retryable(e.kind()),
            _ => false,
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.file {
            Some(p) => write!(f, "{} {}: ", self.op, p.display())?,
            None => write!(f, "{}: ", self.op)?,
        }
        match &self.cause {
            StoreErrorCause::Io(e) => write!(f, "{e}"),
            StoreErrorCause::Format(e) => write!(f, "{e}"),
            StoreErrorCause::NoCommittedGeneration => {
                write!(f, "no committed generation (no manifest found)")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.cause {
            StoreErrorCause::Io(e) => Some(e),
            StoreErrorCause::Format(e) => Some(e),
            StoreErrorCause::NoCommittedGeneration => None,
        }
    }
}

/// One damaged piece a resilient load set aside instead of failing on.
#[derive(Clone, Debug)]
pub struct Quarantine {
    /// The offending file.
    pub file: PathBuf,
    /// Human-readable reason (checksum mismatch, missing, length
    /// mismatch against the manifest, …).
    pub reason: String,
    /// Strings this file owed per the manifest that could not be served.
    pub strings_lost: usize,
}

/// Structured outcome of [`TieredStore::recover_dir`](crate::TieredStore::recover_dir).
///
/// `Clone` so long-lived health/observability layers (e.g. a shard
/// router) can retain the report alongside the recovered store instead of
/// stringifying it.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// The generation that was served.
    pub generation: u64,
    /// Newer manifests that existed but failed to read/parse and were
    /// skipped to fall back to this generation.
    pub manifests_skipped: usize,
    /// Segments (or hot logs) set aside as damaged; empty on a clean load.
    pub quarantined: Vec<Quarantine>,
    /// Stale `*.tmp` files swept during recovery.
    pub temps_removed: Vec<PathBuf>,
    /// Strings served by the recovered store.
    pub strings_recovered: usize,
    /// Strings recorded in the manifest that could not be recovered.
    pub strings_lost: usize,
    /// Strings replayed into hot (dynamic) segments from string logs.
    pub hot_replayed: usize,
}

impl RecoveryReport {
    /// True when nothing was lost, skipped or quarantined — the directory
    /// was a perfectly healthy committed image.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty() && self.manifests_skipped == 0 && self.strings_lost == 0
    }
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "generation {}: {} strings recovered, {} lost, {} quarantined, \
             {} newer manifest(s) skipped, {} temp(s) swept",
            self.generation,
            self.strings_recovered,
            self.strings_lost,
            self.quarantined.len(),
            self.manifests_skipped,
            self.temps_removed.len(),
        )
    }
}
