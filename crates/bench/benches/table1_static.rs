//! E1 (Table 1, static row): query operations of the static Wavelet Trie
//! at two sizes — per-op time should be (near-)independent of n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use wavelet_trie::binarize::{Coder, NinthBitCoder};
use wavelet_trie::{BitString, SeqIndex, WaveletTrie};
use wt_workloads::{url_log, UrlLogConfig};

fn build(n: usize) -> (WaveletTrie, Vec<BitString>, BitString) {
    let coder = NinthBitCoder;
    let data = url_log(n, UrlLogConfig::default(), 1);
    let seq: Vec<BitString> = data.iter().map(|s| coder.encode(s.as_bytes())).collect();
    let wt = WaveletTrie::build(&seq).unwrap();
    let prefix = coder.encode_prefix(b"http://host001.example");
    (wt, seq, prefix)
}

fn bench_static(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_static");
    for n in [20_000usize, 80_000] {
        let (wt, seq, prefix) = build(n);
        g.bench_with_input(BenchmarkId::new("access", n), &n, |b, &n| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 7919) % n;
                black_box(wt.access(i))
            })
        });
        g.bench_with_input(BenchmarkId::new("rank", n), &n, |b, &n| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 7919) % n;
                black_box(wt.rank(seq[i].as_bitstr(), i))
            })
        });
        g.bench_with_input(BenchmarkId::new("select", n), &n, |b, &n| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 7919) % n;
                black_box(wt.select(seq[i].as_bitstr(), 0))
            })
        });
        g.bench_with_input(BenchmarkId::new("rank_prefix", n), &n, |b, &n| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 7919) % n;
                black_box(wt.rank_prefix(prefix.as_bitstr(), i))
            })
        });
        g.bench_with_input(BenchmarkId::new("select_prefix", n), &n, |b, _| {
            let mut k = 0usize;
            b.iter(|| {
                k = (k + 1) % 8;
                black_box(wt.select_prefix(prefix.as_bitstr(), k))
            })
        });
    }
    g.finish();

    // Construction throughput.
    let mut g = c.benchmark_group("table1_static_build");
    g.sample_size(10);
    {
        let n = 20_000usize;
        let coder = NinthBitCoder;
        let data = url_log(n, UrlLogConfig::default(), 1);
        let seq: Vec<BitString> = data.iter().map(|s| coder.encode(s.as_bytes())).collect();
        g.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| black_box(WaveletTrie::build(&seq).unwrap()))
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_static
}
criterion_main!(benches);
