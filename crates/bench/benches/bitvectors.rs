//! Criterion micro-benchmarks for the bitvector substrates (E5/E6):
//! rank/select/access across Fid, RRR, append-only and dynamic vectors,
//! plus append/insert/Init update costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use wt_bits::{
    AppendBitVec, BitAccess, BitRank, BitSelect, DynamicBitVec, Fid, RawBitVec, RrrVector,
};

const N: usize = 1 << 20;

fn make_raw(density: u64) -> RawBitVec {
    let mut s = 0xDEAD_BEEFu64;
    RawBitVec::from_bits((0..N).map(|_| {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s.is_multiple_of(density)
    }))
}

fn bench_queries(c: &mut Criterion) {
    let raw = make_raw(8);
    let fid = Fid::new(raw.clone());
    let rrr = RrrVector::new(&raw);
    let app = AppendBitVec::from_bits(raw.iter());
    let dynv = DynamicBitVec::from_bits(raw.iter());
    let ones = fid.count_ones();

    let mut g = c.benchmark_group("bitvec_rank");
    macro_rules! rank_bench {
        ($name:literal, $v:ident) => {
            g.bench_function($name, |b| {
                let mut i = 0usize;
                b.iter(|| {
                    i = (i + 7919) % N;
                    black_box($v.rank1(i))
                })
            });
        };
    }
    rank_bench!("fid", fid);
    rank_bench!("rrr", rrr);
    rank_bench!("append", app);
    rank_bench!("dynamic", dynv);
    g.finish();

    let mut g = c.benchmark_group("bitvec_select");
    macro_rules! select_bench {
        ($name:literal, $v:ident) => {
            g.bench_function($name, |b| {
                let mut k = 0usize;
                b.iter(|| {
                    k = (k + 6151) % ones;
                    black_box($v.select1(k))
                })
            });
        };
    }
    select_bench!("fid", fid);
    select_bench!("rrr", rrr);
    select_bench!("append", app);
    select_bench!("dynamic", dynv);
    g.finish();

    let mut g = c.benchmark_group("bitvec_access");
    macro_rules! access_bench {
        ($name:literal, $v:ident) => {
            g.bench_function($name, |b| {
                let mut i = 0usize;
                b.iter(|| {
                    i = (i + 7919) % N;
                    black_box($v.get(i))
                })
            });
        };
    }
    access_bench!("fid", fid);
    access_bench!("rrr", rrr);
    access_bench!("append", app);
    access_bench!("dynamic", dynv);
    g.finish();
}

fn bench_updates(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitvec_update");
    g.bench_function("append_push", |b| {
        let mut v = AppendBitVec::new();
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_mul(6364136223846793005).wrapping_add(1);
            v.push(i.is_multiple_of(8));
        })
    });
    g.bench_function("dynamic_insert_remove", |b| {
        let mut v = DynamicBitVec::from_bits((0..100_000).map(|i| i % 5 == 0));
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % 100_000;
            v.insert(i, i.is_multiple_of(2));
            black_box(v.remove(i));
        })
    });
    // Init(b, n) for huge n: the Remark 4.2 constant-time property.
    for n in [1_000_000usize, 1_000_000_000] {
        g.bench_with_input(BenchmarkId::new("dynamic_init", n), &n, |b, &n| {
            b.iter(|| black_box(DynamicBitVec::filled(true, n)))
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_queries, bench_updates
}
criterion_main!(benches);
