//! E8: §6 randomized Wavelet Tree vs the unhashed trie and the classic
//! fixed-alphabet integer Wavelet Tree.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use wavelet_trie::RandomizedWaveletTree;
use wt_baselines::IntWaveletTree;
use wt_workloads::small_alphabet_u64;

fn bench_randomized(c: &mut Criterion) {
    let n = 50_000;
    let values = small_alphabet_u64(n, 64, 64, 9);

    let mut hashed = RandomizedWaveletTree::new(64, 13);
    let mut unhashed = RandomizedWaveletTree::unhashed(64);
    for &v in &values {
        hashed.push(v);
        unhashed.push(v);
    }
    // Fixed-alphabet baseline: needs the dictionary built up front.
    let mut dict: Vec<u64> = values.clone();
    dict.sort_unstable();
    dict.dedup();
    let ids: Vec<u64> = values
        .iter()
        .map(|v| dict.binary_search(v).unwrap() as u64)
        .collect();
    let int_wt = IntWaveletTree::new(&ids, dict.len() as u64);

    let mut g = c.benchmark_group("randomized_wt");
    g.bench_function("hashed_access", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % n;
            black_box(hashed.get(i))
        })
    });
    g.bench_function("unhashed_access", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % n;
            black_box(unhashed.get(i))
        })
    });
    g.bench_function("int_wt_access", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % n;
            black_box(int_wt.access(i))
        })
    });
    g.bench_function("hashed_rank", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % n;
            black_box(hashed.rank(values[i], i))
        })
    });
    g.bench_function("hashed_insert_remove", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % n;
            hashed.insert(values[i], i);
            black_box(hashed.remove(i));
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_randomized
}
criterion_main!(benches);
