//! E2 (Table 1, append-only row): `Append` and queries of the append-only
//! Wavelet Trie — per-op cost should stay flat as the log grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use wavelet_trie::binarize::{Coder, NinthBitCoder};
use wavelet_trie::{AppendWaveletTrie, BitString, SeqIndex};
use wt_workloads::{url_log, UrlLogConfig};

fn bench_append(c: &mut Criterion) {
    let coder = NinthBitCoder;
    let mut g = c.benchmark_group("table1_append");
    for n in [20_000usize, 80_000] {
        let data = url_log(n, UrlLogConfig::default(), 1);
        let seq: Vec<BitString> = data.iter().map(|s| coder.encode(s.as_bytes())).collect();
        // Append on top of an existing log of size n.
        g.bench_with_input(BenchmarkId::new("append", n), &n, |b, &n| {
            let mut wt = AppendWaveletTrie::new();
            for s in &seq {
                wt.append(s.as_bitstr()).unwrap();
            }
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 7919) % n;
                wt.append(seq[i].as_bitstr()).unwrap();
            })
        });
        let mut wt = AppendWaveletTrie::new();
        for s in &seq {
            wt.append(s.as_bitstr()).unwrap();
        }
        g.bench_with_input(BenchmarkId::new("access", n), &n, |b, &n| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 7919) % n;
                black_box(wt.access(i))
            })
        });
        g.bench_with_input(BenchmarkId::new("rank", n), &n, |b, &n| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 7919) % n;
                black_box(wt.rank(seq[i].as_bitstr(), i))
            })
        });
        let prefix = coder.encode_prefix(b"http://host001.example");
        g.bench_with_input(BenchmarkId::new("rank_prefix", n), &n, |b, &n| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 7919) % n;
                black_box(wt.rank_prefix(prefix.as_bitstr(), i))
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_append
}
criterion_main!(benches);
