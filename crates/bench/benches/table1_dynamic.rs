//! E3 (Table 1, fully-dynamic row): `Insert`/`Delete` and queries of the
//! fully dynamic Wavelet Trie — expect an extra ~log n factor vs E1/E2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use wavelet_trie::binarize::{Coder, NinthBitCoder};
use wavelet_trie::{BitString, DynamicWaveletTrie, SeqIndex};
use wt_workloads::{url_log, UrlLogConfig};

fn bench_dynamic(c: &mut Criterion) {
    let coder = NinthBitCoder;
    let mut g = c.benchmark_group("table1_dynamic");
    for n in [20_000usize, 80_000] {
        let data = url_log(n, UrlLogConfig::default(), 1);
        let seq: Vec<BitString> = data.iter().map(|s| coder.encode(s.as_bytes())).collect();
        let mut wt = DynamicWaveletTrie::new();
        for s in &seq {
            wt.append(s.as_bitstr()).unwrap();
        }
        g.bench_with_input(BenchmarkId::new("insert_delete", n), &n, |b, &n| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 7919) % n;
                wt.insert(seq[i].as_bitstr(), i).unwrap();
                black_box(wt.delete(i));
            })
        });
        g.bench_with_input(BenchmarkId::new("access", n), &n, |b, &n| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 7919) % n;
                black_box(wt.access(i))
            })
        });
        g.bench_with_input(BenchmarkId::new("rank", n), &n, |b, &n| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 7919) % n;
                black_box(wt.rank(seq[i].as_bitstr(), i))
            })
        });
        let prefix = coder.encode_prefix(b"http://host001.example");
        g.bench_with_input(BenchmarkId::new("select_prefix", n), &n, |b, _| {
            let mut k = 0usize;
            b.iter(|| {
                k = (k + 1) % 8;
                black_box(wt.select_prefix(prefix.as_bitstr(), k))
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_dynamic
}
criterion_main!(benches);
