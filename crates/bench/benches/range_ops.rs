//! E7: §5 range algorithms vs the naive scanning baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use wavelet_trie::binarize::{Coder, NinthBitCoder};
use wavelet_trie::{BitString, SeqIndex, SequenceOps, WaveletTrie};
use wt_baselines::NaiveSeq;
use wt_workloads::{url_log, UrlLogConfig};

fn bench_range(c: &mut Criterion) {
    let n = 100_000;
    let data = url_log(n, UrlLogConfig::default(), 77);
    let coder = NinthBitCoder;
    let seq: Vec<BitString> = data.iter().map(|s| coder.encode(s.as_bytes())).collect();
    let wt = WaveletTrie::build(&seq).unwrap();
    let naive = NaiveSeq::from_iter(data.iter());

    let mut g = c.benchmark_group("range_ops");
    g.sample_size(10);
    for w in [1_000usize, 30_000] {
        let (l, r) = ((n - w) / 2, (n - w) / 2 + w);
        g.bench_with_input(BenchmarkId::new("wt_distinct", w), &w, |b, _| {
            b.iter(|| black_box(wt.distinct_in_range(l, r)))
        });
        g.bench_with_input(BenchmarkId::new("naive_distinct", w), &w, |b, _| {
            b.iter(|| black_box(naive.distinct_in_range(l, r)))
        });
        g.bench_with_input(BenchmarkId::new("wt_majority", w), &w, |b, _| {
            b.iter(|| black_box(wt.range_majority(l, r)))
        });
        g.bench_with_input(BenchmarkId::new("naive_majority", w), &w, |b, _| {
            b.iter(|| black_box(naive.range_majority(l, r)))
        });
        let t = (w / 50).max(2);
        g.bench_with_input(BenchmarkId::new("wt_frequent", w), &w, |b, _| {
            b.iter(|| black_box(wt.range_frequent(l, r, t)))
        });
        g.bench_with_input(BenchmarkId::new("wt_iterate", w), &w, |b, _| {
            b.iter(|| {
                let mut c = 0usize;
                for s in wt.iter_range(l, r) {
                    c += s.len();
                }
                black_box(c)
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_range
}
criterion_main!(benches);
