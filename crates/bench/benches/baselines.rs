//! E9: appending under a growing alphabet — Wavelet Trie vs approach (1)
//! (dictionary + rebuild) vs approach (3) (BTree + copy).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use wavelet_trie::AppendLog;
use wt_baselines::{BTreeIndex, DictSequence};
use wt_workloads::{url_log, UrlLogConfig};

fn bench_growing_alphabet(c: &mut Criterion) {
    let cfg = UrlLogConfig {
        hosts: 2000,
        ..UrlLogConfig::default()
    };
    let n = 4_000;
    let data = url_log(n, cfg, 9);

    let mut g = c.benchmark_group("alphabet_growth_ingest");
    g.sample_size(10);
    g.bench_function("wavelet_trie", |b| {
        b.iter(|| {
            let mut log = AppendLog::new();
            for s in &data {
                log.append(s);
            }
            black_box(log.len())
        })
    });
    g.bench_function("dict_int_wt_rebuilds", |b| {
        b.iter(|| {
            let mut d = DictSequence::new();
            for s in &data {
                d.push(s);
            }
            black_box(d.rebuilds())
        })
    });
    g.bench_function("btree_two_copies", |b| {
        b.iter(|| {
            let mut t = BTreeIndex::new();
            for s in &data {
                t.push(s);
            }
            black_box(t.len())
        })
    });
    g.finish();

    // Query-side comparison on a fixed structure.
    let mut log = AppendLog::new();
    let mut btree = BTreeIndex::new();
    for s in &data {
        log.append(s);
        btree.push(s);
    }
    let mut g = c.benchmark_group("alphabet_growth_queries");
    g.bench_function("wt_rank_prefix", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % n;
            black_box(log.rank_prefix("http://host1", i))
        })
    });
    g.bench_function("btree_rank_prefix", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % n;
            black_box(btree.rank_prefix("http://host1", i))
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_growing_alphabet
}
criterion_main!(benches);
