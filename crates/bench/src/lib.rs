//! # wt-bench — harness regenerating the paper's tables and figures
//!
//! The paper's evaluation is analytical; each report binary turns one of
//! its claims into a measured table (see EXPERIMENTS.md for the mapping):
//!
//! | binary | experiment | claim |
//! |---|---|---|
//! | `table1_time` | E1–E3 | Table 1 operation costs and their scaling |
//! | `table1_space` | E4 | Table 1 space columns vs `LB = LT + nH0` |
//! | `bitvec_report` | E5–E6 | §4.1/§4.2 bitvector costs, O(1) `Init` |
//! | `range_report` | E7 | §5 range algorithms vs naive scans |
//! | `balance_report` | E8 | §6 height bound `(α+2)·log|Σ|` |
//! | `alphabet_report` | E9 | dynamic alphabet vs rebuild/two-copy baselines |
//! | `dynamic_report` | E11 | §4.2 hot-path throughput → `BENCH_dynamic.json` |
//! | `static_report` | E12 | §2/§3 static-stack throughput → `BENCH_static.json` |
//! | `store_report` | E13 | tiered store: freeze vs rebuild, query overhead → `BENCH_store.json` |
//! | `figures` | Fig. 1–3 | structural reproduction, ASCII-rendered |
//!
//! Criterion micro-benchmarks covering the same operations live under
//! `benches/`.

use std::time::Instant;

/// Seeded xorshift64 closure — the dependency-free PRNG every report binary
/// uses for reproducible workloads and probe sequences.
pub fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed.max(1);
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

/// Median-of-runs wall time per operation, in nanoseconds.
///
/// Runs `op` in batches (`iters` calls per sample) and reports the best of
/// `samples` batches — the standard way to de-noise short operations
/// without a full statistics engine.
pub fn time_per_op_ns<F: FnMut()>(iters: usize, samples: usize, mut op: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            op();
        }
        let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

/// Wall time of one call, in milliseconds.
pub fn time_once_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64() * 1e3)
}

/// Right-aligned fixed-width table printing.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Creates a table and prints the header row.
    pub fn new(headers: &[&str], widths: &[usize]) -> Self {
        assert_eq!(headers.len(), widths.len());
        let t = Table {
            widths: widths.to_vec(),
        };
        t.row(headers);
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        t
    }

    /// Prints one row.
    pub fn row(&self, cells: &[&str]) {
        let mut line = String::new();
        for (c, w) in cells.iter().zip(&self.widths) {
            line.push_str(&format!("{c:>w$}  ", w = *w));
        }
        println!("{}", line.trim_end());
    }
}

/// Formats a bit count as bits-per-element with 2 decimals.
pub fn bits_per(total_bits: usize, n: usize) -> String {
    if n == 0 {
        "-".into()
    } else {
        format!("{:.1}", total_bits as f64 / n as f64)
    }
}

/// Formats a nanosecond figure adaptively (ns / µs / ms).
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{:.2}ms", ns / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_do_not_panic() {
        let ns = time_per_op_ns(10, 3, || {
            std::hint::black_box(1 + 1);
        });
        assert!(ns >= 0.0);
        let (v, ms) = time_once_ms(|| 42);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
        assert_eq!(bits_per(100, 10), "10.0");
        assert_eq!(bits_per(1, 0), "-");
        assert!(fmt_ns(500.0).ends_with("ns"));
        assert!(fmt_ns(5_000.0).ends_with("µs"));
        assert!(fmt_ns(5_000_000.0).ends_with("ms"));
        let t = Table::new(&["a", "b"], &[5, 5]);
        t.row(&["1", "2"]);
    }
}
