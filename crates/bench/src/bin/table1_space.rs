//! E4: regenerates the **space column of Table 1** — measured bits of every
//! variant against the information-theoretic quantities of §3, on three
//! workloads, plus the uncompressed baselines the paper argues against.
//!
//! Paper's claims: static = LB + o(h̃n); append-only = LB + PT + o(h̃n);
//! fully dynamic = LB + PT + O(nH0); traditional indexes = "several times
//! the space of the sequence alone".

use wavelet_trie::binarize::{Coder, NinthBitCoder};
use wavelet_trie::{
    AppendWaveletTrie, BitString, DynamicWaveletTrie, PathDecompTrie, SeqIndex, SequenceStats,
    WaveletTrie,
};
use wt_baselines::{BTreeIndex, DictSequence, NaiveSeq};
use wt_bench::{bits_per, Table};
use wt_bits::SpaceUsage;
use wt_workloads::{small_alphabet_u64, url_log, word_text, UrlLogConfig};

fn encode(data: &[String]) -> Vec<BitString> {
    let c = NinthBitCoder;
    data.iter().map(|s| c.encode(s.as_bytes())).collect()
}

fn report(name: &str, data: Vec<String>) {
    let n = data.len();
    let seq = encode(&data);
    let stats = SequenceStats::from_bitstrings(&seq).expect("prefix-free");
    let input_bits: usize = data.iter().map(|s| s.len() * 8).sum();

    let wt = WaveletTrie::build(&seq).expect("NinthBitCoder output is prefix-free");
    let sp = wt.space_breakdown();
    let pd = PathDecompTrie::from_static(&wt);
    let psp = pd.space_breakdown();

    let mut app = AppendWaveletTrie::new();
    let mut dy = DynamicWaveletTrie::new();
    for s in &seq {
        app.append(s.as_bitstr())
            .expect("NinthBitCoder output is prefix-free");
        dy.append(s.as_bitstr())
            .expect("NinthBitCoder output is prefix-free");
    }
    let (apt, abv) = app.space_parts();
    let (dpt, dbv) = dy.space_parts();

    let naive = NaiveSeq::from_iter(data.iter());
    let btree = BTreeIndex::from_iter(data.iter());
    let dict = DictSequence::from_iter(data.iter());

    println!(
        "\n== {name}: n = {n}, |Sset| = {}, raw input = {} bits ({} b/str) ==",
        stats.distinct,
        input_bits,
        bits_per(input_bits, n)
    );
    println!(
        "   lower bounds: nH0 = {:.0}  LT = {:.0}  LB = {:.0} ({} b/str)   h̃n = {}",
        stats.nh0_bits,
        stats.lt_bits,
        stats.lb_bits,
        bits_per(stats.lb_bits as usize, n),
        wt.total_bitvector_bits(),
    );
    let t = Table::new(
        &["structure", "bits", "b/str", "x LB", "note"],
        &[16, 12, 8, 7, 34],
    );
    let xlb = |bits: usize| format!("{:.2}", bits as f64 / stats.lb_bits.max(1.0));
    t.row(&[
        "static WT",
        &sp.total_bits.to_string(),
        &bits_per(sp.total_bits, n),
        &xlb(sp.total_bits),
        "LB + o(h̃n)  (Thm 3.7)",
    ]);
    t.row(&[
        "path-decomp WT",
        &psp.total_bits.to_string(),
        &bits_per(psp.total_bits, n),
        &xlb(psp.total_bits),
        "same trie, centroid paths (§3)",
    ]);
    t.row(&[
        "append-only WT",
        &(apt + abv).to_string(),
        &bits_per(apt + abv, n),
        &xlb(apt + abv),
        &format!("PT={apt} BV={abv}  (Thm 4.3)"),
    ]);
    t.row(&[
        "dynamic WT",
        &(dpt + dbv).to_string(),
        &bits_per(dpt + dbv, n),
        &xlb(dpt + dbv),
        &format!("PT={dpt} BV={dbv}  (Thm 4.4)"),
    ]);
    t.row(&[
        "Vec<String>",
        &naive.size_bits().to_string(),
        &bits_per(naive.size_bits(), n),
        &xlb(naive.size_bits()),
        "no index at all",
    ]);
    t.row(&[
        "BTree index",
        &btree.size_bits().to_string(),
        &bits_per(btree.size_bits(), n),
        &xlb(btree.size_bits()),
        "approach (3): two copies",
    ]);
    t.row(&[
        "dict + int WT",
        &dict.size_bits().to_string(),
        &bits_per(dict.size_bits(), n),
        &xlb(dict.size_bits()),
        "approach (1): no prefix ops",
    ]);
    // Static breakdown (Theorem 3.7 components).
    println!(
        "   static breakdown: tree={} labels={} (+delim {}) bitvectors={} (+delim {}) flags={}",
        sp.tree_bits,
        sp.label_bits,
        sp.label_delim_bits,
        sp.bv_bits,
        sp.bv_delim_bits,
        sp.flags_bits
    );
    println!(
        "   path-decomp breakdown: skeleton={} labels={} (+delim {}) dirs={} bitvectors={} (+delim {})",
        psp.skeleton_bits,
        psp.label_bits,
        psp.label_delim_bits,
        psp.dir_bits,
        psp.bv_bits,
        psp.bv_delim_bits
    );
}

fn main() {
    println!("== Table 1 (space): measured bits vs LB = LT(Sset) + nH0(S) ==");
    report(
        "URL access log",
        url_log(50_000, UrlLogConfig::default(), 3),
    );
    report("word text", word_text(50_000, 400, 4));
    report(
        "u64 column (50 values in 2^64)",
        small_alphabet_u64(50_000, 50, 64, 5)
            .into_iter()
            .map(|v| format!("{v:016x}"))
            .collect(),
    );
    println!(
        "\nExpected shape: static ≈ 1–2× LB; append/dynamic add PT (O(|Sset|·w)) and\n\
         the dynamic bitvector constant; baselines are several × the raw input."
    );
}
