//! E7: the §5 range algorithms against the naive alternative (one `Access`
//! per position / a scan + hash map).
//!
//! Expected shape: the trie-based algorithms win by a growing factor as the
//! window grows, because their cost scales with the *distinct* strings in
//! the window (`Σ |s| + h_s·C_op`), not with the window length.

use wavelet_trie::binarize::{Coder, NinthBitCoder};
use wavelet_trie::{BitString, SeqIndex, SequenceOps, WaveletTrie};
use wt_baselines::NaiveSeq;
use wt_bench::{fmt_ns, time_per_op_ns, Table};
use wt_workloads::{url_log, word_text, UrlLogConfig};

fn main() {
    let n = 200_000;
    // Two regimes: words = few distinct strings per window (the §5 sweet
    // spot); URLs = adversarially many distinct strings per window.
    run("word text (|Sset| small)", word_text(n, 400, 77), n);
    run(
        "URL log (|Sset| = Θ(n))",
        url_log(n, UrlLogConfig::default(), 77),
        n,
    );
}

fn run(name: &str, data: Vec<String>, n: usize) {
    let coder = NinthBitCoder;
    let seq: Vec<BitString> = data.iter().map(|s| coder.encode(s.as_bytes())).collect();
    let wt = WaveletTrie::build(&seq).expect("NinthBitCoder output is prefix-free");
    let naive = NaiveSeq::from_iter(data.iter());
    println!(
        "\n== E7: §5 range algorithms, {name}, n = {n}, |Sset| = {} ==\n",
        wt.distinct_len()
    );

    let t = Table::new(
        &["window", "op", "wavelet trie", "naive scan", "speedup"],
        &[9, 16, 13, 13, 9],
    );
    for &w in &[1_000usize, 10_000, 100_000] {
        let l = (n - w) / 2;
        let r = l + w;

        let wt_d = time_per_op_ns(5, 3, || {
            std::hint::black_box(wt.distinct_in_range(l, r));
        });
        let nv_d = time_per_op_ns(5, 3, || {
            std::hint::black_box(naive.distinct_in_range(l, r));
        });
        t.row(&[
            &w.to_string(),
            "distinct",
            &fmt_ns(wt_d),
            &fmt_ns(nv_d),
            &format!("{:.1}x", nv_d / wt_d),
        ]);

        let wt_m = time_per_op_ns(20, 3, || {
            std::hint::black_box(wt.range_majority(l, r));
        });
        let nv_m = time_per_op_ns(5, 3, || {
            std::hint::black_box(naive.range_majority(l, r));
        });
        t.row(&[
            &w.to_string(),
            "majority",
            &fmt_ns(wt_m),
            &fmt_ns(nv_m),
            &format!("{:.1}x", nv_m / wt_m),
        ]);

        let thresh = (w / 50).max(2);
        let wt_f = time_per_op_ns(20, 3, || {
            std::hint::black_box(wt.range_frequent(l, r, thresh));
        });
        let nv_f = time_per_op_ns(5, 3, || {
            std::hint::black_box(naive.range_frequent(l, r, thresh));
        });
        t.row(&[
            &w.to_string(),
            &format!("frequent t={thresh}"),
            &fmt_ns(wt_f),
            &fmt_ns(nv_f),
            &format!("{:.1}x", nv_f / wt_f),
        ]);

        // Sequential iteration (per extracted string) vs per-position Access.
        let iter_ns = time_per_op_ns(3, 3, || {
            let mut c = 0usize;
            for s in wt.iter_range(l, r) {
                c += s.len();
            }
            std::hint::black_box(c);
        }) / w as f64;
        let access_ns = time_per_op_ns(3, 3, || {
            let mut c = 0usize;
            for i in l..(l + (w / 10).max(1)) {
                c += wt.access(i).len();
            }
            std::hint::black_box(c);
        }) / ((w / 10).max(1) as f64);
        t.row(&[
            &w.to_string(),
            "iterate (per s)",
            &fmt_ns(iter_ns),
            &fmt_ns(access_ns),
            &format!("{:.1}x", access_ns / iter_ns),
        ]);
    }
    println!(
        "\nnote: 'naive scan' for iterate is repeated Access(pos) on the same\n\
         structure — the §5 cursor iterator amortizes the per-node Ranks away."
    );
}
