//! E8: §6 / Theorem 6.2 — measured trie height of the randomized Wavelet
//! Tree vs the `(α+2)·log|Σ|` bound, with the failure fraction compared to
//! the `|Σ|^{-α}` prediction, plus the unhashed pathological baseline.

use wavelet_trie::hashed::unhashed_height;
use wavelet_trie::RandomizedWaveletTree;
use wt_bench::Table;
use wt_workloads::{power_comb, small_alphabet_u64};

fn main() {
    println!("== E8: randomized Wavelet Tree balance (§6, Thm 6.2) ==\n");
    let seeds = 200u64;
    println!("α = 2, {seeds} random multipliers per row; u = 2^64\n");
    let t = Table::new(
        &[
            "|Σ|", "log|Σ|", "bound", "max h", "mean h", "viol.", "pred.",
        ],
        &[8, 8, 7, 7, 8, 7, 9],
    );
    for &sigma in &[16usize, 64, 256, 1024] {
        let log_sigma = (sigma as f64).log2();
        let bound = (4.0 * log_sigma).ceil() as usize; // (α+2)·log|Σ|, α=2
        let values = small_alphabet_u64(4 * sigma, sigma, 64, sigma as u64);
        let mut max_h = 0usize;
        let mut sum_h = 0usize;
        let mut violations = 0usize;
        for seed in 0..seeds {
            let mut t = RandomizedWaveletTree::new(64, seed * 2654435761 + 1);
            for &v in &values {
                t.push(v);
            }
            let h = t.height();
            max_h = max_h.max(h);
            sum_h += h;
            if h > bound {
                violations += 1;
            }
        }
        t.row(&[
            &sigma.to_string(),
            &format!("{log_sigma:.0}"),
            &bound.to_string(),
            &max_h.to_string(),
            &format!("{:.1}", sum_h as f64 / seeds as f64),
            &format!("{violations}/{seeds}"),
            &format!("≤{:.3}", seeds as f64 * (sigma as f64).powi(-2)),
        ]);
    }

    println!("\nunhashed pathological baseline (power-of-two comb {{2^j}}):");
    let t = Table::new(&["|Σ|", "unhashed h", "hashed h (seed 1)"], &[8, 12, 18]);
    for &k in &[16u32, 32, 64] {
        let comb = power_comb(k);
        let mut hashed = RandomizedWaveletTree::new(64, 1);
        for &v in &comb {
            hashed.push(v);
        }
        t.row(&[
            &k.to_string(),
            &unhashed_height(&comb, 64).to_string(),
            &hashed.height().to_string(),
        ]);
    }
    println!(
        "\nexpected: max height ≤ bound for (almost) every seed — violations far\n\
         below the |Σ|^-α prediction; unhashed comb height ≈ |Σ| (up to log u)."
    );
}
