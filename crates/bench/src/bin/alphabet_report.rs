//! E9: the **dynamic alphabet** comparison — the paper's core motivation
//! (§1 issue (a)): what happens when previously-unseen strings keep
//! arriving?
//!
//! * Wavelet Trie (append-only): each unseen string is one O(|s| + h_s)
//!   split — no rebuild, ever.
//! * approach (1) (dictionary + integer Wavelet Tree): every unseen string
//!   changes the alphabet and forces a full rebuild.
//! * approach (3) (BTree index + plain copy): cheap updates but several
//!   times the space and no compressed Access.

use wavelet_trie::AppendLog;
use wt_baselines::{BTreeIndex, DictSequence};
use wt_bench::{bits_per, time_once_ms, Table};
use wt_bits::SpaceUsage;
use wt_workloads::{url_log, UrlLogConfig};

fn main() {
    println!("== E9: appending with a growing alphabet (§1 issue (a)) ==\n");
    let cfg = UrlLogConfig {
        hosts: 2000, // many hosts => unseen strings keep arriving
        ..UrlLogConfig::default()
    };
    let t = Table::new(
        &["n", "structure", "ingest", "unseen", "rebuilds", "b/str"],
        &[8, 16, 10, 8, 9, 8],
    );
    for &n in &[2_000usize, 8_000, 32_000] {
        let data = url_log(n, cfg, 9);
        let distinct = {
            let mut d: Vec<&String> = data.iter().collect();
            d.sort();
            d.dedup();
            d.len()
        };

        let (log, wt_ms) = time_once_ms(|| {
            let mut log = AppendLog::new();
            for s in &data {
                log.append(s);
            }
            log
        });
        t.row(&[
            &n.to_string(),
            "wavelet trie",
            &format!("{wt_ms:.0}ms"),
            &distinct.to_string(),
            "0",
            &bits_per(log.size_bits(), n),
        ]);

        if n <= 8_000 {
            let (dict, dict_ms) = time_once_ms(|| {
                let mut d = DictSequence::new();
                for s in &data {
                    d.push(s);
                }
                d
            });
            t.row(&[
                &n.to_string(),
                "dict + int WT",
                &format!("{dict_ms:.0}ms"),
                &distinct.to_string(),
                &dict.rebuilds().to_string(),
                &bits_per(dict.size_bits(), n),
            ]);
        } else {
            t.row(&[
                &n.to_string(),
                "dict + int WT",
                "(skipped)",
                &distinct.to_string(),
                &distinct.to_string(),
                "-",
            ]);
        }

        let (btree, bt_ms) = time_once_ms(|| {
            let mut b = BTreeIndex::new();
            for s in &data {
                b.push(s);
            }
            b
        });
        t.row(&[
            &n.to_string(),
            "BTree + copy",
            &format!("{bt_ms:.0}ms"),
            &distinct.to_string(),
            "0",
            &bits_per(btree.size_bits(), n),
        ]);
    }
    println!(
        "\nexpected: wavelet-trie ingest scales ~linearly; dict+WT ingest blows up\n\
         with one full rebuild per unseen string (quadratic-ish); the BTree is\n\
         fast but pays several × the space and has no compressed Access/Rank."
    );
}
