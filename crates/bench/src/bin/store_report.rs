//! E13: the tiered store and the structural freeze path.
//!
//! Two claims, one machine-readable trajectory file (`BENCH_store.json`):
//!
//! * **freeze vs rebuild** — sealing a dynamic Wavelet Trie with the
//!   structural `freeze()` (one trie walk, word-level copies) must beat
//!   rebuilding the static trie from re-emitted strings
//!   (`iter_seq` → `WaveletTrie::from_bitstrings`) by ≥5× on the
//!   100k-URL workload, for both the append-only and fully dynamic
//!   backends;
//! * **tiered query overhead** — `TieredStrings` (hot tier + sealed
//!   static segments + Elias–Fano position routing) pays a bounded
//!   constant over a single monolithic static `IndexedStrings` on
//!   access/rank/select/count_prefix, while also absorbing updates the
//!   static structure cannot.
//!
//! Usage: `store_report [--quick] [--out PATH]`

use wavelet_trie::binarize::{Coder, NinthBitCoder};
use wavelet_trie::{
    AppendWaveletTrie, DynamicWaveletTrie, IndexedStrings, SeqIndex, SequenceOps, WaveletTrie,
};
use wt_bench::{fmt_ns, time_once_ms, time_per_op_ns, xorshift, Table};
use wt_bits::SpaceUsage;
use wt_store::TieredStrings;
use wt_workloads::urls::{url_log, UrlLogConfig};

/// One measured series.
struct Measurement {
    structure: &'static str,
    workload: &'static str,
    op: &'static str,
    n: usize,
    /// ns/op for query series, ms for build series.
    value: f64,
    unit: &'static str,
    /// Ratio vs the comparison series (speedup for builds, overhead for
    /// tiered queries); 0 when n/a.
    ratio: f64,
}

fn median_ms(samples: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut v: Vec<f64> = (0..samples).map(|_| f()).collect();
    // Timings come from `Instant` deltas, so NaN is impossible.
    v.sort_by(|a, b| a.partial_cmp(b).expect("timings are never NaN"));
    v[v.len() / 2]
}

fn bench_freeze_vs_rebuild(n: usize, samples: usize, out: &mut Vec<Measurement>) {
    println!("== structural freeze vs rebuild-from-strings at n = {n} ==\n");
    let coder = NinthBitCoder;
    let strings = url_log(n, UrlLogConfig::default(), 5);
    let encoded: Vec<_> = strings.iter().map(|s| coder.encode(s.as_bytes())).collect();

    let mut dynamic = DynamicWaveletTrie::new();
    let mut append = AppendWaveletTrie::new();
    for s in &encoded {
        dynamic
            .insert(s.as_bitstr(), dynamic.len())
            .expect("NinthBitCoder output is prefix-free");
        append
            .append(s.as_bitstr())
            .expect("NinthBitCoder output is prefix-free");
    }

    let t = Table::new(
        &["backend", "freeze", "rebuild", "speedup"],
        &[20, 10, 10, 8],
    );
    for (name, freeze_ms, rebuild_ms) in [
        (
            "DynamicWaveletTrie",
            median_ms(samples, || time_once_ms(|| dynamic.freeze()).1),
            median_ms(samples, || {
                time_once_ms(|| {
                    WaveletTrie::from_bitstrings(dynamic.iter_seq())
                        .expect("stored sequence is prefix-free")
                })
                .1
            }),
        ),
        (
            "AppendWaveletTrie",
            median_ms(samples, || time_once_ms(|| append.freeze()).1),
            median_ms(samples, || {
                time_once_ms(|| {
                    WaveletTrie::from_bitstrings(append.iter_seq())
                        .expect("stored sequence is prefix-free")
                })
                .1
            }),
        ),
    ] {
        let speedup = rebuild_ms / freeze_ms;
        t.row(&[
            name,
            &format!("{freeze_ms:.1}ms"),
            &format!("{rebuild_ms:.1}ms"),
            &format!("{speedup:.1}x"),
        ]);
        out.push(Measurement {
            structure: name,
            workload: "url_log",
            op: "freeze",
            n,
            value: freeze_ms,
            unit: "ms",
            ratio: speedup,
        });
        out.push(Measurement {
            structure: name,
            workload: "url_log",
            op: "rebuild",
            n,
            value: rebuild_ms,
            unit: "ms",
            ratio: 0.0,
        });
    }
    // Sanity: the frozen trie answers like the rebuilt one.
    let frozen = dynamic.freeze();
    assert_eq!(frozen.seq_len(), n);
    assert_eq!(frozen.access(n / 2), encoded[n / 2]);
    println!();
}

fn bench_tiered_overhead(n: usize, iters: usize, out: &mut Vec<Measurement>) {
    println!("== tiered query overhead vs pure static at n = {n} ==\n");
    let strings = url_log(n, UrlLogConfig::default(), 5);

    let stat: IndexedStrings = strings.iter().collect();
    let mut tiered = TieredStrings::new(); // default policy: seal_at 8192
    tiered.extend(strings.iter());
    tiered.seal(); // freeze the tail so the store is all-static segments
    println!(
        "tiered segments: {} ({} sealed), {:.0} vs {:.0} bits/str\n",
        tiered.num_segments(),
        tiered.sealed_segments(),
        tiered.size_bits() as f64 / n as f64,
        stat.size_bits() as f64 / n as f64,
    );
    // Per-segment trie-shape probe: the measured h̃ vs log2 n that drives
    // the adaptive representation choice at seal time.
    println!("per-segment shape (h̃ vs log2 n → representation):");
    let shapes = tiered.inner().segment_shapes();
    for (i, (shape, kind)) in shapes
        .iter()
        .zip(tiered.inner().segment_kinds())
        .enumerate()
    {
        println!(
            "  seg {i}: n={} distinct={} depth avg={:.1} max={} log2n={:.1} → {:?}",
            shape.n, shape.distinct, shape.avg_depth, shape.max_depth, shape.log2n, kind
        );
    }
    println!();

    let t = Table::new(
        &["structure", "access", "rank", "select", "count_prefix"],
        &[14, 9, 9, 9, 12],
    );
    // Identical probe schedule for both structures.
    let series = |name: &'static str,
                  access: f64,
                  rank: f64,
                  select: f64,
                  count_prefix: f64,
                  base: Option<&[f64; 4]>,
                  out: &mut Vec<Measurement>| {
        t.row(&[
            name,
            &fmt_ns(access),
            &fmt_ns(rank),
            &fmt_ns(select),
            &fmt_ns(count_prefix),
        ]);
        for (i, (op, ns)) in [
            ("access", access),
            ("rank", rank),
            ("select", select),
            ("count_prefix", count_prefix),
        ]
        .into_iter()
        .enumerate()
        {
            out.push(Measurement {
                structure: name,
                workload: "url_log",
                op,
                n,
                value: ns,
                unit: "ns_per_op",
                ratio: base.map_or(0.0, |b| ns / b[i]),
            });
        }
    };

    macro_rules! measure {
        ($idx:expr) => {{
            let idx = &$idx;
            let mut next = xorshift(3);
            let access = time_per_op_ns(iters, 7, || {
                let pos = (next() % n as u64) as usize;
                std::hint::black_box(idx.get_bytes(pos));
            });
            let rank = time_per_op_ns(iters, 7, || {
                let s = &strings[(next() % n as u64) as usize];
                let pos = (next() % (n as u64 + 1)) as usize;
                std::hint::black_box(idx.rank(s, pos));
            });
            let select = time_per_op_ns(iters, 7, || {
                let s = &strings[(next() % n as u64) as usize];
                std::hint::black_box(idx.select(s, 0));
            });
            let count_prefix = time_per_op_ns(iters, 7, || {
                let s = &strings[(next() % n as u64) as usize];
                let p = &s[..s.len().min(12)];
                std::hint::black_box(idx.count_prefix(p));
            });
            [access, rank, select, count_prefix]
        }};
    }

    let base = measure!(stat);
    series(
        "IndexedStrings",
        base[0],
        base[1],
        base[2],
        base[3],
        None,
        out,
    );
    let tier = measure!(tiered);
    series(
        "TieredStrings",
        tier[0],
        tier[1],
        tier[2],
        tier[3],
        Some(&base),
        out,
    );
    println!();
}

fn write_json(path: &str, mode: &str, results: &[Measurement]) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"store_report\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        let ratio = if m.ratio > 0.0 {
            format!(", \"ratio\": {:.2}", m.ratio)
        } else {
            String::new()
        };
        s.push_str(&format!(
            "    {{\"structure\": \"{}\", \"workload\": \"{}\", \"op\": \"{}\", \"n\": {}, \
             \"value\": {:.1}, \"unit\": \"{}\"{}}}{}\n",
            m.structure,
            m.workload,
            m.op,
            m.n,
            m.value,
            m.unit,
            ratio,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).expect("write BENCH_store.json");
    println!("wrote {path} ({} series)", results.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_store.json".to_string());
    let (n, samples, iters) = if quick {
        (20_000, 3, 2_000)
    } else {
        (100_000, 5, 20_000)
    };
    let mode = if quick { "quick" } else { "full" };

    let mut results = Vec::new();
    bench_freeze_vs_rebuild(n, samples, &mut results);
    bench_tiered_overhead(n, iters, &mut results);
    write_json(&out_path, mode, &results);
}
