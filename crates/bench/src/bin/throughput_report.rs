//! E14: the throughput engine — batched interleaved queries and scoped-
//! thread parallel construction.
//!
//! PR 3 drove single-query latency to the memory wall: a static descent is
//! a chain of *dependent* cache misses, so serving heavy traffic is bounded
//! by misses-per-query. This report measures the two ways the engine buys
//! throughput back:
//!
//! * **batched queries** — `access_batch` / `rank_batch` /
//!   `count_prefix_batch` advance N independent descents level-by-level in
//!   lockstep with software prefetch, so N dependent miss chains become
//!   ~depth rounds of overlapped misses. Measured against the scalar-loop
//!   baseline at batch sizes 1/8/64/512, on the static trie and the tiered
//!   store.
//! * **parallel construction** — `build`/`freeze` scaling at 1/2/4 scoped
//!   worker threads (subtrie tasks + chunk-parallel RRR encode). Note the
//!   `cores` field: thread scaling is only meaningful when the host grants
//!   more than one CPU.
//! * **concurrent read scaling** — 1/2/4 *real* reader threads, each
//!   holding a published `StoreSnapshot` of a tiered store and running
//!   batch-64 `access`/`rank`/`count_prefix` kernels; reported as
//!   aggregate throughput and speedup vs one thread. Snapshots are
//!   `Send + Sync` and wait-free on the query path, so this lane measures
//!   genuine parallel serving, not time-sliced interleaving.
//!
//! Writes machine-readable `BENCH_throughput.json`.
//!
//! Usage: `throughput_report [--quick] [--out PATH]`

use std::sync::Barrier;

use wavelet_trie::binarize::{Coder, NinthBitCoder};
use wavelet_trie::{BitStr, BitString, DynamicWaveletTrie, PathDecompTrie, SeqIndex, WaveletTrie};
use wt_bench::{fmt_ns, time_per_op_ns, xorshift, Table};
use wt_store::{StoreConfig, StoreSnapshot, TieredStore};
use wt_workloads::urls::{url_log, UrlLogConfig};
use wt_workloads::words::word_text;

/// One measured query series.
struct QuerySeries {
    workload: &'static str,
    op: &'static str,
    batch: usize,
    n: usize,
    ns_per_op: f64,
    scalar_ns_per_op: f64,
}

/// One measured construction point.
struct BuildSeries {
    workload: &'static str,
    op: &'static str,
    threads: usize,
    n: usize,
    ms: f64,
}

/// One measured concurrent-read point (aggregate across reader threads).
struct ReadSeries {
    workload: &'static str,
    op: &'static str,
    threads: usize,
    batch: usize,
    n: usize,
    total_ops: usize,
    wall_ms: f64,
    mops: f64,
}

const BATCH_SIZES: [usize; 4] = [1, 8, 64, 512];
/// Probe-pool size: large enough that consecutive batches don't re-walk
/// the same cache-resident paths.
const POOL: usize = 8192;

fn encode_all(strings: &[String]) -> Vec<BitString> {
    let coder = NinthBitCoder;
    strings.iter().map(|s| coder.encode(s.as_bytes())).collect()
}

/// Fixed-width random integers: a near-distinct alphabet, so the trie is
/// large and every level of every descent is an uncached pointer chase —
/// the adversarial regime for single-query latency and the best case for
/// interleaving.
fn random_ints(n: usize, width: usize, seed: u64) -> Vec<BitString> {
    let mut next = xorshift(seed);
    (0..n)
        .map(|_| {
            let v = next() & ((1u64 << width) - 1);
            BitString::from_bits((0..width).rev().map(move |k| (v >> k) & 1 != 0))
        })
        .collect()
}

/// Measures one op's scalar baseline and batched throughput on `idx`.
#[allow(clippy::too_many_arguments)]
fn bench_op(
    workload: &'static str,
    op: &'static str,
    n: usize,
    iters: usize,
    scalar: &dyn Fn(usize),
    batched: &dyn Fn(usize, usize),
    t: &Table,
    out: &mut Vec<QuerySeries>,
) {
    let mut at = 0usize;
    let scalar_ns = time_per_op_ns(iters, 5, || {
        scalar(at % POOL);
        at += 1;
    });
    let mut row: Vec<String> = vec![workload.into(), op.into(), fmt_ns(scalar_ns)];
    for &bs in &BATCH_SIZES {
        let calls = (iters / bs).max(4);
        let mut at = 0usize;
        let ns = time_per_op_ns(calls, 5, || {
            batched(at % POOL, bs);
            at += bs;
        }) / bs as f64;
        row.push(format!("{} ({:.2}x)", fmt_ns(ns), scalar_ns / ns));
        out.push(QuerySeries {
            workload,
            op,
            batch: bs,
            n,
            ns_per_op: ns,
            scalar_ns_per_op: scalar_ns,
        });
    }
    let cells: Vec<&str> = row.iter().map(|s| s.as_str()).collect();
    t.row(&cells);
}

/// Batched-query section for one backend over one workload.
fn bench_queries(
    workload: &'static str,
    idx: &dyn SeqIndex,
    encoded: &[BitString],
    iters: usize,
    t: &Table,
    out: &mut Vec<QuerySeries>,
) {
    let n = idx.seq_len();
    let mut next = xorshift(0x9E3779B9);
    // Pre-generated probe pools (wrapping slices keep batch windows cheap).
    let positions: Vec<usize> = (0..POOL + 512)
        .map(|_| (next() % n as u64) as usize)
        .collect();
    let rank_q: Vec<(BitStr<'_>, usize)> = (0..POOL + 512)
        .map(|_| {
            let s = &encoded[(next() % n as u64) as usize];
            (s.as_bitstr(), (next() % (n as u64 + 1)) as usize)
        })
        .collect();
    // Byte-aligned prefixes (~12 bytes) of stored strings: the common
    // "count URLs under this folder" probe.
    let prefixes: Vec<BitStr<'_>> = (0..POOL + 512)
        .map(|_| {
            let s = &encoded[(next() % n as u64) as usize];
            s.as_bitstr().prefix((s.len() / 9).min(12) * 9)
        })
        .collect();
    bench_op(
        workload,
        "access",
        n,
        iters,
        &|k| {
            std::hint::black_box(idx.access(positions[k]));
        },
        &|k, bs| {
            std::hint::black_box(idx.access_batch(&positions[k..k + bs]));
        },
        t,
        out,
    );
    bench_op(
        workload,
        "rank",
        n,
        iters,
        &|k| {
            let (s, pos) = rank_q[k];
            std::hint::black_box(idx.rank(s, pos));
        },
        &|k, bs| {
            std::hint::black_box(idx.rank_batch(&rank_q[k..k + bs]));
        },
        t,
        out,
    );
    bench_op(
        workload,
        "count_prefix",
        n,
        iters,
        &|k| {
            std::hint::black_box(idx.count_prefix(prefixes[k]));
        },
        &|k, bs| {
            std::hint::black_box(idx.count_prefix_batch(&prefixes[k..k + bs]));
        },
        t,
        out,
    );
}

fn bench_query_section(quick: bool, out: &mut Vec<QuerySeries>) {
    // Full mode sizes the working sets past the last-level cache (~100MB
    // on big server parts): throughput batching hides *memory* latency,
    // so the interesting regime is the one where descents actually miss.
    let (n_url, n_words, n_ints) = if quick {
        (100_000, 100_000, 200_000)
    } else {
        (5_000_000, 1_000_000, 12_000_000)
    };
    let iters = if quick { 20_000 } else { 30_000 };
    println!("== batched interleaved queries (pool {POOL}) ==\n");
    let headers: Vec<String> = ["workload", "op", "scalar"]
        .iter()
        .map(|s| s.to_string())
        .chain(BATCH_SIZES.iter().map(|b| format!("batch {b}")))
        .collect();
    let hcells: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let t = Table::new(&hcells, &[12, 12, 9, 16, 16, 16, 16]);
    let url_cfg = UrlLogConfig {
        hosts: 2000,
        ..UrlLogConfig::default()
    };
    let workloads: [(&'static str, &'static str, Vec<BitString>); 3] = [
        ("url", "url_pd", encode_all(&url_log(n_url, url_cfg, 5))),
        (
            "words",
            "words_pd",
            encode_all(&word_text(n_words, 2000, 7)),
        ),
        ("ints", "ints_pd", random_ints(n_ints, 28, 99)),
    ];
    for (name, pd_name, encoded) in &workloads {
        let wt = WaveletTrie::build(encoded).expect("prefix-free inputs");
        bench_queries(name, &wt, encoded, iters, &t, out);
        // The same trie, path-decomposed: scalar column shows the
        // pointer-chase win; the batch columns must preserve it.
        let pd = PathDecompTrie::from_static_with_threads(&wt, 4);
        drop(wt);
        bench_queries(pd_name, &pd, encoded, iters, &t, out);
    }
    // The tiered store routes the same batches through its segment
    // directory: 4-ish sealed segments + a hot tail.
    let encoded = &workloads[0].2;
    let mut store = TieredStore::with_config(StoreConfig {
        seal_at: n_url / 5,
        max_sealed: 8,
    });
    for s in encoded.iter() {
        store.append(s.as_bitstr()).expect("prefix-free");
    }
    bench_queries("url_tiered", &store, encoded, iters / 2, &t, out);
    println!();
}

fn bench_construction(quick: bool, out: &mut Vec<BuildSeries>) {
    let n_build = if quick { 60_000 } else { 400_000 };
    let n_freeze = if quick { 60_000 } else { 200_000 };
    println!("== construction scaling (scoped worker threads) ==\n");
    let t = Table::new(
        &["op", "workload", "threads", "wall", "vs 1T"],
        &[8, 10, 7, 10, 7],
    );
    let urls = url_log(n_build, UrlLogConfig::default(), 11);
    let encoded = encode_all(&urls);
    let mut base_ms = 0.0f64;
    for threads in [1usize, 2, 4] {
        let mut best = f64::INFINITY;
        for _ in 0..2 {
            let t0 = std::time::Instant::now();
            let wt = WaveletTrie::build_with_threads(&encoded, threads).expect("prefix-free");
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            std::hint::black_box(wt.len());
            best = best.min(ms);
        }
        if threads == 1 {
            base_ms = best;
        }
        t.row(&[
            "build",
            "url",
            &threads.to_string(),
            &format!("{best:.0}ms"),
            &format!("{:.2}x", base_ms / best),
        ]);
        out.push(BuildSeries {
            workload: "url",
            op: "build",
            threads,
            n: n_build,
            ms: best,
        });
    }
    let mut dynamic = DynamicWaveletTrie::new();
    for s in encoded.iter().take(n_freeze) {
        dynamic.append(s.as_bitstr()).expect("prefix-free");
    }
    let mut base_ms = 0.0f64;
    for threads in [1usize, 2, 4] {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t0 = std::time::Instant::now();
            let wt = dynamic.freeze_with_threads(threads);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            std::hint::black_box(wt.len());
            best = best.min(ms);
        }
        if threads == 1 {
            base_ms = best;
        }
        t.row(&[
            "freeze",
            "url",
            &threads.to_string(),
            &format!("{best:.0}ms"),
            &format!("{:.2}x", base_ms / best),
        ]);
        out.push(BuildSeries {
            workload: "url",
            op: "freeze",
            threads,
            n: n_freeze,
            ms: best,
        });
    }
    println!();
}

/// Measures how well *pure register-only CPU work* (no memory traffic, no
/// locks, no allocation) scales from 1 to 2 threads on this host. On an
/// oversubscribed cloud box "2 cores" can deliver well under 2x even for
/// embarrassingly parallel spin loops; this ceiling is the fair yardstick
/// for the read-scaling lane — a reader speedup at or above it means the
/// snapshot path added no contention of its own.
fn cpu_scaling_ceiling_2t() -> f64 {
    fn spin(iters: u64) -> u64 {
        let mut s = 0x9E37_79B9_7F4A_7C15u64;
        let mut acc = 0u64;
        for _ in 0..iters {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            acc = acc.wrapping_add(s);
        }
        acc
    }
    let iters = 150_000_000u64;
    let wall = |threads: usize| {
        let t0 = std::time::Instant::now();
        std::thread::scope(|sc| {
            let hs: Vec<_> = (0..threads)
                .map(|_| sc.spawn(move || spin(iters)))
                .collect();
            for h in hs {
                std::hint::black_box(h.join().expect("spin thread panicked"));
            }
        });
        t0.elapsed().as_secs_f64()
    };
    let one = wall(1).min(wall(1));
    let two = wall(2).min(wall(2));
    2.0 * one / two
}

/// Concurrent read scaling: 1/2/4 reader threads, each holding its own
/// `StoreSnapshot` of the same published epoch, hammering batch-64 query
/// kernels. Every thread does a *fixed* amount of work, so aggregate
/// throughput (total ops / wall) scales with threads exactly when the
/// snapshot read path is contention-free.
fn bench_read_scaling(quick: bool, ceiling_2t: f64, out: &mut Vec<ReadSeries>) {
    const RB: usize = 64;
    let n = if quick { 150_000 } else { 1_000_000 };
    let per_thread_ops = if quick { 64_000 } else { 512_000 };
    println!("== concurrent read scaling (one StoreSnapshot per reader thread, batch {RB}) ==");
    println!("   host pure-CPU 2-thread ceiling: {ceiling_2t:.2}x\n");
    let t = Table::new(
        &["op", "threads", "wall", "Mop/s", "vs 1T"],
        &[14, 7, 10, 9, 7],
    );
    let url_cfg = UrlLogConfig {
        hosts: 2000,
        ..UrlLogConfig::default()
    };
    let encoded = encode_all(&url_log(n, url_cfg, 23));
    let mut store = TieredStore::with_config(StoreConfig {
        seal_at: n / 5,
        max_sealed: 8,
    });
    for s in &encoded {
        store.append(s.as_bitstr()).expect("prefix-free");
    }
    store.publish();
    let reader = store.reader();

    let mut next = xorshift(0xC0FFEE);
    let positions: Vec<usize> = (0..POOL + 512)
        .map(|_| (next() % n as u64) as usize)
        .collect();
    let rank_q: Vec<(BitStr<'_>, usize)> = (0..POOL + 512)
        .map(|_| {
            let s = &encoded[(next() % n as u64) as usize];
            (s.as_bitstr(), (next() % (n as u64 + 1)) as usize)
        })
        .collect();
    let prefixes: Vec<BitStr<'_>> = (0..POOL + 512)
        .map(|_| {
            let s = &encoded[(next() % n as u64) as usize];
            s.as_bitstr().prefix((s.len() / 9).min(12) * 9)
        })
        .collect();

    type Kernel<'a> = Box<dyn Fn(&StoreSnapshot, usize) + Sync + 'a>;
    let kernels: [(&'static str, Kernel<'_>); 3] = [
        (
            "access",
            Box::new(|snap, k| {
                std::hint::black_box(snap.access_batch(&positions[k..k + RB]));
            }),
        ),
        (
            "rank",
            Box::new(|snap, k| {
                std::hint::black_box(snap.rank_batch(&rank_q[k..k + RB]));
            }),
        ),
        (
            "count_prefix",
            Box::new(|snap, k| {
                std::hint::black_box(snap.count_prefix_batch(&prefixes[k..k + RB]));
            }),
        ),
    ];
    for (op, kernel) in &kernels {
        let mut base_mops = 0.0f64;
        for threads in [1usize, 2, 4] {
            let mut best_wall = f64::INFINITY;
            for _ in 0..2 {
                let barrier = Barrier::new(threads + 1);
                let wall = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..threads)
                        .map(|ti| {
                            let reader = reader.clone();
                            let barrier = &barrier;
                            scope.spawn(move || {
                                let snap = reader.snapshot();
                                barrier.wait();
                                // Decorrelate thread starting offsets so the
                                // threads don't march through the pool in
                                // cache-sharing lockstep.
                                let mut at = ti * 977;
                                let mut done = 0usize;
                                while done < per_thread_ops {
                                    kernel(&snap, at % POOL);
                                    at += RB;
                                    done += RB;
                                }
                            })
                        })
                        .collect();
                    barrier.wait();
                    let t0 = std::time::Instant::now();
                    for h in handles {
                        h.join().expect("reader thread panicked");
                    }
                    t0.elapsed().as_secs_f64()
                });
                best_wall = best_wall.min(wall);
            }
            let total_ops = per_thread_ops * threads;
            let mops = total_ops as f64 / best_wall / 1e6;
            if threads == 1 {
                base_mops = mops;
            }
            t.row(&[
                op,
                &threads.to_string(),
                &format!("{:.0}ms", best_wall * 1e3),
                &format!("{mops:.2}"),
                &format!("{:.2}x", mops / base_mops),
            ]);
            out.push(ReadSeries {
                workload: "url_tiered",
                op,
                threads,
                batch: RB,
                n,
                total_ops,
                wall_ms: best_wall * 1e3,
                mops,
            });
        }
    }
    println!();
}

fn write_json(
    path: &str,
    mode: &str,
    ceiling_2t: f64,
    queries: &[QuerySeries],
    builds: &[BuildSeries],
    reads: &[ReadSeries],
) {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"throughput_report\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str(&format!("  \"cores\": {cores},\n"));
    s.push_str(&format!("  \"cpu_scaling_ceiling_2t\": {ceiling_2t:.2},\n"));
    s.push_str("  \"batch_results\": [\n");
    for (i, q) in queries.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workload\": \"{}\", \"op\": \"{}\", \"batch\": {}, \"n\": {}, \
             \"ns_per_op\": {:.1}, \"scalar_ns_per_op\": {:.1}, \"speedup\": {:.2}}}{}\n",
            q.workload,
            q.op,
            q.batch,
            q.n,
            q.ns_per_op,
            q.scalar_ns_per_op,
            q.scalar_ns_per_op / q.ns_per_op,
            if i + 1 < queries.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"read_results\": [\n");
    let read_base = |op: &str| {
        reads
            .iter()
            .find(|r| r.op == op && r.threads == 1)
            .map(|r| r.mops)
            .unwrap_or(0.0)
    };
    for (i, r) in reads.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workload\": \"{}\", \"op\": \"{}\", \"threads\": {}, \"batch\": {}, \
             \"n\": {}, \"total_ops\": {}, \"wall_ms\": {:.1}, \"mops\": {:.2}, \
             \"speedup_vs_1t\": {:.2}{}}}{}\n",
            r.workload,
            r.op,
            r.threads,
            r.batch,
            r.n,
            r.total_ops,
            r.wall_ms,
            r.mops,
            r.mops / read_base(r.op),
            if r.threads == 2 {
                format!(
                    ", \"efficiency_vs_host_ceiling\": {:.2}",
                    (r.mops / read_base(r.op)) / ceiling_2t
                )
            } else {
                String::new()
            },
            if i + 1 < reads.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"build_results\": [\n");
    let base = |op: &str| {
        builds
            .iter()
            .find(|b| b.op == op && b.threads == 1)
            .map(|b| b.ms)
            .unwrap_or(0.0)
    };
    for (i, b) in builds.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workload\": \"{}\", \"op\": \"{}\", \"threads\": {}, \"n\": {}, \
             \"ms\": {:.1}, \"speedup_vs_1t\": {:.2}}}{}\n",
            b.workload,
            b.op,
            b.threads,
            b.n,
            b.ms,
            base(b.op) / b.ms,
            if i + 1 < builds.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).expect("write BENCH_throughput.json");
    println!(
        "wrote {path} ({} query series, {} read points, {} build points, {cores} core(s))",
        queries.len(),
        reads.len(),
        builds.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_throughput.json".to_string());
    let mode = if quick { "quick" } else { "full" };
    let mut queries = Vec::new();
    let mut builds = Vec::new();
    let mut reads = Vec::new();
    let ceiling_2t = cpu_scaling_ceiling_2t();
    bench_query_section(quick, &mut queries);
    bench_read_scaling(quick, ceiling_2t, &mut reads);
    bench_construction(quick, &mut builds);
    write_json(&out_path, mode, ceiling_2t, &queries, &builds, &reads);
}
