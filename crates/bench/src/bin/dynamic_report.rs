//! E11: throughput trajectory for the fully dynamic structures (§4.2).
//!
//! Unlike `bitvec_report` (which checks the *asymptotic shape* of the §4.2
//! cost claims), this report measures absolute throughput of every
//! [`wt_bits::DynamicBitVec`] and [`wavelet_trie::DynamicWaveletTrie`] hot path across bit
//! distributions, and writes machine-readable `BENCH_dynamic.json` so each
//! perf PR extends a comparable trajectory.
//!
//! The headline series is `chunk_local_mixed_insert_rank`: interleaved
//! insert/rank/delete confined to a sliding window, the access pattern a
//! Wavelet Trie column update produces in every node bitvector on its root
//! to leaf path — and the pattern the hot-chunk run cache is built for.
//!
//! Usage: `dynamic_report [--quick] [--out PATH]`

use wavelet_trie::DynamicStrings;
use wt_bench::{fmt_ns, time_per_op_ns, xorshift, Table};
use wt_bits::{BitAccess, BitRank, BitSelect, DynamicBitVec, SpaceUsage};
use wt_workloads::words::word_text;

/// One measured series: ns/op for `op` on `structure` under `dist` at size `n`.
struct Measurement {
    structure: &'static str,
    dist: &'static str,
    op: &'static str,
    n: usize,
    ns_per_op: f64,
}

impl Measurement {
    fn mops(&self) -> f64 {
        1e3 / self.ns_per_op
    }
}

/// The three §4.2-relevant bit distributions: dense (runs ≈ 2, worst case
/// for RLE), sparse (runs ≈ 64), runny (runs ≈ 256, best case).
fn build(dist: &str, n: usize, next: &mut impl FnMut() -> u64) -> DynamicBitVec {
    let mut v = DynamicBitVec::new();
    match dist {
        "dense" => {
            for _ in 0..n {
                v.push(next().is_multiple_of(2));
            }
        }
        "sparse" => {
            for _ in 0..n {
                v.push(next().is_multiple_of(64));
            }
        }
        "runny" => {
            for i in 0..n {
                v.push((i / 256) % 2 == 0);
            }
        }
        _ => unreachable!("unknown distribution"),
    }
    v
}

fn bench_bitvec(quick: bool, out: &mut Vec<Measurement>) {
    let n = if quick { 200_000 } else { 1_000_000 };
    let iters = if quick { 20_000 } else { 100_000 };
    println!("== DynamicBitVec (§4.2, Thm 4.9) at n = {n} ==\n");
    let t = Table::new(
        &[
            "dist",
            "insert",
            "delete",
            "rank",
            "select",
            "access",
            "local mix",
            "bits/bit",
        ],
        &[8, 9, 9, 9, 9, 9, 10, 9],
    );
    for dist in ["dense", "sparse", "runny"] {
        let mut next = xorshift(42);
        let mut v = build(dist, n, &mut next);

        // Random-position edit pairs: each insert lands in a fresh chunk
        // (cache miss + flush); the immediate delete of the same bit keeps
        // the content identical — at the price of being chunk-local, so the
        // per-op figure averages one cold and one cache-warm edit. Content
        // preservation matters: deleting anywhere else would scramble the
        // distribution under the later measurements.
        let mut i = 0usize;
        let insert_delete = time_per_op_ns(iters, 3, || {
            i = (i + 7919) % n;
            v.insert(i, i.is_multiple_of(2));
            v.remove(i);
        }) / 2.0;
        let rank = time_per_op_ns(iters, 3, || {
            i = (i + 7919) % n;
            std::hint::black_box(v.rank1(i));
        });
        let ones = v.count_ones().max(1);
        let select = time_per_op_ns(iters, 3, || {
            i = (i + 7919) % ones;
            std::hint::black_box(v.select1(i));
        });
        let access = time_per_op_ns(iters, 3, || {
            i = (i + 7919) % n;
            std::hint::black_box(v.get(i));
        });

        // Chunk-local mixed insert/rank: a sliding 32-bit window that moves
        // rarely, so consecutive ops hit the same chunk (the Wavelet Trie
        // column-update pattern). One iteration = insert + rank + delete;
        // the reported figure is per primitive op.
        let mut base = n / 2;
        let local = time_per_op_ns(iters, 3, || {
            let r = next();
            let pos = base + (r % 32) as usize;
            v.insert(pos, r.is_multiple_of(2));
            std::hint::black_box(v.rank1(pos));
            v.remove(pos);
            if r.is_multiple_of(1024) {
                base = (next() % (n as u64 - 64)) as usize;
            }
        }) / 3.0;

        t.row(&[
            dist,
            &fmt_ns(insert_delete),
            &fmt_ns(insert_delete),
            &fmt_ns(rank),
            &fmt_ns(select),
            &fmt_ns(access),
            &fmt_ns(local),
            &format!("{:.3}", v.size_bits() as f64 / n as f64),
        ]);
        for (op, ns) in [
            ("insert", insert_delete),
            ("delete", insert_delete),
            ("rank", rank),
            ("select", select),
            ("access", access),
            ("chunk_local_mixed_insert_rank", local),
        ] {
            out.push(Measurement {
                structure: "DynamicBitVec",
                dist,
                op,
                n,
                ns_per_op: ns,
            });
        }
    }
    println!();
}

fn bench_wavelet_trie(quick: bool, out: &mut Vec<Measurement>) {
    let n = if quick { 5_000 } else { 20_000 };
    let iters = if quick { 2_000 } else { 5_000 };
    println!("== DynamicWaveletTrie (§4, Thm 4.4) at n = {n} strings ==\n");
    let strings = word_text(n, 1000, 7);
    let mut ws = DynamicStrings::new();
    let push = {
        let t0 = std::time::Instant::now();
        for s in &strings {
            ws.push(s);
        }
        t0.elapsed().as_nanos() as f64 / n as f64
    };
    let mut next = xorshift(9);
    let insert = time_per_op_ns(iters, 3, || {
        let pos = (next() % (ws.len() as u64 + 1)) as usize;
        let s = &strings[(next() % n as u64) as usize];
        ws.insert(s, pos);
        ws.remove(pos);
    }) / 2.0;
    let rank = time_per_op_ns(iters, 3, || {
        let pos = (next() % (ws.len() as u64 + 1)) as usize;
        let s = &strings[(next() % n as u64) as usize];
        std::hint::black_box(ws.rank(s, pos));
    });
    let select = time_per_op_ns(iters, 3, || {
        let s = &strings[(next() % n as u64) as usize];
        std::hint::black_box(ws.select(s, 0));
    });
    let access = time_per_op_ns(iters, 3, || {
        let pos = (next() % ws.len() as u64) as usize;
        std::hint::black_box(ws.get_bytes(pos));
    });
    let t = Table::new(
        &["push", "insert", "delete", "rank", "select", "access"],
        &[9, 9, 9, 9, 9, 9],
    );
    t.row(&[
        &fmt_ns(push),
        &fmt_ns(insert),
        &fmt_ns(insert),
        &fmt_ns(rank),
        &fmt_ns(select),
        &fmt_ns(access),
    ]);
    for (op, ns) in [
        ("push", push),
        ("insert", insert),
        ("delete", insert),
        ("rank", rank),
        ("select", select),
        ("access", access),
    ] {
        out.push(Measurement {
            structure: "DynamicWaveletTrie",
            dist: "word_text",
            op,
            n,
            ns_per_op: ns,
        });
    }
    println!();
}

fn write_json(path: &str, mode: &str, results: &[Measurement]) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"dynamic_report\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str("  \"unit\": \"ns_per_op\",\n");
    s.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"structure\": \"{}\", \"dist\": \"{}\", \"op\": \"{}\", \"n\": {}, \
             \"ns_per_op\": {:.1}, \"mops\": {:.3}}}{}\n",
            m.structure,
            m.dist,
            m.op,
            m.n,
            m.ns_per_op,
            m.mops(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).expect("write BENCH_dynamic.json");
    println!("wrote {path} ({} series)", results.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_dynamic.json".to_string());
    let mode = if quick { "quick" } else { "full" };

    let mut results = Vec::new();
    bench_bitvec(quick, &mut results);
    bench_wavelet_trie(quick, &mut results);
    write_json(&out_path, mode, &results);
}
