//! Renders the paper's Figures 1–3 from the actual structures, so the
//! reproduction can be compared with the paper visually.

use wavelet_trie::{BitString, DynamicWaveletTrie, TrieNav, WaveletTrie};

/// Pretty-prints a Wavelet Trie, preorder, with box-drawing indentation.
fn render<T: TrieNav>(t: &T) {
    fn rec<'a, T: TrieNav>(t: &'a T, v: T::Node<'a>, indent: &str, branch: &str) {
        let mut label = BitString::new();
        t.nav_label_append(v, &mut label);
        let alpha = if label.is_empty() {
            "ε".to_string()
        } else {
            label.to_string()
        };
        if t.nav_is_leaf(v) {
            println!("{indent}{branch}α: {alpha}");
        } else {
            let beta: String = (0..t.nav_bv_len(v))
                .map(|i| if t.nav_bv_get(v, i) { '1' } else { '0' })
                .collect();
            println!("{indent}{branch}α: {alpha}   β: {beta}");
            let deeper = format!("{indent}│   ");
            rec(t, t.nav_child(v, false), &deeper, "0─ ");
            rec(t, t.nav_child(v, true), &deeper, "1─ ");
        }
    }
    match t.nav_root() {
        Some(r) => rec(t, r, "", ""),
        None => println!("(empty)"),
    }
}

fn main() {
    // ---- Figure 1: Wavelet Tree of abracadabra ---------------------------
    println!("Figure 1 — Wavelet Tree of \"abracadabra\" over {{a,b,c,d,r}}");
    println!("(partition {{a,b}} | {{c,d,r}} as drawn in the paper)\n");
    let text = "abracadabra";
    let top: String = text
        .chars()
        .map(|c| if "cdr".contains(c) { '1' } else { '0' })
        .collect();
    let left: String = text.chars().filter(|c| "ab".contains(*c)).collect();
    let left_bits: String = left
        .chars()
        .map(|c| if c == 'b' { '1' } else { '0' })
        .collect();
    let right: String = text.chars().filter(|c| "cdr".contains(*c)).collect();
    let right_bits: String = right
        .chars()
        .map(|c| if c == 'c' { '0' } else { '1' })
        .collect();
    println!("  {text}");
    println!("  {top}        {{a,b}} vs {{c,d,r}}");
    println!("  ├─0: {left} / {left_bits}   {{a}} vs {{b}}");
    println!("  └─1: {right} / {right_bits}        {{c}} vs {{d,r}}\n");

    // ---- Figure 2: Wavelet Trie of the running example -------------------
    println!("Figure 2 — Wavelet Trie of 〈0001,0011,0100,00100,0100,00100,0100〉\n");
    let seq: Vec<BitString> = ["0001", "0011", "0100", "00100", "0100", "00100", "0100"]
        .iter()
        .map(|s| BitString::parse(s))
        .collect();
    let wt = WaveletTrie::build(&seq).expect("the Figure 2 sequence is prefix-free");
    render(&wt);

    // ---- Figure 3: insertion splitting a node -----------------------------
    println!("\nFigure 3 — Insert(s, 3) splits an existing node");
    let mut dy = DynamicWaveletTrie::new();
    for s in ["01011", "01011", "11", "01011"] {
        dy.append(BitString::parse(s).as_bitstr())
            .expect("the Figure 3 sequence is prefix-free");
    }
    println!("\nbefore (sequence 〈01011,01011,11,01011〉):\n");
    render(&dy);
    dy.insert(BitString::parse("01010").as_bitstr(), 3)
        .expect("01010 keeps the Figure 3 sequence prefix-free");
    println!("\nafter inserting 01010 at position 3 (node \"1011\" split,");
    println!("new internal node got Init(1, 3) then the new 0-bit):\n");
    render(&dy);
}
