//! E17: end-to-end sharded serving — latency/throughput, clean vs degraded.
//!
//! An open-loop Zipf load generator drives the `wt-server` front-end: 4
//! hash-partitioned `TieredStore` shards behind a `ShardRouter`, mixed
//! read/append traffic (70% Count / 20% Access / 10% CountPrefix per
//! batch, plus ~10% of iterations appending), arrivals scheduled at a
//! fixed rate calibrated from a closed-loop warmup. Latency is measured
//! from the *scheduled* arrival, so a router that falls behind pays the
//! queueing delay it caused (no coordinated omission).
//!
//! Two runs: clean, and degraded — shard 0 wrapped in a `FaultyShard`
//! scripted with periodic stalls past the deadline and injected failures,
//! so the run crosses Healthy → Degraded → Quarantined → probe → Healthy
//! while the load is in flight. `BENCH_server.json` reports p50/p99/qps
//! and the completeness rate for both.
//!
//! Usage: `server_report [--quick] [--out PATH]`

use std::sync::Arc;
use std::time::{Duration, Instant};

use wavelet_trie::binarize::{Coder, NinthBitCoder};
use wt_bench::Table;
use wt_bits::RetryPolicy;
use wt_server::{
    Answer, DocId, FaultScript, FaultyShard, HealthConfig, Query, RouterConfig, Shard, ShardRouter,
    StoreShard,
};
use wt_store::maintain::Maintenance;
use wt_store::TieredStore;
use wt_trie::BitString;
use wt_workloads::urls::{url_log, UrlLogConfig};
use wt_workloads::zipf::Zipf;
use wt_workloads::{rng, RngExt};

const SHARDS: usize = 4;
const BATCH: usize = 64;
const DEADLINE: Duration = Duration::from_millis(25);

/// One measured series (same shape as the other `*_report` bins).
struct Measurement {
    structure: &'static str,
    workload: &'static str,
    op: &'static str,
    n: usize,
    value: f64,
    unit: &'static str,
}

struct RunStats {
    p50_us: f64,
    p99_us: f64,
    qps: f64,
    batches: usize,
    complete: usize,
    shed: u64,
}

fn build_router(corpus: &[BitString], degraded: bool) -> (ShardRouter, Option<Arc<FaultyShard>>) {
    let config = RouterConfig {
        deadline: DEADLINE,
        retry: RetryPolicy {
            attempts: 2,
            base_backoff: Duration::from_micros(200),
            max_elapsed: None,
            jitter: Some(0xE17),
        },
        max_in_flight: 256,
        health: HealthConfig {
            window: 16,
            degrade_errors: 2,
            quarantine_errors: 4,
            probe_cooldown: Duration::from_millis(100),
            latency_budget: None,
        },
    };
    let mut members: Vec<Arc<dyn Shard>> = Vec::new();
    let mut stores: Vec<Arc<StoreShard>> = Vec::new();
    let mut handle = None;
    for i in 0..SHARDS {
        let shard = Arc::new(StoreShard::new(TieredStore::new()));
        stores.push(Arc::clone(&shard));
        if degraded && i == 0 {
            // Transparent for now; the measured run installs the fault
            // script after setup and calibration (see `degrade`).
            let faulty = Arc::new(FaultyShard::new(shard, FaultScript::new()));
            handle = Some(Arc::clone(&faulty));
            members.push(faulty as Arc<dyn Shard>);
        } else {
            members.push(shard as Arc<dyn Shard>);
        }
    }
    let router = ShardRouter::new(members, config);
    for s in corpus {
        router.append(s.as_bitstr()).expect("clean setup appends");
    }
    // Compact the setup appends into sealed segments so the measured load
    // runs against the static batch kernels instead of an n-string hot
    // tail — the steady state a long-lived shard would actually serve from.
    for shard in &stores {
        shard.maintain_with(&Maintenance::default());
    }
    (router, handle)
}

/// Install the degraded-mode schedule: recurring *bursts* of faults (four
/// stalls past the deadline, then two hard failures, consecutively), keyed
/// relative to the ops already consumed by setup — the exact same schedule
/// every run. Bursts are clustered so the error window actually fills:
/// the shard trips to Quarantined, the burst passes, and the next
/// half-open probe heals it — the full state-machine journey under load.
fn degrade(faulty: &FaultyShard) {
    let base = faulty.ops_seen();
    let mut script = FaultScript::new();
    let mut burst = 10u64;
    while burst < 100_000 {
        for k in 0..4 {
            script = script.delay(base + burst + k, DEADLINE * 2);
        }
        script = script.fail(base + burst + 4).fail(base + burst + 5);
        burst += 120;
    }
    faulty.set_script(script);
}

/// Deterministic mixed batch: 70% Count, 20% Access, 10% CountPrefix.
fn make_batch(
    corpus: &[BitString],
    prefixes: &[BitString],
    docs: &[DocId],
    zipf: &Zipf,
    rng: &mut impl RngExt,
) -> Vec<Query> {
    (0..BATCH)
        .map(|_| {
            let pick: f64 = rng.random();
            if pick < 0.7 {
                Query::Count(corpus[zipf.sample(rng)].clone())
            } else if pick < 0.9 {
                Query::Access(docs[zipf.sample(rng) % docs.len()])
            } else {
                Query::CountPrefix(prefixes[zipf.sample(rng) % prefixes.len()].clone())
            }
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn run_load(
    router: &ShardRouter,
    corpus: &[BitString],
    prefixes: &[BitString],
    docs: &[DocId],
    batches: usize,
    rate_per_s: f64,
    seed: u64,
) -> RunStats {
    let zipf = Zipf::new(corpus.len(), 1.0);
    let mut rng = rng(seed);
    let interarrival = Duration::from_secs_f64(1.0 / rate_per_s);
    let mut latencies_us: Vec<f64> = Vec::with_capacity(batches);
    let mut complete = 0usize;
    let start = Instant::now();
    for i in 0..batches {
        let scheduled = start + interarrival * (i as u32);
        let now = Instant::now();
        if now < scheduled {
            std::thread::sleep(scheduled - now);
        }
        // ~10% of iterations are writes (appends of existing strings —
        // always admissible under the prefix-free invariant).
        if rng.random::<f64>() < 0.1 {
            let s = &corpus[zipf.sample(&mut rng)];
            let _ = router.append(s.as_bitstr());
            latencies_us.push(scheduled.elapsed().as_secs_f64() * 1e6);
            complete += 1;
            continue;
        }
        let batch = make_batch(corpus, prefixes, docs, &zipf, &mut rng);
        let result = router.query(&batch);
        latencies_us.push(scheduled.elapsed().as_secs_f64() * 1e6);
        if result.is_complete() {
            complete += 1;
        }
        // Keep the optimizer honest about the answers.
        std::hint::black_box(result.answers.iter().flatten().fold(0usize, |acc, a| {
            acc + match a {
                Answer::Count(c) | Answer::CountPrefix(c) => *c,
                Answer::Access(s) => s.as_ref().map_or(0, |b| b.len()),
            }
        }));
    }
    let wall = start.elapsed().as_secs_f64();
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let pct = |p: f64| {
        latencies_us[((latencies_us.len() as f64 * p) as usize).min(latencies_us.len() - 1)]
    };
    RunStats {
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        qps: (batches * BATCH) as f64 / wall,
        batches,
        complete,
        shed: router.shed_count(),
    }
}

/// Closed-loop calibration: measured service throughput sets the open
/// loop's arrival rate at 35% of capacity (so the clean run is stable —
/// closed-loop windows flatter the sustained rate, since the run also
/// pays appends, snapshot publishes and scheduling noise — while the
/// degraded run still shows queueing rather than overload collapse).
/// Uses the median over several short windows — one background hiccup
/// must not set the rate for the whole run.
fn calibrate(
    router: &ShardRouter,
    corpus: &[BitString],
    prefixes: &[BitString],
    docs: &[DocId],
) -> f64 {
    let zipf = Zipf::new(corpus.len(), 1.0);
    let mut rng = rng(7);
    let (windows, per_window) = (5, 12);
    let mut rates: Vec<f64> = (0..windows)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..per_window {
                let batch = make_batch(corpus, prefixes, docs, &zipf, &mut rng);
                std::hint::black_box(router.query(&batch));
            }
            per_window as f64 / start.elapsed().as_secs_f64()
        })
        .collect();
    rates.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    rates[windows / 2] * 0.35
}

fn prefix_pool(raw: &[String]) -> Vec<BitString> {
    let coder = NinthBitCoder;
    let mut out: Vec<BitString> = Vec::new();
    for s in raw.iter().step_by(raw.len() / 16 + 1) {
        // Host prefix: up to the first '/' after the scheme.
        let cut = s
            .find("://")
            .map(|i| s[i + 3..].find('/').map_or(s.len(), |j| i + 3 + j))
            .unwrap_or(s.len());
        out.push(coder.encode_prefix(&s.as_bytes()[..cut]));
    }
    out
}

fn write_json(path: &str, mode: &str, results: &[Measurement]) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"server_report\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str(&format!("  \"shards\": {SHARDS},\n"));
    s.push_str(&format!("  \"batch\": {BATCH},\n"));
    s.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"structure\": \"{}\", \"workload\": \"{}\", \"op\": \"{}\", \"n\": {}, \
             \"value\": {:.2}, \"unit\": \"{}\"}}{}\n",
            m.structure,
            m.workload,
            m.op,
            m.n,
            m.value,
            m.unit,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).expect("write BENCH_server.json");
    println!("wrote {path} ({} series)", results.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_server.json".to_string());
    let (n, batches): (usize, usize) = if quick {
        (20_000, 300)
    } else {
        (100_000, 2_000)
    };
    let mode = if quick { "quick" } else { "full" };

    let raw = url_log(n, UrlLogConfig::default(), 5);
    let coder = NinthBitCoder;
    let corpus: Vec<BitString> = raw.iter().map(|s| coder.encode(s.as_bytes())).collect();
    let prefixes = prefix_pool(&raw);

    println!("== sharded serving: open-loop Zipf load, clean vs degraded ==\n");
    let t = Table::new(
        &["mode", "batches", "p50", "p99", "qps", "complete", "shed"],
        &[10, 9, 10, 11, 11, 10, 6],
    );
    let mut results: Vec<Measurement> = Vec::new();
    let mut calibrated: Option<f64> = None;

    for (label, degraded) in [("clean", false), ("degraded", true)] {
        let (router, handle) = build_router(&corpus, degraded);
        // DocIds for Access traffic: sample local positions per shard.
        let docs: Vec<DocId> = (0..router.num_shards() as u32)
            .flat_map(|shard| {
                let len = router.shard_len(shard).unwrap_or(0);
                (0..len.min(64)).map(move |pos| DocId {
                    shard,
                    pos: pos as u64,
                })
            })
            .collect();
        // Calibrate once, on the clean router, and reuse the rate for the
        // degraded run: same arrival schedule, so the degraded numbers
        // isolate the fault cost instead of a different load level.
        let rate = *calibrated.get_or_insert_with(|| calibrate(&router, &corpus, &prefixes, &docs));
        if let Some(f) = &handle {
            degrade(f);
        }
        let stats = run_load(&router, &corpus, &prefixes, &docs, batches, rate, 42);
        let health = router.health_report();
        t.row(&[
            label,
            &format!("{}", stats.batches),
            &format!("{:.0}us", stats.p50_us),
            &format!("{:.0}us", stats.p99_us),
            &format!("{:.0}", stats.qps),
            &format!(
                "{:.1}%",
                100.0 * stats.complete as f64 / stats.batches as f64
            ),
            &format!("{}", stats.shed),
        ]);
        if degraded {
            let h0 = &health[0];
            println!(
                "    shard 0 journey: trips {}, probes {}, recoveries {}, final {}",
                h0.trips, h0.probes, h0.recoveries, h0.state
            );
            if let Some(f) = &handle {
                println!("    faulted ops seen: {}", f.ops_seen());
            }
        }
        for (op, value, unit) in [
            ("p50", stats.p50_us, "us"),
            ("p99", stats.p99_us, "us"),
            ("qps", stats.qps, "ops/s"),
            (
                "complete_rate",
                stats.complete as f64 / stats.batches as f64,
                "fraction",
            ),
        ] {
            results.push(Measurement {
                structure: "ShardRouter",
                workload: label,
                op,
                n,
                value,
                unit,
            });
        }
    }
    println!();
    write_json(&out_path, mode, &results);
}
