//! E15: cold-start — zero-copy load vs rebuild-from-strings.
//!
//! The persistence claim, one machine-readable trajectory file
//! (`BENCH_persist.json`): loading a saved [`IndexedStrings`] image (parse
//! header, verify checksums and structural invariants, then *view* the
//! payload words in place — zero per-bit work) must beat rebuilding the
//! same index from its input strings by ≥50× on the 100k-URL workload.
//! The tiered store's directory load (sealed segments zero-copy, hot tail
//! replayed) is reported alongside.
//!
//! Usage: `persist_report [--quick] [--out PATH]`

use wavelet_trie::IndexedStrings;
use wt_bench::{time_once_ms, Table};
use wt_store::TieredStrings;
use wt_workloads::urls::{url_log, UrlLogConfig};

/// One measured series.
struct Measurement {
    structure: &'static str,
    workload: &'static str,
    op: &'static str,
    n: usize,
    value: f64,
    unit: &'static str,
    /// build-time / load-time (the cold-start speedup); 0 when n/a.
    ratio: f64,
}

fn median_ms(samples: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut v: Vec<f64> = (0..samples).map(|_| f()).collect();
    // Timings come from `Instant` deltas, so NaN is impossible.
    v.sort_by(|a, b| a.partial_cmp(b).expect("timings are never NaN"));
    v[v.len() / 2]
}

fn scratch_dir() -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("wt-persist-report-{}", std::process::id()));
    std::fs::create_dir_all(&d).expect("create scratch dir");
    d
}

fn bench_indexed_strings(n: usize, samples: usize, out: &mut Vec<Measurement>, t: &Table) {
    let strings = url_log(n, UrlLogConfig::default(), 5);
    let build_ms = median_ms(samples, || {
        time_once_ms(|| IndexedStrings::build(strings.iter())).1
    });
    let idx = IndexedStrings::build(strings.iter());
    let path = scratch_dir().join(format!("urls-{n}.wt"));
    let save_ms = median_ms(samples, || {
        time_once_ms(|| idx.save(&path).expect("save image to scratch dir")).1
    });
    let file_bytes = std::fs::metadata(&path).expect("stat saved image").len();
    let load_ms = median_ms(samples, || {
        time_once_ms(|| IndexedStrings::load(&path).expect("load image just saved")).1
    });
    // Sanity: the loaded index answers like the built one.
    let loaded = IndexedStrings::load(&path).expect("load image just saved");
    assert_eq!(loaded.len(), n);
    assert_eq!(loaded.get_string(n / 2), strings[n / 2]);
    assert_eq!(loaded.count_prefix("http://"), idx.count_prefix("http://"));
    std::fs::remove_file(&path).ok();

    let speedup = build_ms / load_ms;
    t.row(&[
        "IndexedStrings",
        &format!("{n}"),
        &format!("{build_ms:.1}ms"),
        &format!("{save_ms:.1}ms"),
        &format!("{load_ms:.2}ms"),
        &format!("{:.1}KiB", file_bytes as f64 / 1024.0),
        &format!("{speedup:.0}x"),
    ]);
    for (op, value, ratio) in [
        ("build", build_ms, 0.0),
        ("save", save_ms, 0.0),
        ("cold_load", load_ms, speedup),
    ] {
        out.push(Measurement {
            structure: "IndexedStrings",
            workload: "url_log",
            op,
            n,
            value,
            unit: "ms",
            ratio,
        });
    }
    out.push(Measurement {
        structure: "IndexedStrings",
        workload: "url_log",
        op: "file_size",
        n,
        value: file_bytes as f64,
        unit: "bytes",
        ratio: 0.0,
    });
}

fn bench_tiered(n: usize, samples: usize, out: &mut Vec<Measurement>, t: &Table) {
    let strings = url_log(n, UrlLogConfig::default(), 5);
    let build = || {
        let mut st = TieredStrings::new();
        st.extend(strings.iter());
        st
    };
    let build_ms = median_ms(samples, || time_once_ms(build).1);
    let st = build();
    let dir = scratch_dir().join(format!("store-{n}"));
    let save_ms = median_ms(samples, || {
        time_once_ms(|| st.save_dir(&dir).expect("save store to scratch dir")).1
    });
    let dir_bytes: u64 = std::fs::read_dir(&dir)
        .expect("list saved store dir")
        .map(|e| {
            e.expect("read dir entry")
                .metadata()
                .expect("stat dir entry")
                .len()
        })
        .sum();
    let load_ms = median_ms(samples, || {
        time_once_ms(|| TieredStrings::load_dir(&dir).expect("load store just saved")).1
    });
    let loaded = TieredStrings::load_dir(&dir).expect("load store just saved");
    assert_eq!(loaded.len(), n);
    assert_eq!(loaded.get_string(n / 2), strings[n / 2]);
    // Recovery time, clean path: the resilient loader's overhead over the
    // strict one (same directory, per-segment validation + temp sweep).
    let recover_clean_ms = median_ms(samples, || {
        time_once_ms(|| {
            let (_, report) = TieredStrings::recover_dir(&dir).expect("recover undamaged dir");
            assert!(report.is_clean());
        })
        .1
    });
    // Recovery time, degraded path: one sealed segment corrupted — the
    // loader must checksum everything, quarantine the victim and still
    // serve the rest.
    let broken = scratch_dir().join(format!("store-broken-{n}"));
    std::fs::remove_dir_all(&broken).ok();
    std::fs::create_dir_all(&broken).expect("create scratch copy dir");
    let mut victim = None;
    for entry in std::fs::read_dir(&dir).expect("list saved store dir") {
        let name = entry.expect("read dir entry").file_name();
        std::fs::copy(dir.join(&name), broken.join(&name)).expect("copy store file");
        let s = name.to_string_lossy().into_owned();
        if s.starts_with("seg-") && s.ends_with(".wt") && victim.is_none() {
            victim = Some(s);
        }
    }
    let victim = broken.join(victim.expect("a sealed segment exists"));
    let mut bytes = std::fs::read(&victim).expect("read victim segment");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&victim, bytes).expect("write corrupted segment");
    let recover_degraded_ms = median_ms(samples, || {
        time_once_ms(|| {
            let (_, report) =
                TieredStrings::recover_dir(&broken).expect("recover dir with one bad segment");
            assert_eq!(report.quarantined.len(), 1);
        })
        .1
    });
    std::fs::remove_dir_all(&broken).ok();
    std::fs::remove_dir_all(&dir).ok();

    let speedup = build_ms / load_ms;
    t.row(&[
        "TieredStrings",
        &format!("{n}"),
        &format!("{build_ms:.1}ms"),
        &format!("{save_ms:.1}ms"),
        &format!("{load_ms:.2}ms"),
        &format!("{:.1}KiB", dir_bytes as f64 / 1024.0),
        &format!("{speedup:.0}x"),
    ]);
    println!(
        "    recovery: clean {recover_clean_ms:.2}ms, \
         one-segment-corrupt {recover_degraded_ms:.2}ms"
    );
    for (op, value, ratio) in [
        ("build", build_ms, 0.0),
        ("save", save_ms, 0.0),
        ("cold_load", load_ms, speedup),
        ("recover_clean", recover_clean_ms, 0.0),
        ("recover_degraded", recover_degraded_ms, 0.0),
    ] {
        out.push(Measurement {
            structure: "TieredStrings",
            workload: "url_log",
            op,
            n,
            value,
            unit: "ms",
            ratio,
        });
    }
    out.push(Measurement {
        structure: "TieredStrings",
        workload: "url_log",
        op: "file_size",
        n,
        value: dir_bytes as f64,
        unit: "bytes",
        ratio: 0.0,
    });
}

fn write_json(path: &str, mode: &str, results: &[Measurement]) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"persist_report\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        let ratio = if m.ratio > 0.0 {
            format!(", \"ratio\": {:.2}", m.ratio)
        } else {
            String::new()
        };
        s.push_str(&format!(
            "    {{\"structure\": \"{}\", \"workload\": \"{}\", \"op\": \"{}\", \"n\": {}, \
             \"value\": {:.2}, \"unit\": \"{}\"{}}}{}\n",
            m.structure,
            m.workload,
            m.op,
            m.n,
            m.value,
            m.unit,
            ratio,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).expect("write BENCH_persist.json");
    println!("wrote {path} ({} series)", results.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_persist.json".to_string());
    let (sizes, samples): (&[usize], usize) = if quick {
        (&[20_000], 3)
    } else {
        (&[100_000, 1_000_000], 5)
    };
    let mode = if quick { "quick" } else { "full" };

    println!("== cold-start: zero-copy load vs rebuild ==\n");
    let t = Table::new(
        &[
            "structure",
            "n",
            "build",
            "save",
            "cold load",
            "on disk",
            "speedup",
        ],
        &[14, 8, 9, 8, 9, 10, 8],
    );
    let mut results = Vec::new();
    for &n in sizes {
        bench_indexed_strings(n, samples, &mut results, &t);
        bench_tiered(n, samples, &mut results, &t);
    }
    println!();
    std::fs::remove_dir_all(scratch_dir()).ok();
    write_json(&out_path, mode, &results);
}
