//! E5–E6: the bitvector substrates of §4.1 and §4.2.
//!
//! * E5 (Theorem 4.5): append-only bitvector — Append/Access/Rank flat in
//!   `n`; space tracks `nH0(β) + o(n)` across densities.
//! * E6 (Theorem 4.9 + Remark 4.2): dynamic RLE+γ bitvector — all ops
//!   O(log n); `Init(b, n)` constant-time/-space regardless of `n`, the
//!   property that rules out gap-encoded and plain bitvectors.

use wt_bench::{fmt_ns, time_per_op_ns, xorshift, Table};
use wt_bits::entropy::bitvec_h0_bits;
use wt_bits::{
    AppendBitVec, BitAccess, BitRank, BitSelect, DynamicBitVec, Fid, RawBitVec, RrrVector,
    SpaceUsage,
};

fn main() {
    // ---------- E5: append-only bitvector ---------------------------------
    println!("== E5: append-only bitvector (§4.1, Thm 4.5) ==\n");
    let t = Table::new(
        &["n", "append", "access", "rank", "select", "bits/bit", "H0"],
        &[9, 9, 9, 9, 9, 9, 6],
    );
    for &n in &[100_000usize, 400_000, 1_600_000] {
        let mut next = xorshift(42);
        let mut v = AppendBitVec::new();
        let append = {
            let t0 = std::time::Instant::now();
            for _ in 0..n {
                v.push(next().is_multiple_of(10));
            }
            t0.elapsed().as_nanos() as f64 / n as f64
        };
        let mut i = 0usize;
        let access = time_per_op_ns(5000, 3, || {
            i = (i + 7919) % n;
            std::hint::black_box(v.get(i));
        });
        let rank = time_per_op_ns(5000, 3, || {
            i = (i + 7919) % n;
            std::hint::black_box(v.rank1(i));
        });
        let ones = v.count_ones();
        let select = time_per_op_ns(5000, 3, || {
            i = (i + 7919) % ones;
            std::hint::black_box(v.select1(i));
        });
        let h0 = bitvec_h0_bits(ones, n) / n as f64;
        t.row(&[
            &n.to_string(),
            &fmt_ns(append),
            &fmt_ns(access),
            &fmt_ns(rank),
            &fmt_ns(select),
            &format!("{:.3}", v.size_bits() as f64 / n as f64),
            &format!("{h0:.3}"),
        ]);
    }
    println!("\nexpected: all time columns flat in n (O(1)); bits/bit → H0 + o(1).\n");

    // Space across densities, vs RRR / plain FID.
    println!("space vs density at n = 1M (bits/bit):");
    let t = Table::new(&["density", "H0", "append", "RRR", "Fid"], &[9, 7, 8, 8, 8]);
    let n = 1_000_000;
    for &d in &[2u64, 10, 100, 1000] {
        let mut next = xorshift(7);
        let raw = RawBitVec::from_bits((0..n).map(|_| next().is_multiple_of(d)));
        let ones = raw.count_ones();
        let mut app = AppendBitVec::new();
        for b in raw.iter() {
            app.push(b);
        }
        let rrr = RrrVector::new(&raw);
        let fid = Fid::new(raw.clone());
        t.row(&[
            &format!("1/{d}"),
            &format!("{:.3}", bitvec_h0_bits(ones, n) / n as f64),
            &format!("{:.3}", app.size_bits() as f64 / n as f64),
            &format!("{:.3}", rrr.size_bits() as f64 / n as f64),
            &format!("{:.3}", fid.size_bits() as f64 / n as f64),
        ]);
    }

    // ---------- E6: dynamic RLE+γ bitvector --------------------------------
    println!("\n== E6: fully dynamic bitvector (§4.2, Thm 4.9) ==\n");
    let t = Table::new(
        &["n", "insert", "delete", "rank", "select", "bits/bit"],
        &[9, 9, 9, 9, 9, 9],
    );
    for &n in &[10_000usize, 40_000, 160_000, 640_000] {
        let mut next = xorshift(3);
        let mut v = DynamicBitVec::new();
        for _ in 0..n {
            v.push(next().is_multiple_of(8));
        }
        let mut i = 0usize;
        let insert = time_per_op_ns(2000, 3, || {
            i = (i + 7919) % n;
            v.insert(i, i.is_multiple_of(2));
            v.remove(i);
        }) / 2.0;
        let delete = insert; // measured jointly to keep n fixed
        let rank = time_per_op_ns(2000, 3, || {
            i = (i + 7919) % n;
            std::hint::black_box(v.rank1(i));
        });
        let ones = v.count_ones();
        let select = time_per_op_ns(2000, 3, || {
            i = (i + 7919) % ones;
            std::hint::black_box(v.select1(i));
        });
        t.row(&[
            &n.to_string(),
            &fmt_ns(insert),
            &fmt_ns(delete),
            &fmt_ns(rank),
            &fmt_ns(select),
            &format!("{:.3}", v.size_bits() as f64 / n as f64),
        ]);
    }
    println!("\nexpected: time columns grow ~log n.\n");

    // Init(b, n): the Remark 4.2 property.
    println!("Init(b, n) cost (Remark 4.2: must not be Ω(n/w)):");
    let t = Table::new(
        &["n", "Init RLE+γ", "Init plain", "RLE bits"],
        &[12, 12, 12, 10],
    );
    for &n in &[1_000usize, 1_000_000, 1_000_000_000] {
        let init = time_per_op_ns(100, 3, || {
            std::hint::black_box(DynamicBitVec::filled(true, n));
        });
        // A plain bitvector must materialize n bits.
        let plain = if n <= 1_000_000 {
            time_per_op_ns(10, 3, || {
                std::hint::black_box(RawBitVec::filled(true, n));
            })
        } else {
            f64::NAN // too slow to bother; the point is made
        };
        let v = DynamicBitVec::filled(true, n);
        t.row(&[
            &n.to_string(),
            &fmt_ns(init),
            &(if plain.is_nan() {
                "(skipped)".into()
            } else {
                fmt_ns(plain)
            }),
            &v.size_bits().to_string(),
        ]);
    }
    println!("\nexpected: RLE Init flat (a single run); plain Init linear in n.");
}
