//! E12: throughput trajectory for the *static* query stack (§2/§3).
//!
//! The static half of Table 1 bottoms out in three substrates: the
//! entropy-compressed [`RrrVector`] (§2 FID), the uncompressed [`Fid`]
//! directory, and the balanced-parentheses navigation behind DFUDS (§3).
//! This report measures absolute ns/op for every static hot path across
//! bit distributions and string workloads, and writes machine-readable
//! `BENCH_static.json` so perf PRs extend a comparable trajectory —
//! the static counterpart of `dynamic_report` (E11).
//!
//! Sections:
//! * static bitvectors — rank/select/access on dense/sparse/runny inputs,
//!   for both `RrrVector` and `Fid`, with bits-per-bit space;
//! * BP navigation — `find_close`/`find_open`/`excess` on shallow random,
//!   deep skewed, and DFUDS-shaped parenthesis strings (the fwd/bwd excess
//!   scan hot path of every static trie descent);
//! * `IndexedStrings` (static Wavelet Trie, Thm 3.7) — access/rank/select/
//!   prefix ops on the url-log and word-text workloads.
//!
//! Usage: `static_report [--quick] [--out PATH] [--baseline PATH]`
//!
//! `--baseline` merges a previous run's JSON into the output: each series
//! gains `baseline_ns_per_op` and `speedup`, so a single file carries the
//! before/after pair a perf PR claims.

use wavelet_trie::binarize::{Coder, NinthBitCoder};
use wavelet_trie::{BitString, IndexedStrings, PathDecompTrie, SeqIndex, WaveletTrie};
use wt_bench::{fmt_ns, time_per_op_ns, xorshift, Table};
use wt_bits::{BitSelect, Fid, RawBitVec, RrrVector, SpaceUsage};
use wt_trie::BpSupport;
use wt_workloads::urls::{url_log, UrlLogConfig};
use wt_workloads::words::word_text;

/// One measured series: ns/op for `op` on `structure` under `dist` at size `n`.
struct Measurement {
    structure: &'static str,
    dist: &'static str,
    op: &'static str,
    n: usize,
    ns_per_op: f64,
    /// Bits per input bit (bitvectors) or per string (tries); 0 when n/a.
    space_bits_per: f64,
}

impl Measurement {
    fn key(&self) -> String {
        format!("{}/{}/{}", self.structure, self.dist, self.op)
    }
}

/// Static bit distributions mirroring `dynamic_report`: dense (~50% ones),
/// sparse (~1.6%), runny (256-bit runs).
fn build_bits(dist: &str, n: usize, next: &mut impl FnMut() -> u64) -> RawBitVec {
    match dist {
        "dense" => RawBitVec::from_bits((0..n).map(|_| next().is_multiple_of(2))),
        "sparse" => RawBitVec::from_bits((0..n).map(|_| next().is_multiple_of(64))),
        "runny" => RawBitVec::from_bits((0..n).map(|i| (i / 256) % 2 == 0)),
        _ => unreachable!("unknown distribution"),
    }
}

fn bench_static_bitvecs(quick: bool, out: &mut Vec<Measurement>) {
    let n = if quick { 200_000 } else { 1_000_000 };
    let iters = if quick { 20_000 } else { 100_000 };
    println!("== static bitvectors (§2 FIDs) at n = {n} ==\n");
    let t = Table::new(
        &[
            "structure",
            "dist",
            "rank",
            "select1",
            "select0",
            "access",
            "bits/bit",
        ],
        &[10, 8, 9, 9, 9, 9, 9],
    );
    for dist in ["dense", "sparse", "runny"] {
        let mut next = xorshift(42);
        let bits = build_bits(dist, n, &mut next);
        let ones = bits.count_ones().max(1);
        let zeros = (bits.len() - bits.count_ones()).max(1);

        // Type-erased loop body per structure, keeping one measurement path.
        let rrr = RrrVector::new(&bits);
        let fid = Fid::new(bits.clone());
        let structures: [(&'static str, &dyn BitSelect, f64); 2] = [
            ("RrrVector", &rrr, rrr.size_bits() as f64 / n as f64),
            ("Fid", &fid, fid.size_bits() as f64 / n as f64),
        ];
        for (name, bv, bits_per) in structures {
            let mut i = 0usize;
            let rank = time_per_op_ns(iters, 7, || {
                i = (i + 7919) % n;
                std::hint::black_box(bv.rank1(i));
            });
            let select1 = time_per_op_ns(iters, 7, || {
                i = (i + 7919) % ones;
                std::hint::black_box(bv.select1(i));
            });
            let select0 = time_per_op_ns(iters, 7, || {
                i = (i + 7919) % zeros;
                std::hint::black_box(bv.select0(i));
            });
            let access = time_per_op_ns(iters, 7, || {
                i = (i + 7919) % n;
                std::hint::black_box(bv.get(i));
            });
            t.row(&[
                name,
                dist,
                &fmt_ns(rank),
                &fmt_ns(select1),
                &fmt_ns(select0),
                &fmt_ns(access),
                &format!("{bits_per:.3}"),
            ]);
            for (op, ns) in [
                ("rank", rank),
                ("select1", select1),
                ("select0", select0),
                ("access", access),
            ] {
                out.push(Measurement {
                    structure: name,
                    dist,
                    op,
                    n,
                    ns_per_op: ns,
                    space_bits_per: bits_per,
                });
            }
        }
    }
    println!();
}

/// Random balanced parenthesis string via a biased tree walk; larger
/// `open_bias` (out of 100) ⇒ deeper nesting.
fn random_balanced(n_pairs: usize, seed: u64, open_bias: u64) -> RawBitVec {
    let mut next = xorshift(seed);
    let mut bits = RawBitVec::with_capacity(2 * n_pairs);
    let mut open = 0usize;
    let mut remaining = n_pairs;
    while remaining > 0 || open > 0 {
        let can_open = remaining > 0;
        let can_close = open > 0;
        let do_open = can_open && (!can_close || next() % 100 < open_bias);
        if do_open {
            bits.push(true);
            open += 1;
            remaining -= 1;
        } else {
            bits.push(false);
            open -= 1;
        }
    }
    bits
}

/// DFUDS-shaped parenthesis string of a binary trie: internal = `110`,
/// leaf = `0`, preceded by the virtual root `(` — the exact bit mix the
/// static Wavelet Trie navigates.
fn dfuds_shape(n_internal: usize, seed: u64) -> RawBitVec {
    let mut next = xorshift(seed);
    let mut bits = RawBitVec::new();
    bits.push(true);
    // Random binary trie by preorder DFS: each frame is an internal node
    // with two children, each internal with decreasing probability.
    let mut pending = vec![0u32]; // depth markers
    let mut internals = 0usize;
    while let Some(depth) = pending.pop() {
        let internal = internals < n_internal && !(next().is_multiple_of(depth as u64 + 2));
        if internal {
            internals += 1;
            bits.push(true);
            bits.push(true);
            bits.push(false);
            pending.push(depth + 1);
            pending.push(depth + 1);
        } else {
            bits.push(false);
        }
    }
    bits
}

fn bench_bp(quick: bool, out: &mut Vec<Measurement>) {
    let n_pairs = if quick { 100_000 } else { 500_000 };
    let iters = if quick { 20_000 } else { 100_000 };
    println!("== BP navigation (§3 DFUDS substrate) at {n_pairs} pairs ==\n");
    let t = Table::new(
        &["dist", "find_close", "find_open", "excess"],
        &[16, 11, 11, 9],
    );
    // Large shapes measure the full memory hierarchy; the `_32k` tier is
    // cache-resident and isolates the fwd/bwd scan kernels themselves.
    let shapes: [(&'static str, RawBitVec); 6] = [
        ("shallow", random_balanced(n_pairs, 7, 50)),
        ("deep_skewed", random_balanced(n_pairs, 11, 95)),
        ("dfuds_trie", dfuds_shape(n_pairs, 13)),
        ("deep_nest_32k", {
            let mut b = RawBitVec::with_capacity(65_536);
            for _ in 0..32_768 {
                b.push(true);
            }
            for _ in 0..32_768 {
                b.push(false);
            }
            b
        }),
        ("skewed_32k", random_balanced(16_384, 11, 95)),
        ("dfuds_trie_32k", dfuds_shape(16_384, 13)),
    ];
    for (dist, bits) in shapes {
        let n = bits.len();
        let bp = BpSupport::new(bits.clone());
        let opens: Vec<usize> = (0..n).filter(|&i| bits.get(i)).collect();
        let closes: Vec<usize> = (0..n).filter(|&i| !bits.get(i)).collect();
        let mut i = 0usize;
        let fc = time_per_op_ns(iters, 7, || {
            i = (i + 7919) % opens.len();
            std::hint::black_box(bp.find_close(opens[i]));
        });
        let fo = time_per_op_ns(iters, 7, || {
            i = (i + 7919) % closes.len();
            std::hint::black_box(bp.find_open(closes[i]));
        });
        let exc = time_per_op_ns(iters, 7, || {
            i = (i + 7919) % n;
            std::hint::black_box(bp.excess(i));
        });
        t.row(&[dist, &fmt_ns(fc), &fmt_ns(fo), &fmt_ns(exc)]);
        for (op, ns) in [("find_close", fc), ("find_open", fo), ("excess", exc)] {
            out.push(Measurement {
                structure: "BpSupport",
                dist,
                op,
                n,
                ns_per_op: ns,
                space_bits_per: 0.0,
            });
        }
    }
    println!();
}

fn bench_static_wt(quick: bool, out: &mut Vec<Measurement>) {
    let n = if quick { 20_000 } else { 100_000 };
    let iters = if quick { 5_000 } else { 20_000 };
    println!("== IndexedStrings (static Wavelet Trie, Thm 3.7) at n = {n} ==\n");
    let t = Table::new(
        &[
            "workload",
            "access",
            "rank",
            "select",
            "count_prefix",
            "bits/str",
        ],
        &[10, 9, 9, 9, 12, 9],
    );
    let workloads: [(&'static str, Vec<String>); 2] = [
        ("url_log", url_log(n, UrlLogConfig::default(), 5)),
        ("word_text", word_text(n, 2000, 7)),
    ];
    for (dist, strings) in workloads {
        let ws = IndexedStrings::build(&strings);
        let bits_per = ws.size_bits() as f64 / n as f64;
        let mut next = xorshift(3);
        let access = time_per_op_ns(iters, 7, || {
            let pos = (next() % n as u64) as usize;
            std::hint::black_box(ws.get_bytes(pos));
        });
        let rank = time_per_op_ns(iters, 7, || {
            let s = &strings[(next() % n as u64) as usize];
            let pos = (next() % (n as u64 + 1)) as usize;
            std::hint::black_box(ws.rank(s, pos));
        });
        let select = time_per_op_ns(iters, 7, || {
            let s = &strings[(next() % n as u64) as usize];
            std::hint::black_box(ws.select(s, 0));
        });
        let count_prefix = time_per_op_ns(iters, 7, || {
            let s = &strings[(next() % n as u64) as usize];
            let p = &s[..s.len().min(12)];
            std::hint::black_box(ws.count_prefix(p));
        });
        t.row(&[
            dist,
            &fmt_ns(access),
            &fmt_ns(rank),
            &fmt_ns(select),
            &fmt_ns(count_prefix),
            &format!("{bits_per:.0}"),
        ]);
        for (op, ns) in [
            ("access", access),
            ("rank", rank),
            ("select", select),
            ("count_prefix", count_prefix),
        ] {
            out.push(Measurement {
                structure: "IndexedStrings",
                dist,
                op,
                n,
                ns_per_op: ns,
                space_bits_per: bits_per,
            });
        }
    }
    println!();
}

/// Fixed-width random integers: near-distinct, so the preorder trie is
/// deep and every scalar descent is a dependent pointer-chase — the
/// workload the path decomposition exists to fix.
fn random_ints(n: usize, width: usize, seed: u64) -> Vec<BitString> {
    let mut next = xorshift(seed);
    (0..n)
        .map(|_| {
            let v = next() & ((1u64 << width) - 1);
            BitString::from_bits((0..width).rev().map(move |k| (v >> k) & 1 != 0))
        })
        .collect()
}

/// Head-to-head scalar latency of the two static representations over the
/// *same* binary trie (bit-identical answers, different layouts): the
/// preorder wavelet trie vs its centroid path decomposition. The ints
/// lane is the near-distinct pointer-chase regime; url/words check the
/// decomposition costs nothing on shallow skewed tries.
fn bench_representations(quick: bool, out: &mut Vec<Measurement>) {
    let (n_url, n_words, n_ints) = if quick {
        (50_000, 50_000, 200_000)
    } else {
        (1_000_000, 1_000_000, 12_000_000)
    };
    let iters = if quick { 5_000 } else { 20_000 };
    println!("== static representations: preorder WT vs path decomposition ==\n");
    let t = Table::new(
        &[
            "workload",
            "structure",
            "access",
            "rank",
            "select",
            "count_prefix",
            "bits/str",
        ],
        &[10, 16, 9, 9, 9, 12, 9],
    );
    let coder = NinthBitCoder;
    let enc = |strings: Vec<String>| -> Vec<BitString> {
        strings.iter().map(|s| coder.encode(s.as_bytes())).collect()
    };
    let url_cfg = UrlLogConfig {
        hosts: 2000,
        ..UrlLogConfig::default()
    };
    let workloads: [(&'static str, Vec<BitString>); 3] = [
        ("url", enc(url_log(n_url, url_cfg, 5))),
        ("words", enc(word_text(n_words, 2000, 7))),
        ("ints", random_ints(n_ints, 28, 99)),
    ];
    for (dist, encoded) in &workloads {
        let dist = *dist;
        let n = encoded.len();
        let wt = WaveletTrie::build_with_threads(encoded, 4).expect("prefix-free");
        let pd = PathDecompTrie::from_static_with_threads(&wt, 4);
        let structures: [(&'static str, &dyn SeqIndex, usize); 2] = [
            ("WaveletTrie", &wt, wt.size_bits()),
            ("PathDecompTrie", &pd, pd.size_bits()),
        ];
        for (name, idx, bits) in structures {
            let bits_per = bits as f64 / n as f64;
            let mut next = xorshift(3);
            let access = time_per_op_ns(iters, 7, || {
                let pos = (next() % n as u64) as usize;
                std::hint::black_box(idx.access(pos));
            });
            let rank = time_per_op_ns(iters, 7, || {
                let s = &encoded[(next() % n as u64) as usize];
                let pos = (next() % (n as u64 + 1)) as usize;
                std::hint::black_box(idx.rank(s.as_bitstr(), pos));
            });
            let select = time_per_op_ns(iters, 7, || {
                let s = &encoded[(next() % n as u64) as usize];
                std::hint::black_box(idx.select(s.as_bitstr(), 0));
            });
            let count_prefix = time_per_op_ns(iters, 7, || {
                let s = &encoded[(next() % n as u64) as usize];
                let p = s.as_bitstr().prefix((s.len() / 2).min(18));
                std::hint::black_box(idx.count_prefix(p));
            });
            t.row(&[
                dist,
                name,
                &fmt_ns(access),
                &fmt_ns(rank),
                &fmt_ns(select),
                &fmt_ns(count_prefix),
                &format!("{bits_per:.0}"),
            ]);
            for (op, ns) in [
                ("access", access),
                ("rank", rank),
                ("select", select),
                ("count_prefix", count_prefix),
            ] {
                out.push(Measurement {
                    structure: name,
                    dist,
                    op,
                    n,
                    ns_per_op: ns,
                    space_bits_per: bits_per,
                });
            }
        }
    }
    println!();
}

/// Pulls `"key": {...` ns figures out of a previous report without a JSON
/// dependency: looks up `"structure" ... "dist" ... "op"` triples.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let get = |field: &str| -> Option<&str> {
            let tag = format!("\"{field}\": ");
            let at = line.find(&tag)? + tag.len();
            let rest = &line[at..];
            let end = rest.find([',', '}'])?;
            Some(rest[..end].trim().trim_matches('"'))
        };
        if let (Some(s), Some(d), Some(o), Some(ns)) =
            (get("structure"), get("dist"), get("op"), get("ns_per_op"))
        {
            if let Ok(ns) = ns.parse::<f64>() {
                out.push((format!("{s}/{d}/{o}"), ns));
            }
        }
    }
    out
}

fn write_json(path: &str, mode: &str, results: &[Measurement], baseline: &[(String, f64)]) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"static_report\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str("  \"unit\": \"ns_per_op\",\n");
    s.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        let base = baseline
            .iter()
            .find(|(k, _)| *k == m.key())
            .map(|&(_, ns)| ns);
        let before_after = match base {
            Some(b) => format!(
                ", \"baseline_ns_per_op\": {:.1}, \"speedup\": {:.2}",
                b,
                b / m.ns_per_op
            ),
            None => String::new(),
        };
        s.push_str(&format!(
            "    {{\"structure\": \"{}\", \"dist\": \"{}\", \"op\": \"{}\", \"n\": {}, \
             \"ns_per_op\": {:.1}, \"space_bits_per\": {:.3}{}}}{}\n",
            m.structure,
            m.dist,
            m.op,
            m.n,
            m.ns_per_op,
            m.space_bits_per,
            before_after,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).expect("write BENCH_static.json");
    println!("wrote {path} ({} series)", results.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = arg_after("--out").unwrap_or_else(|| "BENCH_static.json".to_string());
    let baseline = arg_after("--baseline")
        .and_then(|p| std::fs::read_to_string(p).ok())
        .map(|t| parse_baseline(&t))
        .unwrap_or_default();
    let mode = if quick { "quick" } else { "full" };

    let mut results = Vec::new();
    bench_static_bitvecs(quick, &mut results);
    bench_bp(quick, &mut results);
    bench_static_wt(quick, &mut results);
    bench_representations(quick, &mut results);
    write_json(&out_path, mode, &results, &baseline);
}
