//! E1–E3: regenerates the **time columns of Table 1**.
//!
//! For each variant (static / append-only / fully-dynamic) and each
//! operation, per-op cost is measured at geometrically growing `n` on the
//! URL-log workload. Expected shape (the paper's claim):
//! * static & append-only: flat in `n` (O(|s| + h_s));
//! * fully dynamic: growing ~log n (O(|s| + h_s·log n));
//! * Append (append-only) flat; Insert/Delete (dynamic) ~log n.

use wavelet_trie::binarize::{Coder, NinthBitCoder};
use wavelet_trie::{AppendWaveletTrie, BitString, DynamicWaveletTrie, SeqIndex, WaveletTrie};
use wt_bench::{fmt_ns, time_per_op_ns, Table};
use wt_workloads::{url_log, UrlLogConfig};

fn main() {
    let sizes = [10_000usize, 20_000, 40_000, 80_000, 160_000];
    let max_n = *sizes.last().expect("sizes is non-empty");
    let raw = url_log(max_n, UrlLogConfig::default(), 1);
    let coder = NinthBitCoder;
    let all: Vec<BitString> = raw.iter().map(|s| coder.encode(s.as_bytes())).collect();
    let prefix = coder.encode_prefix(b"http://host001.example");

    println!("== Table 1 (time): per-operation cost vs n, URL-log workload ==\n");
    let t = Table::new(
        &[
            "variant", "n", "Access", "Rank", "Select", "RankPfx", "SelPfx", "update",
        ],
        &[9, 7, 9, 9, 9, 9, 9, 10],
    );

    for &n in &sizes {
        let seq = &all[..n];
        // Probe strings cycle through the data; positions cycle through n.
        let probes: Vec<&BitString> = (0..64).map(|i| &seq[i * (n / 64)]).collect();

        // -------- static --------------------------------------------------
        let wt = WaveletTrie::build(seq).expect("NinthBitCoder output is prefix-free");
        let mut i = 0usize;
        let access = time_per_op_ns(2000, 3, || {
            i = (i + 7919) % n;
            std::hint::black_box(wt.access(i));
        });
        let mut j = 0usize;
        let rank = time_per_op_ns(2000, 3, || {
            j += 1;
            let s = probes[j % probes.len()];
            std::hint::black_box(wt.rank(s.as_bitstr(), (j * 31) % (n + 1)));
        });
        let select = time_per_op_ns(2000, 3, || {
            j += 1;
            let s = probes[j % probes.len()];
            std::hint::black_box(wt.select(s.as_bitstr(), j % 3));
        });
        let rankp = time_per_op_ns(2000, 3, || {
            j += 1;
            std::hint::black_box(wt.rank_prefix(prefix.as_bitstr(), (j * 31) % (n + 1)));
        });
        let selp = time_per_op_ns(2000, 3, || {
            j += 1;
            std::hint::black_box(wt.select_prefix(prefix.as_bitstr(), j % 8));
        });
        t.row(&[
            "static",
            &n.to_string(),
            &fmt_ns(access),
            &fmt_ns(rank),
            &fmt_ns(select),
            &fmt_ns(rankp),
            &fmt_ns(selp),
            "-",
        ]);

        // -------- append-only ---------------------------------------------
        let mut app = AppendWaveletTrie::new();
        let append = {
            let t0 = std::time::Instant::now();
            for s in seq {
                app.append(s.as_bitstr()).unwrap();
            }
            t0.elapsed().as_nanos() as f64 / n as f64
        };
        let access = time_per_op_ns(2000, 3, || {
            i = (i + 7919) % n;
            std::hint::black_box(app.access(i));
        });
        let rank = time_per_op_ns(2000, 3, || {
            j += 1;
            let s = probes[j % probes.len()];
            std::hint::black_box(app.rank(s.as_bitstr(), (j * 31) % (n + 1)));
        });
        let select = time_per_op_ns(2000, 3, || {
            j += 1;
            let s = probes[j % probes.len()];
            std::hint::black_box(app.select(s.as_bitstr(), j % 3));
        });
        let rankp = time_per_op_ns(2000, 3, || {
            j += 1;
            std::hint::black_box(app.rank_prefix(prefix.as_bitstr(), (j * 31) % (n + 1)));
        });
        let selp = time_per_op_ns(2000, 3, || {
            j += 1;
            std::hint::black_box(app.select_prefix(prefix.as_bitstr(), j % 8));
        });
        t.row(&[
            "append",
            &n.to_string(),
            &fmt_ns(access),
            &fmt_ns(rank),
            &fmt_ns(select),
            &fmt_ns(rankp),
            &fmt_ns(selp),
            &format!("A:{}", fmt_ns(append)),
        ]);

        // -------- fully dynamic -------------------------------------------
        let mut dy = DynamicWaveletTrie::new();
        for s in seq {
            dy.append(s.as_bitstr()).unwrap();
        }
        let access = time_per_op_ns(1000, 3, || {
            i = (i + 7919) % n;
            std::hint::black_box(dy.access(i));
        });
        let rank = time_per_op_ns(1000, 3, || {
            j += 1;
            let s = probes[j % probes.len()];
            std::hint::black_box(dy.rank(s.as_bitstr(), (j * 31) % (n + 1)));
        });
        let select = time_per_op_ns(1000, 3, || {
            j += 1;
            let s = probes[j % probes.len()];
            std::hint::black_box(dy.select(s.as_bitstr(), j % 3));
        });
        let rankp = time_per_op_ns(1000, 3, || {
            j += 1;
            std::hint::black_box(dy.rank_prefix(prefix.as_bitstr(), (j * 31) % (n + 1)));
        });
        let selp = time_per_op_ns(1000, 3, || {
            j += 1;
            std::hint::black_box(dy.select_prefix(prefix.as_bitstr(), j % 8));
        });
        // Insert + Delete paired so n stays fixed while measuring.
        let ins_del = time_per_op_ns(500, 3, || {
            j += 1;
            let s = probes[j % probes.len()];
            let pos = (j * 131) % (dy.len() + 1);
            dy.insert(s.as_bitstr(), pos).unwrap();
            std::hint::black_box(dy.delete(pos));
        }) / 2.0;
        t.row(&[
            "dynamic",
            &n.to_string(),
            &fmt_ns(access),
            &fmt_ns(rank),
            &fmt_ns(select),
            &fmt_ns(rankp),
            &fmt_ns(selp),
            &format!("ID:{}", fmt_ns(ins_del)),
        ]);
    }
    println!(
        "\nExpected shape: static/append rows flat in n; dynamic rows grow ~log n;\n\
         Append flat (Theorem 4.3); Insert+Delete/2 grows ~log n (Theorem 4.4)."
    );
}
