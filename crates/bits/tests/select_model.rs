//! Model-based boundary suite for the static select paths (RRR, FID,
//! Elias–Fano), mirroring every structure against naive scans exactly at
//! the places the broadword rewrite touches: sample-interval boundaries of
//! the hint directories, superblock/block edges (63/64/65-bit blocks),
//! first/last ones and zeros, and degenerate all-ones/all-zeros inputs.

use wt_bits::{BitAccess, BitRank, BitSelect, EliasFano, Fid, RawBitVec, RrrVector};

/// RRR select hints sample every 4096th target bit; FID every 8192th.
/// Probing `k` around both catches off-by-one hint indexing in either.
const SAMPLE_EDGES: [usize; 6] = [4095, 4096, 4097, 8191, 8192, 8193];

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed.max(1);
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

/// Exercises select/rank/access of both bitvector indexes against scans,
/// concentrating probes at boundaries rather than uniformly.
fn check_bitvectors(bits: &RawBitVec) {
    let rrr = RrrVector::new(bits);
    let fid = Fid::new(bits.clone());
    let ones = bits.count_ones();
    let zeros = bits.len() - ones;

    let mut ks: Vec<usize> = vec![0, 1, 2];
    ks.extend(SAMPLE_EDGES);
    for c in [ones, zeros] {
        ks.extend([c.saturating_sub(2), c.saturating_sub(1), c, c + 1]);
    }
    // block/superblock edge ranks: RRR blocks are 63 bits, superblocks
    // 16 blocks; FID blocks 512 bits.
    for edge in [63usize, 64, 65, 1007, 1008, 1009, 511, 512, 513] {
        if edge < bits.len() {
            ks.push(bits.rank1_scan(edge));
            ks.push(edge - bits.rank1_scan(edge));
        }
    }
    ks.sort_unstable();
    ks.dedup();

    for &k in &ks {
        let e1 = bits.select1_scan(k);
        let e0 = bits.select0_scan(k);
        assert_eq!(rrr.select1(k), e1, "rrr select1({k}) len {}", bits.len());
        assert_eq!(rrr.select0(k), e0, "rrr select0({k}) len {}", bits.len());
        assert_eq!(fid.select1(k), e1, "fid select1({k}) len {}", bits.len());
        assert_eq!(fid.select0(k), e0, "fid select0({k}) len {}", bits.len());
        // Round-trip: select then rank must invert.
        if let Some(p) = e1 {
            assert_eq!(rrr.rank1(p), k);
            assert_eq!(fid.rank1(p), k);
            assert!(rrr.get(p));
        }
        if let Some(p) = e0 {
            assert_eq!(rrr.rank0(p), k);
            assert_eq!(fid.rank0(p), k);
            assert!(!rrr.get(p));
        }
    }
    // Past-the-end always None.
    assert_eq!(rrr.select1(ones), None);
    assert_eq!(rrr.select0(zeros), None);
    assert_eq!(fid.select1(ones), None);
    assert_eq!(fid.select0(zeros), None);
}

#[test]
fn block_boundary_lengths() {
    // One partial/full/overfull RRR block and FID block, three contents.
    for n in [63usize, 64, 65, 511, 512, 513, 1007, 1008, 1009] {
        check_bitvectors(&RawBitVec::filled(true, n));
        check_bitvectors(&RawBitVec::filled(false, n));
        check_bitvectors(&RawBitVec::from_bits((0..n).map(|i| i % 3 == 0)));
    }
}

#[test]
fn sample_interval_boundaries_dense() {
    // > 8192 ones and zeros so every hint directory has multiple entries.
    let mut next = xorshift(99);
    let bits = RawBitVec::from_bits((0..40_000).map(|_| next().is_multiple_of(2)));
    check_bitvectors(&bits);
}

#[test]
fn sample_interval_boundaries_sparse_and_runny() {
    let mut next = xorshift(7);
    check_bitvectors(&RawBitVec::from_bits(
        (0..60_000).map(|_| next().is_multiple_of(64)),
    ));
    check_bitvectors(&RawBitVec::from_bits(
        (0..60_000).map(|i| (i / 256) % 2 == 0),
    ));
}

#[test]
fn last_superblock_is_bounded() {
    // Targets in the final (partial) superblock of a vector whose length is
    // not a multiple of the superblock size — the former tail-scan path.
    for tail in [1usize, 62, 63, 64, 1000] {
        let n = 5 * 1008 + tail;
        let bits = RawBitVec::from_bits((0..n).map(|i| i % 7 == 0));
        check_bitvectors(&bits);
    }
}

#[test]
fn all_ones_then_all_zeros_transition() {
    // select0 must skip the solid-ones prefix superblocks entirely and
    // vice versa: exercises tied superblock counts in the binary search.
    let mut bits = RawBitVec::filled(true, 10_000);
    for _ in 0..10_000 {
        bits.push(false);
    }
    check_bitvectors(&bits);
}

#[test]
fn elias_fano_boundary_access() {
    // get / get_pair / rank_leq on bucket boundaries, duplicates, large
    // gaps (select0-driven bucket walks) and the dense-bucket binary
    // search path (> 8 equal-high-part values).
    let cases: Vec<Vec<u64>> = vec![
        vec![0],
        vec![0, 0, 0, 0],
        (0..5000u64).collect(),
        (0..500u64).map(|i| i * 1_234_567).collect(),
        (0..2000u64)
            .map(|i| (i / 100) * 1_000_000 + i % 100)
            .collect(),
        (0..64u64).map(|i| i / 16).collect(),
        vec![u64::MAX - 2, u64::MAX - 1, u64::MAX - 1],
        // One dominant gap in the upper bits: get_pair's capped word scan
        // must take the select fallback, not a linear walk.
        (0..100u64).chain(std::iter::once(1u64 << 40)).collect(),
    ];
    for values in cases {
        let ef = EliasFano::new(&values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(ef.get(i), v, "get({i})");
            if i + 1 < values.len() {
                assert_eq!(ef.get_pair(i), (v, values[i + 1]), "get_pair({i})");
            }
        }
        for x in values
            .iter()
            .flat_map(|&v| [v.saturating_sub(1), v, v.saturating_add(1)])
            .chain([0, 1, u64::MAX])
        {
            let naive = values.iter().filter(|&&v| v <= x).count();
            assert_eq!(ef.rank_leq(x), naive, "rank_leq({x})");
        }
    }
}

#[test]
fn elias_fano_pair_crosses_upper_words() {
    // Values spaced so consecutive upper-bitvector ones land in different
    // words, forcing get_pair's scan across word boundaries.
    let values: Vec<u64> = (0..300u64).map(|i| i * 97).collect();
    let ef = EliasFano::new(&values);
    for i in 0..values.len() - 1 {
        assert_eq!(ef.get_pair(i), (values[i], values[i + 1]), "pair({i})");
    }
}
