//! Corruption battery for the archive format: truncations at every word
//! boundary (and unaligned ones), single-bit flips anywhere in the image,
//! wrong magic/version/kind, and checksum-valid images with tampered
//! length fields — every case must surface a typed [`LoadError`], never a
//! panic, never a queryable structure.

use wt_bits::persist::{crc64, from_bytes, kind, to_bytes, Archive, LoadError};
use wt_bits::{EliasFano, Fid, RawBitVec, RrrVector};

fn xorshift(mut s: u64) -> impl FnMut() -> u64 {
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

/// One representative image per archive-rooted container kind.
fn images() -> Vec<(u32, Vec<u8>)> {
    let mut rnd = xorshift(0xC0FF);
    let bits: Vec<bool> = (0..3000).map(|_| rnd().is_multiple_of(3)).collect();
    let mut raw = RawBitVec::new();
    for &b in &bits {
        raw.push(b);
    }
    let fid = Fid::from_bits(bits.iter().copied());
    let rrr = RrrVector::from_bits(bits.iter().copied());
    let mut vals: Vec<u64> = (0..400).map(|_| rnd() % 100_000).collect();
    vals.sort_unstable();
    let ef = EliasFano::new(&vals);
    vec![
        (kind::RAW, to_bytes(kind::RAW, &raw)),
        (kind::FID, to_bytes(kind::FID, &fid)),
        (kind::RRR, to_bytes(kind::RRR, &rrr)),
        (kind::ELIAS_FANO, to_bytes(kind::ELIAS_FANO, &ef)),
    ]
}

/// Decodes `bytes` as the container the kind tag names; any outcome but a
/// typed error is a test failure (the caller guarantees `bytes` is bad).
fn assert_rejected(archive_kind: u32, bytes: &[u8], what: &str) {
    let err = match archive_kind {
        kind::RAW => from_bytes::<RawBitVec>(archive_kind, bytes).map(drop),
        kind::FID => from_bytes::<Fid>(archive_kind, bytes).map(drop),
        kind::RRR => from_bytes::<RrrVector>(archive_kind, bytes).map(drop),
        kind::ELIAS_FANO => from_bytes::<EliasFano>(archive_kind, bytes).map(drop),
        _ => unreachable!(),
    };
    match err {
        Ok(()) => panic!("{what}: corrupt image loaded as kind {archive_kind}"),
        Err(e) => {
            // The error must render (typed, not a panic payload).
            let _ = format!("{e}");
        }
    }
}

/// Sanity: the pristine images load.
#[test]
fn pristine_images_load() {
    for (k, bytes) in images() {
        match k {
            kind::RAW => drop(from_bytes::<RawBitVec>(k, &bytes).unwrap()),
            kind::FID => drop(from_bytes::<Fid>(k, &bytes).unwrap()),
            kind::RRR => drop(from_bytes::<RrrVector>(k, &bytes).unwrap()),
            kind::ELIAS_FANO => drop(from_bytes::<EliasFano>(k, &bytes).unwrap()),
            _ => unreachable!(),
        }
    }
}

#[test]
fn truncation_at_every_boundary() {
    for (k, bytes) in images() {
        // Every aligned prefix, including the empty one.
        for words in 0..bytes.len() / 8 {
            assert_rejected(
                k,
                &bytes[..words * 8],
                &format!("truncate to {words} words"),
            );
        }
        // Unaligned prefixes near the end and in the middle.
        for cut in [1usize, 3, 7] {
            assert_rejected(k, &bytes[..bytes.len() - cut], &format!("cut {cut} bytes"));
            assert_rejected(k, &bytes[..bytes.len() / 2 + cut], "mid-file unaligned cut");
        }
    }
}

#[test]
fn single_bit_flips_never_load() {
    let mut rnd = xorshift(0xF11B);
    for (k, bytes) in images() {
        // Exhaustive over the header + section table + meta CRC (the first
        // 9 words of a single-section archive) …
        let meta_bits = 9 * 64;
        for bit in 0..meta_bits.min(bytes.len() * 8) {
            let mut m = bytes.clone();
            m[bit / 8] ^= 1 << (bit % 8);
            assert_rejected(k, &m, &format!("meta bit {bit}"));
        }
        // … and sampled across the payload. CRC-64 catches every
        // single-bit flip, so each must be rejected.
        for _ in 0..300 {
            let bit = (rnd() % (bytes.len() as u64 * 8)) as usize;
            let mut m = bytes.clone();
            m[bit / 8] ^= 1 << (bit % 8);
            assert_rejected(k, &m, &format!("payload bit {bit}"));
        }
    }
}

#[test]
fn wrong_magic_version_kind() {
    let (k, bytes) = images().remove(0);
    let mut not_ours = bytes.clone();
    not_ours[..8].copy_from_slice(b"NOTANARC");
    assert!(matches!(
        Archive::parse(&not_ours, k),
        Err(LoadError::BadMagic)
    ));
    // Version is the low 32 bits of word 1; bumping it must be rejected
    // even with checksums refixed (readers only know FORMAT_VERSION).
    let mut vnext = bytes.clone();
    vnext[8] = 2;
    let vnext = refix_checksums(&vnext);
    assert!(matches!(
        Archive::parse(&vnext, k),
        Err(LoadError::UnsupportedVersion { found: 2 })
    ));
    // A RawBitVec archive is not a Fid archive.
    assert!(matches!(
        Archive::parse(&bytes, kind::FID),
        Err(LoadError::WrongKind {
            expected: kind::FID,
            found: kind::RAW,
        })
    ));
    // Empty and sub-word inputs.
    assert!(matches!(Archive::parse(&[], k), Err(LoadError::Truncated)));
    assert!(matches!(
        Archive::parse(&bytes[..5], k),
        Err(LoadError::Truncated)
    ));
}

/// Recomputes every section CRC and the meta CRC so a tampered payload
/// passes the checksum gate — the structural validators must then be the
/// ones to reject it.
fn refix_checksums(bytes: &[u8]) -> Vec<u8> {
    let mut words: Vec<u64> = bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    // Defensive against images whose section table was itself mutated:
    // only refix what is in bounds; the parser rejects the rest anyway.
    let s = words[2] as usize;
    let table_end = match s.checked_mul(4).and_then(|t| t.checked_add(4)) {
        Some(t) if t < words.len() => t,
        _ => return bytes.to_vec(),
    };
    let payload_start = table_end + 1;
    for i in 0..s {
        let e = 4 + 4 * i;
        let (off, len) = (words[e + 1] as usize, words[e + 2] as usize);
        let start = payload_start.checked_add(off);
        let end = start.and_then(|s| s.checked_add(len));
        if let (Some(start), Some(end)) = (start, end) {
            if let Some(section) = words.get(start..end) {
                words[e + 3] = crc64(section);
            }
        }
    }
    words[table_end] = crc64(&words[..table_end]);
    let mut out = Vec::with_capacity(words.len() * 8);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

/// Checksum-valid images with tampered content: oversized length fields
/// and broken structural invariants must be caught by validation, with no
/// panic and no allocation blow-up.
#[test]
fn tampered_but_checksum_valid_images() {
    for (k, bytes) in images() {
        // The first payload word of every container encoding is its
        // logical bit/element count. Oversize it three ways.
        for huge in [u64::MAX, 1 << 60, (1 << 40) + 1] {
            let mut m = bytes.clone();
            // Single-section archive: payload starts at word 9.
            m[9 * 8..10 * 8].copy_from_slice(&huge.to_le_bytes());
            assert_rejected(k, &refix_checksums(&m), &format!("len = {huge:#x}"));
        }
        // Shrinking the count desynchronizes every directory length.
        let mut m = bytes.clone();
        let real = u64::from_le_bytes(m[9 * 8..10 * 8].try_into().unwrap());
        m[9 * 8..10 * 8].copy_from_slice(&(real / 2 + 1).to_le_bytes());
        assert_rejected(k, &refix_checksums(&m), "halved length field");
    }
    // RawBitVec-specific: nonzero bits beyond `len` (tail padding) are
    // structurally invalid even though every checksum passes.
    let mut raw = RawBitVec::new();
    for i in 0..67 {
        raw.push(i % 2 == 0);
    }
    let bytes = to_bytes(kind::RAW, &raw);
    let mut m = bytes.clone();
    let last = m.len() - 1;
    m[last] ^= 0x80; // top bit of the final payload word, past len = 67
    let m = refix_checksums(&m);
    assert!(matches!(
        from_bytes::<RawBitVec>(kind::RAW, &m),
        Err(LoadError::Invalid("nonzero bitvector tail padding"))
    ));
}

/// Deterministic fuzz loop: random multi-bit flips, truncations, byte
/// splices and length doctoring across every image — thousands of mutants,
/// each of which must either load (only possible for a no-op mutation) or
/// return a typed error. Any panic fails the harness.
#[test]
fn fuzz_mutations_never_panic() {
    let mut rnd = xorshift(0xFA22);
    let imgs = images();
    for round in 0..4000 {
        let (k, pristine) = &imgs[(rnd() % imgs.len() as u64) as usize];
        let mut m = pristine.clone();
        match rnd() % 4 {
            0 => {
                // 1–8 random bit flips.
                for _ in 0..1 + rnd() % 8 {
                    let bit = (rnd() % (m.len() as u64 * 8)) as usize;
                    m[bit / 8] ^= 1 << (bit % 8);
                }
            }
            1 => {
                // Random truncation (any byte length).
                let keep = (rnd() % (m.len() as u64 + 1)) as usize;
                m.truncate(keep);
            }
            2 => {
                // Splice a random word with a random value, checksums fixed
                // so the structural validators take the hit.
                let w = (rnd() % (m.len() as u64 / 8)) as usize;
                m[w * 8..(w + 1) * 8].copy_from_slice(&rnd().to_le_bytes());
                if m[..8] == pristine[..8] {
                    m = refix_checksums(&m);
                }
            }
            _ => {
                // Append random trailing garbage.
                for _ in 0..1 + rnd() % 32 {
                    m.push(rnd() as u8);
                }
            }
        }
        if m == *pristine {
            continue; // a no-op mutation (e.g. truncate to full length)
        }
        // Oracle: a mutant either fails with a typed error, or — possible
        // only for checksum-refixed splices that happen to produce another
        // well-formed image — loads as a structure whose canonical re-save
        // is byte-identical to the mutant. Anything else (a panic, or a
        // loaded structure that does not round-trip) is a failure.
        let outcome = match *k {
            kind::RAW => from_bytes::<RawBitVec>(*k, &m).map(|v| to_bytes(*k, &v)),
            kind::FID => from_bytes::<Fid>(*k, &m).map(|v| to_bytes(*k, &v)),
            kind::RRR => from_bytes::<RrrVector>(*k, &m).map(|v| to_bytes(*k, &v)),
            kind::ELIAS_FANO => from_bytes::<EliasFano>(*k, &m).map(|v| to_bytes(*k, &v)),
            _ => unreachable!(),
        };
        match outcome {
            Err(e) => {
                let _ = format!("{e}"); // must render
            }
            Ok(resaved) => {
                assert_eq!(
                    resaved, m,
                    "round {round}: kind {k} loaded a non-canonical mutant"
                );
            }
        }
    }
}
