//! Model-based property test for the fully dynamic RLE+γ bitvector: long
//! mixed insert/delete/rank/select/access workloads checked against a
//! `Vec<bool>` mirror, seeded from `Init(b, n)` ([`DynamicBitVec::filled`])
//! so every workload starts from the single-run state of Remark 4.2 and has
//! to grow through chunk splits, shrink through merges, and cross hot-chunk
//! cache fill/flush boundaries.

use wt_bits::{BitAccess, BitRank, BitSelect, DynamicBitVec};

/// xorshift64* so the workload needs no RNG dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

struct Model {
    v: DynamicBitVec,
    m: Vec<bool>,
}

impl Model {
    fn filled(bit: bool, n: usize) -> Self {
        Model {
            v: DynamicBitVec::filled(bit, n),
            m: vec![bit; n],
        }
    }

    fn insert(&mut self, pos: usize, bit: bool) {
        self.v.insert(pos, bit);
        self.m.insert(pos, bit);
    }

    fn remove(&mut self, pos: usize) {
        let got = self.v.remove(pos);
        let want = self.m.remove(pos);
        assert_eq!(got, want, "remove({pos})");
    }

    /// Spot-checks a handful of positions (cheap enough to run every step).
    fn check_probes(&self, rng: &mut Rng) {
        let n = self.m.len();
        if n == 0 {
            assert_eq!(self.v.len(), 0);
            return;
        }
        for _ in 0..4 {
            let i = rng.below(n);
            assert_eq!(self.v.get(i), self.m[i], "get({i})");
            let want_rank = self.m[..i].iter().filter(|&&b| b).count();
            assert_eq!(self.v.rank1(i), want_rank, "rank1({i})");
        }
        let ones = self.m.iter().filter(|&&b| b).count();
        assert_eq!(self.v.count_ones(), ones);
        if ones > 0 {
            let k = rng.below(ones);
            let want = self
                .m
                .iter()
                .enumerate()
                .filter(|(_, &b)| b)
                .nth(k)
                .map(|(i, _)| i);
            assert_eq!(self.v.select1(k), want, "select1({k})");
        }
        let zeros = n - ones;
        if zeros > 0 {
            let k = rng.below(zeros);
            let want = self
                .m
                .iter()
                .enumerate()
                .filter(|(_, &b)| !b)
                .nth(k)
                .map(|(i, _)| i);
            assert_eq!(self.v.select0(k), want, "select0({k})");
        }
    }

    /// Full sweep: every position, every rank, the whole iterator.
    fn check_full(&self) {
        assert_eq!(self.v.len(), self.m.len());
        let mut cum = 0usize;
        for (i, &b) in self.m.iter().enumerate() {
            assert_eq!(self.v.get(i), b, "get({i})");
            assert_eq!(self.v.rank1(i), cum, "rank1({i})");
            cum += b as usize;
        }
        assert_eq!(self.v.rank1(self.m.len()), cum);
        let collected: Vec<bool> = self.v.iter().collect();
        assert_eq!(collected, self.m, "iterator");
    }
}

/// One long mixed workload. `spread` controls edit locality: small spreads
/// hammer one chunk (cache hits), large spreads hop across chunks (cache
/// flushes); the mix drives both, plus splits (net growth phases) and
/// merges (net shrink phases).
fn drive(seed: u64, init_bit: bool, init_n: usize, steps: usize, spread: usize) {
    let mut rng = Rng(seed | 1);
    let mut model = Model::filled(init_bit, init_n);
    let mut anchor = init_n / 2;
    for step in 0..steps {
        let n = model.m.len();
        // Re-anchor occasionally so edits wander across chunk boundaries.
        if step % 64 == 0 && n > 0 {
            anchor = rng.below(n);
        }
        let pos_near = |rng: &mut Rng, max: usize| {
            if max == 0 {
                0
            } else {
                (anchor + rng.below(spread)).min(max)
            }
        };
        // Growth phase in the first half, shrink phase in the second:
        // forces chunk splits and then leaf merges.
        let grow = step < steps / 2;
        let r = rng.next();
        match r % 8 {
            0..=3 => {
                let p = pos_near(&mut rng, n);
                model.insert(p, r.is_multiple_of(2));
            }
            4..=5 => {
                if n > 0 && (!grow || r % 16 == 4) {
                    let p = pos_near(&mut rng, n - 1);
                    model.remove(p);
                } else {
                    let p = pos_near(&mut rng, n);
                    model.insert(p, r.is_multiple_of(3));
                }
            }
            6 => {
                // Far edit: evicts (flushes) any dirty hot chunk.
                if n > 0 {
                    let p = rng.below(n + 1);
                    model.insert(p, r.is_multiple_of(2));
                }
            }
            _ => model.check_probes(&mut rng),
        }
        if step % 997 == 0 {
            model.check_full();
        }
    }
    model.check_full();
}

#[test]
fn filled_ones_local_edits() {
    // Starts as a single giant run; edits split it into many chunks.
    drive(0xA5A5_0001, true, 50_000, 6_000, 16);
}

#[test]
fn filled_zeros_local_edits() {
    drive(0xA5A5_0002, false, 50_000, 6_000, 16);
}

#[test]
fn empty_start_wide_spread() {
    // From nothing: growth phase builds chunks, shrink phase merges them.
    drive(0xA5A5_0003, true, 0, 8_000, 4_096);
}

#[test]
fn small_vector_stays_uncached() {
    // Below the cache threshold: exercises the decode-reencode edit path.
    drive(0xA5A5_0004, false, 64, 3_000, 8);
}

#[test]
fn dense_alternation_maximizes_runs() {
    // Alternating bits make every insert create or split runs, maximizing
    // split/merge churn.
    let mut model = Model::filled(false, 1_000);
    let mut rng = Rng(0xA5A5_0005);
    for i in 0..4_000 {
        let n = model.m.len();
        let p = (n / 2 + rng.below(64).min(n / 2)).min(n);
        model.insert(p, i % 2 == 0);
        if i % 3 == 0 && model.m.len() > 500 {
            let p = model.m.len() / 2 + (i % 32);
            model.remove(p.min(model.m.len() - 1));
        }
    }
    model.check_full();
}

#[test]
fn interleaved_clones_share_nothing() {
    // Clone mid-workload (dirty cache included) and drive both copies on
    // divergent schedules; each must stay consistent with its own mirror.
    let mut rng = Rng(0xA5A5_0006);
    let mut a = Model::filled(true, 10_000);
    for _ in 0..500 {
        let p = 5_000 + rng.below(32);
        a.insert(p, rng.next().is_multiple_of(2));
    }
    let mut b = Model {
        v: a.v.clone(),
        m: a.m.clone(),
    };
    for _ in 0..1_000 {
        let pa = rng.below(a.m.len());
        a.insert(pa, rng.next().is_multiple_of(2));
        let pb = rng.below(b.m.len());
        b.remove(pb);
    }
    a.check_full();
    b.check_full();
}
