//! Edge-case coverage for the wt-bits hot paths: word-boundary rank/select
//! on the raw bitvector and the Fid directory, RRR block class/offset
//! round-trips, and dynamic insert/delete at the boundary positions the
//! RLE+γ tree splits on (0, 63, 64, len).

use wt_bits::{
    BitAccess, BitRank, BitSelect, DynamicBitVec, Fid, RawBitVec, RrrBuilder, RrrVector,
};

/// splitmix64 — deterministic bit-pattern source.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn pattern(len: usize, seed: u64) -> Vec<bool> {
    (0..len).map(|i| mix(seed ^ i as u64) & 1 == 1).collect()
}

fn check_rank_select_matches_model(bits: &[bool], v: &impl BitSelect) {
    assert_eq!(v.len(), bits.len());
    let mut ones = 0usize;
    for (i, &b) in bits.iter().enumerate() {
        assert_eq!(v.get(i), b, "get({i})");
        assert_eq!(v.rank1(i), ones, "rank1({i})");
        assert_eq!(v.rank0(i), i - ones, "rank0({i})");
        if b {
            assert_eq!(v.select1(ones), Some(i), "select1({ones})");
        } else {
            assert_eq!(v.select0(i - ones), Some(i), "select0({})", i - ones);
        }
        ones += b as usize;
    }
    assert_eq!(v.rank1(bits.len()), ones, "rank1(len)");
    assert_eq!(v.select1(ones), None, "select1 past last one");
    assert_eq!(v.select0(bits.len() - ones), None, "select0 past last zero");
}

// ---------------------------------------------------------------------------
// RawBitVec
// ---------------------------------------------------------------------------

#[test]
fn raw_scan_rank_select_straddle_word_boundaries() {
    // Lengths hugging the 64-bit word and 512-bit Fid-block boundaries.
    for len in [1, 63, 64, 65, 127, 128, 129, 511, 512, 513, 640] {
        let bits = pattern(len, len as u64);
        let raw = RawBitVec::from_bits(bits.iter().copied());
        let mut ones = 0usize;
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(raw.get(i), b, "len={len} get({i})");
            assert_eq!(raw.rank1_scan(i), ones, "len={len} rank1_scan({i})");
            if b {
                assert_eq!(raw.select1_scan(ones), Some(i), "len={len}");
            } else {
                assert_eq!(raw.select0_scan(i - ones), Some(i), "len={len}");
            }
            ones += b as usize;
        }
        assert_eq!(raw.rank1_scan(len), ones);
        assert_eq!(raw.count_ones(), ones);
        assert_eq!(raw.select1_scan(ones), None);
    }
}

#[test]
fn raw_get_bits_and_push_bits_across_words() {
    let mut raw = RawBitVec::new();
    // Push widths that force every push/get to straddle a word boundary.
    let widths = [1usize, 7, 13, 31, 33, 64, 5, 64, 3];
    let mut expected = Vec::new();
    for (k, &w) in widths.iter().enumerate() {
        let v = mix(k as u64) & if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        raw.push_bits(v, w);
        expected.push((v, w));
    }
    let mut at = 0usize;
    for &(v, w) in &expected {
        assert_eq!(raw.get_bits(at, w), v, "width {w} at bit {at}");
        at += w;
    }
    assert_eq!(raw.len(), at);
    // Full-word extraction aligned exactly on the boundary.
    let aligned = RawBitVec::from_bits((0..192).map(|i| i % 3 == 0));
    assert_eq!(aligned.get_bits(64, 64), aligned.word(1));
    assert_eq!(aligned.get_bits(128, 64), aligned.word(2));
}

#[test]
fn raw_extend_from_range_unaligned() {
    let src = RawBitVec::from_bits(pattern(300, 9));
    for (start, len) in [(0, 300), (1, 63), (63, 2), (64, 64), (65, 130), (250, 50)] {
        let mut dst = RawBitVec::from_bits([true, false, true]);
        dst.extend_from_range(&src, start, len);
        assert_eq!(dst.len(), 3 + len);
        for i in 0..len {
            assert_eq!(dst.get(3 + i), src.get(start + i), "start={start} i={i}");
        }
    }
}

// ---------------------------------------------------------------------------
// Fid
// ---------------------------------------------------------------------------

#[test]
fn fid_rank_select_at_word_and_block_boundaries() {
    for len in [1, 63, 64, 65, 511, 512, 513, 1024, 1500] {
        let bits = pattern(len, 0xF1D ^ len as u64);
        let fid = Fid::new(RawBitVec::from_bits(bits.iter().copied()));
        check_rank_select_matches_model(&bits, &fid);
    }
}

#[test]
fn fid_extreme_densities() {
    for len in [64, 512, 2048] {
        let ones = vec![true; len];
        let zeros = vec![false; len];
        check_rank_select_matches_model(
            &ones,
            &Fid::new(RawBitVec::from_bits(ones.iter().copied())),
        );
        check_rank_select_matches_model(
            &zeros,
            &Fid::new(RawBitVec::from_bits(zeros.iter().copied())),
        );
        // A single one at each word boundary position.
        for pos in [0, 63, (len - 1).min(64), len - 1] {
            let mut bits = vec![false; len];
            bits[pos] = true;
            let fid = Fid::new(RawBitVec::from_bits(bits.iter().copied()));
            assert_eq!(fid.select1(0), Some(pos));
            assert_eq!(fid.rank1(len), 1);
            check_rank_select_matches_model(&bits, &fid);
        }
    }
}

// ---------------------------------------------------------------------------
// RRR
// ---------------------------------------------------------------------------

#[test]
fn rrr_class_offset_roundtrip_all_block_contents() {
    // Each 64-bit block is stored as (class = popcount, offset); decoding
    // must reconstruct the exact word. Cover every class 0..=64 plus mixed
    // pseudorandom residue blocks and a partial tail block.
    let mut words: Vec<u64> = Vec::new();
    for c in 0..=64u32 {
        // canonical member of the class: c low bits set
        words.push(if c == 64 { u64::MAX } else { (1u64 << c) - 1 });
        // scattered member of the same class
        let mut w = 0u64;
        let mut placed = 0;
        let mut s = c as u64;
        while placed < c {
            s = mix(s);
            let b = s % 64;
            if w & (1 << b) == 0 {
                w |= 1 << b;
                placed += 1;
            }
        }
        words.push(w);
    }
    let mut bits: Vec<bool> = Vec::new();
    for &w in &words {
        for i in 0..64 {
            bits.push(w >> i & 1 == 1);
        }
    }
    bits.extend(pattern(37, 5)); // ragged tail
    let rrr = RrrVector::from_bits(bits.iter().copied());
    let back = rrr.to_raw();
    assert_eq!(back.len(), bits.len());
    for (i, &b) in bits.iter().enumerate() {
        assert_eq!(back.get(i), b, "round-trip bit {i}");
    }
    check_rank_select_matches_model(&bits, &rrr);
}

#[test]
fn rrr_rank_select_word_boundary_lengths() {
    for len in [1, 63, 64, 65, 127, 128, 129, 1000] {
        for (seed, name) in [(7u64, "mixed"), (u64::MAX, "sparse")] {
            let bits: Vec<bool> = if name == "sparse" {
                (0..len).map(|i| i % 97 == 0).collect()
            } else {
                pattern(len, seed ^ len as u64)
            };
            let rrr = RrrVector::from_bits(bits.iter().copied());
            check_rank_select_matches_model(&bits, &rrr);
        }
    }
}

#[test]
fn rrr_builder_matches_from_bits() {
    // Blocks are RRR_BLOCK_BITS = 63 bits wide, so every push straddles the
    // 64-bit words of the source.
    let bits = pattern(63 * 9 + 17, 21);
    let raw = RawBitVec::from_bits(bits.iter().copied());
    let mut builder = RrrBuilder::new(bits.len());
    assert_eq!(
        builder.total_blocks(),
        bits.len().div_ceil(wt_bits::rrr::RRR_BLOCK_BITS)
    );
    let mut pushed = 0;
    while !builder.is_complete() {
        let at = pushed * wt_bits::rrr::RRR_BLOCK_BITS;
        let width = wt_bits::rrr::RRR_BLOCK_BITS.min(bits.len() - at);
        builder.push_block(raw.get_bits(at, width));
        pushed += 1;
        assert_eq!(builder.blocks_pushed(), pushed);
    }
    let rrr = builder.finish();
    check_rank_select_matches_model(&bits, &rrr);
}

// ---------------------------------------------------------------------------
// DynamicBitVec
// ---------------------------------------------------------------------------

#[test]
fn dynamic_insert_at_boundary_positions() {
    // Insert at 0, 63, 64 and len on top of a 64-bit base, mirrored on a model.
    let base = pattern(64, 77);
    for &pos in &[0usize, 63, 64] {
        for &bit in &[false, true] {
            let mut v = DynamicBitVec::from_bits(base.iter().copied());
            let mut m = base.clone();
            v.insert(pos, bit);
            m.insert(pos, bit);
            let len = m.len();
            v.insert(len, !bit); // insert at len == append
            m.insert(len, !bit);
            assert_eq!(v.len(), m.len());
            let collected: Vec<bool> = v.iter().collect();
            assert_eq!(collected, m, "insert at {pos}");
            let mut ones = 0;
            for (i, &b) in m.iter().enumerate() {
                assert_eq!(v.get(i), b);
                assert_eq!(v.rank1(i), ones);
                ones += b as usize;
            }
        }
    }
    // Insert at 0 into an empty vector.
    let mut v = DynamicBitVec::new();
    v.insert(0, true);
    assert_eq!(v.len(), 1);
    assert!(v.get(0));
}

#[test]
fn dynamic_remove_at_boundary_positions() {
    let base = pattern(130, 3);
    for &pos in &[0usize, 63, 64, 129] {
        let mut v = DynamicBitVec::from_bits(base.iter().copied());
        let mut m = base.clone();
        assert_eq!(v.remove(pos), m.remove(pos), "removed bit at {pos}");
        assert_eq!(v.len(), m.len());
        let collected: Vec<bool> = v.iter().collect();
        assert_eq!(collected, m, "remove at {pos}");
    }
    // Drain entirely from the front, then from the back.
    let mut v = DynamicBitVec::from_bits(base.iter().copied());
    let mut m = base.clone();
    while !m.is_empty() {
        assert_eq!(v.remove(0), m.remove(0));
    }
    assert_eq!(v.len(), 0);
    let mut v = DynamicBitVec::from_bits(base.iter().copied());
    let mut m = base;
    while !m.is_empty() {
        let last = m.len() - 1;
        assert_eq!(v.remove(last), m.remove(last));
    }
    assert_eq!(v.len(), 0);
}

#[test]
fn dynamic_interleaved_boundary_churn() {
    // Repeated insert/remove pinned to the 0/63/64/len hot spots, against a
    // model, with full rank/select verification at the end.
    let mut v = DynamicBitVec::new();
    let mut m: Vec<bool> = Vec::new();
    let mut s = 0xD1Au64;
    for step in 0..800 {
        s = mix(s);
        let bit = s & 1 == 1;
        let choice = (s >> 1) % 5;
        let pos = match choice {
            0 => 0,
            1 => 63.min(m.len()),
            2 => 64.min(m.len()),
            _ => m.len(),
        };
        if choice == 4 && !m.is_empty() && step % 3 == 0 {
            let p = pos.min(m.len() - 1);
            assert_eq!(v.remove(p), m.remove(p));
        } else {
            v.insert(pos, bit);
            m.insert(pos, bit);
        }
        assert_eq!(v.len(), m.len());
    }
    check_rank_select_matches_model(&m, &v);
    let (bit, rank) = v.access_rank(100);
    assert_eq!(bit, m[100]);
    assert_eq!(rank, m[..100].iter().filter(|&&b| b).count());
}
