//! [`OffsetBitVec`]: an append-only bitvector with an implicit constant
//! prefix.
//!
//! §4 of the paper: *"in the append-only case, `Init` can be implemented
//! simply by adding a left offset in each bitvector, which increments each
//! bitvector space by O(log n) and can be checked in constant time."* The
//! append-only Wavelet Trie creates node bitvectors as `b^m` followed only
//! by appends; we store the run `b^m` as two words and delegate the suffix
//! to an [`AppendBitVec`].

use crate::{AppendBitVec, BitAccess, BitRank, BitSelect, SpaceUsage};

/// Append-only bitvector whose first `implicit_len` bits are all equal to
/// `implicit_bit` and stored implicitly.
#[derive(Clone, Debug, Default)]
pub struct OffsetBitVec {
    implicit_bit: bool,
    implicit_len: usize,
    rest: AppendBitVec,
}

impl OffsetBitVec {
    /// An empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// `Init(b, n)`: `n` copies of `bit` in O(1) time and space.
    pub fn filled(bit: bool, n: usize) -> Self {
        OffsetBitVec {
            implicit_bit: bit,
            implicit_len: n,
            rest: AppendBitVec::new(),
        }
    }

    /// Appends a bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        if self.rest.is_empty() && bit == self.implicit_bit {
            // Extend the implicit run for free (also covers the empty case).
            if self.implicit_len == 0 {
                self.implicit_bit = bit;
            }
            self.implicit_len += 1;
        } else {
            self.rest.push(bit);
        }
    }

    /// Length of the implicit constant prefix (for space accounting tests).
    pub fn implicit_len(&self) -> usize {
        self.implicit_len
    }

    /// Appends every bit to `out`: the implicit run goes word-wise, the
    /// explicit suffix via [`AppendBitVec::append_into`]'s sequential
    /// block decode. Bulk export for the structural freeze path.
    pub fn append_into(&self, out: &mut crate::RawBitVec) {
        out.push_run(self.implicit_bit, self.implicit_len);
        self.rest.append_into(out);
    }
}

impl BitAccess for OffsetBitVec {
    #[inline]
    fn len(&self) -> usize {
        self.implicit_len + self.rest.len()
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        if i < self.implicit_len {
            self.implicit_bit
        } else {
            self.rest.get(i - self.implicit_len)
        }
    }
}

impl BitRank for OffsetBitVec {
    fn rank1(&self, i: usize) -> usize {
        if i <= self.implicit_len {
            if self.implicit_bit {
                i
            } else {
                0
            }
        } else {
            let prefix = if self.implicit_bit {
                self.implicit_len
            } else {
                0
            };
            prefix + self.rest.rank1(i - self.implicit_len)
        }
    }

    fn count_ones(&self) -> usize {
        let prefix = if self.implicit_bit {
            self.implicit_len
        } else {
            0
        };
        prefix + self.rest.count_ones()
    }
}

impl BitSelect for OffsetBitVec {
    fn select1(&self, k: usize) -> Option<usize> {
        if self.implicit_bit && k < self.implicit_len {
            return Some(k);
        }
        let prefix = if self.implicit_bit {
            self.implicit_len
        } else {
            0
        };
        self.rest.select1(k - prefix).map(|p| p + self.implicit_len)
    }

    fn select0(&self, k: usize) -> Option<usize> {
        if !self.implicit_bit && k < self.implicit_len {
            return Some(k);
        }
        let prefix = if self.implicit_bit {
            0
        } else {
            self.implicit_len
        };
        self.rest.select0(k - prefix).map(|p| p + self.implicit_len)
    }
}

impl SpaceUsage for OffsetBitVec {
    fn size_bits(&self) -> usize {
        2 * 64 + self.rest.size_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_against(model: &[bool], v: &OffsetBitVec) {
        assert_eq!(v.len(), model.len());
        let mut cum = 0usize;
        let mut s1 = 0usize;
        let mut s0 = 0usize;
        for (i, &b) in model.iter().enumerate() {
            assert_eq!(v.get(i), b, "get({i})");
            assert_eq!(v.rank1(i), cum, "rank1({i})");
            cum += b as usize;
            if b {
                assert_eq!(v.select1(s1), Some(i));
                s1 += 1;
            } else {
                assert_eq!(v.select0(s0), Some(i));
                s0 += 1;
            }
        }
        assert_eq!(v.rank1(model.len()), cum);
        assert_eq!(v.select1(s1), None);
        assert_eq!(v.select0(s0), None);
    }

    #[test]
    fn init_then_append() {
        for &bit in &[false, true] {
            let mut v = OffsetBitVec::filled(bit, 100);
            let mut model = vec![bit; 100];
            for i in 0..500 {
                let b = i % 3 == 0;
                v.push(b);
                model.push(b);
            }
            check_against(&model, &v);
        }
    }

    #[test]
    fn implicit_run_extends_while_constant() {
        let mut v = OffsetBitVec::filled(true, 10);
        v.push(true);
        v.push(true);
        assert_eq!(v.implicit_len(), 12);
        v.push(false);
        v.push(true); // now physical
        assert_eq!(v.implicit_len(), 12);
        check_against(&[vec![true; 12], vec![false, true]].concat(), &v);
    }

    #[test]
    fn empty_starts_fresh() {
        let mut v = OffsetBitVec::new();
        v.push(true);
        v.push(false);
        check_against(&[true, false], &v);
    }

    #[test]
    fn init_space_independent_of_n() {
        let v = OffsetBitVec::filled(false, 1 << 40);
        // The empty AppendBitVec pre-allocates one block of tail capacity
        // (a few KiB); the point is independence from n = 2^40.
        assert!(v.size_bits() < 16 * 1024);
        assert_eq!(v.rank0(1 << 39), 1 << 39);
    }
}
