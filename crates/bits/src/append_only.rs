//! Append-only compressed bitvector (§4.1 of the paper, Theorem 4.5).
//!
//! The bitvector is the concatenation `B₁·B₂···B_k·B'` where each sealed
//! block `Bᵢ` holds exactly `L` bits compressed with RRR and `B'` is a small
//! explicit tail (Lemma 4.6: stored answers, O(1) everything). Cumulative
//! per-block counts form the partial-sum directory (the paper bootstraps
//! another compressed bitvector for these; we store the O(n/L)-word arrays
//! directly — the same o(n) bits, DESIGN.md substitution #3).
//!
//! Sealing a tail into RRR takes O(L/63) block pushes. In the default
//! **de-amortized** mode (Lemma 4.8 / Thm 4.5 partial rebuilding) this work
//! is spread over subsequent appends — a couple of RRR blocks per append —
//! while the frozen raw tail keeps answering queries until the compressed
//! block is ready, giving O(1) worst-case `Append`. The amortized mode seals
//! eagerly (O(1) amortized, occasional O(L) hiccup), matching Lemma 4.7.

use crate::broadword::{select_bit_in_word, select_block};
use crate::rrr::{RrrBuilder, RrrVector, RRR_BLOCK_BITS};
use crate::{BitAccess, BitRank, BitSelect, RawBitVec, SpaceUsage};

/// Configuration for [`AppendBitVec`] (packed: one such struct lives in
/// every Wavelet Trie node, so every byte counts toward the `PT` term).
#[derive(Clone, Copy, Debug)]
pub struct AppendConfig {
    /// Sealed-block size in bits; must be a positive multiple of 63.
    pub block_bits: u32,
    /// RRR blocks built per append while a seal is in flight.
    pub steps_per_append: u16,
    /// Spread RRR construction over appends (worst-case O(1) `push`).
    pub deamortize: bool,
}

impl Default for AppendConfig {
    fn default() -> Self {
        AppendConfig {
            block_bits: 63 * 64, // 4032 bits
            steps_per_append: 2,
            deamortize: true,
        }
    }
}

/// Small explicit bitvector (Lemma 4.6): raw bits plus per-word cumulative
/// ranks, so every operation is O(1) for the bounded sizes it is used at.
#[derive(Clone, Debug, Default)]
struct SmallTail {
    bits: RawBitVec,
    /// Cumulative ones before each *completed* word.
    word_ranks: Vec<u32>,
    ones: usize,
}

impl SmallTail {
    /// Starts empty; storage grows with content so that short-lived node
    /// bitvectors (the common case in a Wavelet Trie) stay tiny.
    fn new() -> Self {
        SmallTail::default()
    }

    #[inline]
    fn len(&self) -> usize {
        self.bits.len()
    }

    #[inline]
    fn push(&mut self, bit: bool) {
        if self.bits.len().is_multiple_of(64) {
            self.word_ranks.push(self.ones as u32);
        }
        self.bits.push(bit);
        self.ones += bit as usize;
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        self.bits.get(i)
    }

    #[inline]
    fn rank1(&self, i: usize) -> usize {
        debug_assert!(i <= self.len());
        if i == self.len() {
            return self.ones;
        }
        let w = i / 64;
        let off = i % 64;
        let mut r = self.word_ranks[w] as usize;
        if off != 0 {
            r += (self.bits.word(w) & ((1u64 << off) - 1)).count_ones() as usize;
        }
        r
    }

    fn select(&self, bit: bool, k: usize) -> Option<usize> {
        let total = if bit {
            self.ones
        } else {
            self.len() - self.ones
        };
        if k >= total {
            return None;
        }
        // Binary search completed words, then in-word select.
        let count_before = |w: usize| {
            let r1 = if w < self.word_ranks.len() {
                self.word_ranks[w] as usize
            } else {
                self.ones
            };
            if bit {
                r1
            } else {
                (w * 64).min(self.len()) - r1
            }
        };
        let lo = select_block(0, self.len() / 64 + 1, k, count_before);
        let valid = self.len() - lo * 64;
        let rem = (k - count_before(lo)) as u32;
        Some(lo * 64 + select_bit_in_word(self.bits.word(lo), bit, valid, rem) as usize)
    }

    fn size_bits(&self) -> usize {
        self.bits.size_bits() + self.word_ranks.capacity() * 32 + 64
    }
}

/// An in-flight seal: the frozen raw block still answers queries while its
/// RRR encoding is built a few blocks per append.
#[derive(Clone, Debug)]
struct PendingSeal {
    frozen: SmallTail,
    builder: RrrBuilder,
    /// Bits of `frozen` already fed to the builder.
    fed: usize,
}

impl PendingSeal {
    fn new(frozen: SmallTail) -> Self {
        let builder = RrrBuilder::new(frozen.len());
        PendingSeal {
            frozen,
            builder,
            fed: 0,
        }
    }

    /// Advances construction by up to `steps` RRR blocks; returns the
    /// finished vector when complete.
    fn step(&mut self, steps: usize) -> bool {
        for _ in 0..steps {
            if self.builder.is_complete() {
                return true;
            }
            let width = RRR_BLOCK_BITS.min(self.frozen.len() - self.fed);
            self.builder
                .push_block(self.frozen.bits.get_bits(self.fed, width));
            self.fed += width;
        }
        self.builder.is_complete()
    }

    fn finish(mut self) -> RrrVector {
        while !self.step(usize::MAX / 2) {}
        self.builder.finish()
    }
}

/// A sealed block plus the partial-sum directory entry pointing at it.
#[derive(Clone, Debug)]
struct SealedBlock {
    /// Ones before this block (the cumulative directory of §4.1).
    ones_before: u64,
    rrr: RrrVector,
}

/// The append-only compressed bitvector of Theorem 4.5: O(1) `push`,
/// `get`, `rank`; `select` in O(log(n/L)); space `nH0(β) + o(n)` bits.
#[derive(Clone, Debug)]
pub struct AppendBitVec {
    cfg: AppendConfig,
    sealed: Vec<SealedBlock>,
    pending: Option<Box<PendingSeal>>,
    tail: SmallTail,
    len: usize,
    ones: usize,
}

impl Default for AppendBitVec {
    fn default() -> Self {
        Self::new()
    }
}

impl AppendBitVec {
    /// Creates an empty vector with the default configuration.
    pub fn new() -> Self {
        Self::with_config(AppendConfig::default())
    }

    /// Creates an empty vector with an explicit configuration.
    ///
    /// # Panics
    /// If `block_bits` is not a positive multiple of 63, or
    /// `steps_per_append` would not finish a seal before the next one starts.
    pub fn with_config(cfg: AppendConfig) -> Self {
        assert!(
            cfg.block_bits > 0 && (cfg.block_bits as usize).is_multiple_of(RRR_BLOCK_BITS),
            "block_bits must be a positive multiple of {RRR_BLOCK_BITS}"
        );
        if cfg.deamortize {
            // A seal needs block_bits/63 steps and must complete within the
            // block_bits appends that refill the tail.
            assert!(
                cfg.steps_per_append as usize * RRR_BLOCK_BITS >= 2,
                "steps_per_append too small to de-amortize"
            );
        }
        AppendBitVec {
            cfg,
            sealed: Vec::new(),
            pending: None,
            tail: SmallTail::new(),
            len: 0,
            ones: 0,
        }
    }

    /// Builds by pushing every bit of `bits`.
    pub fn from_bits<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut v = Self::new();
        for b in iter {
            v.push(b);
        }
        v
    }

    /// Appends a bit (the `Append(b)` of §4.1).
    pub fn push(&mut self, bit: bool) {
        // Advance any in-flight seal first.
        if let Some(p) = self.pending.as_mut() {
            if p.step(self.cfg.steps_per_append as usize) {
                let p = *self.pending.take().expect("pending");
                self.complete_seal(p);
            }
        }
        if self.tail.len() == self.cfg.block_bits as usize {
            // Tail full: freeze it. Any still-pending seal must finish now
            // (cannot happen with default parameters; guarded for safety).
            if let Some(p) = self.pending.take() {
                self.complete_seal(*p);
            }
            let frozen = std::mem::take(&mut self.tail);
            if self.cfg.deamortize {
                self.pending = Some(Box::new(PendingSeal::new(frozen)));
            } else {
                let seal = PendingSeal::new(frozen);
                self.complete_seal(seal);
            }
        }
        self.tail.push(bit);
        self.len += 1;
        self.ones += bit as usize;
    }

    fn complete_seal(&mut self, p: PendingSeal) {
        let ones_before = self.ones_before_pending() as u64;
        let rrr = p.finish();
        self.sealed.push(SealedBlock { ones_before, rrr });
    }

    /// Appends every bit to `out`: sealed blocks decode sequentially
    /// (amortized O(1)/bit, unlike random-access `get`), the in-flight
    /// seal and the tail copy word-wise. Bulk export for the structural
    /// freeze path.
    pub fn append_into(&self, out: &mut crate::RawBitVec) {
        for blk in &self.sealed {
            let raw = blk.rrr.to_raw();
            out.extend_from_range(&raw, 0, raw.len());
        }
        if let Some(p) = &self.pending {
            out.extend_from_range(&p.frozen.bits, 0, p.frozen.bits.len());
        }
        out.extend_from_range(&self.tail.bits, 0, self.tail.bits.len());
    }

    /// Ones before the region (pending + tail) that follows sealed blocks.
    #[inline]
    fn ones_before_pending(&self) -> usize {
        self.sealed
            .last()
            .map_or(0, |b| b.ones_before as usize + b.rrr.count_ones())
    }

    #[inline]
    fn sealed_bits(&self) -> usize {
        self.sealed.len() * self.cfg.block_bits as usize
    }

    /// Bits covered by sealed blocks plus the frozen pending block.
    #[inline]
    fn stable_bits(&self) -> usize {
        self.sealed_bits() + self.pending.as_ref().map_or(0, |p| p.frozen.len())
    }

    fn select_generic(&self, bit: bool, k: usize) -> Option<usize> {
        let total = if bit { self.ones } else { self.len - self.ones };
        if k >= total {
            return None;
        }
        let block_bits = self.cfg.block_bits as usize;
        let count_before = |i: usize| {
            let r1 = if i == self.sealed.len() {
                self.ones_before_pending()
            } else {
                self.sealed[i].ones_before as usize
            };
            if bit {
                r1
            } else {
                i * block_bits - r1
            }
        };
        // Binary search sealed blocks.
        let lo = select_block(0, self.sealed.len() + 1, k, count_before);
        if lo < self.sealed.len() && count_before(lo + 1) > k {
            let rem = k - count_before(lo);
            let p = self.sealed[lo]
                .rrr
                .select(bit, rem)
                .expect("in-block select");
            return Some(lo * block_bits + p);
        }
        // Target is in the pending frozen block or the tail.
        let mut rem = k - count_before(self.sealed.len());
        let mut base = self.sealed_bits();
        if let Some(p) = self.pending.as_ref() {
            let in_frozen = if bit {
                p.frozen.ones
            } else {
                p.frozen.len() - p.frozen.ones
            };
            if rem < in_frozen {
                return Some(base + p.frozen.select(bit, rem).expect("frozen select"));
            }
            rem -= in_frozen;
            base += p.frozen.len();
        }
        self.tail.select(bit, rem).map(|p| base + p)
    }
}

impl BitAccess for AppendBitVec {
    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let block_bits = self.cfg.block_bits as usize;
        if i < self.sealed_bits() {
            return self.sealed[i / block_bits].rrr.get(i % block_bits);
        }
        let stable = self.stable_bits();
        if i < stable {
            let p = self.pending.as_ref().expect("pending covers this range");
            return p.frozen.get(i - self.sealed_bits());
        }
        self.tail.get(i - stable)
    }
}

impl BitRank for AppendBitVec {
    fn rank1(&self, i: usize) -> usize {
        assert!(
            i <= self.len,
            "rank index {i} out of bounds (len {})",
            self.len
        );
        let block_bits = self.cfg.block_bits as usize;
        if i < self.sealed_bits() {
            let b = i / block_bits;
            return self.sealed[b].ones_before as usize + self.sealed[b].rrr.rank1(i % block_bits);
        }
        let mut r = self.ones_before_pending();
        let mut rem = i - self.sealed_bits();
        if let Some(p) = self.pending.as_ref() {
            if rem <= p.frozen.len() {
                return r + p.frozen.rank1(rem);
            }
            r += p.frozen.ones;
            rem -= p.frozen.len();
        }
        r + self.tail.rank1(rem)
    }

    #[inline]
    fn count_ones(&self) -> usize {
        self.ones
    }
}

impl BitSelect for AppendBitVec {
    #[inline]
    fn select1(&self, k: usize) -> Option<usize> {
        self.select_generic(true, k)
    }

    #[inline]
    fn select0(&self, k: usize) -> Option<usize> {
        self.select_generic(false, k)
    }
}

impl SpaceUsage for AppendBitVec {
    fn size_bits(&self) -> usize {
        self.sealed
            .iter()
            .map(|b| b.rrr.size_bits() + 64)
            .sum::<usize>()
            + self.pending.as_ref().map_or(0, |p| {
                p.frozen.size_bits() + p.builder.total_blocks() * 70 // in-flight bound
            })
            + self.tail.size_bits()
            + 4 * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_check(pattern: impl Iterator<Item = bool>, cfg: AppendConfig) {
        let mut v = AppendBitVec::with_config(cfg);
        let mut model = Vec::new();
        for b in pattern {
            v.push(b);
            model.push(b);
        }
        assert_eq!(v.len(), model.len());
        let ones: usize = model.iter().filter(|&&b| b).count();
        assert_eq!(v.count_ones(), ones);
        let step = (model.len() / 300).max(1);
        let mut cum = 0usize;
        let mut cums = vec![0usize];
        for &b in &model {
            cum += b as usize;
            cums.push(cum);
        }
        for i in (0..=model.len()).step_by(step) {
            assert_eq!(v.rank1(i), cums[i], "rank1({i})");
        }
        for i in (0..model.len()).step_by(step) {
            assert_eq!(v.get(i), model[i], "get({i})");
        }
        for k in (0..ones).step_by((ones / 200).max(1)) {
            let p = v.select1(k).unwrap();
            assert!(model[p], "select1({k}) -> {p}");
            assert_eq!(cums[p], k);
        }
        assert_eq!(v.select1(ones), None);
        let zeros = model.len() - ones;
        for k in (0..zeros).step_by((zeros / 200).max(1)) {
            let p = v.select0(k).unwrap();
            assert!(!model[p], "select0({k}) -> {p}");
            assert_eq!(p - cums[p], k);
        }
        assert_eq!(v.select0(zeros), None);
    }

    #[test]
    fn deamortized_default() {
        model_check((0..30_000).map(|i| i % 3 == 0), AppendConfig::default());
    }

    #[test]
    fn amortized_mode() {
        let cfg = AppendConfig {
            deamortize: false,
            ..AppendConfig::default()
        };
        model_check((0..30_000).map(|i| i % 7 < 2), cfg);
    }

    #[test]
    fn tiny_blocks_force_many_seals() {
        let cfg = AppendConfig {
            block_bits: 63,
            deamortize: true,
            steps_per_append: 2,
        };
        model_check((0..5_000).map(|i| (i * i) % 5 == 0), cfg);
    }

    #[test]
    fn queries_mid_pending_seal() {
        // Probe immediately after a seal starts, while the builder is mid-flight.
        let cfg = AppendConfig {
            block_bits: 63 * 64,
            deamortize: true,
            steps_per_append: 1,
        };
        let mut v = AppendBitVec::with_config(cfg);
        let n = cfg.block_bits as usize + 10;
        for i in 0..n {
            v.push(i % 2 == 0);
        }
        assert!(v.pending.is_some(), "seal should be in flight");
        assert_eq!(
            v.rank1(cfg.block_bits as usize),
            cfg.block_bits as usize / 2
        );
        assert_eq!(v.rank1(n), n / 2);
        assert!(v.get(0));
        assert_eq!(v.select1(10), Some(20));
        assert_eq!(v.select0(10), Some(21));
    }

    #[test]
    fn all_same_bit() {
        model_check(std::iter::repeat_n(true, 10_000), AppendConfig::default());
        model_check(std::iter::repeat_n(false, 10_000), AppendConfig::default());
    }

    #[test]
    fn empty_vector() {
        let v = AppendBitVec::new();
        assert_eq!(v.len(), 0);
        assert_eq!(v.rank1(0), 0);
        assert_eq!(v.select1(0), None);
        assert_eq!(v.select0(0), None);
    }

    #[test]
    fn compression_near_entropy() {
        // Long runs: entropy tiny, structure should stay well below plain size.
        let n = 200_000;
        let mut v = AppendBitVec::new();
        for i in 0..n {
            v.push((i / 1000) % 2 == 0);
        }
        let bits = v.size_bits();
        assert!(
            bits < n / 2,
            "append-only bitvector should compress runs: {bits} bits for {n}"
        );
    }
}
