//! Versioned zero-copy archives — the on-disk format of every static
//! structure in the workspace.
//!
//! An archive is a flat little-endian `u64` stream:
//!
//! ```text
//! word 0            MAGIC ("WVLTRIE\x01")
//! word 1            format version (low 32) | structure kind (high 32)
//! word 2            number of sections S
//! word 3            total payload words P
//! words 4 .. 4+4S   section table: (tag, offset, len, crc64) per section
//! word 4+4S         crc64 of everything above (header + table)
//! words 4+4S+1 ..   P payload words, sections contiguous in table order
//! ```
//!
//! *Validate-then-view*: [`Archive::parse`] checks the magic, version and
//! kind, that section offsets are contiguous and in bounds, and that every
//! checksum matches — an O(bytes) scan with no per-bit work — then hands
//! out [`WordsReader`] cursors that carve [`Words::View`]s out of one
//! shared buffer. No bitvector is decoded or rebuilt on load; callers add
//! cheap structural invariant checks (directory lengths, monotonicity) on
//! top. CRC-64 detects every single-bit flip and every burst shorter than
//! 64 bits; truncation is caught by the strict word-count equality.
//!
//! **Versioning policy**: the format is frozen by the golden fixtures in
//! `tests/fixtures/`. Any layout change must bump [`FORMAT_VERSION`] and
//! regenerate fixtures; readers reject versions they do not know.

use crate::words::{U32Words, Words};
use std::sync::Arc;

/// First word of every archive: `"WVLTRIE\x01"` as a little-endian word.
pub const MAGIC: u64 = u64::from_le_bytes(*b"WVLTRIE\x01");

/// Current (and only) format version.
pub const FORMAT_VERSION: u32 = 1;

/// Structure kinds (high 32 bits of word 1) — one per archive-rooted type,
/// so a file saved as one structure cannot be loaded as another.
pub mod kind {
    /// `RawBitVec` (bits-level archives, used by tests and tools).
    pub const RAW: u32 = 1;
    /// `Fid`.
    pub const FID: u32 = 2;
    /// `RrrVector`.
    pub const RRR: u32 = 3;
    /// `EliasFano`.
    pub const ELIAS_FANO: u32 = 4;
    /// `BpSupport`.
    pub const BP: u32 = 5;
    /// `Dfuds`.
    pub const DFUDS: u32 = 6;
    /// Static `WaveletTrie` (also a sealed `TieredStore` segment).
    pub const WAVELET_TRIE: u32 = 7;
    /// `IndexedStrings` (byte-string facade over the static trie).
    pub const INDEXED_STRINGS: u32 = 8;
    /// `TieredStore` directory manifest.
    pub const MANIFEST: u32 = 9;
    /// Hot-segment string log (re-appended on load).
    pub const HOT_LOG: u32 = 10;
    /// Path-decomposed static trie (also a sealed `TieredStore` segment).
    pub const PATH_DECOMP: u32 = 11;
}

/// Why a load was rejected. Corrupt or truncated input must surface as one
/// of these — never a panic, never a structure that answers queries.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The magic word is wrong (not an archive, or not ours).
    BadMagic,
    /// A format version this reader does not understand.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The archive holds a different structure kind.
    WrongKind {
        /// Kind this caller requires.
        expected: u32,
        /// Kind found in the header.
        found: u32,
    },
    /// The byte stream is shorter than its own length fields claim.
    Truncated,
    /// A section offset/length is out of bounds, non-contiguous, or an
    /// embedded length field is oversized.
    SectionBounds,
    /// A CRC-64 mismatch, in the header/table (`None`) or in the payload
    /// of the section with this tag.
    Checksum(Option<u32>),
    /// The section table lacks a section this structure requires.
    MissingSection(u32),
    /// Checksums passed but a structural invariant does not hold.
    Invalid(&'static str),
    /// Any of the above, tagged with the file it came from — so a failure
    /// in a multi-file directory names the offending file.
    InFile {
        /// Path of the file that failed to load.
        path: std::path::PathBuf,
        /// The underlying failure.
        cause: Box<LoadError>,
    },
}

impl Clone for LoadError {
    /// Structure-preserving clone. `io::Error` itself is not `Clone`, so
    /// the `Io` variant clones as a new error of the same kind carrying
    /// the original's message — everything a reporter or health tracker
    /// needs; only the live OS handle (if any) is not duplicated.
    fn clone(&self) -> Self {
        match self {
            LoadError::Io(e) => LoadError::Io(std::io::Error::new(e.kind(), e.to_string())),
            LoadError::BadMagic => LoadError::BadMagic,
            LoadError::UnsupportedVersion { found } => {
                LoadError::UnsupportedVersion { found: *found }
            }
            LoadError::WrongKind { expected, found } => LoadError::WrongKind {
                expected: *expected,
                found: *found,
            },
            LoadError::Truncated => LoadError::Truncated,
            LoadError::SectionBounds => LoadError::SectionBounds,
            LoadError::Checksum(tag) => LoadError::Checksum(*tag),
            LoadError::MissingSection(tag) => LoadError::MissingSection(*tag),
            LoadError::Invalid(what) => LoadError::Invalid(what),
            LoadError::InFile { path, cause } => LoadError::InFile {
                path: path.clone(),
                cause: cause.clone(),
            },
        }
    }
}

impl LoadError {
    /// Tags this error with the file it came from. Idempotent: an error
    /// already carrying a path keeps the innermost (original) one.
    pub fn in_file(self, path: impl Into<std::path::PathBuf>) -> LoadError {
        match self {
            LoadError::InFile { .. } => self,
            other => LoadError::InFile {
                path: path.into(),
                cause: Box::new(other),
            },
        }
    }

    /// The file this error is tagged with, if any.
    pub fn file(&self) -> Option<&std::path::Path> {
        match self {
            LoadError::InFile { path, .. } => Some(path),
            _ => None,
        }
    }
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::BadMagic => write!(f, "bad magic (not a .wt archive)"),
            LoadError::UnsupportedVersion { found } => {
                write!(f, "unsupported format version {found}")
            }
            LoadError::WrongKind { expected, found } => {
                write!(
                    f,
                    "wrong structure kind: expected {expected}, found {found}"
                )
            }
            LoadError::Truncated => write!(f, "archive truncated"),
            LoadError::SectionBounds => write!(f, "section table out of bounds"),
            LoadError::Checksum(None) => write!(f, "header checksum mismatch"),
            LoadError::Checksum(Some(tag)) => {
                write!(f, "payload checksum mismatch in section {tag}")
            }
            LoadError::MissingSection(tag) => write!(f, "missing section {tag}"),
            LoadError::Invalid(what) => write!(f, "structural invariant violated: {what}"),
            LoadError::InFile { path, cause } => write!(f, "{}: {cause}", path.display()),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// CRC-64/ECMA-182 table (reflected polynomial), built at compile time.
const CRC64_POLY: u64 = 0xC96C_5795_D787_0F42;

const CRC64_TABLE: [u64; 256] = {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ CRC64_POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-64 of a word slice, taken over its little-endian bytes.
pub fn crc64(words: &[u64]) -> u64 {
    let mut crc = !0u64;
    for &w in words {
        for b in w.to_le_bytes() {
            crc = (crc >> 8) ^ CRC64_TABLE[((crc ^ b as u64) & 0xff) as usize];
        }
    }
    !crc
}

/// A structure that serializes into / deserializes out of a word stream.
///
/// `encode` appends the canonical word image; `decode` consumes exactly
/// that image from a [`WordsReader`], validating cheap structural
/// invariants but doing zero per-bit work — loaded structures hold
/// [`Words::View`]s into the archive buffer.
pub trait Persist: Sized {
    /// Appends the canonical word encoding.
    fn encode(&self, out: &mut Vec<u64>);
    /// Reads back one encoded value, validating invariants.
    fn decode(r: &mut WordsReader) -> Result<Self, LoadError>;
}

impl Persist for Words {
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(self.len() as u64);
        out.extend_from_slice(self);
    }

    fn decode(r: &mut WordsReader) -> Result<Self, LoadError> {
        let n = r.read_len()?;
        r.view(n)
    }
}

impl Persist for U32Words {
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(self.len() as u64);
        out.extend_from_slice(self.words());
    }

    fn decode(r: &mut WordsReader) -> Result<Self, LoadError> {
        let n = r.read_len()?;
        let words = r.view(n.div_ceil(2))?;
        Ok(U32Words::from_raw(words, n))
    }
}

/// Builds an archive: push sections, then [`ArchiveWriter::finish`].
pub struct ArchiveWriter {
    kind: u32,
    sections: Vec<(u32, Vec<u64>)>,
}

impl ArchiveWriter {
    /// Starts an archive of the given structure kind.
    pub fn new(kind: u32) -> Self {
        ArchiveWriter {
            kind,
            sections: Vec::new(),
        }
    }

    /// Appends a section. Tags must be unique within one archive.
    pub fn section(&mut self, tag: u32, words: Vec<u64>) -> &mut Self {
        debug_assert!(self.sections.iter().all(|(t, _)| *t != tag));
        self.sections.push((tag, words));
        self
    }

    /// Serializes the archive to little-endian bytes.
    pub fn finish(&self) -> Vec<u8> {
        let s = self.sections.len();
        let payload_words: usize = self.sections.iter().map(|(_, w)| w.len()).sum();
        let mut words = Vec::with_capacity(5 + 4 * s + payload_words);
        words.push(MAGIC);
        words.push(FORMAT_VERSION as u64 | ((self.kind as u64) << 32));
        words.push(s as u64);
        words.push(payload_words as u64);
        let mut offset = 0u64;
        for (tag, payload) in &self.sections {
            words.push(*tag as u64);
            words.push(offset);
            words.push(payload.len() as u64);
            words.push(crc64(payload));
            offset += payload.len() as u64;
        }
        words.push(crc64(&words));
        for (_, payload) in &self.sections {
            words.extend_from_slice(payload);
        }
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        bytes
    }
}

struct SectionInfo {
    tag: u32,
    /// Absolute start word within the archive buffer.
    start: usize,
    len: usize,
}

/// A parsed, fully checksum-verified archive. All sections share one
/// `Arc<[u64]>` buffer; readers carve zero-copy views out of it.
pub struct Archive {
    buf: Arc<[u64]>,
    sections: Vec<SectionInfo>,
}

impl Archive {
    /// Parses and validates an archive image: magic, version, kind,
    /// section-table bounds and contiguity, and every CRC. O(bytes).
    pub fn parse(bytes: &[u8], expected_kind: u32) -> Result<Archive, LoadError> {
        if !bytes.len().is_multiple_of(8) || bytes.len() < 8 {
            return Err(LoadError::Truncated);
        }
        let words: Vec<u64> = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        if words[0] != MAGIC {
            return Err(LoadError::BadMagic);
        }
        if words.len() < 5 {
            return Err(LoadError::Truncated);
        }
        let version = words[1] as u32;
        let found_kind = (words[1] >> 32) as u32;
        if version != FORMAT_VERSION {
            return Err(LoadError::UnsupportedVersion { found: version });
        }
        if found_kind != expected_kind {
            return Err(LoadError::WrongKind {
                expected: expected_kind,
                found: found_kind,
            });
        }
        let total = words.len() as u64;
        let n_sections = words[2];
        let payload_words = words[3];
        // Strict accounting: header + table + crc + payload must equal the
        // file exactly, so any truncation or tail garbage is caught here.
        let meta_words = n_sections
            .checked_mul(4)
            .and_then(|t| t.checked_add(5))
            .ok_or(LoadError::SectionBounds)?;
        if meta_words > total {
            return Err(LoadError::Truncated);
        }
        if payload_words != total - meta_words {
            return Err(LoadError::Truncated);
        }
        let table_end = 4 + 4 * n_sections as usize;
        if crc64(&words[..table_end]) != words[table_end] {
            return Err(LoadError::Checksum(None));
        }
        let payload_start = table_end + 1;
        let mut sections = Vec::with_capacity(n_sections as usize);
        let mut running = 0u64;
        for i in 0..n_sections as usize {
            let e = 4 + 4 * i;
            let (tag, offset, len, crc) = (words[e], words[e + 1], words[e + 2], words[e + 3]);
            if tag > u32::MAX as u64 {
                return Err(LoadError::SectionBounds);
            }
            // Sections must tile the payload contiguously in table order.
            if offset != running || offset + len > payload_words {
                return Err(LoadError::SectionBounds);
            }
            running += len;
            let start = payload_start + offset as usize;
            let payload = &words[start..start + len as usize];
            if crc64(payload) != crc {
                return Err(LoadError::Checksum(Some(tag as u32)));
            }
            sections.push(SectionInfo {
                tag: tag as u32,
                start,
                len: len as usize,
            });
        }
        if running != payload_words {
            return Err(LoadError::SectionBounds);
        }
        Ok(Archive {
            buf: words.into(),
            sections,
        })
    }

    /// A cursor over the section with this tag.
    pub fn section(&self, tag: u32) -> Result<WordsReader, LoadError> {
        let s = self
            .sections
            .iter()
            .find(|s| s.tag == tag)
            .ok_or(LoadError::MissingSection(tag))?;
        Ok(WordsReader {
            buf: self.buf.clone(),
            pos: s.start,
            end: s.start + s.len,
        })
    }
}

/// Sequential cursor over one section of a parsed archive. Scalar reads
/// copy a word; [`WordsReader::view`] carves a zero-copy [`Words::View`].
pub struct WordsReader {
    buf: Arc<[u64]>,
    pos: usize,
    end: usize,
}

impl WordsReader {
    /// Next word as `u64`; `Truncated` past the section end.
    pub fn read_u64(&mut self) -> Result<u64, LoadError> {
        if self.pos >= self.end {
            return Err(LoadError::Truncated);
        }
        let w = self.buf[self.pos];
        self.pos += 1;
        Ok(w)
    }

    /// Next word as a length/index, rejecting absurd values so corrupt
    /// length fields never overflow downstream arithmetic. The bound must
    /// stay generous: compressed containers (RRR, an all-equal trie)
    /// legitimately describe far more logical bits than the archive holds
    /// words, so lengths cannot be capped at the file size. Every view is
    /// still bounds-checked against its section by [`WordsReader::view`].
    pub fn read_len(&mut self) -> Result<usize, LoadError> {
        let w = self.read_u64()?;
        // 2^48 bits = 32 TiB of logical payload — far beyond any real
        // archive, and small enough that length products in decoders
        // cannot overflow u64/usize on supported targets.
        if w > 1 << 48 {
            return Err(LoadError::SectionBounds);
        }
        Ok(w as usize)
    }

    /// Next word as an `f64` (bit pattern).
    pub fn read_f64(&mut self) -> Result<f64, LoadError> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Carves the next `len` words as a zero-copy view and advances.
    pub fn view(&mut self, len: usize) -> Result<Words, LoadError> {
        if len > self.end - self.pos {
            return Err(LoadError::Truncated);
        }
        let v = Words::View {
            buf: self.buf.clone(),
            start: self.pos,
            len,
        };
        self.pos += len;
        Ok(v)
    }

    /// Asserts the section was consumed exactly.
    pub fn finish(&self) -> Result<(), LoadError> {
        if self.pos != self.end {
            return Err(LoadError::Invalid("trailing words in section"));
        }
        Ok(())
    }

    /// Words left in the section.
    pub fn remaining(&self) -> usize {
        self.end - self.pos
    }
}

/// Single-section archive of one container — the bits-level `.wt` files
/// used by tests, fixtures and tools.
pub fn to_bytes<T: Persist>(kind: u32, value: &T) -> Vec<u8> {
    let mut payload = Vec::new();
    value.encode(&mut payload);
    let mut w = ArchiveWriter::new(kind);
    w.section(0, payload);
    w.finish()
}

/// Parses a single-section archive written by [`to_bytes`].
pub fn from_bytes<T: Persist>(kind: u32, bytes: &[u8]) -> Result<T, LoadError> {
    let archive = Archive::parse(bytes, kind)?;
    let mut r = archive.section(0)?;
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc64_known_vector() {
        // CRC-64/XZ ("ECMA" reflected) of ASCII "123456789" is
        // 0x995DC9BBDF1939FA; our word-level CRC over one padded word
        // must at least be stable and sensitive to every bit.
        let w = [0x0123_4567_89ab_cdefu64, 42];
        let base = crc64(&w);
        for bit in 0..128 {
            let mut m = w;
            m[bit / 64] ^= 1 << (bit % 64);
            assert_ne!(crc64(&m), base, "bit {bit} undetected");
        }
        let bytes = b"123456789";
        let mut crc = !0u64;
        for &b in bytes {
            crc = (crc >> 8) ^ CRC64_TABLE[((crc ^ b as u64) & 0xff) as usize];
        }
        assert_eq!(!crc, 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn archive_roundtrip_and_rejects() {
        let mut w = ArchiveWriter::new(kind::RAW);
        w.section(7, vec![1, 2, 3]).section(9, vec![0xdead]);
        let bytes = w.finish();
        let a = Archive::parse(&bytes, kind::RAW).unwrap();
        let mut r = a.section(7).unwrap();
        assert_eq!(r.read_u64().unwrap(), 1);
        assert_eq!(r.view(2).unwrap().as_slice(), &[2, 3]);
        r.finish().unwrap();
        assert!(matches!(a.section(8), Err(LoadError::MissingSection(8))));
        assert!(matches!(
            Archive::parse(&bytes, kind::FID),
            Err(LoadError::WrongKind { .. })
        ));
        let mut bad = bytes.clone();
        bad[0] ^= 1;
        assert!(matches!(
            Archive::parse(&bad, kind::RAW),
            Err(LoadError::BadMagic)
        ));
        assert!(matches!(
            Archive::parse(&bytes[..bytes.len() - 8], kind::RAW),
            Err(LoadError::Truncated)
        ));
        assert!(matches!(
            Archive::parse(&bytes[..bytes.len() - 3], kind::RAW),
            Err(LoadError::Truncated)
        ));
    }
}
