//! Elias–Fano encoding of monotone sequences.
//!
//! Used as the partial-sum structure that delimits the concatenated node
//! labels `L` and the concatenated node bitvectors in the static Wavelet
//! Trie (§3: "We use the partial sum data structure of \[22\] to delimit...").
//! Elias–Fano is the standard engineered equivalent with the same
//! `B(m, n) + o(n)` space and O(1) access (DESIGN.md substitution #1).

use crate::broadword::{select_in_word, PIPELINE_LANES};
use crate::persist::{LoadError, Persist, WordsReader};
use crate::words::U32Words;
use crate::{BitRank, BitSelect, Fid, RawBitVec, SpaceUsage};

/// Cursor-seat sampling rate: the position of every `SEAT_SAMPLE`-th
/// upper-bits one is stored verbatim, so seating a cursor is one sample
/// read plus a short popcount scan instead of a sampled binary search —
/// and, crucially, the sample address is a pure function of the index, so
/// a seat can be prefetched *exactly* one memory round ahead.
const SEAT_SAMPLE: usize = 64;

/// A compressed monotone non-decreasing sequence of `u64`s with O(1) access.
#[derive(Clone, Debug)]
pub struct EliasFano {
    n: usize,
    /// Strict upper bound on values (max + 1); 0 when empty.
    u: u64,
    low_width: usize,
    low: RawBitVec,
    high: Fid,
    /// Position of every [`SEAT_SAMPLE`]-th upper-bits one (empty when the
    /// upper bitvector outgrows `u32` addressing — the seat path then falls
    /// back to the directory select). Rebuilt on load, never serialized.
    seats: U32Words,
}

/// A sequential read position inside an [`EliasFano`] sequence: the index
/// and the resolved position of its upper-bits one. Seated once with
/// [`EliasFano::cursor`], then advanced index-by-index without further
/// directory selects — the access pattern of a heavy-path descent, where
/// consecutive steps read consecutive delimiter entries.
#[derive(Clone, Copy, Debug)]
pub struct EfCursor {
    i: usize,
    p: usize,
}

impl EfCursor {
    /// The index the cursor is seated on.
    #[inline]
    pub fn index(&self) -> usize {
        self.i
    }
}

impl EliasFano {
    /// Encodes `values`, which must be non-decreasing.
    ///
    /// # Panics
    /// If the values decrease.
    pub fn new(values: &[u64]) -> Self {
        let n = values.len();
        if n == 0 {
            return EliasFano {
                n: 0,
                u: 0,
                low_width: 0,
                low: RawBitVec::new(),
                high: Fid::new(RawBitVec::new()),
                seats: U32Words::from_vec(Vec::new()),
            };
        }
        let max = *values.last().expect("nonempty");
        let u = max.saturating_add(1);
        let low_width = if u as usize > n && n > 0 {
            (u / n as u64).max(1).ilog2() as usize
        } else {
            0
        };
        let mut low = RawBitVec::with_capacity(n * low_width);
        let n_buckets = (max >> low_width) as usize + 1;
        let mut high = RawBitVec::with_capacity(n + n_buckets);
        let mut prev = 0u64;
        let mut bucket = 0usize;
        for &v in values {
            assert!(v >= prev, "EliasFano requires monotone input");
            prev = v;
            if low_width > 0 {
                low.push_bits(v & ((1u64 << low_width) - 1), low_width);
            }
            let b = (v >> low_width) as usize;
            while bucket < b {
                high.push(false);
                bucket += 1;
            }
            high.push(true);
        }
        high.push(false); // fence so the last bucket is closed
        let high = Fid::new(high);
        let seats = Self::build_seats(&high);
        EliasFano {
            n,
            u,
            low_width,
            low,
            high,
            seats,
        }
    }

    /// Scans the upper bits once and records the position of every
    /// [`SEAT_SAMPLE`]-th one. Derived data: rebuilt at load, not stored.
    fn build_seats(high: &Fid) -> U32Words {
        if high.count_ones() == 0 || high.raw().len() > u32::MAX as usize {
            return U32Words::from_vec(Vec::new());
        }
        let mut v = Vec::with_capacity(high.count_ones().div_ceil(SEAT_SAMPLE));
        let mut seen = 0usize;
        for (wi, &w) in high.raw().words().iter().enumerate() {
            let c = w.count_ones() as usize;
            // All samples with target < seen are already pushed, so the
            // next target is in this word iff it is < seen + c.
            while v.len() * SEAT_SAMPLE < seen + c {
                let k = (v.len() * SEAT_SAMPLE - seen) as u32;
                v.push((wi * 64) as u32 + select_in_word(w, k));
            }
            seen += c;
        }
        U32Words::from_vec(v)
    }

    /// Encodes the prefix sums `0, w₀, w₀+w₁, …` of the given weights;
    /// the result has `weights.len() + 1` entries. This is the delimiter
    /// layout used by the static Wavelet Trie.
    pub fn prefix_sums<I: IntoIterator<Item = u64>>(weights: I) -> Self {
        let mut acc = 0u64;
        let mut vals = vec![0u64];
        for w in weights {
            acc += w;
            vals.push(acc);
        }
        Self::new(&vals)
    }

    /// Number of values stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    fn low_of(&self, i: usize) -> u64 {
        if self.low_width == 0 {
            0
        } else {
            self.low.get_bits(i * self.low_width, self.low_width)
        }
    }

    /// The `i`-th value.
    ///
    /// # Panics
    /// If `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        assert!(
            i < self.n,
            "EliasFano index {i} out of bounds (len {})",
            self.n
        );
        let hi = (self.high.select1(i).expect("directory") - i) as u64;
        if self.low_width == 0 {
            hi
        } else {
            (hi << self.low_width) | self.low_of(i)
        }
    }

    /// The `i`-th and `(i+1)`-th values with a single directory probe: the
    /// second select resolves by scanning the upper bitvector for the next
    /// set bit (the average gap is < 2 bits). The scan is capped at four
    /// words so a pathologically skewed distribution (one huge gap in the
    /// upper bits) degrades to the plain second select, never to a linear
    /// walk. This is the segment-bounds access pattern of the static
    /// Wavelet Trie, where every node visit needs a `[start, end)` pair
    /// from each delimiter structure.
    ///
    /// # Panics
    /// If `i + 1 >= len()`.
    pub fn get_pair(&self, i: usize) -> (u64, u64) {
        assert!(
            i + 1 < self.n,
            "EliasFano pair index {i} out of bounds (len {})",
            self.n
        );
        let p = self.high.select1(i).expect("directory");
        self.pair_from_first(i, p)
    }

    /// Second half of [`EliasFano::get_pair`]: both values given the
    /// already-resolved position `p` of the `i`-th upper-bits one (split
    /// out so the batched entry point can resolve all lanes' selects in a
    /// pipelined round first).
    #[inline]
    fn pair_from_first(&self, i: usize, p: usize) -> (u64, u64) {
        let q = self.next_one_after(i, p);
        let hi0 = (p - i) as u64;
        let hi1 = (q - i - 1) as u64;
        if self.low_width == 0 {
            (hi0, hi1)
        } else {
            (
                (hi0 << self.low_width) | self.low_of(i),
                (hi1 << self.low_width) | self.low_of(i + 1),
            )
        }
    }

    /// Hints the CPU towards the directory and payload words `get(i)` /
    /// `get_pair(i)` will touch: the upper-bits select window and the
    /// low-bits word. Issued for all lanes of a batch up front so the
    /// misses of independent lanes overlap.
    #[inline]
    pub fn prefetch(&self, i: usize) {
        if self.low_width != 0 {
            self.low.prefetch(i * self.low_width);
        }
        self.high.prefetch_select1(i);
    }

    /// Batched [`EliasFano::get`]: all lanes' upper-bit selects run through
    /// the pipelined [`Fid::select1_batch`], with the low-bits words
    /// prefetched up front — so a batch pays overlapped misses instead of
    /// one serialized select chain per lane.
    ///
    /// # Panics
    /// If the slices differ in length or any index is out of bounds.
    pub fn get_batch(&self, idxs: &[usize], out: &mut [u64]) {
        assert_eq!(idxs.len(), out.len(), "batch length mismatch");
        let mut sel = [0usize; PIPELINE_LANES];
        for (chunk, outs) in idxs
            .chunks(PIPELINE_LANES)
            .zip(out.chunks_mut(PIPELINE_LANES))
        {
            // Per-chunk prefetch so a huge batch cannot evict its own
            // early low-bits lines before the resolve below reaches them.
            for &i in chunk {
                assert!(i < self.n, "EliasFano index {i} out of bounds");
                if self.low_width != 0 {
                    self.low.prefetch(i * self.low_width);
                }
            }
            self.high.select1_batch(chunk, &mut sel[..chunk.len()]);
            for ((o, &i), &p) in outs.iter_mut().zip(chunk).zip(&sel) {
                let hi = (p - i) as u64;
                *o = if self.low_width == 0 {
                    hi
                } else {
                    (hi << self.low_width) | self.low_of(i)
                };
            }
        }
    }

    /// Batched [`EliasFano::get_pair`] — the segment-bounds access pattern
    /// of a group descent: all lanes' `[start, end)` pairs with the
    /// upper-bit selects pipelined across lanes.
    ///
    /// # Panics
    /// If the slices differ in length or any `i + 1` is out of bounds.
    pub fn get_pair_batch(&self, idxs: &[usize], out: &mut [(u64, u64)]) {
        assert_eq!(idxs.len(), out.len(), "batch length mismatch");
        let mut sel = [0usize; PIPELINE_LANES];
        for (chunk, outs) in idxs
            .chunks(PIPELINE_LANES)
            .zip(out.chunks_mut(PIPELINE_LANES))
        {
            for &i in chunk {
                assert!(i + 1 < self.n, "EliasFano pair index {i} out of bounds");
                if self.low_width != 0 {
                    self.low.prefetch(i * self.low_width);
                }
            }
            self.high.select1_batch(chunk, &mut sel[..chunk.len()]);
            for ((o, &i), &p) in outs.iter_mut().zip(chunk).zip(&sel) {
                *o = self.pair_from_first(i, p);
            }
        }
    }

    /// Position of the `i`-th upper-bits one via the dense seat samples:
    /// one sample read plus a popcount scan over at most a few words, with
    /// a directory-select fallback for pathological gaps (or when the
    /// samples are absent). Branch-light — no binary search — so multiple
    /// seats in flight pipeline instead of serializing on mispredicts.
    #[inline]
    fn seat_select1(&self, i: usize) -> usize {
        if self.seats.is_empty() {
            return self.high.select1(i).expect("directory");
        }
        let s = self.seats.get(i / SEAT_SAMPLE) as usize;
        let mut need = i % SEAT_SAMPLE;
        let words = self.high.raw().words();
        let mut w = s / 64;
        let mut cur = words[w] & (!0u64 << (s % 64));
        let mut budget = 16usize;
        loop {
            let c = cur.count_ones() as usize;
            if need < c {
                return w * 64 + select_in_word(cur, need as u32) as usize;
            }
            need -= c;
            w += 1;
            budget -= 1;
            if budget == 0 || w >= words.len() {
                return self.high.select1(i).expect("directory");
            }
            cur = words[w];
        }
    }

    /// Seats a sequential cursor on index `i` (one seat-sample probe).
    ///
    /// # Panics
    /// If `i >= len()`.
    #[inline]
    pub fn cursor(&self, i: usize) -> EfCursor {
        assert!(
            i < self.n,
            "EliasFano cursor index {i} out of bounds (len {})",
            self.n
        );
        EfCursor {
            i,
            p: self.seat_select1(i),
        }
    }

    /// Hints every line a [`EliasFano::cursor`] seat at `i` will touch:
    /// the seat-sample word, the low-bits word, and the upper-bits data
    /// word at the `i`-th one's *expected* position (the density estimate
    /// is exact for evenly grown prefix sums and within a line for most
    /// others). All three addresses are pure functions of `i`, so the hint
    /// can run a full memory round ahead of the seat.
    #[inline]
    pub fn prefetch_cursor(&self, i: usize) {
        if self.low_width != 0 {
            self.low.prefetch(i * self.low_width);
        }
        if self.seats.is_empty() {
            self.high.prefetch_select1(i);
            return;
        }
        self.seats.prefetch(i / SEAT_SAMPLE);
        let est = i * self.high.raw().len() / self.n;
        self.high.raw().prefetch(est);
    }

    /// Two-level seat hint: *reads* the seat sample for `i` — an
    /// off-critical-path load, since its value feeds only prefetches — and
    /// hints the exact upper-bits words the seat scan will walk, plus the
    /// low-bits word. One memory round after the sample lands, every line
    /// of a subsequent `cursor(i)` is resident; unlike
    /// [`EliasFano::prefetch_cursor`] no estimate is involved.
    #[inline]
    pub fn prefetch_cursor_deep(&self, i: usize) {
        if self.low_width != 0 {
            self.low.prefetch(i * self.low_width);
        }
        if self.seats.is_empty() {
            self.high.prefetch_select1(i);
            return;
        }
        let s = self.seats.get(i / SEAT_SAMPLE) as usize;
        self.high.raw().prefetch(s);
        self.high.raw().prefetch(s + 512);
    }

    /// `get(i)` resolved through the seat samples — same value as
    /// [`EliasFano::get`], seat-path cost (no directory binary search).
    ///
    /// # Panics
    /// If `i >= len()`.
    #[inline]
    pub fn get_seated(&self, i: usize) -> u64 {
        let c = self.cursor(i);
        self.cursor_value(c)
    }

    /// `(get(i), get(i + 1))` through the seat samples — the pair-probe
    /// analogue of [`EliasFano::get_seated`], touching exactly the lines
    /// [`EliasFano::prefetch_cursor_deep`]`(i)` hints.
    ///
    /// # Panics
    /// If `i + 1 >= len()`.
    #[inline]
    pub fn get_pair_seated(&self, i: usize) -> (u64, u64) {
        let mut c = self.cursor(i);
        let lo = self.cursor_value(c);
        self.advance(&mut c);
        (lo, self.cursor_value(c))
    }

    /// The value under the cursor — no directory probe, just the low-bits
    /// word (the upper part is carried by the cursor position).
    #[inline]
    pub fn cursor_value(&self, c: EfCursor) -> u64 {
        let hi = (c.p - c.i) as u64;
        if self.low_width == 0 {
            hi
        } else {
            (hi << self.low_width) | self.low_of(c.i)
        }
    }

    /// Advances the cursor to index `i + 1` by scanning the upper bits for
    /// the next set bit — for adjacent entries (the per-step directory walk
    /// of a path decomposition) this stays inside the word already in
    /// cache. A pathological gap falls back to one directory select, so the
    /// cursor never degrades to a linear walk.
    ///
    /// # Panics
    /// If the cursor is already at the last index.
    #[inline]
    pub fn advance(&self, c: &mut EfCursor) {
        assert!(
            c.i + 1 < self.n,
            "EliasFano cursor advance past the end (len {})",
            self.n
        );
        c.p = self.next_one_after(c.i, c.p);
        c.i += 1;
    }

    /// Position of the `(i+1)`-th upper-bits one given the `i`-th at `p`:
    /// capped forward scan with a directory-select fallback.
    #[inline]
    fn next_one_after(&self, i: usize, p: usize) -> usize {
        let words = self.high.raw().words();
        let mut w = (p + 1) / 64;
        let mut cur = words[w] & (!0u64 << ((p + 1) % 64));
        let mut budget = 4;
        loop {
            if cur != 0 {
                break w * 64 + cur.trailing_zeros() as usize;
            }
            w += 1;
            budget -= 1;
            match words.get(w) {
                Some(&next) if budget > 0 => cur = next,
                _ => break self.high.select1(i + 1).expect("directory"),
            }
        }
    }

    /// Number of stored values `<= x`.
    pub fn rank_leq(&self, x: u64) -> usize {
        if self.n == 0 || x >= self.u {
            return self.n;
        }
        let bucket = (x >> self.low_width) as usize;
        // Values with high part < bucket: position after the (bucket-1)-th 0.
        let start = if bucket == 0 {
            0
        } else {
            match self.high.select0(bucket - 1) {
                Some(p) => p + 1 - bucket,
                None => return self.n,
            }
        };
        let end = match self.high.select0(bucket) {
            Some(p) => p - bucket,
            None => self.n,
        };
        let xl = x & (((1u64 << self.low_width) - 1) * (self.low_width != 0) as u64);
        // Low bits are sorted within a bucket: binary-search large buckets,
        // scan small ones.
        if end - start > 8 {
            let (mut lo, mut hi) = (start, end);
            while lo < hi {
                let mid = (lo + hi) / 2;
                if self.low_of(mid) <= xl {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            return lo;
        }
        let mut cnt = start;
        for i in start..end {
            if self.low_of(i) <= xl {
                cnt = i + 1;
            } else {
                break;
            }
        }
        cnt
    }

    /// Index of the largest value `<= x`, if any.
    pub fn predecessor_index(&self, x: u64) -> Option<usize> {
        self.rank_leq(x).checked_sub(1)
    }

    /// Iterates over all values in order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.n).map(move |i| self.get(i))
    }
}

impl SpaceUsage for EliasFano {
    fn size_bits(&self) -> usize {
        self.low.size_bits() + self.high.size_bits() + self.seats.size_bits() + 4 * 64
    }
}

impl Persist for EliasFano {
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(self.n as u64);
        out.push(self.u);
        out.push(self.low_width as u64);
        self.low.encode(out);
        self.high.encode(out);
    }

    fn decode(r: &mut WordsReader) -> Result<Self, LoadError> {
        let n = r.read_len()?;
        let u = r.read_u64()?;
        let low_width = r.read_len()?;
        let low = RawBitVec::decode(r)?;
        let high = Fid::decode(r)?;
        if low_width >= 64 || low.len() != n * low_width {
            return Err(LoadError::Invalid("elias-fano low stream length"));
        }
        // One set bit per element in the upper bucket unary stream.
        if high.count_ones() != n {
            return Err(LoadError::Invalid("elias-fano upper bucket count"));
        }
        // Seat samples are derived data: rebuilt here, never serialized,
        // so the on-disk format is unchanged.
        let seats = Self::build_seats(&high);
        Ok(EliasFano {
            n,
            u,
            low_width,
            low,
            high,
            seats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(values: &[u64]) {
        let ef = EliasFano::new(values);
        assert_eq!(ef.len(), values.len());
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(ef.get(i), v, "get({i})");
        }
        let collected: Vec<u64> = ef.iter().collect();
        assert_eq!(collected, values);
        // rank_leq against naive on probe points
        let probes: Vec<u64> = values
            .iter()
            .flat_map(|&v| [v.saturating_sub(1), v, v + 1])
            .chain([0, u64::MAX])
            .collect();
        for x in probes {
            let naive = values.iter().filter(|&&v| v <= x).count();
            assert_eq!(ef.rank_leq(x), naive, "rank_leq({x})");
        }
    }

    #[test]
    fn empty_sequence() {
        let ef = EliasFano::new(&[]);
        assert!(ef.is_empty());
        assert_eq!(ef.rank_leq(123), 0);
        assert_eq!(ef.predecessor_index(5), None);
    }

    #[test]
    fn basic_sequences() {
        check(&[0]);
        check(&[5]);
        check(&[0, 0, 0]);
        check(&[1, 2, 3, 4, 5]);
        check(&[0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55]);
        check(&[10, 10, 10, 1000, 1000, 1_000_000]);
    }

    #[test]
    fn sparse_and_dense() {
        let dense: Vec<u64> = (0..5000).collect();
        check(&dense);
        let sparse: Vec<u64> = (0..500).map(|i| i * 1_234_567).collect();
        check(&sparse);
        let clustered: Vec<u64> = (0..2000).map(|i| (i / 100) * 1_000_000 + i % 100).collect();
        check(&clustered);
    }

    #[test]
    fn large_values() {
        check(&[u64::MAX - 2, u64::MAX - 1, u64::MAX - 1]);
        check(&[0, u64::MAX / 2, u64::MAX - 1]);
    }

    #[test]
    fn prefix_sums_layout() {
        let ef = EliasFano::prefix_sums([3u64, 0, 7, 1]);
        let expected = [0u64, 3, 3, 10, 11];
        assert_eq!(ef.len(), 5);
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(ef.get(i), e);
        }
        // segment lookup: offset 5 lies in segment 2 (bounds [3,10))
        assert_eq!(ef.predecessor_index(5), Some(2));
    }

    #[test]
    fn cursor_walks_sequences() {
        for values in [
            vec![0u64],
            vec![0, 0, 0, 1, 1, 2],
            (0..5000u64).collect(),
            (0..500u64).map(|i| i * 1_234_567).collect(),
            (0..2000u64)
                .map(|i| (i / 100) * 1_000_000 + i % 100)
                .collect(),
        ] {
            let ef = EliasFano::new(&values);
            // Full walk from the front.
            let mut c = ef.cursor(0);
            assert_eq!(ef.cursor_value(c), values[0]);
            for (i, &v) in values.iter().enumerate().skip(1) {
                ef.advance(&mut c);
                assert_eq!(c.index(), i);
                assert_eq!(ef.cursor_value(c), v, "cursor at {i}");
            }
            // Seat mid-sequence.
            let mid = values.len() / 2;
            let mut c = ef.cursor(mid);
            for (i, &v) in values.iter().enumerate().skip(mid) {
                if i > mid {
                    ef.advance(&mut c);
                }
                assert_eq!(ef.cursor_value(c), v, "reseated cursor at {i}");
            }
        }
    }

    #[test]
    fn beats_plain_storage_when_sparse() {
        let values: Vec<u64> = (0..10_000u64).map(|i| i * 1000).collect();
        let ef = EliasFano::new(&values);
        assert!(ef.size_bits() < values.len() * 64, "EF should compress");
    }
}
