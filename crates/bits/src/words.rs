//! Owned-vs-borrowed word storage — the substrate of zero-copy persistence.
//!
//! Every static container in this workspace ultimately stores flat arrays
//! of little-endian `u64` words (RRR classes, rank directories, DFUDS
//! parentheses, …). [`Words`] makes that storage *relocatable*: a freshly
//! built structure owns its `Vec<u64>`, while a structure loaded from disk
//! borrows a sub-range of one shared [`Arc`] buffer — the validate-then-view
//! load path carves all components out of a single allocation with zero
//! per-bit work. `Words` dereferences to `[u64]`, so query code is
//! oblivious to which variant it is running on; mutation goes through
//! [`Words::make_mut`], which copies a view out into owned storage first
//! (construction paths always start owned, so they never pay the copy).

use std::sync::Arc;

/// A flat array of `u64` words, either owned or a view into a shared
/// relocatable buffer (a loaded archive).
#[derive(Clone)]
pub enum Words {
    /// Mutable storage, used by all construction paths.
    Owned(Vec<u64>),
    /// `buf[start..start + len]`, carved out of a loaded archive. Cloning
    /// is an `Arc` bump; the backing buffer outlives every view into it.
    View {
        /// The shared archive payload.
        buf: Arc<[u64]>,
        /// First word of this component within `buf`.
        start: usize,
        /// Number of words.
        len: usize,
    },
}

impl Words {
    /// Empty owned storage.
    #[inline]
    pub fn new() -> Self {
        Words::Owned(Vec::new())
    }

    /// Owned storage with reserved capacity.
    #[inline]
    pub fn with_capacity(words: usize) -> Self {
        Words::Owned(Vec::with_capacity(words))
    }

    /// The words as a slice (also available through `Deref`).
    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        match self {
            Words::Owned(v) => v,
            Words::View { buf, start, len } => &buf[*start..*start + *len],
        }
    }

    /// Mutable access, converting a borrowed view into owned storage first
    /// (copy-on-write). Construction paths are always `Owned`, so this is
    /// a no-op branch for them.
    #[inline]
    pub fn make_mut(&mut self) -> &mut Vec<u64> {
        if let Words::View { buf, start, len } = self {
            *self = Words::Owned(buf[*start..*start + *len].to_vec());
        }
        match self {
            Words::Owned(v) => v,
            Words::View { .. } => unreachable!(),
        }
    }

    /// Whether this is a borrowed view into a loaded archive.
    #[inline]
    pub fn is_view(&self) -> bool {
        matches!(self, Words::View { .. })
    }

    /// Heap size in bits. Owned storage counts its capacity; a view counts
    /// its span of the shared buffer — sections carved from one archive are
    /// disjoint, so summing views over all components counts the mapped
    /// buffer exactly once.
    pub fn size_bits(&self) -> usize {
        match self {
            Words::Owned(v) => v.capacity() * 64,
            Words::View { len, .. } => len * 64,
        }
    }
}

impl Default for Words {
    fn default() -> Self {
        Words::new()
    }
}

impl std::ops::Deref for Words {
    type Target = [u64];
    #[inline]
    fn deref(&self) -> &[u64] {
        self.as_slice()
    }
}

impl From<Vec<u64>> for Words {
    fn from(v: Vec<u64>) -> Self {
        Words::Owned(v)
    }
}

impl PartialEq for Words {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Words {}

impl std::hash::Hash for Words {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Words {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tag = if self.is_view() { "View" } else { "Owned" };
        write!(f, "Words::{tag}[{} words]", self.len())
    }
}

/// A `u32` array packed two-per-word into [`Words`] storage, so select
/// hints and child directories serialize with the same relocatable layout
/// as everything else. Entry `i` lives in the low (even `i`) or high
/// (odd `i`) half of word `i / 2`; the trailing half-word is zero.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct U32Words {
    words: Words,
    len: usize,
}

impl U32Words {
    /// Packs a `u32` vector.
    pub fn from_vec(v: Vec<u32>) -> Self {
        let mut words = vec![0u64; v.len().div_ceil(2)];
        for (i, &x) in v.iter().enumerate() {
            words[i / 2] |= (x as u64) << (32 * (i % 2));
        }
        U32Words {
            words: Words::Owned(words),
            len: v.len(),
        }
    }

    /// Wraps pre-packed storage; `words.len()` must be `len.div_ceil(2)`.
    pub fn from_raw(words: Words, len: usize) -> Self {
        assert_eq!(words.len(), len.div_ceil(2));
        U32Words { words, len }
    }

    /// Number of `u32` entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether there are no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Entry `i`.
    ///
    /// # Panics
    /// If `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        assert!(
            i < self.len,
            "U32Words index {i} out of bounds ({})",
            self.len
        );
        (self.words[i / 2] >> (32 * (i % 2))) as u32
    }

    /// Entry `i`, or `None` past the end.
    #[inline]
    pub fn get_opt(&self, i: usize) -> Option<u32> {
        (i < self.len).then(|| self.get(i))
    }

    /// Hints the cache to fetch the word holding entry `i`.
    #[inline]
    pub fn prefetch(&self, i: usize) {
        crate::broadword::prefetch_read(self.words.as_ptr().wrapping_add(i / 2));
    }

    /// The packed backing words.
    #[inline]
    pub fn words(&self) -> &Words {
        &self.words
    }

    /// Heap size in bits (see [`Words::size_bits`]).
    pub fn size_bits(&self) -> usize {
        self.words.size_bits() + 64
    }
}

impl std::fmt::Debug for U32Words {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "U32Words[{}]", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_owned_view_equivalence() {
        let v: Vec<u64> = (0..100u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .collect();
        let owned = Words::Owned(v.clone());
        let buf: Arc<[u64]> = v.clone().into();
        let view = Words::View {
            buf: buf.clone(),
            start: 0,
            len: v.len(),
        };
        assert_eq!(owned, view);
        assert_eq!(&view[..], &v[..]);
        let sub = Words::View {
            buf,
            start: 10,
            len: 5,
        };
        assert_eq!(&sub[..], &v[10..15]);
        assert!(sub.is_view());
        assert_eq!(sub.size_bits(), 5 * 64);
    }

    #[test]
    fn make_mut_copies_view_out() {
        let buf: Arc<[u64]> = vec![1, 2, 3, 4].into();
        let mut w = Words::View {
            buf,
            start: 1,
            len: 2,
        };
        w.make_mut().push(9);
        assert!(!w.is_view());
        assert_eq!(&w[..], &[2, 3, 9]);
    }

    #[test]
    fn u32_words_roundtrip() {
        for n in [0usize, 1, 2, 3, 7, 100] {
            let v: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(2654435761)).collect();
            let packed = U32Words::from_vec(v.clone());
            assert_eq!(packed.len(), n);
            for (i, &x) in v.iter().enumerate() {
                assert_eq!(packed.get(i), x);
                assert_eq!(packed.get_opt(i), Some(x));
            }
            assert_eq!(packed.get_opt(n), None);
            let re = U32Words::from_raw(packed.words().clone(), n);
            assert_eq!(re, packed);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn u32_words_oob_panics() {
        U32Words::from_vec(vec![1, 2, 3]).get(3);
    }
}
