//! RRR compressed bitvector [Raman–Raman–Rao'07], §2 of the paper.
//!
//! The bitvector is split into blocks of 63 bits. Each block is encoded as a
//! (class, offset) pair: the class is the block's popcount (6 bits) and the
//! offset is the block's index in the enumeration of all 63-bit words with
//! that popcount (combinatorial number system, ⌈log₂ C(63,c)⌉ bits).
//! Superblocks of SB_BLOCKS blocks store an absolute rank and an absolute bit
//! pointer into the offset stream, so every query touches at most one
//! superblock walk (a bounded constant amount of work).
//!
//! Space is `B(m, n) + o(n)` bits as in the paper; operations are O(1) for
//! access/rank/select: superblock walks read all sixteen 6-bit classes with
//! two word loads and decode only the portion of the target block a query
//! needs, and select starts from a sampled hint directory instead of a
//! global binary search (DESIGN.md substitutions #1/#9).

use crate::broadword::{prefetch_read, select_block, PIPELINE_LANES as BATCH_LANES};
use crate::persist::{LoadError, Persist, WordsReader};
use crate::words::{U32Words, Words};
use crate::{BitAccess, BitRank, BitSelect, RawBitVec, SpaceUsage};

/// Bits per RRR block; 63 so class+offset arithmetic fits in `u64`.
pub const RRR_BLOCK_BITS: usize = 63;
/// Blocks per superblock: walks touch at most this many classes, so it
/// trades directory space (64+64 bits per superblock) for query constants.
const SB_BLOCKS: usize = 16;
const CLASS_BITS: usize = 6;
/// One select hint (a superblock index) per this many ones/zeros:
/// 32 bits of directory per 4096 target bits keeps the overhead below
/// 0.01 bits/bit while bounding the select search window to the few
/// superblocks a sample interval spans.
const SELECT_SAMPLE: usize = 4096;

/// Pascal's triangle up to n = 63; `C(63, 31)` fits comfortably in `u64`.
const fn binomial_table() -> [[u64; 64]; 64] {
    let mut t = [[0u64; 64]; 64];
    let mut n = 0;
    while n < 64 {
        t[n][0] = 1;
        let mut k = 1;
        while k <= n {
            t[n][k] = t[n - 1][k - 1] + if k < n { t[n - 1][k] } else { 0 };
            k += 1;
        }
        n += 1;
    }
    t
}

static BINOM: [[u64; 64]; 64] = binomial_table();

/// Offset width in bits for each class: ⌈log₂ C(63, c)⌉.
const fn offset_widths() -> [u8; 64] {
    let mut w = [0u8; 64];
    let mut c = 0;
    while c <= 63 {
        let count = BINOM[63][c] as u128;
        // smallest `bits` with 2^bits >= count
        let mut bits = 0u8;
        while (1u128 << bits) < count {
            bits += 1;
        }
        w[c] = bits;
        c += 1;
    }
    w
}

const OFFSET_WIDTH: [u8; 64] = offset_widths();

/// Encodes a 63-bit block of class `c` into its combinatorial offset.
#[inline]
fn block_rank_offset(word: u64, c: u32) -> u64 {
    debug_assert_eq!(word >> 63, 0);
    debug_assert_eq!(word.count_ones(), c);
    let mut off = 0u64;
    let mut remaining = c as usize;
    let mut i = RRR_BLOCK_BITS;
    while remaining > 0 {
        i -= 1;
        if (word >> i) & 1 != 0 {
            off += BINOM[i][remaining];
            remaining -= 1;
        }
    }
    off
}

/// Decodes a combinatorial offset back into the 63-bit block.
///
/// The walk is branchless: each step turns the `off >= C(i, remaining)`
/// comparison into a mask instead of a 50%-unpredictable branch, so the
/// loop retires at the dependency-chain rate (a table load + subtract per
/// bit) rather than the mispredict rate — the decode loops are the
/// single hottest compute in every dense-bitvector query.
#[inline]
fn block_unrank_offset(mut off: u64, c: u32) -> u64 {
    let mut word = 0u64;
    let mut remaining = c as usize;
    let mut i = RRR_BLOCK_BITS;
    while remaining > 0 {
        i -= 1;
        let b = BINOM[i][remaining];
        let take = (off >= b) as u64;
        let mask = take.wrapping_neg();
        off -= b & mask;
        word |= (1u64 << i) & mask;
        remaining -= take as usize;
    }
    debug_assert_eq!(off, 0);
    word
}

/// Superblock directory: per entry an absolute rank and an absolute
/// offset-stream bit pointer, interleaved `(rank, ptr)` pairs in word
/// storage so a block locate touches one cache line and the directory
/// serializes as-is.
#[derive(Clone, Debug, Default)]
struct SbDir {
    words: Words,
}

impl SbDir {
    fn from_parts(sb_rank: &[u64], sb_ptr: &[u64]) -> Self {
        let mut words = Vec::with_capacity(sb_rank.len() * 2);
        for (&r, &p) in sb_rank.iter().zip(sb_ptr) {
            words.push(r);
            words.push(p);
        }
        SbDir {
            words: words.into(),
        }
    }

    /// Number of entries (including the sentinel).
    #[inline]
    fn len(&self) -> usize {
        self.words.len() / 2
    }

    /// Ones before superblock `i`.
    #[inline]
    fn rank(&self, i: usize) -> u64 {
        self.words[2 * i]
    }

    /// Bit index into the offset stream at superblock `i`'s start.
    #[inline]
    fn ptr(&self, i: usize) -> u64 {
        self.words[2 * i + 1]
    }

    #[inline]
    fn prefetch(&self, i: usize) {
        prefetch_read(self.words.as_ptr().wrapping_add(2 * i));
    }
}

/// An immutable entropy-compressed bitvector with constant-time access/rank.
#[derive(Clone, Debug)]
pub struct RrrVector {
    len: usize,
    ones: usize,
    /// 6-bit class per block (fixed width, random access).
    classes: RawBitVec,
    /// Variable-width combinatorial offsets, one per block.
    offsets: RawBitVec,
    /// Superblock directory (+ final sentinel).
    sb: SbDir,
    /// Superblock containing the `(k·SELECT_SAMPLE)`-th one.
    hints1: U32Words,
    /// Superblock containing the `(k·SELECT_SAMPLE)`-th zero.
    hints0: U32Words,
}

impl RrrVector {
    /// Compresses `bits`.
    pub fn new(bits: &RawBitVec) -> Self {
        let mut b = RrrBuilder::new(bits.len());
        let n_blocks = bits.len().div_ceil(RRR_BLOCK_BITS);
        for i in 0..n_blocks {
            let start = i * RRR_BLOCK_BITS;
            let width = RRR_BLOCK_BITS.min(bits.len() - start);
            b.push_block(bits.get_bits(start, width));
        }
        b.finish()
    }

    /// Builds from an iterator of bits.
    pub fn from_bits<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Self::new(&RawBitVec::from_bits(iter))
    }

    /// The first `count` classes of superblock `sb`, packed LSB-first
    /// 6 bits each (at most `16 × 6 = 96` bits). One word-level load when
    /// `count ≤ 10`, two otherwise.
    #[inline]
    fn sb_classes(&self, sb: usize, count: usize) -> u128 {
        let start = sb * SB_BLOCKS * CLASS_BITS;
        let avail = (count * CLASS_BITS).min(self.classes.len() - start);
        let lo = self.classes.get_bits(start, avail.min(64)) as u128;
        if avail > 64 {
            lo | (self.classes.get_bits(start + 64, (avail - 64).min(32)) as u128) << 64
        } else {
            lo
        }
    }

    /// Decodes the block with class `c` whose offset starts at bit `ptr`.
    #[inline]
    fn decode_block_with(&self, c: u32, ptr: usize) -> u64 {
        let w = OFFSET_WIDTH[c as usize] as usize;
        let off = if w == 0 {
            0
        } else {
            self.offsets.get_bits(ptr, w)
        };
        block_unrank_offset(off, c)
    }

    /// Walks a superblock's packed classes to find
    /// `(rank_before_block, offset_ptr, class)` of `block` — a bounded
    /// ≤ 15-step scan over register-resident classes, no per-block reads.
    #[inline]
    fn locate_block(&self, block: usize) -> (usize, usize, u32) {
        let sb = block / SB_BLOCKS;
        let mut rank = self.sb.rank(sb) as usize;
        let mut ptr = self.sb.ptr(sb) as usize;
        let mut cls = self.sb_classes(sb, block % SB_BLOCKS + 1);
        for _ in sb * SB_BLOCKS..block {
            let c = (cls & 63) as usize;
            cls >>= CLASS_BITS;
            rank += c;
            ptr += OFFSET_WIDTH[c] as usize;
        }
        (rank, ptr, (cls & 63) as u32)
    }

    /// Ones among the low `off` bits of the block with class `c` and offset
    /// pointer `ptr`: runs the combinatorial decode only over positions
    /// `>= off` — the ones not yet placed when the walk reaches `off` are
    /// exactly the ones below it.
    #[inline]
    fn block_rank_low(&self, c: u32, ptr: usize, off: usize) -> usize {
        let w = OFFSET_WIDTH[c as usize] as usize;
        if w == 0 {
            // Class 0 (all zeros) or 63 (all valid bits set).
            return if c == 0 { 0 } else { off };
        }
        if c == 1 {
            return (self.offsets.get_bits(ptr, w) < off as u64) as usize;
        }
        let mut offv = self.offsets.get_bits(ptr, w);
        let mut remaining = c as usize;
        let mut i = RRR_BLOCK_BITS;
        // Branchless walk (see `block_unrank_offset`) with a *fixed* trip
        // count: once `remaining` hits 0 the residual offset is 0 and
        // every further step is a no-op (`0 >= C(i,0) = 1` is false), so
        // dropping the data-dependent exit leaves the loop perfectly
        // predicted.
        while i > off {
            i -= 1;
            let b = BINOM[i][remaining];
            let take = (offv >= b) as u64;
            offv -= b & take.wrapping_neg();
            remaining -= take as usize;
        }
        remaining
    }

    /// Position of the `k`-th (0-based, from the bottom) `bit`-valued entry
    /// of the block with class `c`, offset pointer `ptr` and `valid` data
    /// bits. Runs the combinatorial decode from position `valid` downward
    /// and stops at the target instead of materialising the whole block.
    ///
    /// Requires `k < c` (ones) resp. `k < valid − c` (zeros).
    #[inline]
    fn block_select(&self, c: u32, ptr: usize, bit: bool, k: usize, valid: usize) -> usize {
        let w = OFFSET_WIDTH[c as usize] as usize;
        if w == 0 {
            // Uniform block (all zeros / all ones): the k-th target is k.
            return k;
        }
        if c == 1 {
            // A class-1 offset *is* the position of the block's single one
            // (`C(p, 1) = p`) — the sparse-block hot path.
            let p = self.offsets.get_bits(ptr, w) as usize;
            return if bit {
                p
            } else if k < p {
                k
            } else {
                k + 1
            };
        }
        // All ones sit below `valid`, so the offset is < C(valid, c) and
        // the walk may start there directly.
        let mut offv = self.offsets.get_bits(ptr, w);
        let mut remaining = c as usize;
        let mut i = valid;
        if bit {
            // The k-th one from the bottom is the (c − k)-th produced by
            // the top-down decode. Branchless walk (see
            // `block_unrank_offset`); only the exit test branches.
            let mut to_produce = c as usize - k;
            loop {
                i -= 1;
                let b = BINOM[i][remaining];
                let take = (offv >= b) as u64;
                offv -= b & take.wrapping_neg();
                remaining -= take as usize;
                to_produce -= take as usize;
                if to_produce == 0 {
                    return i;
                }
            }
        } else {
            let mut to_produce = valid - c as usize - k;
            loop {
                i -= 1;
                let b = BINOM[i][remaining];
                let take = ((remaining > 0) & (offv >= b)) as usize;
                offv -= b & (take as u64).wrapping_neg();
                remaining -= take;
                to_produce -= 1 - take;
                if to_produce == 0 {
                    return i;
                }
            }
        }
    }

    /// Hints the CPU towards the directory words a query at bit `i` will
    /// touch first: the superblock entry and the packed class words. The
    /// offset stream is prefetched in a second round once `locate_block`
    /// has resolved the pointer (see the `*_batch` entry points).
    #[inline]
    pub fn prefetch(&self, i: usize) {
        let sb = (i / RRR_BLOCK_BITS) / SB_BLOCKS;
        self.sb.prefetch(sb);
        let class_bit = sb * SB_BLOCKS * CLASS_BITS;
        self.classes.prefetch(class_bit);
        // The 16 packed classes can straddle a second word.
        self.classes.prefetch(class_bit + 64);
    }

    /// Resolves the block directory for bit `i` and prefetches its offset
    /// word plus `spread` lines on either side — the line set a later
    /// `rank1`/`get` near `i` touches.
    ///
    /// Unlike [`RrrVector::prefetch`] this *reads* the superblock and class
    /// words now (stalling if they are cold), so it pays off when those
    /// lines were hinted a round earlier and the probe position is known —
    /// or estimated to within `spread` lines of offset stream — ahead of a
    /// dependent chain.
    #[inline]
    pub fn prefetch_deep(&self, i: usize, spread: usize) {
        if i >= self.len {
            return;
        }
        let (_, ptr, c) = self.locate_block(i / RRR_BLOCK_BITS);
        if OFFSET_WIDTH[c as usize] > 0 {
            self.offsets.prefetch(ptr);
        }
        for k in 1..=spread {
            self.offsets.prefetch(ptr + k * 512);
            self.offsets.prefetch(ptr.saturating_sub(k * 512));
        }
    }

    /// Fused `get(i)` / `rank1(i)`: one block locate and one partial decode
    /// answer both — the access hot path of a Wavelet Trie descent, which
    /// always needs `β[i]` and the rank of that bit together.
    pub fn get_rank1(&self, i: usize) -> (bool, usize) {
        assert!(i < self.len);
        let block = i / RRR_BLOCK_BITS;
        let (rank, ptr, c) = self.locate_block(block);
        self.finish_get_rank1(i % RRR_BLOCK_BITS, rank, ptr, c)
    }

    /// Second half of [`RrrVector::get_rank1`], split from the block locate
    /// so batched queries can interleave the two phases across lanes.
    #[inline]
    fn finish_get_rank1(&self, pos: usize, rank: usize, ptr: usize, c: u32) -> (bool, usize) {
        let w = OFFSET_WIDTH[c as usize] as usize;
        if w == 0 {
            return if c == 0 {
                (false, rank)
            } else {
                (true, rank + pos)
            };
        }
        let mut offv = self.offsets.get_bits(ptr, w);
        if c == 1 {
            let p = offv as usize;
            return (p == pos, rank + (p < pos) as usize);
        }
        let mut remaining = c as usize;
        let mut i = RRR_BLOCK_BITS;
        // Branchless fixed-count walk (see `block_rank_low`).
        while i > pos + 1 {
            i -= 1;
            let b = BINOM[i][remaining];
            let take = (offv >= b) as u64;
            offv -= b & take.wrapping_neg();
            remaining -= take as usize;
        }
        // With `remaining == 0` the residual offset is 0 and
        // `C(pos, 0) = 1`, so `bit` correctly resolves to false.
        let bit = offv >= BINOM[pos][remaining];
        (bit, rank + remaining - bit as usize)
    }

    fn n_blocks(&self) -> usize {
        self.len.div_ceil(RRR_BLOCK_BITS)
    }

    /// Locates the block of bit `i` and prefetches its offset word — the
    /// shared middle phase of every batched query.
    #[inline]
    fn locate_prefetch(&self, i: usize) -> (usize, usize, u32) {
        let (rank, ptr, c) = self.locate_block(i / RRR_BLOCK_BITS);
        if OFFSET_WIDTH[c as usize] > 0 {
            self.offsets.prefetch(ptr);
        }
        (rank, ptr, c)
    }

    /// Batched fused `get`/`rank1` over up to arbitrarily many positions.
    ///
    /// Runs in three software-pipelined phases per chunk of lanes:
    /// prefetch every lane's superblock entry and class words, then locate
    /// every block (classes now resident) while prefetching its offset
    /// word, then decode — so the per-lane dependent miss chain
    /// (superblock → classes → offsets) turns into three rounds of
    /// overlapped misses. Results are bit-identical to scalar calls.
    ///
    /// # Panics
    /// If the slices differ in length or any position is `>= len()`.
    pub fn get_rank1_batch(&self, positions: &[usize], out: &mut [(bool, usize)]) {
        assert_eq!(positions.len(), out.len(), "batch length mismatch");
        let mut loc = [(0usize, 0usize, 0u32); BATCH_LANES];
        for (chunk, outs) in positions
            .chunks(BATCH_LANES)
            .zip(out.chunks_mut(BATCH_LANES))
        {
            for &i in chunk {
                assert!(i < self.len);
                self.prefetch(i);
            }
            for (l, &i) in loc.iter_mut().zip(chunk) {
                *l = self.locate_prefetch(i);
            }
            for ((o, &i), &(rank, ptr, c)) in outs.iter_mut().zip(chunk).zip(&loc) {
                *o = self.finish_get_rank1(i % RRR_BLOCK_BITS, rank, ptr, c);
            }
        }
    }

    /// Batched [`BitRank::rank1`] with the same pipeline as
    /// [`RrrVector::get_rank1_batch`]. Positions may equal `len()`.
    pub fn rank1_batch(&self, positions: &[usize], out: &mut [usize]) {
        assert_eq!(positions.len(), out.len(), "batch length mismatch");
        let mut loc = [(0usize, 0usize, 0u32); BATCH_LANES];
        for (chunk, outs) in positions
            .chunks(BATCH_LANES)
            .zip(out.chunks_mut(BATCH_LANES))
        {
            for &i in chunk {
                assert!(i <= self.len);
                if i < self.len {
                    self.prefetch(i);
                }
            }
            for (l, &i) in loc.iter_mut().zip(chunk) {
                if i < self.len {
                    *l = self.locate_prefetch(i);
                }
            }
            for ((o, &i), &(rank, ptr, c)) in outs.iter_mut().zip(chunk).zip(&loc) {
                *o = if i == self.len {
                    self.ones
                } else {
                    let off = i % RRR_BLOCK_BITS;
                    if off == 0 {
                        rank
                    } else {
                        rank + self.block_rank_low(c, ptr, off)
                    }
                };
            }
        }
    }

    /// Batched [`BitAccess::get`] with the same pipeline as
    /// [`RrrVector::get_rank1_batch`].
    pub fn get_batch(&self, positions: &[usize], out: &mut [bool]) {
        assert_eq!(positions.len(), out.len(), "batch length mismatch");
        let mut loc = [(0usize, 0usize, 0u32); BATCH_LANES];
        for (chunk, outs) in positions
            .chunks(BATCH_LANES)
            .zip(out.chunks_mut(BATCH_LANES))
        {
            for &i in chunk {
                assert!(i < self.len);
                self.prefetch(i);
            }
            for (l, &i) in loc.iter_mut().zip(chunk) {
                *l = self.locate_prefetch(i);
            }
            for ((o, &i), &(rank, ptr, c)) in outs.iter_mut().zip(chunk).zip(&loc) {
                *o = self.finish_get_rank1(i % RRR_BLOCK_BITS, rank, ptr, c).0;
            }
        }
    }

    #[inline]
    fn zeros_before_sb(&self, sb: usize) -> usize {
        (sb * SB_BLOCKS * RRR_BLOCK_BITS).min(self.len) - self.sb.rank(sb) as usize
    }

    fn select_generic(&self, bit: bool, k: usize) -> Option<usize> {
        let total = if bit { self.ones } else { self.len - self.ones };
        if k >= total {
            return None;
        }
        let count_before = |sb: usize| {
            if bit {
                self.sb.rank(sb) as usize
            } else {
                self.zeros_before_sb(sb)
            }
        };
        // The sampled hints pin the k-th target bit between two known
        // superblocks; the remaining binary search spans only the few
        // superblocks one sample interval covers. Small vectors carry no
        // hints and binary-search their handful of superblocks directly.
        let hints = if bit { &self.hints1 } else { &self.hints0 };
        let (lo_sb, hi_sb) = if hints.is_empty() {
            (0, self.sb.len() - 1)
        } else {
            let sample = k / SELECT_SAMPLE;
            let lo = hints.get(sample) as usize;
            let hi = hints
                .get_opt(sample + 1)
                .map(|s| s as usize + 1)
                .unwrap_or(self.sb.len() - 1);
            (lo, hi)
        };
        let sb = select_block(lo_sb, hi_sb, k, count_before);
        let mut remaining = k - count_before(sb);
        let mut ptr = self.sb.ptr(sb) as usize;
        let mut cls = self.sb_classes(sb, SB_BLOCKS);
        // The directory guarantees the hit inside `sb`, so the walk is
        // bounded to one superblock even when `sb` is the last one.
        let sb_end = ((sb + 1) * SB_BLOCKS).min(self.n_blocks());
        for b in sb * SB_BLOCKS..sb_end {
            let c = (cls & 63) as usize;
            cls >>= CLASS_BITS;
            let block_start = b * RRR_BLOCK_BITS;
            let valid = RRR_BLOCK_BITS.min(self.len - block_start);
            let in_block = if bit { c } else { valid - c };
            if remaining < in_block {
                return Some(block_start + self.block_select(c as u32, ptr, bit, remaining, valid));
            }
            remaining -= in_block;
            ptr += OFFSET_WIDTH[c] as usize;
        }
        unreachable!("select directory inconsistent");
    }

    /// Compresses `bits` with the block encoding spread over `threads`
    /// scoped worker threads (1 ⇒ the serial [`RrrVector::new`]).
    ///
    /// Chunks are aligned to superblock boundaries, so the spliced class /
    /// offset streams and directory are **bit-identical** to the serial
    /// construction. This is the heavy phase of the static Wavelet Trie's
    /// `assemble`, which hands it every node bitvector concatenated.
    pub fn from_raw_with_threads(bits: &RawBitVec, threads: usize) -> Self {
        let n_blocks = bits.len().div_ceil(RRR_BLOCK_BITS);
        let threads = threads.max(1);
        if threads == 1 || n_blocks < 8 * SB_BLOCKS {
            return Self::new(bits);
        }
        struct Enc {
            classes: RawBitVec,
            offsets: RawBitVec,
            ones: u64,
            sb_rank: Vec<u64>,
            sb_ptr: Vec<u64>,
        }
        let sb_count = n_blocks.div_ceil(SB_BLOCKS);
        // A few chunks per worker so uneven densities still balance.
        let chunk_blocks = sb_count.div_ceil(threads * 4).max(1) * SB_BLOCKS;
        let n_chunks = n_blocks.div_ceil(chunk_blocks);
        let encode_chunk = |ci: usize| -> Enc {
            let b0 = ci * chunk_blocks;
            let b1 = ((ci + 1) * chunk_blocks).min(n_blocks);
            let mut classes = RawBitVec::with_capacity((b1 - b0) * CLASS_BITS);
            let mut offsets = RawBitVec::new();
            let mut ones = 0u64;
            let mut sb_rank = Vec::with_capacity((b1 - b0).div_ceil(SB_BLOCKS));
            let mut sb_ptr = Vec::with_capacity(sb_rank.capacity());
            for b in b0..b1 {
                if (b - b0).is_multiple_of(SB_BLOCKS) {
                    sb_rank.push(ones);
                    sb_ptr.push(offsets.len() as u64);
                }
                let start = b * RRR_BLOCK_BITS;
                let width = RRR_BLOCK_BITS.min(bits.len() - start);
                let word = bits.get_bits(start, width);
                let c = word.count_ones();
                classes.push_bits(c as u64, CLASS_BITS);
                let w = OFFSET_WIDTH[c as usize] as usize;
                if w > 0 {
                    offsets.push_bits(block_rank_offset(word, c), w);
                }
                ones += c as u64;
            }
            Enc {
                classes,
                offsets,
                ones,
                sb_rank,
                sb_ptr,
            }
        };
        let mut encs: Vec<Option<Enc>> = (0..n_chunks).map(|_| None).collect();
        std::thread::scope(|s| {
            let encode_chunk = &encode_chunk;
            let handles: Vec<_> = (0..threads.min(n_chunks))
                .map(|w| {
                    s.spawn(move || {
                        (w..n_chunks)
                            .step_by(threads)
                            .map(|ci| (ci, encode_chunk(ci)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                for (ci, e) in h.join().expect("RRR encode worker panicked") {
                    encs[ci] = Some(e);
                }
            }
        });
        // Splice the chunk streams; directory entries shift by the running
        // rank / offset-bit totals.
        let mut classes = RawBitVec::with_capacity(n_blocks * CLASS_BITS);
        let mut offsets = RawBitVec::new();
        let mut sb_rank = Vec::with_capacity(sb_count + 1);
        let mut sb_ptr = Vec::with_capacity(sb_count + 1);
        let mut ones = 0u64;
        for e in encs {
            let e = e.expect("all chunks encoded");
            for (&r, &p) in e.sb_rank.iter().zip(&e.sb_ptr) {
                sb_rank.push(ones + r);
                sb_ptr.push(offsets.len() as u64 + p);
            }
            classes.extend_from_range(&e.classes, 0, e.classes.len());
            offsets.extend_from_range(&e.offsets, 0, e.offsets.len());
            ones += e.ones;
        }
        Self::finalize(bits.len(), ones as usize, classes, offsets, sb_rank, sb_ptr)
    }

    /// Seals the streams + directory into a queryable vector: appends the
    /// sentinel superblock and derives the sampled select hints. Shared by
    /// [`RrrBuilder::finish`] and the parallel construction.
    fn finalize(
        target_len: usize,
        ones: usize,
        classes: RawBitVec,
        offsets: RawBitVec,
        mut sb_rank: Vec<u64>,
        mut sb_ptr: Vec<u64>,
    ) -> RrrVector {
        // Sentinel superblock so binary searches have an upper fence.
        sb_rank.push(ones as u64);
        sb_ptr.push(offsets.len() as u64);
        // Sampled select hints: superblock of every SELECT_SAMPLE-th
        // one/zero, derived from the superblock rank directory alone.
        // Vectors spanning only a handful of superblocks skip them — the
        // fallback binary search is already 2–3 probes there, and the many
        // small node bitvectors of a Wavelet Trie then pay no hint memory.
        let mut hints1 = Vec::new();
        let mut hints0 = Vec::new();
        if sb_rank.len() > 5 {
            let total_zeros = target_len - ones;
            let zeros_before = |sb: usize| {
                (sb * SB_BLOCKS * RRR_BLOCK_BITS).min(target_len) - sb_rank[sb] as usize
            };
            hints1.reserve_exact(ones / SELECT_SAMPLE + 1);
            hints0.reserve_exact(total_zeros / SELECT_SAMPLE + 1);
            let mut sb = 0usize;
            for k in (0..ones).step_by(SELECT_SAMPLE) {
                while (sb_rank[sb + 1] as usize) <= k {
                    sb += 1;
                }
                hints1.push(sb as u32);
            }
            let mut sb = 0usize;
            for k in (0..total_zeros).step_by(SELECT_SAMPLE) {
                while zeros_before(sb + 1) <= k {
                    sb += 1;
                }
                hints0.push(sb as u32);
            }
        }
        RrrVector {
            len: target_len,
            ones,
            classes,
            offsets,
            sb: SbDir::from_parts(&sb_rank, &sb_ptr),
            hints1: U32Words::from_vec(hints1),
            hints0: U32Words::from_vec(hints0),
        }
    }

    /// Decompresses the whole vector (tests, iteration).
    pub fn to_raw(&self) -> RawBitVec {
        let mut out = RawBitVec::with_capacity(self.len);
        let mut ptr = 0usize;
        for b in 0..self.n_blocks() {
            let c = self.classes.get_bits(b * CLASS_BITS, CLASS_BITS) as u32;
            let word = self.decode_block_with(c, ptr);
            let valid = RRR_BLOCK_BITS.min(self.len - b * RRR_BLOCK_BITS);
            out.push_bits(word, valid);
            ptr += OFFSET_WIDTH[c as usize] as usize;
        }
        out
    }
}

impl BitAccess for RrrVector {
    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        // locate_block accumulates the rank anyway, so the fused path costs
        // the same and keeps a single partial-decode walk.
        self.get_rank1(i).0
    }
}

impl BitRank for RrrVector {
    fn rank1(&self, i: usize) -> usize {
        assert!(i <= self.len);
        if i == self.len {
            return self.ones;
        }
        let block = i / RRR_BLOCK_BITS;
        let (rank, ptr, c) = self.locate_block(block);
        let off = i % RRR_BLOCK_BITS;
        if off == 0 {
            return rank;
        }
        rank + self.block_rank_low(c, ptr, off)
    }

    #[inline]
    fn count_ones(&self) -> usize {
        self.ones
    }
}

impl BitSelect for RrrVector {
    #[inline]
    fn select1(&self, k: usize) -> Option<usize> {
        self.select_generic(true, k)
    }

    #[inline]
    fn select0(&self, k: usize) -> Option<usize> {
        self.select_generic(false, k)
    }
}

impl SpaceUsage for RrrVector {
    fn size_bits(&self) -> usize {
        self.classes.size_bits()
            + self.offsets.size_bits()
            + self.sb.words.size_bits()
            + self.hints1.size_bits()
            + self.hints0.size_bits()
            + 2 * 64
    }
}

impl Persist for RrrVector {
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(self.len as u64);
        out.push(self.ones as u64);
        self.classes.encode(out);
        self.offsets.encode(out);
        self.sb.words.encode(out);
        self.hints1.encode(out);
        self.hints0.encode(out);
    }

    fn decode(r: &mut WordsReader) -> Result<Self, LoadError> {
        let len = r.read_len()?;
        let ones = r.read_len()?;
        let classes = RawBitVec::decode(r)?;
        let offsets = RawBitVec::decode(r)?;
        let sb = SbDir {
            words: Words::decode(r)?,
        };
        let hints1 = U32Words::decode(r)?;
        let hints0 = U32Words::decode(r)?;
        // Directory-level invariants (no block is decoded here).
        let n_blocks = len.div_ceil(RRR_BLOCK_BITS);
        let n_sb = n_blocks.div_ceil(SB_BLOCKS);
        if ones > len || classes.len() != n_blocks * CLASS_BITS {
            return Err(LoadError::Invalid("rrr class stream length"));
        }
        if !sb.words.len().is_multiple_of(2) || sb.len() != n_sb + 1 {
            return Err(LoadError::Invalid("rrr superblock directory length"));
        }
        if sb.rank(n_sb) != ones as u64 || sb.ptr(n_sb) != offsets.len() as u64 || sb.rank(0) != 0 {
            return Err(LoadError::Invalid("rrr superblock sentinel"));
        }
        for i in 0..n_sb {
            if sb.rank(i + 1) < sb.rank(i)
                || sb.rank(i + 1) - sb.rank(i) > (SB_BLOCKS * RRR_BLOCK_BITS) as u64
                || sb.ptr(i + 1) < sb.ptr(i)
            {
                return Err(LoadError::Invalid("rrr superblock directory not monotone"));
            }
        }
        // Hints exist exactly when finalize would derive them.
        let zeros = len - ones;
        if sb.len() > 5 {
            if hints1.len() != ones.div_ceil(SELECT_SAMPLE)
                || hints0.len() != zeros.div_ceil(SELECT_SAMPLE)
            {
                return Err(LoadError::Invalid("rrr hint length"));
            }
        } else if !hints1.is_empty() || !hints0.is_empty() {
            return Err(LoadError::Invalid("rrr unexpected hints"));
        }
        for hints in [&hints1, &hints0] {
            for k in 0..hints.len() {
                let s = hints.get(k) as usize;
                if s > n_sb || (k > 0 && s < hints.get(k - 1) as usize) {
                    return Err(LoadError::Invalid("rrr hint out of range"));
                }
            }
        }
        Ok(RrrVector {
            len,
            ones,
            classes,
            offsets,
            sb,
            hints1,
            hints0,
        })
    }
}

/// Incremental RRR construction, one 63-bit block at a time.
///
/// This is the "decomposable" construction property Theorem 4.5 requires:
/// the append-only bitvector (§4.1) spreads this work over subsequent
/// appends to de-amortize block sealing.
#[derive(Clone, Debug)]
pub struct RrrBuilder {
    len: usize,
    target_len: usize,
    ones: usize,
    classes: RawBitVec,
    offsets: RawBitVec,
    sb_rank: Vec<u64>,
    sb_ptr: Vec<u64>,
    blocks_pushed: usize,
}

impl RrrBuilder {
    /// Starts building a vector that will hold exactly `target_len` bits.
    pub fn new(target_len: usize) -> Self {
        let n_blocks = target_len.div_ceil(RRR_BLOCK_BITS);
        RrrBuilder {
            len: 0,
            target_len,
            ones: 0,
            classes: RawBitVec::with_capacity(n_blocks * CLASS_BITS),
            offsets: RawBitVec::new(),
            sb_rank: Vec::with_capacity(n_blocks / SB_BLOCKS + 2),
            sb_ptr: Vec::with_capacity(n_blocks / SB_BLOCKS + 2),
            blocks_pushed: 0,
        }
    }

    /// Number of blocks the finished vector will have.
    pub fn total_blocks(&self) -> usize {
        self.target_len.div_ceil(RRR_BLOCK_BITS)
    }

    /// Number of blocks already pushed.
    pub fn blocks_pushed(&self) -> usize {
        self.blocks_pushed
    }

    /// Whether all blocks have been pushed.
    pub fn is_complete(&self) -> bool {
        self.blocks_pushed == self.total_blocks()
    }

    /// Pushes the next 63-bit block (the final block may be partial; its
    /// upper padding bits must be zero).
    pub fn push_block(&mut self, word: u64) {
        debug_assert!(
            !self.is_complete(),
            "pushed more blocks than target_len holds"
        );
        debug_assert_eq!(word >> 63, 0);
        if self.blocks_pushed.is_multiple_of(SB_BLOCKS) {
            self.sb_rank.push(self.ones as u64);
            self.sb_ptr.push(self.offsets.len() as u64);
        }
        let c = word.count_ones();
        self.classes.push_bits(c as u64, CLASS_BITS);
        let w = OFFSET_WIDTH[c as usize] as usize;
        if w > 0 {
            self.offsets.push_bits(block_rank_offset(word, c), w);
        }
        self.ones += c as usize;
        self.blocks_pushed += 1;
        self.len = (self.blocks_pushed * RRR_BLOCK_BITS).min(self.target_len);
    }

    /// Finalizes the vector.
    ///
    /// # Panics
    /// If fewer blocks than promised were pushed.
    pub fn finish(self) -> RrrVector {
        assert!(self.is_complete(), "RrrBuilder: missing blocks");
        RrrVector::finalize(
            self.target_len,
            self.ones,
            self.classes,
            self.offsets,
            self.sb_rank,
            self.sb_ptr,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binom_table_sane() {
        assert_eq!(BINOM[0][0], 1);
        assert_eq!(BINOM[4][2], 6);
        assert_eq!(BINOM[63][0], 1);
        assert_eq!(BINOM[63][63], 1);
        assert_eq!(BINOM[63][1], 63);
        // C(63,31) known value
        assert_eq!(BINOM[63][31], 916312070471295267);
    }

    #[test]
    fn offset_width_sane() {
        assert_eq!(OFFSET_WIDTH[0], 0);
        assert_eq!(OFFSET_WIDTH[63], 0);
        assert_eq!(OFFSET_WIDTH[1], 6); // C(63,1)=63 -> 6 bits
        assert!(OFFSET_WIDTH[31] <= 60);
    }

    #[test]
    fn block_rank_unrank_roundtrip() {
        let mut s = 0xDEAD_BEEF_1234_5678u64;
        for _ in 0..5000 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let word = s >> 1; // 63 bits
            let c = word.count_ones();
            let off = block_rank_offset(word, c);
            if OFFSET_WIDTH[c as usize] < 64 {
                assert!(off < (1u64 << OFFSET_WIDTH[c as usize]).max(1));
            }
            assert_eq!(block_unrank_offset(off, c), word);
        }
        // extremes
        assert_eq!(block_unrank_offset(block_rank_offset(0, 0), 0), 0);
        let full = (1u64 << 63) - 1;
        assert_eq!(block_unrank_offset(block_rank_offset(full, 63), 63), full);
    }

    #[test]
    fn offsets_are_dense() {
        // offsets enumerate words of a class contiguously from 0
        for c in [1u32, 2, 62] {
            // smallest word of class c: low c bits set -> offset 0
            let lowest = (1u64 << c) - 1;
            assert_eq!(block_rank_offset(lowest, c), 0);
            // largest word: high c bits of the 63 -> offset C(63,c)-1
            let highest = ((1u64 << c) - 1) << (63 - c);
            assert_eq!(block_rank_offset(highest, c), BINOM[63][c as usize] - 1);
        }
    }

    fn check(bits: &RawBitVec) {
        let rrr = RrrVector::new(bits);
        assert_eq!(rrr.len(), bits.len());
        assert_eq!(rrr.to_raw(), *bits, "roundtrip");
        assert_eq!(rrr.count_ones(), bits.count_ones());
        let step = (bits.len() / 200).max(1);
        for i in (0..=bits.len()).step_by(step) {
            assert_eq!(rrr.rank1(i), bits.rank1_scan(i), "rank1({i})");
        }
        for i in (0..bits.len()).step_by(step) {
            assert_eq!(rrr.get(i), bits.get(i), "get({i})");
            assert_eq!(
                rrr.get_rank1(i),
                (bits.get(i), bits.rank1_scan(i)),
                "get_rank1({i})"
            );
        }
        let ones = bits.count_ones();
        for k in (0..ones).step_by((ones / 200).max(1)) {
            assert_eq!(rrr.select1(k), bits.select1_scan(k), "select1({k})");
        }
        assert_eq!(rrr.select1(ones), None);
        let zeros = bits.len() - ones;
        for k in (0..zeros).step_by((zeros / 200).max(1)) {
            assert_eq!(rrr.select0(k), bits.select0_scan(k), "select0({k})");
        }
        assert_eq!(rrr.select0(zeros), None);
    }

    #[test]
    fn empty_and_tiny() {
        check(&RawBitVec::new());
        check(&RawBitVec::from_bit_str("1"));
        check(&RawBitVec::from_bit_str("0"));
        check(&RawBitVec::from_bit_str("0010101"));
    }

    #[test]
    fn block_boundaries() {
        for n in [62usize, 63, 64, 125, 126, 127, 2015, 2016, 2017] {
            check(&RawBitVec::from_bits((0..n).map(|i| i % 3 == 0)));
            check(&RawBitVec::filled(true, n));
            check(&RawBitVec::filled(false, n));
        }
    }

    #[test]
    fn pseudorandom_densities() {
        let mut s = 777u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for &density in &[2u64, 10, 100, 1000] {
            let bits = RawBitVec::from_bits((0..40_000).map(|_| next() % density == 0));
            check(&bits);
        }
    }

    #[test]
    fn compresses_sparse_input() {
        // 1% density over 100k bits: entropy ~ 0.081 bits/bit.
        let bits = RawBitVec::from_bits((0..100_000).map(|i| i % 100 == 0));
        let rrr = RrrVector::new(&bits);
        let h0 = crate::entropy::bitvec_h0_bits(bits.count_ones(), bits.len());
        let used = rrr.size_bits() as f64;
        // within entropy + directory overhead (classes 6/63 ≈ 9.5% +
        // superblock directories 128/(16·63) ≈ 12.7%)
        assert!(
            used < h0 + 0.24 * bits.len() as f64 + 1024.0,
            "RRR too large: {used} bits vs nH0 = {h0}"
        );
        assert!(used < bits.len() as f64, "should beat plain storage");
    }

    #[test]
    fn batch_entry_points_match_scalar() {
        let mut s = 0xABCD_1234u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for &density in &[2u64, 50, 700] {
            let bits = RawBitVec::from_bits((0..30_000).map(|_| next() % density == 0));
            let rrr = RrrVector::new(&bits);
            // Random positions including block/superblock edges and len.
            let mut pos: Vec<usize> = (0..333).map(|_| (next() % 30_000) as usize).collect();
            pos.extend([0, 62, 63, 64, 1007, 1008, 29_999]);
            let mut ranks = vec![0usize; pos.len()];
            let mut with_len = pos.clone();
            with_len.push(30_000);
            let mut ranks_len = vec![0usize; with_len.len()];
            let mut gets = vec![false; pos.len()];
            let mut grs = vec![(false, 0usize); pos.len()];
            rrr.rank1_batch(&with_len, &mut ranks_len);
            rrr.rank1_batch(&pos, &mut ranks);
            rrr.get_batch(&pos, &mut gets);
            rrr.get_rank1_batch(&pos, &mut grs);
            for (k, &i) in pos.iter().enumerate() {
                assert_eq!(ranks[k], rrr.rank1(i), "rank1_batch({i})");
                assert_eq!(gets[k], rrr.get(i), "get_batch({i})");
                assert_eq!(grs[k], rrr.get_rank1(i), "get_rank1_batch({i})");
            }
            assert_eq!(*ranks_len.last().unwrap(), rrr.count_ones());
            // Empty and singleton batches.
            rrr.rank1_batch(&[], &mut []);
            let mut one = [0usize];
            rrr.rank1_batch(&[17], &mut one);
            assert_eq!(one[0], rrr.rank1(17));
        }
    }

    #[test]
    fn parallel_encode_matches_serial() {
        let mut s = 99u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for n in [0usize, 63, 1008, 16_128, 16_129, 100_000] {
            let bits = RawBitVec::from_bits((0..n).map(|_| next() % 5 == 0));
            let serial = RrrVector::new(&bits);
            for threads in [1usize, 2, 4] {
                let par = RrrVector::from_raw_with_threads(&bits, threads);
                assert_eq!(par.len(), serial.len());
                assert_eq!(par.count_ones(), serial.count_ones());
                assert_eq!(par.to_raw(), serial.to_raw(), "n={n} threads={threads}");
                let step = (n / 97).max(1);
                for i in (0..=n).step_by(step) {
                    assert_eq!(par.rank1(i), serial.rank1(i), "rank1({i})");
                }
                for k in (0..par.count_ones()).step_by(step) {
                    assert_eq!(par.select1(k), serial.select1(k), "select1({k})");
                }
            }
        }
    }

    #[test]
    fn incremental_builder_matches_batch() {
        let bits = RawBitVec::from_bits((0..10_000).map(|i| i % 7 == 0));
        let batch = RrrVector::new(&bits);
        let mut b = RrrBuilder::new(bits.len());
        let mut i = 0;
        while !b.is_complete() {
            let width = RRR_BLOCK_BITS.min(bits.len() - i);
            b.push_block(bits.get_bits(i, width));
            i += width;
        }
        let inc = b.finish();
        assert_eq!(inc.to_raw(), batch.to_raw());
        assert_eq!(inc.rank1(5000), batch.rank1(5000));
    }
}
