//! Information-theoretic quantities from §2 of the paper.
//!
//! Provides the zero-order empirical entropy `H0`, the binomial bound
//! `B(m, n) = ⌈log₂ C(n, m)⌉`, and the [`SpaceUsage`] trait every structure
//! implements so the space experiments (E4, E5, E6 in EXPERIMENTS.md) can
//! compare measured bits against these lower bounds.

/// Binary entropy `H(p) = -p·log₂p - (1-p)·log₂(1-p)` in bits; 0 at p ∈ {0,1}.
pub fn binary_entropy(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        return 0.0;
    }
    -(p * p.log2()) - ((1.0 - p) * (1.0 - p).log2())
}

/// `n·H0` in bits for a bitvector with `m` ones out of `n` bits.
pub fn bitvec_h0_bits(m: usize, n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    n as f64 * binary_entropy(m as f64 / n as f64)
}

/// Zero-order empirical entropy `H0(s)` in bits **per symbol** for the
/// given symbol frequency counts (zero counts are ignored).
pub fn h0_per_symbol(counts: &[usize]) -> f64 {
    let n: usize = counts.iter().sum();
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Total zero-order entropy `n·H0(s)` in bits for symbol frequency counts.
pub fn h0_total_bits(counts: &[usize]) -> f64 {
    let n: usize = counts.iter().sum();
    h0_per_symbol(counts) * n as f64
}

/// `log₂ C(n, m)` computed exactly enough for reporting, in O(min(m, n-m)).
///
/// `B(m, n) = ⌈log₂ C(n, m)⌉` is the information-theoretic lower bound for a
/// set of `m` elements out of `n` (§2). We return the real-valued log so the
/// experiments can report fractional bits-per-element.
pub fn log2_binomial(n: usize, m: usize) -> f64 {
    if m > n {
        return f64::NEG_INFINITY;
    }
    let m = m.min(n - m);
    let mut acc = 0.0f64;
    for i in 0..m {
        acc += ((n - i) as f64).log2() - ((m - i) as f64).log2();
    }
    acc
}

/// `B(m, n) = ⌈log₂ C(n, m)⌉` in bits.
pub fn binomial_bound_bits(n: usize, m: usize) -> f64 {
    log2_binomial(n, m).max(0.0).ceil()
}

/// Structures report their total memory footprint in bits through this
/// trait; used by every space experiment.
pub trait SpaceUsage {
    /// Total size in bits, including every auxiliary directory, counting
    /// heap capacity (what the process actually pays for).
    fn size_bits(&self) -> usize;

    /// Convenience: size in bytes.
    fn size_bytes(&self) -> usize {
        self.size_bits().div_ceil(8)
    }
}

impl SpaceUsage for crate::RawBitVec {
    fn size_bits(&self) -> usize {
        RawBitVec::size_bits(self)
    }
}

use crate::RawBitVec;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_extremes() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_symmetric() {
        for &p in &[0.1, 0.25, 0.33] {
            assert!((binary_entropy(p) - binary_entropy(1.0 - p)).abs() < 1e-12);
        }
    }

    #[test]
    fn h0_uniform_is_log_sigma() {
        let counts = [10usize; 8];
        assert!((h0_per_symbol(&counts) - 3.0).abs() < 1e-12);
        assert!((h0_total_bits(&counts) - 240.0).abs() < 1e-9);
    }

    #[test]
    fn h0_single_symbol_is_zero() {
        assert_eq!(h0_per_symbol(&[42]), 0.0);
        assert_eq!(h0_per_symbol(&[]), 0.0);
    }

    #[test]
    fn log2_binomial_small_cases() {
        // C(4,2) = 6
        assert!((log2_binomial(4, 2) - 6f64.log2()).abs() < 1e-9);
        // C(10,0) = 1
        assert_eq!(log2_binomial(10, 0), 0.0);
        // C(10,10) = 1
        assert_eq!(log2_binomial(10, 10), 0.0);
        // C(63,31) against an exact u64 value
        let exact = {
            let mut c: u128 = 1;
            for i in 0..31u128 {
                c = c * (63 - i) / (i + 1);
            }
            c as f64
        };
        assert!((log2_binomial(63, 31) - exact.log2()).abs() < 1e-6);
    }

    #[test]
    fn binomial_bound_close_to_nh() {
        // B(m,n) <= nH(m/n) + O(1)  (§2)
        let (n, m) = (10_000usize, 1234usize);
        let b = binomial_bound_bits(n, m);
        let nh = bitvec_h0_bits(m, n);
        assert!(b <= nh + 10.0, "B={b} nH0={nh}");
        assert!(b >= nh - 0.5 * (n as f64).log2() - 10.0);
    }
}
