//! Word-packed growable bit array.
//!
//! [`RawBitVec`] is the storage layer every other structure in this crate is
//! built on: flat `u64` words with bit-granular addressing. Bit `i` lives
//! in word `i / 64` at bit `i % 64` (LSB-first within a word), the standard
//! layout for succinct data structures. Storage is a [`Words`] arena slot:
//! owned when built incrementally, a borrowed view when loaded zero-copy
//! from an archive (mutation copies the view out first).

use crate::persist::{LoadError, Persist, WordsReader};
use crate::words::Words;

/// A growable, word-packed bit vector with no indexing structures.
///
/// This is the "binary representation" of §2 of the paper: just the bits.
/// Rank/Select support is layered on top by [`crate::Fid`],
/// [`crate::RrrVector`], and friends.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct RawBitVec {
    words: Words,
    len: usize,
}

impl RawBitVec {
    /// Creates an empty bit vector.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty bit vector with room for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            words: Words::with_capacity(bits.div_ceil(64)),
            len: 0,
        }
    }

    /// Creates a bit vector of `len` copies of `bit`.
    pub fn filled(bit: bool, len: usize) -> Self {
        let fill = if bit { !0u64 } else { 0u64 };
        let mut words = vec![fill; len.div_ceil(64)];
        if bit {
            Self::mask_tail(&mut words, len);
        }
        Self {
            words: words.into(),
            len,
        }
    }

    /// Builds from an iterator of bits.
    pub fn from_bits<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut bv = Self::new();
        for b in iter {
            bv.push(b);
        }
        bv
    }

    /// Builds from a `0`/`1` ASCII string; any other character panics.
    ///
    /// Handy for tests and for transcribing the paper's figures.
    pub fn from_bit_str(s: &str) -> Self {
        Self::from_bits(s.chars().map(|c| match c {
            '0' => false,
            '1' => true,
            _ => panic!("invalid bit character {c:?}"),
        }))
    }

    fn mask_tail(words: &mut [u64], len: usize) {
        let r = len % 64;
        if r != 0 {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << r) - 1;
            }
        }
    }

    /// Number of bits stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds no bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    /// If `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of bounds (len {})",
            self.len
        );
        unsafe { self.get_unchecked(i) }
    }

    /// Returns bit `i` without a bounds check.
    ///
    /// # Safety
    /// `i` must be `< len()`.
    #[inline]
    pub unsafe fn get_unchecked(&self, i: usize) -> bool {
        (self.words.get_unchecked(i / 64) >> (i % 64)) & 1 != 0
    }

    /// Sets bit `i` to `bit`.
    ///
    /// # Panics
    /// If `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize, bit: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of bounds (len {})",
            self.len
        );
        let w = &mut self.words.make_mut()[i / 64];
        let mask = 1u64 << (i % 64);
        if bit {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Appends a bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        let w = self.len / 64;
        let off = self.len % 64;
        let words = self.words.make_mut();
        if w == words.len() {
            words.push(0);
        }
        if bit {
            words[w] |= 1u64 << off;
        }
        self.len += 1;
    }

    /// Reads `width <= 64` bits starting at bit `i`, returned LSB-first
    /// (bit `i` is bit 0 of the result).
    pub fn get_bits(&self, i: usize, width: usize) -> u64 {
        debug_assert!(width <= 64);
        assert!(
            i + width <= self.len,
            "bit range {i}..{} out of bounds (len {})",
            i + width,
            self.len
        );
        if width == 0 {
            return 0;
        }
        let w = i / 64;
        let off = i % 64;
        let lo = self.words[w] >> off;
        let got = 64 - off;
        let val = if width > got {
            lo | (self.words[w + 1] << got)
        } else {
            lo
        };
        if width == 64 {
            val
        } else {
            val & ((1u64 << width) - 1)
        }
    }

    /// Appends the `width <= 64` low bits of `value`, LSB-first.
    pub fn push_bits(&mut self, value: u64, width: usize) {
        debug_assert!(width <= 64);
        debug_assert!(width == 64 || value < (1u64 << width));
        if width == 0 {
            return;
        }
        let off = self.len % 64;
        let words = self.words.make_mut();
        if off == 0 {
            words.push(value);
        } else {
            let w = words.len() - 1;
            words[w] |= value << off;
            let got = 64 - off;
            if width > got {
                words.push(value >> got);
            }
        }
        self.len += width;
        // Clear any garbage bits beyond len introduced by the shifted store.
        let full = self.len.div_ceil(64);
        words.truncate(full);
        Self::mask_tail(words, self.len);
    }

    /// Appends `n` copies of `bit`, one word at a time.
    pub fn push_run(&mut self, bit: bool, n: usize) {
        let word = if bit { !0u64 } else { 0u64 };
        let mut rem = n;
        while rem > 0 {
            let w = rem.min(64);
            let v = if w == 64 {
                word
            } else {
                word & ((1u64 << w) - 1)
            };
            self.push_bits(v, w);
            rem -= w;
        }
    }

    /// Appends `other[start..start+len]` to `self`.
    pub fn extend_from_range(&mut self, other: &RawBitVec, start: usize, len: usize) {
        assert!(start + len <= other.len);
        let mut i = start;
        let end = start + len;
        while i < end {
            let take = (end - i).min(64);
            let chunk = other.get_bits(i, take);
            self.push_bits(chunk, take);
            i += take;
        }
    }

    /// Truncates to the first `len` bits.
    pub fn truncate(&mut self, len: usize) {
        if len >= self.len {
            return;
        }
        self.len = len;
        let words = self.words.make_mut();
        words.truncate(len.div_ceil(64));
        Self::mask_tail(words, len);
    }

    /// Drops excess word capacity (used when sealing/flushing an encoding
    /// so long-lived vectors carry no growth slack).
    pub fn shrink_to_fit(&mut self) {
        if let Words::Owned(v) = &mut self.words {
            v.shrink_to_fit();
        }
    }

    /// Removes all bits.
    pub fn clear(&mut self) {
        self.words.make_mut().clear();
        self.len = 0;
    }

    /// Total number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of set bits in `[0, i)` by scanning; O(i/64).
    ///
    /// Indexed structures ([`crate::Fid`]) answer this in O(1); this scanning
    /// version is used by small tails and by tests.
    pub fn rank1_scan(&self, i: usize) -> usize {
        assert!(i <= self.len);
        let w = i / 64;
        let mut r = 0usize;
        for &word in &self.words[..w] {
            r += word.count_ones() as usize;
        }
        let off = i % 64;
        if off != 0 {
            r += (self.words[w] & ((1u64 << off) - 1)).count_ones() as usize;
        }
        r
    }

    /// Position of the `k`-th (0-based) set bit by scanning, if any.
    pub fn select1_scan(&self, k: usize) -> Option<usize> {
        let mut remaining = k;
        for (wi, &word) in self.words.iter().enumerate() {
            let c = word.count_ones() as usize;
            if remaining < c {
                let pos =
                    wi * 64 + crate::broadword::select_in_word(word, remaining as u32) as usize;
                return (pos < self.len).then_some(pos);
            }
            remaining -= c;
        }
        None
    }

    /// Position of the `k`-th (0-based) zero bit by scanning, if any.
    pub fn select0_scan(&self, k: usize) -> Option<usize> {
        let mut remaining = k;
        for (wi, &word) in self.words.iter().enumerate() {
            let inv = !word;
            let c = inv.count_ones() as usize;
            if remaining < c {
                let pos =
                    wi * 64 + crate::broadword::select_in_word(inv, remaining as u32) as usize;
                return (pos < self.len).then_some(pos);
            }
            remaining -= c;
        }
        None
    }

    /// The backing words; the final partial word is zero-padded.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Word `i` of the backing storage, or 0 past the end.
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        self.words.get(i).copied().unwrap_or(0)
    }

    /// Hints the CPU to load the word holding bit `i` (no-op past the end).
    #[inline]
    pub fn prefetch(&self, i: usize) {
        crate::broadword::prefetch_read(self.words.as_ptr().wrapping_add(i / 64));
    }

    /// Iterates over all bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| unsafe { self.get_unchecked(i) })
    }

    /// The storage slot: owned words, or a view into a loaded archive.
    #[inline]
    pub fn storage(&self) -> &Words {
        &self.words
    }

    /// Heap + inline size in bits (for the space experiments). A loaded
    /// (view-backed) vector counts its span of the shared archive buffer.
    pub fn size_bits(&self) -> usize {
        self.words.size_bits() + 2 * 64
    }
}

impl Persist for RawBitVec {
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(self.len as u64);
        out.extend_from_slice(&self.words);
    }

    fn decode(r: &mut WordsReader) -> Result<Self, LoadError> {
        let len = r.read_len()?;
        let words = r.view(len.div_ceil(64))?;
        // Invariant the mutators maintain: padding past `len` is zero.
        // Checking it here keeps loaded vectors byte-stable on re-save and
        // keeps count_ones/word-level scans honest.
        let tail = len % 64;
        if tail != 0 && words[words.len() - 1] >> tail != 0 {
            return Err(LoadError::Invalid("nonzero bitvector tail padding"));
        }
        Ok(RawBitVec { words, len })
    }
}

impl std::fmt::Debug for RawBitVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RawBitVec[{}; ", self.len)?;
        for i in 0..self.len.min(256) {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        if self.len > 256 {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<bool> for RawBitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Self::from_bits(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let mut bv = RawBitVec::new();
        let pattern: Vec<bool> = (0..1000).map(|i| i % 3 == 0 || i % 7 == 0).collect();
        for &b in &pattern {
            bv.push(b);
        }
        assert_eq!(bv.len(), 1000);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(bv.get(i), b, "bit {i}");
        }
    }

    #[test]
    fn filled_works() {
        let ones = RawBitVec::filled(true, 130);
        assert_eq!(ones.count_ones(), 130);
        assert!(ones.get(129));
        let zeros = RawBitVec::filled(false, 130);
        assert_eq!(zeros.count_ones(), 0);
        let empty = RawBitVec::filled(true, 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn set_flips_bits() {
        let mut bv = RawBitVec::filled(false, 100);
        bv.set(3, true);
        bv.set(64, true);
        bv.set(99, true);
        assert_eq!(bv.count_ones(), 3);
        bv.set(64, false);
        assert_eq!(bv.count_ones(), 2);
        assert!(!bv.get(64));
    }

    #[test]
    fn get_bits_across_words() {
        let mut bv = RawBitVec::new();
        for i in 0..128u64 {
            bv.push(i % 2 == 1);
        }
        // bits ...101010 LSB-first => 0b..1010
        assert_eq!(bv.get_bits(0, 4), 0b1010);
        assert_eq!(bv.get_bits(62, 4), 0b1010);
        assert_eq!(bv.get_bits(63, 2), 0b01);
        assert_eq!(bv.get_bits(0, 64), 0xAAAA_AAAA_AAAA_AAAA);
        assert_eq!(bv.get_bits(1, 64), 0x5555_5555_5555_5555);
        assert_eq!(bv.get_bits(5, 0), 0);
    }

    #[test]
    fn push_bits_matches_push() {
        let mut a = RawBitVec::new();
        let mut b = RawBitVec::new();
        let vals = [
            (0b1011u64, 4usize),
            (0, 1),
            (u64::MAX, 64),
            (0b1, 1),
            (0x1234_5678, 33),
        ];
        for &(v, w) in &vals {
            a.push_bits(v, w);
            for i in 0..w {
                b.push((v >> i) & 1 != 0);
            }
        }
        assert_eq!(a, b);
    }

    #[test]
    fn extend_from_range_copies() {
        let src = RawBitVec::from_bit_str("1101001110101010111100001");
        let mut dst = RawBitVec::from_bit_str("01");
        dst.extend_from_range(&src, 3, 17);
        assert_eq!(dst.len(), 19);
        for i in 0..17 {
            assert_eq!(dst.get(2 + i), src.get(3 + i));
        }
    }

    #[test]
    fn truncate_masks_tail() {
        let mut bv = RawBitVec::filled(true, 100);
        bv.truncate(70);
        assert_eq!(bv.len(), 70);
        assert_eq!(bv.count_ones(), 70);
        // pushing after truncation must not resurrect old bits
        bv.push(false);
        assert_eq!(bv.count_ones(), 70);
        assert!(!bv.get(70));
    }

    #[test]
    fn scan_rank_select_agree() {
        let bv = RawBitVec::from_bits((0..500).map(|i| i % 5 == 0));
        for i in 0..=bv.len() {
            let naive = (0..i).filter(|&j| bv.get(j)).count();
            assert_eq!(bv.rank1_scan(i), naive);
        }
        let ones = bv.count_ones();
        for k in 0..ones {
            let p = bv.select1_scan(k).unwrap();
            assert!(bv.get(p));
            assert_eq!(bv.rank1_scan(p), k);
        }
        assert_eq!(bv.select1_scan(ones), None);
        let zeros = bv.len() - ones;
        for k in (0..zeros).step_by(7) {
            let p = bv.select0_scan(k).unwrap();
            assert!(!bv.get(p));
            assert_eq!(p - bv.rank1_scan(p), k);
        }
        assert_eq!(bv.select0_scan(zeros), None);
    }

    #[test]
    fn from_bit_str_parses() {
        let bv = RawBitVec::from_bit_str("0010101");
        assert_eq!(bv.len(), 7);
        assert!(!bv.get(0));
        assert!(bv.get(2));
        assert!(bv.get(6));
    }
}
