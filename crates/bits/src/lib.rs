//! # wt-bits — succinct bitvector substrates for the Wavelet Trie
//!
//! Every bitvector the paper *"The Wavelet Trie: Maintaining an Indexed
//! Sequence of Strings in Compressed Space"* (Grossi & Ottaviano, PODS 2012)
//! relies on, implemented from scratch:
//!
//! * [`RawBitVec`] — plain word-packed bits (the storage layer).
//! * [`Fid`] — uncompressed Fully Indexable Dictionary: O(1) rank,
//!   fast select (§2 "Bitvectors and FIDs").
//! * [`RrrVector`] — the RRR entropy-compressed FID of
//!   Raman–Raman–Rao, `B(m,n) + o(n)` bits (§2).
//! * [`EliasFano`] — monotone sequences / partial sums, used to delimit
//!   labels and node bitvectors in the static Wavelet Trie (§3).
//! * [`codes`] — Elias γ and δ universal codes (§4.2).
//! * [`AppendBitVec`] — the append-only compressed bitvector of §4.1
//!   (Theorem 4.5), with optional de-amortized sealing.
//! * [`OffsetBitVec`] — append-only bitvector with an implicit constant
//!   prefix: the O(1) `Init` of the append-only Wavelet Trie (§4).
//! * [`DynamicBitVec`] — the fully dynamic RLE+γ bitvector of §4.2
//!   (Theorem 4.9) with O(log n) `Insert`/`Delete` and O(1) `Init`.
//! * [`entropy`] — `H0`, `B(m,n)` and the [`SpaceUsage`] trait backing the
//!   space experiments.
//!
//! The traits [`BitAccess`], [`BitRank`], [`BitSelect`] give all of these a
//! common query interface.

pub mod append_only;
pub mod broadword;
pub mod codes;
pub mod dynamic;
pub mod elias_fano;
pub mod entropy;
pub mod fid;
pub mod offset;
pub mod persist;
pub mod raw;
pub mod rrr;
pub mod storage;
pub mod words;

pub use append_only::{AppendBitVec, AppendConfig};
pub use dynamic::DynamicBitVec;
pub use elias_fano::{EfCursor, EliasFano};
pub use entropy::SpaceUsage;
pub use fid::{BitAccess, BitRank, BitSelect, Fid};
pub use offset::OffsetBitVec;
pub use persist::{LoadError, Persist};
pub use raw::RawBitVec;
pub use rrr::{RrrBuilder, RrrVector};
pub use storage::{
    write_atomic, FaultPlan, FaultStorage, FsStorage, MemFs, RetryPolicy, RetryingStorage, Storage,
};
pub use words::{U32Words, Words};
