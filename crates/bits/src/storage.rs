//! Injectable storage backends for the persistence layer.
//!
//! Every I/O operation the workspace performs while saving or loading an
//! archive — reading and writing whole files, renaming, fsyncing files and
//! directories, listing and removing — goes through the [`Storage`] trait,
//! so the same commit protocol runs against the real filesystem
//! ([`FsStorage`]), an in-memory filesystem with crash semantics
//! ([`MemFs`]), or a fault-injecting wrapper ([`FaultStorage`]) that can
//! kill, tear, or transiently fail any individual operation. The
//! crash-point enumeration suite (`tests/crash_points.rs`) drives the
//! whole save path through [`FaultStorage`] over [`MemFs`]: for every
//! operation index *k* it crashes the save at *k*, drops unsynced state,
//! and asserts recovery lands on the old or the new image — never a third
//! state.
//!
//! [`write_atomic`] is the durable single-file primitive built on top:
//! write to a sibling `*.tmp`, fsync, rename over the final name, fsync
//! the directory. A crash at any point leaves either the old file or the
//! new file (plus possibly a stale `*.tmp`, which readers ignore and the
//! store's commit protocol garbage-collects).
//!
//! [`RetryPolicy`] classifies transient I/O errors (`Interrupted`,
//! `WouldBlock`, `TimedOut`) and retries them with exponential backoff;
//! [`RetryingStorage`] applies the policy to every operation of an inner
//! backend. All operations here are idempotent whole-file writes, renames
//! and removals, so a retry after a transient failure is always safe.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The persistence layer's view of a filesystem: whole-file reads and
/// writes plus the namespace and durability operations the atomic commit
/// protocol needs. Object-safe, so stores hold a `&dyn Storage`.
pub trait Storage {
    /// Reads the entire file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates or replaces the file at `path` with `data`. Not durable
    /// until [`Storage::sync_file`] (content) and [`Storage::sync_dir`]
    /// (name) succeed.
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Atomically renames `from` to `to`, replacing `to` if it exists.
    /// Durable only after [`Storage::sync_dir`] on the parent.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes the file at `path`.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Forces the *content* of `path` to stable storage (`fsync`).
    fn sync_file(&self, path: &Path) -> io::Result<()>;
    /// Forces the *namespace* of directory `dir` (created, renamed and
    /// removed entries) to stable storage.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Creates `dir` and any missing ancestors.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// File names (not paths) of the entries in `dir`, sorted.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;
}

// --- real filesystem ---------------------------------------------------------

/// [`Storage`] over `std::fs`. Directory fsync uses `File::sync_all` on
/// the opened directory on Unix and is a no-op elsewhere (notably Windows,
/// where directories cannot be opened for syncing; rename durability is
/// weaker there, as it is for every program).
#[derive(Clone, Copy, Debug, Default)]
pub struct FsStorage;

impl Storage for FsStorage {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        std::fs::write(path, data)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    #[cfg(unix)]
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        std::fs::File::open(dir)?.sync_all()
    }

    #[cfg(not(unix))]
    fn sync_dir(&self, _dir: &Path) -> io::Result<()> {
        Ok(())
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        names.sort();
        Ok(names)
    }
}

// --- atomic single-file write ------------------------------------------------

/// Sibling temp name for an atomic replacement of `path`: the file name
/// with `.tmp` appended. Readers must ignore `*.tmp` files.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    name.push_str(".tmp");
    path.with_file_name(name)
}

/// Durably creates or replaces the file at `path`: write `data` to a
/// sibling `*.tmp`, fsync it, rename it over `path`, fsync the directory.
/// A crash at any point leaves the old file (or no file) or the complete
/// new file — never a torn final file.
pub fn write_atomic(storage: &dyn Storage, path: &Path, data: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    storage.write(&tmp, data)?;
    storage.sync_file(&tmp)?;
    storage.rename(&tmp, path)?;
    match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => storage.sync_dir(parent),
        _ => storage.sync_dir(Path::new(".")),
    }
}

// --- retry policy ------------------------------------------------------------

/// Whether an I/O error class is worth retrying: the kinds the OS hands
/// out for transient conditions that a short wait typically clears.
/// Corruption, missing files and permission errors are never retryable.
pub fn is_retryable(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Retry-with-backoff policy for transient I/O (see [`is_retryable`]).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` disables retries).
    pub attempts: u32,
    /// Sleep before retry `i` is `base_backoff << (i - 1)` (deterministic
    /// exponential), or a decorrelated-jitter draw when [`RetryPolicy::jitter`]
    /// is set; set to zero in tests to keep fault-injection runs instant.
    pub base_backoff: Duration,
    /// Total-deadline cap: once this much wall time has elapsed since the
    /// first attempt, no further retries are made and the last error is
    /// returned. `None` bounds retries by `attempts` alone. This is the
    /// guard against a *persistently* failing-but-retryable disk (e.g.
    /// endless `TimedOut`): attempts bound the count, this bounds the
    /// duration, whichever trips first wins.
    pub max_elapsed: Option<Duration>,
    /// Decorrelated-jitter seed. `None` keeps the deterministic
    /// exponential ladder — fine for a single retrier, but when many
    /// shards (or many clients) fail at the same moment, identical
    /// ladders re-converge on the struggling resource in synchronized
    /// waves. `Some(seed)` draws each sleep uniformly from
    /// `[base_backoff, 3 × previous_sleep]` (the classic decorrelated
    /// jitter recurrence), clamped to `base_backoff << 16`, from a
    /// deterministic xorshift stream seeded here — reproducible in tests,
    /// desynchronized in production.
    pub jitter: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_backoff: Duration::from_millis(1),
            // 3 attempts × ~ms backoffs is already bounded; the cap
            // matters for callers that raise `attempts`.
            max_elapsed: Some(Duration::from_secs(30)),
            jitter: None,
        }
    }
}

/// The sleep schedule of a [`RetryPolicy`]: item `i` (0-based) is the
/// sleep before retry `i + 1`. Infinite; callers bound it by their
/// attempt budget. Obtained from [`RetryPolicy::backoffs`].
#[derive(Clone, Debug)]
pub struct Backoffs {
    base: Duration,
    prev: Duration,
    attempt: u32,
    /// Jitter PRNG state; `None` = deterministic exponential.
    state: Option<u64>,
}

impl Iterator for Backoffs {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        self.attempt += 1;
        let next = match &mut self.state {
            None => self.base * (1 << (self.attempt - 1).min(16)),
            Some(s) => {
                // Decorrelated jitter: sleep₁ = base, then
                // sleepᵢ = uniform[base, 3·sleepᵢ₋₁], clamped to base<<16
                // (the same growth cap the exponential ladder has).
                if self.attempt == 1 {
                    self.base
                } else {
                    let base = self.base.as_nanos() as u64;
                    let cap = base.saturating_shl(16);
                    let hi = (self.prev.as_nanos() as u64)
                        .saturating_mul(3)
                        .min(cap)
                        .max(base);
                    *s = mix(s.wrapping_add(0x9E3779B97F4A7C15));
                    Duration::from_nanos(base + *s % (hi - base + 1))
                }
            }
        };
        self.prev = next;
        Some(next)
    }
}

trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        if self == 0 || self.leading_zeros() >= shift {
            self << shift
        } else {
            u64::MAX
        }
    }
}

impl RetryPolicy {
    /// The policy's sleep schedule (see [`Backoffs`]).
    pub fn backoffs(&self) -> Backoffs {
        Backoffs {
            base: self.base_backoff,
            prev: self.base_backoff,
            attempt: 0,
            state: self.jitter.map(|s| s | 1),
        }
    }

    /// Runs `f`, retrying on retryable errors per the policy.
    pub fn run<T>(&self, mut f: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        let attempts = self.attempts.max(1);
        let started = std::time::Instant::now();
        let mut attempt = 0u32;
        let mut backoffs = self.backoffs();
        loop {
            match f() {
                Ok(v) => return Ok(v),
                Err(e) => {
                    attempt += 1;
                    if attempt >= attempts || !is_retryable(e.kind()) {
                        return Err(e);
                    }
                    let backoff = backoffs.next().unwrap_or(self.base_backoff);
                    let out_of_time = self.max_elapsed.is_some_and(|cap| {
                        // Count the upcoming sleep against the deadline
                        // too: never start a backoff that would overrun it.
                        started.elapsed().saturating_add(backoff) >= cap
                    });
                    if out_of_time {
                        return Err(e);
                    }
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
            }
        }
    }
}

/// A [`Storage`] wrapper that applies a [`RetryPolicy`] to every
/// operation of the inner backend.
pub struct RetryingStorage<'a> {
    inner: &'a dyn Storage,
    policy: RetryPolicy,
}

impl<'a> RetryingStorage<'a> {
    /// Wraps `inner` with `policy`.
    pub fn new(inner: &'a dyn Storage, policy: RetryPolicy) -> Self {
        RetryingStorage { inner, policy }
    }
}

impl Storage for RetryingStorage<'_> {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.policy.run(|| self.inner.read(path))
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.policy.run(|| self.inner.write(path, data))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.policy.run(|| self.inner.rename(from, to))
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.policy.run(|| self.inner.remove(path))
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        self.policy.run(|| self.inner.sync_file(path))
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.policy.run(|| self.inner.sync_dir(dir))
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.policy.run(|| self.inner.create_dir_all(dir))
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.policy.run(|| self.inner.list(dir))
    }
}

// --- in-memory filesystem with crash semantics -------------------------------

#[derive(Clone, Debug)]
struct Inode {
    /// Current content (what readers see now).
    content: Vec<u8>,
    /// Content as of the last `sync_file` — what survives a crash if the
    /// file's *name* also survives. `None`: never fsynced.
    synced: Option<Vec<u8>>,
}

#[derive(Clone, Debug, Default)]
struct MemInner {
    next_inode: u64,
    inodes: BTreeMap<u64, Inode>,
    /// Live namespace: path → inode.
    live: BTreeMap<PathBuf, u64>,
    /// Durable namespace as of the last `sync_dir` on each parent.
    durable: BTreeMap<PathBuf, u64>,
    /// Created directories (treated as instantly durable — `mkdir` races
    /// are not the failure mode under test).
    dirs: Vec<PathBuf>,
    /// Seed for deterministic torn-content lengths at crash time.
    seed: u64,
}

fn mix(mut x: u64) -> u64 {
    // splitmix64 finalizer: cheap, well-distributed.
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl MemInner {
    fn has_dir(&self, dir: &Path) -> bool {
        self.dirs.iter().any(|d| d == dir)
    }

    fn parent_ok(&self, path: &Path) -> bool {
        match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => self.has_dir(p),
            _ => true,
        }
    }
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        format!("{}: not found", path.display()),
    )
}

/// An in-memory [`Storage`] with explicit durability tracking: file
/// content survives a [`MemFs::crash`] only if `sync_file` ran after the
/// last write, and namespace changes (creates, renames, removals) only if
/// `sync_dir` ran after them. Unsynced content decays to a *torn prefix*
/// at crash time, modeling a partial page writeback.
///
/// Handles are cheap clones sharing one filesystem; [`MemFs::fork`] deep-
/// copies the state so a crash-point enumeration can replay the same
/// starting image under many fault plans.
#[derive(Clone, Debug, Default)]
pub struct MemFs {
    inner: Arc<Mutex<MemInner>>,
}

impl MemFs {
    /// An empty in-memory filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty filesystem whose torn-write lengths derive from `seed`.
    pub fn with_seed(seed: u64) -> Self {
        let fs = Self::default();
        fs.inner.lock().unwrap().seed = seed;
        fs
    }

    /// Deep copy: an independent filesystem with identical state.
    pub fn fork(&self) -> MemFs {
        let inner = self.inner.lock().unwrap().clone();
        MemFs {
            inner: Arc::new(Mutex::new(inner)),
        }
    }

    /// Simulates a power failure: the namespace rolls back to the last
    /// `sync_dir` snapshot per directory, fsynced content survives, and
    /// content written but never fsynced decays to a torn prefix of
    /// deterministic (seeded) length. After the crash the surviving state
    /// is fully durable, as if freshly read from the platter.
    pub fn crash(&self) {
        let mut g = self.inner.lock().unwrap();
        let durable = g.durable.clone();
        let seed = g.seed;
        let mut live = BTreeMap::new();
        let mut ids: Vec<(PathBuf, u64)> = durable.into_iter().collect();
        for (path, id) in ids.drain(..) {
            let inode = g.inodes.get_mut(&id).expect("durable name has an inode");
            let survived = match &inode.synced {
                Some(s) => s.clone(),
                None => {
                    // Torn writeback: a prefix of the unsynced content.
                    let cut = (mix(seed ^ id) as usize) % (inode.content.len() + 1);
                    inode.content[..cut].to_vec()
                }
            };
            inode.content = survived.clone();
            inode.synced = Some(survived);
            live.insert(path, id);
        }
        g.durable = live.clone();
        g.live = live;
    }

    /// Names currently visible in `dir` (diagnostics; same as
    /// [`Storage::list`] but infallible for missing dirs).
    pub fn list_names(&self, dir: &Path) -> Vec<String> {
        self.list(dir).unwrap_or_default()
    }
}

impl Storage for MemFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let g = self.inner.lock().unwrap();
        let id = g.live.get(path).ok_or_else(|| not_found(path))?;
        Ok(g.inodes[id].content.clone())
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut g = self.inner.lock().unwrap();
        if !g.parent_ok(path) {
            return Err(not_found(path));
        }
        match g.live.get(path).copied() {
            Some(id) => {
                let inode = g.inodes.get_mut(&id).unwrap();
                inode.content = data.to_vec();
                inode.synced = None;
            }
            None => {
                let id = g.next_inode;
                g.next_inode += 1;
                g.inodes.insert(
                    id,
                    Inode {
                        content: data.to_vec(),
                        synced: None,
                    },
                );
                g.live.insert(path.to_path_buf(), id);
            }
        }
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut g = self.inner.lock().unwrap();
        if !g.parent_ok(to) {
            return Err(not_found(to));
        }
        let id = g.live.remove(from).ok_or_else(|| not_found(from))?;
        g.live.insert(to.to_path_buf(), id);
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut g = self.inner.lock().unwrap();
        g.live.remove(path).ok_or_else(|| not_found(path))?;
        Ok(())
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        let mut g = self.inner.lock().unwrap();
        let id = g.live.get(path).copied().ok_or_else(|| not_found(path))?;
        let inode = g.inodes.get_mut(&id).unwrap();
        inode.synced = Some(inode.content.clone());
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut g = self.inner.lock().unwrap();
        if !g.has_dir(dir) {
            return Err(not_found(dir));
        }
        // Snapshot the live namespace of `dir` into the durable one.
        let in_dir = |p: &Path| p.parent() == Some(dir);
        let fresh: Vec<(PathBuf, u64)> = g
            .live
            .iter()
            .filter(|(p, _)| in_dir(p))
            .map(|(p, &id)| (p.clone(), id))
            .collect();
        g.durable.retain(|p, _| !in_dir(p));
        g.durable.extend(fresh);
        Ok(())
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut g = self.inner.lock().unwrap();
        let mut d = dir.to_path_buf();
        loop {
            if !g.has_dir(&d) {
                g.dirs.push(d.clone());
            }
            match d.parent() {
                Some(p) if !p.as_os_str().is_empty() => d = p.to_path_buf(),
                _ => break,
            }
        }
        Ok(())
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let g = self.inner.lock().unwrap();
        if !g.has_dir(dir) {
            return Err(not_found(dir));
        }
        let mut names: Vec<String> = g
            .live
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
            .collect();
        names.sort();
        Ok(names)
    }
}

// --- fault injection ---------------------------------------------------------

/// What the fault-injecting backend does to the underlying storage.
///
/// Operations are numbered from 0 in call order across all methods. A
/// *crash* (`fail_from`) fails the operation at that index and every
/// later one — the process is dead; the caller then typically invokes
/// [`MemFs::crash`] and recovers. A *transient* index fails exactly once
/// with [`io::ErrorKind::Interrupted`], modeling retryable blips.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Fail every operation with index `>= fail_from`.
    pub fail_from: Option<u64>,
    /// When the first failed operation is a `write`, apply a torn prefix
    /// of the data to the inner storage before failing — the crash caught
    /// the write mid-flight.
    pub torn_writes: bool,
    /// Seed for the torn-prefix length.
    pub seed: u64,
    /// Operation indices that fail once with `Interrupted`, then succeed
    /// on retry (the retry re-runs them under fresh indices).
    pub transient: Vec<u64>,
    /// Error kind for `fail_from` failures (default: a non-retryable
    /// `Other`). Set to a retryable kind — e.g. `TimedOut` — to model a
    /// disk that keeps failing *retryably* forever, which is what the
    /// [`RetryPolicy::max_elapsed`] deadline exists to bound.
    pub fail_kind: Option<io::ErrorKind>,
}

#[derive(Debug, Default)]
struct FaultState {
    ops: u64,
    fired: bool,
    transient_hit: Vec<u64>,
}

/// A [`Storage`] wrapper that injects failures per a [`FaultPlan`].
/// Wrap a [`MemFs`] for crash-point enumeration with durability loss, or
/// [`FsStorage`] to produce a real torn directory (the torn-save golden
/// fixture is generated that way).
pub struct FaultStorage<'a> {
    inner: &'a dyn Storage,
    plan: FaultPlan,
    state: Mutex<FaultState>,
}

impl<'a> FaultStorage<'a> {
    /// Wraps `inner` with the given plan.
    pub fn new(inner: &'a dyn Storage, plan: FaultPlan) -> Self {
        FaultStorage {
            inner,
            plan,
            state: Mutex::new(FaultState::default()),
        }
    }

    /// Operations attempted so far (including failed ones).
    pub fn ops(&self) -> u64 {
        self.state.lock().unwrap().ops
    }

    /// Whether the crash fault (`fail_from`) has triggered.
    pub fn fired(&self) -> bool {
        self.state.lock().unwrap().fired
    }

    /// Checks the plan for the next operation. Returns `Ok(idx)` to let
    /// it through, or the injected error.
    fn gate(&self) -> io::Result<u64> {
        let mut g = self.state.lock().unwrap();
        let idx = g.ops;
        g.ops += 1;
        if self.plan.transient.contains(&idx) && !g.transient_hit.contains(&idx) {
            g.transient_hit.push(idx);
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("injected transient fault at op {idx}"),
            ));
        }
        if let Some(k) = self.plan.fail_from {
            if idx >= k {
                g.fired = true;
                let kind = self.plan.fail_kind.unwrap_or(io::ErrorKind::Other);
                return Err(io::Error::new(kind, format!("injected crash at op {idx}")));
            }
        }
        Ok(idx)
    }
}

impl Storage for FaultStorage<'_> {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.gate()?;
        self.inner.read(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        match self.gate() {
            Ok(_) => self.inner.write(path, data),
            Err(e) => {
                let crashed = self.state.lock().unwrap().fired;
                if crashed && self.plan.torn_writes {
                    // The dying write may have pushed a prefix to disk.
                    let idx = self.state.lock().unwrap().ops;
                    let cut = (mix(self.plan.seed ^ idx) as usize) % (data.len() + 1);
                    let _ = self.inner.write(path, &data[..cut]);
                }
                Err(e)
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.gate()?;
        self.inner.rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.gate()?;
        self.inner.remove(path)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        self.gate()?;
        self.inner.sync_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.gate()?;
        self.inner.sync_dir(dir)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.gate()?;
        self.inner.create_dir_all(dir)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.gate()?;
        self.inner.list(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn memfs_basic_roundtrip() {
        let fs = MemFs::new();
        fs.create_dir_all(&p("/d")).unwrap();
        fs.write(&p("/d/a"), b"hello").unwrap();
        assert_eq!(fs.read(&p("/d/a")).unwrap(), b"hello");
        assert_eq!(fs.list(&p("/d")).unwrap(), vec!["a".to_string()]);
        fs.rename(&p("/d/a"), &p("/d/b")).unwrap();
        assert!(fs.read(&p("/d/a")).is_err());
        assert_eq!(fs.read(&p("/d/b")).unwrap(), b"hello");
        fs.remove(&p("/d/b")).unwrap();
        assert!(fs.list(&p("/d")).unwrap().is_empty());
        assert!(fs.read(&p("/nope")).is_err());
        assert!(fs.list(&p("/nope")).is_err());
    }

    #[test]
    fn crash_loses_unsynced_content_and_names() {
        let fs = MemFs::with_seed(7);
        fs.create_dir_all(&p("/d")).unwrap();
        // Fully durable file.
        fs.write(&p("/d/safe"), b"safe-bytes").unwrap();
        fs.sync_file(&p("/d/safe")).unwrap();
        fs.sync_dir(&p("/d")).unwrap();
        // Name durable, content not fsynced: decays to a torn prefix.
        fs.write(&p("/d/torn"), b"torn-bytes").unwrap();
        fs.sync_dir(&p("/d")).unwrap();
        fs.write(&p("/d/torn"), b"torn-bytes-version-2").unwrap();
        // Name never synced: vanishes entirely.
        fs.write(&p("/d/ghost"), b"ghost").unwrap();
        fs.sync_file(&p("/d/ghost")).unwrap();
        fs.crash();
        assert_eq!(fs.read(&p("/d/safe")).unwrap(), b"safe-bytes");
        let torn = fs.read(&p("/d/torn")).unwrap();
        assert!(b"torn-bytes-version-2".starts_with(&torn[..]));
        assert!(fs.read(&p("/d/ghost")).is_err(), "unsynced name survived");
    }

    #[test]
    fn rename_is_not_durable_until_dir_sync() {
        let fs = MemFs::new();
        fs.create_dir_all(&p("/d")).unwrap();
        fs.write(&p("/d/x.tmp"), b"payload").unwrap();
        fs.sync_file(&p("/d/x.tmp")).unwrap();
        fs.sync_dir(&p("/d")).unwrap();
        fs.rename(&p("/d/x.tmp"), &p("/d/x")).unwrap();
        // Crash before sync_dir: the rename rolls back.
        let lost = fs.fork();
        lost.crash();
        assert!(lost.read(&p("/d/x")).is_err());
        assert_eq!(lost.read(&p("/d/x.tmp")).unwrap(), b"payload");
        // Crash after sync_dir: the rename sticks.
        fs.sync_dir(&p("/d")).unwrap();
        fs.crash();
        assert_eq!(fs.read(&p("/d/x")).unwrap(), b"payload");
        assert!(fs.read(&p("/d/x.tmp")).is_err());
    }

    #[test]
    fn write_atomic_is_old_or_new_at_every_crash_point() {
        let dir = p("/d");
        let file = dir.join("data");
        for k in 0.. {
            let fs = MemFs::with_seed(k);
            fs.create_dir_all(&dir).unwrap();
            write_atomic(&fs, &file, b"old-contents").unwrap();
            let fault = FaultStorage::new(
                &fs,
                FaultPlan {
                    fail_from: Some(k),
                    torn_writes: true,
                    seed: 0x7EA4 ^ k,
                    ..FaultPlan::default()
                },
            );
            let res = write_atomic(&fault, &file, b"new-contents-longer");
            let done = res.is_ok() && !fault.fired();
            fs.crash();
            let got = fs.read(&file).unwrap();
            assert!(
                got == b"old-contents" || got == b"new-contents-longer",
                "crash at op {k}: third state {got:?}"
            );
            if done {
                assert_eq!(fs.read(&file).unwrap(), b"new-contents-longer");
                break;
            }
        }
    }

    #[test]
    fn retry_absorbs_transient_faults() {
        let fs = MemFs::new();
        fs.create_dir_all(&p("/d")).unwrap();
        let fault = FaultStorage::new(
            &fs,
            FaultPlan {
                transient: vec![0, 2],
                ..FaultPlan::default()
            },
        );
        let retrying = RetryingStorage::new(
            &fault,
            RetryPolicy {
                attempts: 3,
                base_backoff: Duration::ZERO,
                max_elapsed: None,
                jitter: None,
            },
        );
        retrying.write(&p("/d/a"), b"x").unwrap();
        assert_eq!(retrying.read(&p("/d/a")).unwrap(), b"x");
        // Without retries the same plan surfaces the transient error.
        let fault2 = FaultStorage::new(
            &fs,
            FaultPlan {
                transient: vec![0],
                ..FaultPlan::default()
            },
        );
        assert_eq!(
            fault2.write(&p("/d/a"), b"y").unwrap_err().kind(),
            io::ErrorKind::Interrupted
        );
    }

    #[test]
    fn retry_policy_gives_up_on_hard_errors() {
        let mut calls = 0;
        let policy = RetryPolicy {
            attempts: 5,
            base_backoff: Duration::ZERO,
            max_elapsed: None,
            jitter: None,
        };
        let r: io::Result<()> = policy.run(|| {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::PermissionDenied, "no"))
        });
        assert!(r.is_err());
        assert_eq!(calls, 1, "hard errors must not be retried");
        let mut calls = 0;
        let r: io::Result<()> = policy.run(|| {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::Interrupted, "blip"))
        });
        assert!(r.is_err());
        assert_eq!(calls, 5, "transient errors retry to exhaustion");
    }

    #[test]
    fn backoff_jitter_stays_within_decorrelated_bounds() {
        // Without jitter: the exact exponential ladder the storage stack
        // has always used — byte-for-byte deterministic.
        let plain = RetryPolicy {
            attempts: 8,
            base_backoff: Duration::from_millis(2),
            max_elapsed: None,
            jitter: None,
        };
        let ladder: Vec<Duration> = plain.backoffs().take(5).collect();
        assert_eq!(
            ladder,
            [2, 4, 8, 16, 32].map(Duration::from_millis).to_vec()
        );
        // With jitter: sleep₁ = base exactly; every later sleep is drawn
        // from [base, 3 × previous], clamped to base << 16. These are the
        // decorrelated-jitter bounds — pin them over a long stream for
        // several seeds.
        let base = Duration::from_millis(1);
        let cap = base * (1 << 16);
        for seed in [0u64, 1, 0xDECAF, u64::MAX] {
            let policy = RetryPolicy {
                attempts: 64,
                base_backoff: base,
                max_elapsed: None,
                jitter: Some(seed),
            };
            let sleeps: Vec<Duration> = policy.backoffs().take(64).collect();
            assert_eq!(sleeps[0], base, "first sleep is always base");
            let mut prev = sleeps[0];
            for (i, &s) in sleeps.iter().enumerate().skip(1) {
                assert!(s >= base, "seed {seed} sleep {i}: {s:?} < base");
                assert!(
                    s <= (prev * 3).min(cap),
                    "seed {seed} sleep {i}: {s:?} > 3×{prev:?}"
                );
                prev = s;
            }
            // Deterministic per seed: the same policy replays the same
            // schedule (tests depend on reproducibility).
            let replay: Vec<Duration> = policy.backoffs().take(64).collect();
            assert_eq!(sleeps, replay);
        }
        // Two different seeds must actually decorrelate (not collapse to
        // the same schedule — that would defeat the point).
        let a: Vec<Duration> = RetryPolicy {
            jitter: Some(7),
            attempts: 16,
            base_backoff: base,
            max_elapsed: None,
        }
        .backoffs()
        .take(16)
        .collect();
        let b: Vec<Duration> = RetryPolicy {
            jitter: Some(8),
            attempts: 16,
            base_backoff: base,
            max_elapsed: None,
        }
        .backoffs()
        .take(16)
        .collect();
        assert_ne!(a, b, "distinct seeds must yield distinct schedules");
        // Degenerate base: a zero base never sleeps, jittered or not.
        let zero = RetryPolicy {
            attempts: 4,
            base_backoff: Duration::ZERO,
            max_elapsed: None,
            jitter: Some(3),
        };
        assert!(zero.backoffs().take(8).all(|d| d.is_zero()));
    }

    #[test]
    fn retry_deadline_bounds_a_persistently_timing_out_disk() {
        // A disk that fails every operation with a *retryable* TimedOut:
        // without max_elapsed, a generous attempt budget would grind
        // through every attempt; the deadline cuts it off.
        let fs = MemFs::new();
        let fault = FaultStorage::new(
            &fs,
            FaultPlan {
                fail_from: Some(0),
                fail_kind: Some(io::ErrorKind::TimedOut),
                ..FaultPlan::default()
            },
        );
        let started = std::time::Instant::now();
        let retrying = RetryingStorage::new(
            &fault,
            RetryPolicy {
                attempts: u32::MAX, // effectively unbounded by count
                base_backoff: Duration::from_millis(1),
                max_elapsed: Some(Duration::from_millis(20)),
                jitter: None,
            },
        );
        let err = retrying.write(&p("/d/a"), b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        // Generous bound: the point is that it returned at all, promptly,
        // instead of retrying ~forever.
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "deadline did not bound retries: {:?}",
            started.elapsed()
        );
        // And the deadline alone (zero budget) means exactly one attempt.
        let fault2 = FaultStorage::new(
            &fs,
            FaultPlan {
                fail_from: Some(0),
                fail_kind: Some(io::ErrorKind::TimedOut),
                ..FaultPlan::default()
            },
        );
        let retrying2 = RetryingStorage::new(
            &fault2,
            RetryPolicy {
                attempts: 10,
                base_backoff: Duration::ZERO,
                max_elapsed: Some(Duration::ZERO),
                jitter: None,
            },
        );
        assert!(retrying2.write(&p("/d/a"), b"x").is_err());
        assert_eq!(fault2.ops(), 1, "expired deadline stops after attempt 1");
    }
}
