//! Fully Indexable Dictionary over a plain bitvector.
//!
//! [`Fid`] augments a [`RawBitVec`] with a rank9-style two-level rank
//! directory (O(1) rank, ~25% overhead) and sampled select hints
//! (O(log) worst-case select over a narrow window, O(1)-ish in practice).
//! This is the *uncompressed* FID; the compressed counterpart is
//! [`crate::RrrVector`] (§2 of the paper, "Bitvectors and FIDs").

use crate::broadword::{count_bit_in_word, select_bit_in_word, select_block};
use crate::{RawBitVec, SpaceUsage};

/// Bits covered by one rank superblock (8 words).
const BLOCK_BITS: usize = 512;
const WORDS_PER_BLOCK: usize = BLOCK_BITS / 64;
/// One select hint is stored for every `SELECT_SAMPLE` set (resp. unset) bits.
const SELECT_SAMPLE: usize = 8192;

/// Read-only positional access to a sequence of bits.
pub trait BitAccess {
    /// Number of bits.
    fn len(&self) -> usize;
    /// Whether the sequence is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Bit at position `i` (`i < len`).
    fn get(&self, i: usize) -> bool;
}

/// Counting queries: `rank1(i)` = number of set bits in `[0, i)`.
pub trait BitRank: BitAccess {
    /// Number of set bits in `[0, i)`; `i` may equal `len()`.
    fn rank1(&self, i: usize) -> usize;

    /// Number of unset bits in `[0, i)`.
    fn rank0(&self, i: usize) -> usize {
        i - self.rank1(i)
    }

    /// `rank1` or `rank0` depending on `bit`.
    fn rank(&self, bit: bool, i: usize) -> usize {
        if bit {
            self.rank1(i)
        } else {
            self.rank0(i)
        }
    }

    /// Total number of set bits.
    fn count_ones(&self) -> usize {
        self.rank1(self.len())
    }

    /// Total number of unset bits.
    fn count_zeros(&self) -> usize {
        self.len() - self.count_ones()
    }
}

/// Positional queries: `select1(k)` = position of the `k`-th (0-based) set bit.
pub trait BitSelect: BitRank {
    /// Position of the `k`-th set bit, or `None` if there are `<= k` ones.
    fn select1(&self, k: usize) -> Option<usize>;

    /// Position of the `k`-th unset bit, or `None` if there are `<= k` zeros.
    fn select0(&self, k: usize) -> Option<usize>;

    /// `select1` or `select0` depending on `bit`.
    fn select(&self, bit: bool, k: usize) -> Option<usize> {
        if bit {
            self.select1(k)
        } else {
            self.select0(k)
        }
    }
}

/// An uncompressed bitvector with O(1) rank and fast select.
#[derive(Clone, Debug)]
pub struct Fid {
    bits: RawBitVec,
    /// Absolute rank before each 512-bit block.
    block_rank: Vec<u64>,
    /// Packed 9-bit relative ranks before words 1..=7 of each block
    /// (rank9 second level).
    sub_rank: Vec<u64>,
    ones: usize,
    /// Block index containing the `(k*SELECT_SAMPLE)`-th one.
    hints1: Vec<u32>,
    /// Block index containing the `(k*SELECT_SAMPLE)`-th zero.
    hints0: Vec<u32>,
}

impl Fid {
    /// Builds the directory over `bits`.
    pub fn new(bits: RawBitVec) -> Self {
        let n_blocks = bits.len().div_ceil(BLOCK_BITS).max(1);
        let mut block_rank = Vec::with_capacity(n_blocks + 1);
        let mut sub_rank = Vec::with_capacity(n_blocks);
        let mut hints1 = Vec::new();
        let mut hints0 = Vec::new();
        let mut ones = 0u64;
        for b in 0..n_blocks {
            block_rank.push(ones);
            let mut packed = 0u64;
            let mut within = 0u64;
            for w in 0..WORDS_PER_BLOCK {
                if w > 0 {
                    packed |= within << (9 * (w - 1));
                }
                within += bits.word(b * WORDS_PER_BLOCK + w).count_ones() as u64;
            }
            sub_rank.push(packed);
            ones += within;
        }
        block_rank.push(ones);
        // hints1[k] = index of the block containing the (k*SELECT_SAMPLE)-th
        // one; likewise hints0 for zeros.
        let total_ones = ones as usize;
        let total_zeros = bits.len() - total_ones;
        let mut b = 0usize;
        for k in (0..total_ones).step_by(SELECT_SAMPLE) {
            while block_rank[b + 1] <= k as u64 {
                b += 1;
            }
            hints1.push(b as u32);
        }
        let zeros_before = |blk: usize| (blk * BLOCK_BITS).min(bits.len()) as u64 - block_rank[blk];
        let mut b = 0usize;
        for k in (0..total_zeros).step_by(SELECT_SAMPLE) {
            while zeros_before(b + 1) <= k as u64 {
                b += 1;
            }
            hints0.push(b as u32);
        }
        Fid {
            bits,
            block_rank,
            sub_rank,
            ones: total_ones,
            hints1,
            hints0,
        }
    }

    /// Builds from an iterator of bits.
    pub fn from_bits<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Self::new(RawBitVec::from_bits(iter))
    }

    /// The underlying raw bits.
    #[inline]
    pub fn raw(&self) -> &RawBitVec {
        &self.bits
    }

    #[inline]
    fn sub(&self, block: usize, word_in_block: usize) -> u64 {
        if word_in_block == 0 {
            0
        } else {
            (self.sub_rank[block] >> (9 * (word_in_block - 1))) & 0x1FF
        }
    }

    #[inline]
    fn zeros_before_block(&self, blk: usize) -> usize {
        (blk * BLOCK_BITS).min(self.bits.len()) - self.block_rank[blk] as usize
    }

    /// Shared select kernel: `bit` chooses ones/zeros.
    fn select_generic(&self, bit: bool, k: usize) -> Option<usize> {
        let total = if bit {
            self.ones
        } else {
            self.bits.len() - self.ones
        };
        if k >= total {
            return None;
        }
        let hints = if bit { &self.hints1 } else { &self.hints0 };
        let hi = k / SELECT_SAMPLE;
        let lo_block = hints[hi] as usize;
        let hi_block = hints
            .get(hi + 1)
            .map(|&b| b as usize + 1)
            .unwrap_or(self.block_rank.len() - 1);
        // Binary search for the block containing the k-th target bit.
        let count_before = |blk: usize| {
            if bit {
                self.block_rank[blk] as usize
            } else {
                self.zeros_before_block(blk)
            }
        };
        let block = select_block(lo_block, hi_block, k, count_before);
        let mut remaining = (k - count_before(block)) as u32;
        // Scan the (at most 8) words of the block.
        for w in 0..WORDS_PER_BLOCK {
            let word_idx = block * WORDS_PER_BLOCK + w;
            let word = self.bits.word(word_idx);
            // Padding past len must not count as zeros in the final word.
            let valid = self.bits.len().saturating_sub(word_idx * 64).min(64);
            let c = count_bit_in_word(word, bit, valid);
            if remaining < c {
                let pos = word_idx * 64 + select_bit_in_word(word, bit, valid, remaining) as usize;
                debug_assert!(pos < self.bits.len());
                return Some(pos);
            }
            remaining -= c;
        }
        unreachable!("select hint directory inconsistent");
    }
}

impl BitAccess for Fid {
    #[inline]
    fn len(&self) -> usize {
        self.bits.len()
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        self.bits.get(i)
    }
}

impl BitRank for Fid {
    #[inline]
    fn rank1(&self, i: usize) -> usize {
        assert!(i <= self.bits.len(), "rank index {i} out of bounds");
        let block = i / BLOCK_BITS;
        let word = (i % BLOCK_BITS) / 64;
        let mut r = self.block_rank[block] as usize + self.sub(block, word) as usize;
        let off = i % 64;
        if off != 0 {
            r += (self.bits.word(block * WORDS_PER_BLOCK + word) & ((1u64 << off) - 1)).count_ones()
                as usize;
        }
        r
    }

    #[inline]
    fn count_ones(&self) -> usize {
        self.ones
    }
}

impl BitSelect for Fid {
    #[inline]
    fn select1(&self, k: usize) -> Option<usize> {
        self.select_generic(true, k)
    }

    #[inline]
    fn select0(&self, k: usize) -> Option<usize> {
        self.select_generic(false, k)
    }
}

impl SpaceUsage for Fid {
    fn size_bits(&self) -> usize {
        self.bits.size_bits()
            + self.block_rank.capacity() * 64
            + self.sub_rank.capacity() * 64
            + self.hints1.capacity() * 32
            + self.hints0.capacity() * 32
            + 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_against_scan(bits: &RawBitVec) {
        let fid = Fid::new(bits.clone());
        assert_eq!(fid.len(), bits.len());
        assert_eq!(fid.count_ones(), bits.count_ones());
        let step = (bits.len() / 257).max(1);
        for i in (0..=bits.len()).step_by(step) {
            assert_eq!(fid.rank1(i), bits.rank1_scan(i), "rank1({i})");
            assert_eq!(fid.rank0(i), i - bits.rank1_scan(i), "rank0({i})");
        }
        let ones = bits.count_ones();
        let kstep = (ones / 311).max(1);
        for k in (0..ones).step_by(kstep) {
            assert_eq!(fid.select1(k), bits.select1_scan(k), "select1({k})");
        }
        assert_eq!(fid.select1(ones), None);
        let zeros = bits.len() - ones;
        let kstep = (zeros / 311).max(1);
        for k in (0..zeros).step_by(kstep) {
            assert_eq!(fid.select0(k), bits.select0_scan(k), "select0({k})");
        }
        assert_eq!(fid.select0(zeros), None);
    }

    #[test]
    fn empty() {
        let fid = Fid::new(RawBitVec::new());
        assert_eq!(fid.len(), 0);
        assert_eq!(fid.rank1(0), 0);
        assert_eq!(fid.select1(0), None);
        assert_eq!(fid.select0(0), None);
    }

    #[test]
    fn all_ones_all_zeros() {
        check_against_scan(&RawBitVec::filled(true, 10_000));
        check_against_scan(&RawBitVec::filled(false, 10_000));
        check_against_scan(&RawBitVec::filled(true, 511));
        check_against_scan(&RawBitVec::filled(false, 513));
    }

    #[test]
    fn periodic_patterns() {
        for period in [2usize, 3, 7, 64, 65, 511, 512] {
            let bits = RawBitVec::from_bits((0..20_000).map(|i| i % period == 0));
            check_against_scan(&bits);
        }
    }

    #[test]
    fn pseudorandom_dense_and_sparse() {
        let mut s = 12345u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for &density in &[1u64, 8, 128, 4096] {
            let bits = RawBitVec::from_bits((0..50_000).map(|_| next() % density == 0));
            check_against_scan(&bits);
        }
    }

    #[test]
    fn rank_select_inverse() {
        let bits = RawBitVec::from_bits((0..30_000).map(|i| (i * i) % 17 < 5));
        let fid = Fid::new(bits);
        for k in (0..fid.count_ones()).step_by(97) {
            let p = fid.select1(k).unwrap();
            assert!(fid.get(p));
            assert_eq!(fid.rank1(p), k);
            assert_eq!(fid.rank1(p + 1), k + 1);
        }
    }

    #[test]
    fn boundary_sizes() {
        for n in [
            1usize, 63, 64, 65, 127, 128, 129, 512, 513, 8191, 8192, 8193,
        ] {
            let bits = RawBitVec::from_bits((0..n).map(|i| i % 2 == 1));
            check_against_scan(&bits);
        }
    }
}
