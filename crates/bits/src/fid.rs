//! Fully Indexable Dictionary over a plain bitvector.
//!
//! [`Fid`] augments a [`RawBitVec`] with a rank9-style two-level rank
//! directory (O(1) rank, ~25% overhead) and sampled select hints
//! (O(log) worst-case select over a narrow window, O(1)-ish in practice).
//! This is the *uncompressed* FID; the compressed counterpart is
//! [`crate::RrrVector`] (§2 of the paper, "Bitvectors and FIDs").

use crate::broadword::{
    count_bit_in_word, prefetch_read, select_bit_in_word, select_block, PIPELINE_LANES,
};
use crate::persist::{LoadError, Persist, WordsReader};
use crate::words::{U32Words, Words};
use crate::{RawBitVec, SpaceUsage};

/// Bits covered by one rank superblock (8 words).
const BLOCK_BITS: usize = 512;
const WORDS_PER_BLOCK: usize = BLOCK_BITS / 64;
/// One select hint is stored for every `SELECT_SAMPLE` set (resp. unset)
/// bits. 1024 pins the binary-search window to ≤ 3 blocks (32 bits of hint
/// per 1024 target bits ≈ 0.03 bits/bit of overhead) — selects are the
/// inner loop of every Elias–Fano delimiter probe on the Wavelet-Trie
/// descent path, where the old 8192-sample windows made the search and
/// scan the dominant per-level compute.
const SELECT_SAMPLE: usize = 1024;

/// Read-only positional access to a sequence of bits.
pub trait BitAccess {
    /// Number of bits.
    fn len(&self) -> usize;
    /// Whether the sequence is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Bit at position `i` (`i < len`).
    fn get(&self, i: usize) -> bool;
}

/// Counting queries: `rank1(i)` = number of set bits in `[0, i)`.
pub trait BitRank: BitAccess {
    /// Number of set bits in `[0, i)`; `i` may equal `len()`.
    fn rank1(&self, i: usize) -> usize;

    /// Number of unset bits in `[0, i)`.
    fn rank0(&self, i: usize) -> usize {
        i - self.rank1(i)
    }

    /// `rank1` or `rank0` depending on `bit`.
    fn rank(&self, bit: bool, i: usize) -> usize {
        if bit {
            self.rank1(i)
        } else {
            self.rank0(i)
        }
    }

    /// Total number of set bits.
    fn count_ones(&self) -> usize {
        self.rank1(self.len())
    }

    /// Total number of unset bits.
    fn count_zeros(&self) -> usize {
        self.len() - self.count_ones()
    }
}

/// Positional queries: `select1(k)` = position of the `k`-th (0-based) set bit.
pub trait BitSelect: BitRank {
    /// Position of the `k`-th set bit, or `None` if there are `<= k` ones.
    fn select1(&self, k: usize) -> Option<usize>;

    /// Position of the `k`-th unset bit, or `None` if there are `<= k` zeros.
    fn select0(&self, k: usize) -> Option<usize>;

    /// `select1` or `select0` depending on `bit`.
    fn select(&self, bit: bool, k: usize) -> Option<usize> {
        if bit {
            self.select1(k)
        } else {
            self.select0(k)
        }
    }
}

/// An uncompressed bitvector with O(1) rank and fast select.
#[derive(Clone, Debug)]
pub struct Fid {
    bits: RawBitVec,
    /// Absolute rank before each 512-bit block.
    block_rank: Words,
    /// Packed 9-bit relative ranks before words 1..=7 of each block
    /// (rank9 second level).
    sub_rank: Words,
    ones: usize,
    /// Block index containing the `(k*SELECT_SAMPLE)`-th one.
    hints1: U32Words,
    /// Block index containing the `(k*SELECT_SAMPLE)`-th zero.
    hints0: U32Words,
}

impl Fid {
    /// Builds the directory over `bits`.
    pub fn new(bits: RawBitVec) -> Self {
        let n_blocks = bits.len().div_ceil(BLOCK_BITS).max(1);
        let mut block_rank = Vec::with_capacity(n_blocks + 1);
        let mut sub_rank = Vec::with_capacity(n_blocks);
        let mut hints1 = Vec::new();
        let mut hints0 = Vec::new();
        let mut ones = 0u64;
        for b in 0..n_blocks {
            block_rank.push(ones);
            let mut packed = 0u64;
            let mut within = 0u64;
            for w in 0..WORDS_PER_BLOCK {
                if w > 0 {
                    packed |= within << (9 * (w - 1));
                }
                within += bits.word(b * WORDS_PER_BLOCK + w).count_ones() as u64;
            }
            sub_rank.push(packed);
            ones += within;
        }
        block_rank.push(ones);
        // hints1[k] = index of the block containing the (k*SELECT_SAMPLE)-th
        // one; likewise hints0 for zeros.
        let total_ones = ones as usize;
        let total_zeros = bits.len() - total_ones;
        let mut b = 0usize;
        for k in (0..total_ones).step_by(SELECT_SAMPLE) {
            while block_rank[b + 1] <= k as u64 {
                b += 1;
            }
            hints1.push(b as u32);
        }
        let zeros_before = |blk: usize| (blk * BLOCK_BITS).min(bits.len()) as u64 - block_rank[blk];
        let mut b = 0usize;
        for k in (0..total_zeros).step_by(SELECT_SAMPLE) {
            while zeros_before(b + 1) <= k as u64 {
                b += 1;
            }
            hints0.push(b as u32);
        }
        Fid {
            bits,
            block_rank: block_rank.into(),
            sub_rank: sub_rank.into(),
            ones: total_ones,
            hints1: U32Words::from_vec(hints1),
            hints0: U32Words::from_vec(hints0),
        }
    }

    /// Builds from an iterator of bits.
    pub fn from_bits<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Self::new(RawBitVec::from_bits(iter))
    }

    /// The underlying raw bits.
    #[inline]
    pub fn raw(&self) -> &RawBitVec {
        &self.bits
    }

    #[inline]
    fn sub(&self, block: usize, word_in_block: usize) -> u64 {
        if word_in_block == 0 {
            0
        } else {
            (self.sub_rank[block] >> (9 * (word_in_block - 1))) & 0x1FF
        }
    }

    /// Hints the CPU to load the rank directory entries and data word a
    /// `rank`/`get` at position `i` will touch. Issued for every lane of a
    /// batch before any lane resolves, so the misses overlap.
    #[inline]
    pub fn prefetch(&self, i: usize) {
        let block = i / BLOCK_BITS;
        prefetch_read(self.block_rank.as_ptr().wrapping_add(block));
        prefetch_read(self.sub_rank.as_ptr().wrapping_add(block));
        self.bits.prefetch(i);
    }

    /// Hints the CPU towards the select-hint entry and the first candidate
    /// block a `select1(k)` will inspect (approximate: the binary search may
    /// touch further directory words, but the hint entry pins its range).
    #[inline]
    pub fn prefetch_select1(&self, k: usize) {
        if let Some(b) = self.hints1.get_opt(k / SELECT_SAMPLE) {
            let b = b as usize;
            prefetch_read(self.block_rank.as_ptr().wrapping_add(b));
            self.bits.prefetch(b * BLOCK_BITS);
        }
    }

    /// Batched [`BitRank::rank1`]: per 64-lane chunk, prefetches every
    /// lane's directory words, then resolves — chunked so a huge batch
    /// cannot evict its own early prefetches before their resolve round.
    /// Results are identical to the scalar calls.
    ///
    /// # Panics
    /// If the slices differ in length or any position exceeds `len()`.
    pub fn rank1_batch(&self, positions: &[usize], out: &mut [usize]) {
        assert_eq!(positions.len(), out.len(), "batch length mismatch");
        for (chunk, outs) in positions
            .chunks(PIPELINE_LANES)
            .zip(out.chunks_mut(PIPELINE_LANES))
        {
            for &i in chunk {
                assert!(i <= self.bits.len(), "rank index {i} out of bounds");
                self.prefetch(i);
            }
            for (o, &i) in outs.iter_mut().zip(chunk) {
                *o = self.rank1(i);
            }
        }
    }

    /// Batched `select1` over in-bounds ranks, software-pipelined in three
    /// phases per chunk of lanes: prefetch every lane's hint window of the
    /// block-rank directory, then binary-search each lane's block (the
    /// window is now resident) while prefetching that block's data words,
    /// then scan. This is the staged core under the Elias–Fano batch entry
    /// points — a scalar EF probe serializes two to three misses that this
    /// pipeline overlaps across lanes.
    ///
    /// # Panics
    /// If the slices differ in length or any `k >= count_ones()`.
    pub fn select1_batch(&self, ks: &[usize], out: &mut [usize]) {
        assert_eq!(ks.len(), out.len(), "batch length mismatch");
        let mut range = [(0usize, 0usize); PIPELINE_LANES];
        let mut blk = [0usize; PIPELINE_LANES];
        for (chunk, outs) in ks
            .chunks(PIPELINE_LANES)
            .zip(out.chunks_mut(PIPELINE_LANES))
        {
            for (r, &k) in range.iter_mut().zip(chunk) {
                assert!(k < self.ones, "select1 rank {k} out of bounds");
                let hi = k / SELECT_SAMPLE;
                let lo_block = self.hints1.get(hi) as usize;
                let hi_block = self
                    .hints1
                    .get_opt(hi + 1)
                    .map(|b| b as usize + 1)
                    .unwrap_or(self.block_rank.len() - 1);
                // The whole window the binary search can touch (8 u64
                // directory entries per line; cap the round for very
                // sparse vectors with wide windows).
                let mut b = lo_block;
                let mut budget = 8;
                while b <= hi_block && budget > 0 {
                    prefetch_read(self.block_rank.as_ptr().wrapping_add(b));
                    b += 8;
                    budget -= 1;
                }
                *r = (lo_block, hi_block);
            }
            for ((b, &(lo, hi)), &k) in blk.iter_mut().zip(&range).zip(chunk) {
                let block = select_block(lo, hi, k, |blk| self.block_rank[blk] as usize);
                // The resolve round reads the sub-rank word plus one data
                // word somewhere in the block's two cache lines.
                prefetch_read(self.sub_rank.as_ptr().wrapping_add(block));
                self.bits.prefetch(block * BLOCK_BITS);
                self.bits.prefetch(block * BLOCK_BITS + BLOCK_BITS - 64);
                *b = block;
            }
            for ((o, &block), &k) in outs.iter_mut().zip(&blk).zip(chunk) {
                *o = self.select1_in_block(block, k - self.block_rank[block] as usize);
            }
        }
    }

    /// Batched [`BitAccess::get`] with the same chunked
    /// prefetch-then-resolve shape as [`Fid::rank1_batch`].
    pub fn get_batch(&self, positions: &[usize], out: &mut [bool]) {
        assert_eq!(positions.len(), out.len(), "batch length mismatch");
        for (chunk, outs) in positions
            .chunks(PIPELINE_LANES)
            .zip(out.chunks_mut(PIPELINE_LANES))
        {
            for &i in chunk {
                assert!(i < self.bits.len(), "bit index {i} out of bounds");
                self.bits.prefetch(i);
            }
            for (o, &i) in outs.iter_mut().zip(chunk) {
                *o = self.bits.get(i);
            }
        }
    }

    #[inline]
    fn zeros_before_block(&self, blk: usize) -> usize {
        (blk * BLOCK_BITS).min(self.bits.len()) - self.block_rank[blk] as usize
    }

    /// Resolves the `remaining`-th one inside `block` with **no word
    /// scan**: the rank9 sub-rank word pins the target word with seven
    /// in-register compares, so only that one data word is loaded. Safe
    /// for ones regardless of padding (padding bits are zero).
    ///
    /// Requires the block to actually contain the target.
    #[inline]
    fn select1_in_block(&self, block: usize, remaining: usize) -> usize {
        let packed = self.sub_rank[block];
        let mut w = 0usize;
        for t in 1..WORDS_PER_BLOCK {
            let before = ((packed >> (9 * (t - 1))) & 0x1FF) as usize;
            w += (before <= remaining) as usize;
        }
        let before = if w == 0 {
            0
        } else {
            ((packed >> (9 * (w - 1))) & 0x1FF) as usize
        };
        let word_idx = block * WORDS_PER_BLOCK + w;
        let word = self.bits.word(word_idx);
        let pos = word_idx * 64
            + crate::broadword::select_in_word(word, (remaining - before) as u32) as usize;
        debug_assert!(pos < self.bits.len());
        pos
    }

    /// Shared select kernel: `bit` chooses ones/zeros.
    fn select_generic(&self, bit: bool, k: usize) -> Option<usize> {
        let total = if bit {
            self.ones
        } else {
            self.bits.len() - self.ones
        };
        if k >= total {
            return None;
        }
        let hints = if bit { &self.hints1 } else { &self.hints0 };
        let hi = k / SELECT_SAMPLE;
        let lo_block = hints.get(hi) as usize;
        let hi_block = hints
            .get_opt(hi + 1)
            .map(|b| b as usize + 1)
            .unwrap_or(self.block_rank.len() - 1);
        // Binary search for the block containing the k-th target bit.
        let count_before = |blk: usize| {
            if bit {
                self.block_rank[blk] as usize
            } else {
                self.zeros_before_block(blk)
            }
        };
        let block = select_block(lo_block, hi_block, k, count_before);
        if bit {
            return Some(self.select1_in_block(block, k - count_before(block)));
        }
        let mut remaining = (k - count_before(block)) as u32;
        // Zeros: scan the (at most 8) words of the block — the sub-rank
        // jump would miscount the zero-padding of a final partial word.
        for w in 0..WORDS_PER_BLOCK {
            let word_idx = block * WORDS_PER_BLOCK + w;
            let word = self.bits.word(word_idx);
            // Padding past len must not count as zeros in the final word.
            let valid = self.bits.len().saturating_sub(word_idx * 64).min(64);
            let c = count_bit_in_word(word, bit, valid);
            if remaining < c {
                let pos = word_idx * 64 + select_bit_in_word(word, bit, valid, remaining) as usize;
                debug_assert!(pos < self.bits.len());
                return Some(pos);
            }
            remaining -= c;
        }
        unreachable!("select hint directory inconsistent");
    }
}

impl BitAccess for Fid {
    #[inline]
    fn len(&self) -> usize {
        self.bits.len()
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        self.bits.get(i)
    }
}

impl BitRank for Fid {
    #[inline]
    fn rank1(&self, i: usize) -> usize {
        assert!(i <= self.bits.len(), "rank index {i} out of bounds");
        let block = i / BLOCK_BITS;
        let word = (i % BLOCK_BITS) / 64;
        let mut r = self.block_rank[block] as usize + self.sub(block, word) as usize;
        let off = i % 64;
        if off != 0 {
            r += (self.bits.word(block * WORDS_PER_BLOCK + word) & ((1u64 << off) - 1)).count_ones()
                as usize;
        }
        r
    }

    #[inline]
    fn count_ones(&self) -> usize {
        self.ones
    }
}

impl BitSelect for Fid {
    #[inline]
    fn select1(&self, k: usize) -> Option<usize> {
        self.select_generic(true, k)
    }

    #[inline]
    fn select0(&self, k: usize) -> Option<usize> {
        self.select_generic(false, k)
    }
}

impl SpaceUsage for Fid {
    fn size_bits(&self) -> usize {
        self.bits.size_bits()
            + self.block_rank.size_bits()
            + self.sub_rank.size_bits()
            + self.hints1.size_bits()
            + self.hints0.size_bits()
            + 64
    }
}

impl Persist for Fid {
    fn encode(&self, out: &mut Vec<u64>) {
        self.bits.encode(out);
        self.block_rank.encode(out);
        self.sub_rank.encode(out);
        out.push(self.ones as u64);
        self.hints1.encode(out);
        self.hints0.encode(out);
    }

    fn decode(r: &mut WordsReader) -> Result<Self, LoadError> {
        let bits = RawBitVec::decode(r)?;
        let block_rank = Words::decode(r)?;
        let sub_rank = Words::decode(r)?;
        let ones = r.read_len()?;
        let hints1 = U32Words::decode(r)?;
        let hints0 = U32Words::decode(r)?;
        // Structural invariants the query paths rely on, all checked at
        // directory (word) granularity — never per bit.
        let n_blocks = bits.len().div_ceil(BLOCK_BITS).max(1);
        if block_rank.len() != n_blocks + 1 || sub_rank.len() != n_blocks {
            return Err(LoadError::Invalid("fid directory length"));
        }
        if block_rank[0] != 0 || block_rank[n_blocks] != ones as u64 || ones > bits.len() {
            return Err(LoadError::Invalid("fid rank totals"));
        }
        for b in 0..n_blocks {
            if block_rank[b + 1] < block_rank[b]
                || block_rank[b + 1] - block_rank[b] > BLOCK_BITS as u64
            {
                return Err(LoadError::Invalid("fid rank directory not monotone"));
            }
        }
        let zeros = bits.len() - ones;
        if hints1.len() != ones.div_ceil(SELECT_SAMPLE)
            || hints0.len() != zeros.div_ceil(SELECT_SAMPLE)
        {
            return Err(LoadError::Invalid("fid hint length"));
        }
        for hints in [&hints1, &hints0] {
            for k in 0..hints.len() {
                let b = hints.get(k) as usize;
                if b >= n_blocks || (k > 0 && b < hints.get(k - 1) as usize) {
                    return Err(LoadError::Invalid("fid hint out of range"));
                }
            }
        }
        Ok(Fid {
            bits,
            block_rank,
            sub_rank,
            ones,
            hints1,
            hints0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_against_scan(bits: &RawBitVec) {
        let fid = Fid::new(bits.clone());
        assert_eq!(fid.len(), bits.len());
        assert_eq!(fid.count_ones(), bits.count_ones());
        let step = (bits.len() / 257).max(1);
        for i in (0..=bits.len()).step_by(step) {
            assert_eq!(fid.rank1(i), bits.rank1_scan(i), "rank1({i})");
            assert_eq!(fid.rank0(i), i - bits.rank1_scan(i), "rank0({i})");
        }
        let ones = bits.count_ones();
        let kstep = (ones / 311).max(1);
        for k in (0..ones).step_by(kstep) {
            assert_eq!(fid.select1(k), bits.select1_scan(k), "select1({k})");
        }
        assert_eq!(fid.select1(ones), None);
        let zeros = bits.len() - ones;
        let kstep = (zeros / 311).max(1);
        for k in (0..zeros).step_by(kstep) {
            assert_eq!(fid.select0(k), bits.select0_scan(k), "select0({k})");
        }
        assert_eq!(fid.select0(zeros), None);
    }

    #[test]
    fn empty() {
        let fid = Fid::new(RawBitVec::new());
        assert_eq!(fid.len(), 0);
        assert_eq!(fid.rank1(0), 0);
        assert_eq!(fid.select1(0), None);
        assert_eq!(fid.select0(0), None);
    }

    #[test]
    fn all_ones_all_zeros() {
        check_against_scan(&RawBitVec::filled(true, 10_000));
        check_against_scan(&RawBitVec::filled(false, 10_000));
        check_against_scan(&RawBitVec::filled(true, 511));
        check_against_scan(&RawBitVec::filled(false, 513));
    }

    #[test]
    fn periodic_patterns() {
        for period in [2usize, 3, 7, 64, 65, 511, 512] {
            let bits = RawBitVec::from_bits((0..20_000).map(|i| i % period == 0));
            check_against_scan(&bits);
        }
    }

    #[test]
    fn pseudorandom_dense_and_sparse() {
        let mut s = 12345u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for &density in &[1u64, 8, 128, 4096] {
            let bits = RawBitVec::from_bits((0..50_000).map(|_| next() % density == 0));
            check_against_scan(&bits);
        }
    }

    #[test]
    fn rank_select_inverse() {
        let bits = RawBitVec::from_bits((0..30_000).map(|i| (i * i) % 17 < 5));
        let fid = Fid::new(bits);
        for k in (0..fid.count_ones()).step_by(97) {
            let p = fid.select1(k).unwrap();
            assert!(fid.get(p));
            assert_eq!(fid.rank1(p), k);
            assert_eq!(fid.rank1(p + 1), k + 1);
        }
    }

    #[test]
    fn boundary_sizes() {
        for n in [
            1usize, 63, 64, 65, 127, 128, 129, 512, 513, 8191, 8192, 8193,
        ] {
            let bits = RawBitVec::from_bits((0..n).map(|i| i % 2 == 1));
            check_against_scan(&bits);
        }
    }
}
