//! Fully dynamic RLE+γ compressed bitvector (§4.2 of the paper, Thm 4.9).
//!
//! The bitvector `0^r0 1^r1 0^r2 …` is stored as its run lengths, each run
//! encoded with an Elias γ code, grouped into small chunks; a counted
//! B+-tree over the chunks stores cumulative (bits, ones) counts. All of
//! Access/Rank/Select/Insert/Delete run in O(log n) plus O(chunk) decoding
//! work, and crucially `Init(b, n)` — creating a constant bitvector of
//! arbitrary length — is O(1): a single chunk holding one run (this is the
//! property Remark 4.2 demands and which gap-encoded bitvectors lack).
//!
//! The paper plugs RLE+γ into the balanced-BST chunk tree of
//! [Mäkinen–Navarro'08 §3.4]; we use a counted B+-tree, the standard
//! engineered equivalent with identical asymptotics (DESIGN.md
//! substitution #2). Space is O(nH0) bits by [Foschini–Grossi–Gupta–
//! Vitter'06] (their Theorem for RLE+γ), as cited by the paper.
//!
//! Two engineering layers keep the constant factors down (DESIGN.md
//! substitution #8); neither changes observable semantics or asymptotics:
//!
//! * **Hot-chunk run cache.** Each `DynamicBitVec` keeps the decoded run
//!   array of the last-edited chunk, together with the prefix bit/one
//!   counts in front of it (`lo`, `ones_before`). Consecutive edits and
//!   queries hitting the same chunk — the common case for Wavelet Trie
//!   column updates, which walk a short window of positions — skip both
//!   the γ decode and the re-encode, and in-range queries skip the tree
//!   descent entirely; the runs are flushed back to γ only when an edit
//!   lands in a different chunk or the chunk splits/merges/empties. While
//!   the cache is dirty the chunk's `enc` is stale and the cache is the
//!   single source of truth; because the chunk's counters stay exact, tree
//!   descents for out-of-range positions can never reach the stale
//!   encoding, so queries need no interior mutability.
//! * **Prefix-summed internal nodes.** Internal B+-tree nodes store
//!   cumulative `(bits, ones)` arrays instead of per-child totals, so child
//!   descent is a branch-light scan over a flat `u64` array rather than a
//!   subtract-per-child loop.

use crate::codes::{gamma_encode, gamma_len, BitReader};
use crate::{BitAccess, BitRank, BitSelect, RawBitVec, SpaceUsage};

/// Maximum runs per chunk before it splits. Larger chunks amortize the
/// per-chunk struct overhead (which dominates for dense bitvectors) while
/// keeping per-edit decode work bounded.
const MAX_RUNS: usize = 128;
/// Two neighbouring leaves merge when their combined runs fit this bound.
const MERGE_RUNS: usize = MAX_RUNS / 2;
/// Maximum children per internal node before it splits.
const MAX_FANOUT: usize = 16;
/// Chunk id meaning "not a cacheable chunk" / "cache empty".
const NO_CHUNK: u64 = u64::MAX;
/// Bitvectors shorter than this skip the run cache: their chunks are cheap
/// to rebuild per edit, and in structures holding many small bitvectors
/// (one Wavelet Trie column per node) per-column caches of tiny chunks
/// would dominate measured space. A decoded chunk costs up to
/// `MAX_RUNS · 64` bits, so the threshold keeps the cache's footprint a
/// small fraction of any vector that carries one.
const CACHE_MIN_VEC_BITS: u64 = 4096;

/// A chunk of consecutive runs, γ-encoded.
#[derive(Clone, Debug)]
struct Chunk {
    /// γ codes of the run lengths, alternating bits starting at `first_bit`.
    /// Stale while this chunk is dirty in the [`RunCache`].
    enc: RawBitVec,
    first_bit: bool,
    /// Identity for the run cache; unique within one `DynamicBitVec`.
    id: u64,
    nruns: u32,
    nbits: u64,
    nones: u64,
}

impl Default for Chunk {
    fn default() -> Self {
        Chunk {
            enc: RawBitVec::new(),
            first_bit: false,
            id: NO_CHUNK,
            nruns: 0,
            nbits: 0,
            nones: 0,
        }
    }
}

/// The per-bitvector hot-chunk cache: decoded runs of chunk `id`.
///
/// Invariants: while `dirty`, `runs` is the truth for the chunk (its `enc`
/// is stale) and no edit has touched any *other* chunk since the last
/// `note_edit`, so `[lo, hi)` is the chunk's global bit range,
/// `ones_before` the ones in `[0, lo)`, and `first_bit`/`nones` mirror the
/// chunk — enough to answer in-range queries without descending the tree.
/// A clean entry only reuses `runs` (skipping the decode on the next edit
/// of the same chunk); its recorded positions are not trusted.
#[derive(Clone, Debug, Default)]
struct RunCache {
    id: u64,
    dirty: bool,
    lo: u64,
    hi: u64,
    ones_before: u64,
    first_bit: bool,
    nones: u64,
    runs: Vec<u64>,
}

impl RunCache {
    fn new() -> Self {
        RunCache {
            id: NO_CHUNK,
            ..RunCache::default()
        }
    }

    /// Loads `chunk`'s runs unless already cached. The previous entry must
    /// not be dirty (the top-level edit path flushes before switching).
    fn open(&mut self, chunk: &Chunk) {
        if self.id == chunk.id {
            return;
        }
        debug_assert!(!self.dirty, "evicting a dirty cache entry without flush");
        self.id = chunk.id;
        self.runs.clear();
        // A long-lived bitvector should not stay pinned at the largest
        // chunk it ever decoded.
        if self.runs.capacity() > 2 * (MAX_RUNS + 2) {
            self.runs.shrink_to_fit();
        }
        let mut r = BitReader::new(&chunk.enc, 0);
        for _ in 0..chunk.nruns {
            self.runs.push(r.read_gamma());
        }
    }

    fn invalidate(&mut self) {
        self.id = NO_CHUNK;
        self.dirty = false;
    }

    /// Records post-edit chunk state so in-range queries can be answered
    /// straight from the cache.
    fn note_edit(&mut self, chunk: &Chunk, abs_start: u64, abs_ones: u64) {
        self.dirty = true;
        self.lo = abs_start;
        self.hi = abs_start + chunk.nbits;
        self.ones_before = abs_ones;
        self.first_bit = chunk.first_bit;
        self.nones = chunk.nones;
    }

    /// Bit value of cached run `i`.
    #[inline]
    fn run_bit(&self, i: usize) -> bool {
        self.first_bit == i.is_multiple_of(2)
    }

    /// (bit, ones) at chunk-local position `p`, by scanning the runs.
    fn locate_local(&self, p: u64) -> (bool, u64) {
        let mut seen = 0u64;
        let mut ones = 0u64;
        for (i, &r) in self.runs.iter().enumerate() {
            let bit = self.run_bit(i);
            if p < seen + r {
                return (bit, ones + if bit { p - seen } else { 0 });
            }
            seen += r;
            if bit {
                ones += r;
            }
        }
        unreachable!("position within cached chunk");
    }

    /// Chunk-local position of the `k`-th chunk-local `bit`.
    fn select_local(&self, bit: bool, k: u64) -> u64 {
        let mut seen = 0u64;
        let mut matched = 0u64;
        for (i, &r) in self.runs.iter().enumerate() {
            if self.run_bit(i) == bit {
                if k < matched + r {
                    return seen + (k - matched);
                }
                matched += r;
            }
            seen += r;
        }
        unreachable!("k within cached chunk");
    }

    fn size_bits(&self) -> usize {
        self.runs.capacity() * 64 + 8 * 64
    }
}

thread_local! {
    /// Shared decode buffer for uncached edits, splits, and leaf merges:
    /// per-edit work never exceeds a chunk, so one thread-local buffer
    /// serves every bitvector below the cache threshold without adding
    /// per-structure memory (a Wavelet Trie holds one bitvector per node).
    static SCRATCH: std::cell::RefCell<Vec<u64>> =
        std::cell::RefCell::new(Vec::with_capacity(MAX_RUNS + 2));
}

/// Runs `f` with the shared scratch buffer.
fn with_scratch<R>(f: impl FnOnce(&mut Vec<u64>) -> R) -> R {
    SCRATCH.with(|sc| f(&mut sc.borrow_mut()))
}

/// Mutable state threaded through edit descents.
struct EditCtx<'a> {
    cache: &'a mut RunCache,
    next_id: &'a mut u64,
    /// Total bits in the vector at the start of the edit (cache threshold).
    vec_bits: u64,
}

impl EditCtx<'_> {
    fn fresh_id(&mut self) -> u64 {
        let id = *self.next_id;
        *self.next_id += 1;
        id
    }
}

impl Chunk {
    fn from_runs(id: u64, first_bit: bool, runs: &[u64]) -> Self {
        debug_assert!(runs.iter().all(|&r| r > 0));
        let total: usize = runs.iter().map(|&r| gamma_len(r)).sum();
        let mut enc = RawBitVec::with_capacity(total);
        let mut nbits = 0u64;
        let mut nones = 0u64;
        for (i, &r) in runs.iter().enumerate() {
            gamma_encode(&mut enc, r);
            nbits += r;
            if (i % 2 == 0) == first_bit {
                nones += r;
            }
        }
        Chunk {
            enc,
            first_bit,
            id,
            nruns: runs.len() as u32,
            nbits,
            nones,
        }
    }

    /// Rebuilds `enc` from `runs` (cache flush); counters already match.
    fn reencode_from(&mut self, runs: &[u64]) {
        debug_assert_eq!(runs.len(), self.nruns as usize);
        let total: usize = runs.iter().map(|&r| gamma_len(r)).sum();
        let mut enc = RawBitVec::with_capacity(total);
        for &r in runs {
            gamma_encode(&mut enc, r);
        }
        enc.shrink_to_fit();
        self.enc = enc;
    }

    fn decode_into(&self, out: &mut Vec<u64>) {
        out.clear();
        let mut r = BitReader::new(&self.enc, 0);
        for _ in 0..self.nruns {
            out.push(r.read_gamma());
        }
    }

    /// Bit value of run `i`.
    #[inline]
    fn run_bit(&self, i: usize) -> bool {
        self.first_bit == i.is_multiple_of(2)
    }

    /// (bit at `pos`, ones in `[0, pos)`).
    fn locate(&self, pos: u64) -> (bool, u64) {
        debug_assert!(pos < self.nbits);
        let mut r = BitReader::new(&self.enc, 0);
        let mut seen = 0u64;
        let mut ones = 0u64;
        for i in 0..self.nruns as usize {
            let run = r.read_gamma();
            if pos < seen + run {
                let bit = self.run_bit(i);
                return (bit, ones + if bit { pos - seen } else { 0 });
            }
            seen += run;
            if self.run_bit(i) {
                ones += run;
            }
        }
        unreachable!("pos within chunk");
    }

    fn rank1(&self, pos: u64) -> u64 {
        debug_assert!(pos <= self.nbits);
        if pos == self.nbits {
            return self.nones;
        }
        self.locate(pos).1
    }

    /// Position of the `k`-th bit equal to `bit` (guaranteed to exist).
    fn select(&self, bit: bool, k: u64) -> u64 {
        debug_assert!(
            k < if bit {
                self.nones
            } else {
                self.nbits - self.nones
            }
        );
        let mut r = BitReader::new(&self.enc, 0);
        let mut seen = 0u64;
        let mut matched = 0u64;
        for i in 0..self.nruns as usize {
            let run = r.read_gamma();
            if self.run_bit(i) == bit {
                if k < matched + run {
                    return seen + (k - matched);
                }
                matched += run;
            }
            seen += run;
        }
        unreachable!("k within chunk");
    }

    /// Applies a single-bit insert to this chunk's decoded run list,
    /// updating the chunk's counters. Shared by the cached and uncached
    /// edit paths.
    fn apply_insert(&mut self, runs: &mut Vec<u64>, pos: u64, bit: bool) {
        // Find run containing pos, treating pos == nbits as "after the end".
        let mut seen = 0u64;
        let mut idx = runs.len(); // sentinel: append
        for (i, &r) in runs.iter().enumerate() {
            if pos < seen + r {
                idx = i;
                break;
            }
            seen += r;
        }
        if idx == runs.len() {
            // Append at the very end.
            let last = runs.len() - 1;
            if self.run_bit(last) == bit {
                runs[last] += 1;
            } else {
                runs.push(1);
            }
        } else if self.run_bit(idx) == bit {
            runs[idx] += 1;
        } else if pos == seen {
            // At the boundary before run idx: extend the previous run
            // (same bit), or create a new first run.
            if idx > 0 {
                runs[idx - 1] += 1;
            } else {
                runs.insert(0, 1);
                self.first_bit = bit;
            }
        } else {
            // Strictly inside a run of the opposite bit: split it.
            let off = pos - seen;
            let rest = runs[idx] - off;
            runs[idx] = off;
            runs.insert(idx + 1, 1);
            runs.insert(idx + 2, rest);
        }
        self.nruns = runs.len() as u32;
        self.nbits += 1;
        self.nones += bit as u64;
    }

    /// Applies a single-bit delete to this chunk's decoded run list,
    /// updating the chunk's counters; returns the deleted bit.
    fn apply_delete(&mut self, runs: &mut Vec<u64>, pos: u64) -> bool {
        let mut seen = 0u64;
        let mut idx = 0usize;
        for (i, &r) in runs.iter().enumerate() {
            if pos < seen + r {
                idx = i;
                break;
            }
            seen += r;
        }
        let bit = self.run_bit(idx);
        runs[idx] -= 1;
        if runs[idx] == 0 {
            runs.remove(idx);
            if idx == 0 {
                self.first_bit = !self.first_bit;
            } else if idx < runs.len() {
                // Neighbours idx-1 and idx now adjacent with the same bit.
                runs[idx - 1] += runs[idx];
                runs.remove(idx);
            }
        }
        self.nruns = runs.len() as u32;
        self.nbits -= 1;
        self.nones -= bit as u64;
        bit
    }

    /// Whether an edit to this chunk should go through the run cache. A
    /// chunk the cache already holds must keep using it (the cache may be
    /// the only valid copy); otherwise only vectors past the size threshold
    /// warm the cache.
    #[inline]
    fn wants_cache(&self, cache: &RunCache, vec_bits: u64) -> bool {
        cache.id == self.id || vec_bits >= CACHE_MIN_VEC_BITS
    }

    /// Inserts `bit` at `pos <= nbits`. Large chunks are edited in the run
    /// cache (no decode/re-encode); small ones decode-edit-reencode on the
    /// spot. `abs_start`/`abs_ones` are the bits and ones before this chunk
    /// globally.
    fn insert(
        &mut self,
        pos: u64,
        bit: bool,
        abs_start: u64,
        abs_ones: u64,
        ctx: &mut EditCtx<'_>,
    ) {
        if self.nruns == 0 {
            *self = Chunk::from_runs(ctx.fresh_id(), bit, &[1]);
            return;
        }
        let vec_bits = ctx.vec_bits;
        let cache = &mut *ctx.cache;
        if self.wants_cache(cache, vec_bits) {
            cache.open(self);
            let mut runs = std::mem::take(&mut cache.runs);
            self.apply_insert(&mut runs, pos, bit);
            cache.runs = runs;
            cache.note_edit(self, abs_start, abs_ones);
        } else {
            with_scratch(|runs| {
                self.decode_into(runs);
                self.apply_insert(runs, pos, bit);
                self.reencode_from(runs);
            });
        }
    }

    /// Deletes the bit at `pos`, returning it.
    fn delete(&mut self, pos: u64, abs_start: u64, abs_ones: u64, ctx: &mut EditCtx<'_>) -> bool {
        debug_assert!(pos < self.nbits);
        let vec_bits = ctx.vec_bits;
        let cache = &mut *ctx.cache;
        if self.wants_cache(cache, vec_bits) {
            cache.open(self);
            let mut runs = std::mem::take(&mut cache.runs);
            let bit = self.apply_delete(&mut runs, pos);
            let emptied = runs.is_empty();
            cache.runs = runs;
            if emptied {
                cache.invalidate();
                *self = Chunk::default();
            } else {
                cache.note_edit(self, abs_start, abs_ones);
            }
            bit
        } else {
            with_scratch(|runs| {
                self.decode_into(runs);
                let bit = self.apply_delete(runs, pos);
                if runs.is_empty() {
                    *self = Chunk::default();
                } else {
                    self.reencode_from(runs);
                }
                bit
            })
        }
    }

    /// Splits into two chunks of roughly equal run counts. Called right
    /// after an insert: the runs are in the cache if that insert used it,
    /// otherwise they are re-decoded into the scratch buffer.
    fn split(&mut self, ctx: &mut EditCtx<'_>) -> Chunk {
        let right_id = ctx.fresh_id();
        let cache = &mut *ctx.cache;
        if cache.id == self.id {
            let runs = &cache.runs;
            let mid = runs.len() / 2;
            let right = Chunk::from_runs(right_id, self.run_bit(mid), &runs[mid..]);
            *self = Chunk::from_runs(self.id, self.first_bit, &runs[..mid]);
            cache.invalidate();
            right
        } else {
            with_scratch(|runs| {
                self.decode_into(runs);
                let mid = runs.len() / 2;
                let right = Chunk::from_runs(right_id, self.run_bit(mid), &runs[mid..]);
                *self = Chunk::from_runs(self.id, self.first_bit, &runs[..mid]);
                right
            })
        }
    }

    /// Appends all runs of `other` (used for leaf merging). The caller has
    /// already flushed/invalidated the cache for both chunks.
    fn merge(&mut self, other: &Chunk, scratch: &mut Vec<u64>) {
        if other.nruns == 0 {
            return;
        }
        if self.nruns == 0 {
            *self = other.clone();
            return;
        }
        self.decode_into(scratch);
        let mut r = BitReader::new(&other.enc, 0);
        let first = r.read_gamma();
        if self.run_bit(self.nruns as usize - 1) == other.first_bit {
            *scratch.last_mut().expect("nonempty") += first;
        } else {
            scratch.push(first);
        }
        for _ in 1..other.nruns {
            scratch.push(r.read_gamma());
        }
        *self = Chunk::from_runs(self.id, self.first_bit, scratch);
    }

    fn size_bits(&self) -> usize {
        // Header: first_bit + id + nruns + nbits + nones. `enc` is built at
        // exact capacity on every seal/flush, so it carries no slack.
        self.enc.size_bits() + 3 * 64 + 32 + 8
    }
}

#[derive(Clone, Debug)]
enum Node {
    Leaf(Chunk),
    Internal(Internal),
}

/// Internal B+-tree node with prefix-summed child counts:
/// `cum_bits[i]`/`cum_ones[i]` cover children `0..=i`, so descent scans a
/// flat array and subtree totals are the last entries.
#[derive(Clone, Debug)]
struct Internal {
    children: Vec<Node>,
    cum_bits: Vec<u64>,
    cum_ones: Vec<u64>,
}

impl Internal {
    fn from_children(children: Vec<Node>) -> Self {
        let mut node = Internal {
            children,
            cum_bits: Vec::new(),
            cum_ones: Vec::new(),
        };
        node.rebuild_from(0);
        node
    }

    #[inline]
    fn nbits(&self) -> u64 {
        self.cum_bits.last().copied().unwrap_or(0)
    }

    #[inline]
    fn nones(&self) -> u64 {
        self.cum_ones.last().copied().unwrap_or(0)
    }

    #[inline]
    fn child_start(&self, i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            self.cum_bits[i - 1]
        }
    }

    #[inline]
    fn ones_before(&self, i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            self.cum_ones[i - 1]
        }
    }

    /// First child whose range strictly contains `pos` (`pos < nbits()`).
    #[inline]
    fn child_containing(&self, pos: u64) -> usize {
        let mut i = 0;
        while self.cum_bits[i] <= pos {
            i += 1;
        }
        i
    }

    /// First child whose cumulative end reaches `pos` (`pos <= nbits()`):
    /// boundary positions go to the left child, so appends extend it.
    #[inline]
    fn child_covering(&self, pos: u64) -> usize {
        let mut i = 0;
        while self.cum_bits[i] < pos {
            i += 1;
        }
        i
    }

    /// Recomputes the cumulative arrays for children `from..`.
    fn rebuild_from(&mut self, from: usize) {
        let (mut bits, mut ones) = if from == 0 {
            (0, 0)
        } else {
            (self.cum_bits[from - 1], self.cum_ones[from - 1])
        };
        self.cum_bits.truncate(from);
        self.cum_ones.truncate(from);
        for ch in &self.children[from..] {
            bits += ch.nbits();
            ones += ch.nones();
            self.cum_bits.push(bits);
            self.cum_ones.push(ones);
        }
    }

    /// Adjusts the cumulative arrays for a single-bit insert/delete in the
    /// subtree of child `idx`.
    #[inline]
    fn bump(&mut self, idx: usize, inserted: bool, bit: bool) {
        for j in idx..self.cum_bits.len() {
            if inserted {
                self.cum_bits[j] += 1;
                self.cum_ones[j] += bit as u64;
            } else {
                self.cum_bits[j] -= 1;
                self.cum_ones[j] -= bit as u64;
            }
        }
    }
}

impl Node {
    #[inline]
    fn nbits(&self) -> u64 {
        match self {
            Node::Leaf(c) => c.nbits,
            Node::Internal(i) => i.nbits(),
        }
    }

    #[inline]
    fn nones(&self) -> u64 {
        match self {
            Node::Leaf(c) => c.nones,
            Node::Internal(i) => i.nones(),
        }
    }

    fn locate(&self, pos: u64) -> (bool, u64) {
        match self {
            Node::Leaf(c) => c.locate(pos),
            Node::Internal(nd) => {
                let idx = nd.child_containing(pos);
                let (b, o) = nd.children[idx].locate(pos - nd.child_start(idx));
                (b, nd.ones_before(idx) + o)
            }
        }
    }

    fn rank1(&self, pos: u64) -> u64 {
        match self {
            Node::Leaf(c) => c.rank1(pos),
            Node::Internal(nd) => {
                if pos == nd.nbits() {
                    return nd.nones();
                }
                let idx = nd.child_covering(pos);
                nd.ones_before(idx) + nd.children[idx].rank1(pos - nd.child_start(idx))
            }
        }
    }

    fn select(&self, bit: bool, k: u64) -> u64 {
        match self {
            Node::Leaf(c) => c.select(bit, k),
            Node::Internal(nd) => {
                let cnt = |i: usize| {
                    if bit {
                        nd.cum_ones[i]
                    } else {
                        nd.cum_bits[i] - nd.cum_ones[i]
                    }
                };
                let mut idx = 0;
                while cnt(idx) <= k {
                    idx += 1;
                }
                let before = if idx == 0 { 0 } else { cnt(idx - 1) };
                nd.child_start(idx) + nd.children[idx].select(bit, k - before)
            }
        }
    }

    /// Runs `f` on the leaf chunk containing bit `pos` (used to flush the
    /// cache back into a chunk located by its recorded global range).
    fn with_leaf_at<R>(&mut self, pos: u64, f: impl FnOnce(&mut Chunk) -> R) -> R {
        match self {
            Node::Leaf(c) => f(c),
            Node::Internal(nd) => {
                let idx = nd.child_containing(pos);
                let start = nd.child_start(idx);
                nd.children[idx].with_leaf_at(pos - start, f)
            }
        }
    }

    /// Inserts; returns a new right sibling if this node split. `abs` and
    /// `abs_ones` are the bits and ones preceding this subtree globally.
    fn insert(
        &mut self,
        pos: u64,
        bit: bool,
        abs: u64,
        abs_ones: u64,
        ctx: &mut EditCtx<'_>,
    ) -> Option<Node> {
        match self {
            Node::Leaf(c) => {
                c.insert(pos, bit, abs, abs_ones, ctx);
                if c.nruns as usize > MAX_RUNS {
                    Some(Node::Leaf(c.split(ctx)))
                } else {
                    None
                }
            }
            Node::Internal(nd) => {
                let idx = nd.child_covering(pos);
                let start = nd.child_start(idx);
                let ones = nd.ones_before(idx);
                let split =
                    nd.children[idx].insert(pos - start, bit, abs + start, abs_ones + ones, ctx);
                if let Some(split) = split {
                    nd.children.insert(idx + 1, split);
                    nd.rebuild_from(idx);
                    if nd.children.len() > MAX_FANOUT {
                        let right_children = nd.children.split_off(nd.children.len() / 2);
                        // The insert that triggered this split doubled the
                        // children capacity past MAX_FANOUT; these arrays
                        // are long-lived, so drop the slack now.
                        nd.children.shrink_to_fit();
                        nd.rebuild_from(0);
                        nd.cum_bits.shrink_to_fit();
                        nd.cum_ones.shrink_to_fit();
                        return Some(Node::Internal(Internal::from_children(right_children)));
                    }
                } else {
                    nd.bump(idx, true, bit);
                }
                None
            }
        }
    }

    /// Deletes the bit at `pos`, returning it.
    fn delete(&mut self, pos: u64, abs: u64, abs_ones: u64, ctx: &mut EditCtx<'_>) -> bool {
        match self {
            Node::Leaf(c) => c.delete(pos, abs, abs_ones, ctx),
            Node::Internal(nd) => {
                let idx = nd.child_containing(pos);
                let start = nd.child_start(idx);
                let ones = nd.ones_before(idx);
                let bit = nd.children[idx].delete(pos - start, abs + start, abs_ones + ones, ctx);
                nd.bump(idx, false, bit);
                // Drop empty children; opportunistically merge small leaves.
                if nd.children[idx].nbits() == 0 {
                    nd.children.remove(idx);
                    nd.rebuild_from(idx);
                } else if idx + 1 < nd.children.len() {
                    Self::try_merge_leaves(nd, idx, ctx);
                } else if idx > 0 {
                    Self::try_merge_leaves(nd, idx - 1, ctx);
                }
                bit
            }
        }
    }

    fn try_merge_leaves(nd: &mut Internal, i: usize, ctx: &mut EditCtx<'_>) {
        if i + 1 >= nd.children.len() {
            return;
        }
        let combined = match (&nd.children[i], &nd.children[i + 1]) {
            (Node::Leaf(a), Node::Leaf(b)) => a.nruns as usize + b.nruns as usize,
            _ => return,
        };
        if combined > MERGE_RUNS {
            return;
        }
        // The merge invalidates any cache entry covering either leaf; a
        // dirty entry is written back first.
        for j in [i, i + 1] {
            if let Node::Leaf(c) = &mut nd.children[j] {
                if c.id != NO_CHUNK && c.id == ctx.cache.id {
                    if ctx.cache.dirty {
                        c.reencode_from(&ctx.cache.runs);
                    }
                    ctx.cache.invalidate();
                }
            }
        }
        let right = nd.children.remove(i + 1);
        if let (Node::Leaf(a), Node::Leaf(b)) = (&mut nd.children[i], &right) {
            with_scratch(|scratch| a.merge(b, scratch));
        }
        nd.rebuild_from(i);
    }

    fn size_bits(&self) -> usize {
        match self {
            Node::Leaf(c) => c.size_bits(),
            Node::Internal(nd) => {
                nd.children.iter().map(|c| c.size_bits()).sum::<usize>()
                    + nd.children.capacity() * (std::mem::size_of::<Node>() * 8)
                    + (nd.cum_bits.capacity() + nd.cum_ones.capacity()) * 64
            }
        }
    }
}

/// The fully dynamic bitvector of Theorem 4.9.
///
/// Supports `Access`, `Rank`, `Select`, `Insert`, `Delete` in O(log n) and
/// `Init(b, n)` ([`DynamicBitVec::filled`]) in O(1); space O(nH0 + log n).
#[derive(Clone, Debug)]
pub struct DynamicBitVec {
    root: Node,
    cache: RunCache,
    next_id: u64,
}

impl Default for DynamicBitVec {
    fn default() -> Self {
        Self::new()
    }
}

impl DynamicBitVec {
    /// Creates an empty bitvector.
    pub fn new() -> Self {
        DynamicBitVec {
            root: Node::Leaf(Chunk::default()),
            cache: RunCache::new(),
            next_id: 0,
        }
    }

    /// `Init(b, n)` (§4.2): a bitvector of `n` copies of `bit`, in O(1).
    pub fn filled(bit: bool, n: usize) -> Self {
        let chunk = if n == 0 {
            Chunk::default()
        } else {
            Chunk::from_runs(0, bit, &[n as u64])
        };
        DynamicBitVec {
            root: Node::Leaf(chunk),
            cache: RunCache::new(),
            next_id: 1,
        }
    }

    /// Builds by repeated insertion at the end.
    pub fn from_bits<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut v = Self::new();
        for b in iter {
            v.push(b);
        }
        v
    }

    /// Writes a dirty cache entry back into its chunk's γ encoding.
    fn flush_into(root: &mut Node, cache: &mut RunCache) {
        debug_assert!(cache.dirty);
        let runs = std::mem::take(&mut cache.runs);
        let id = cache.id;
        root.with_leaf_at(cache.lo, |c| {
            debug_assert_eq!(c.id, id, "cache range out of sync with tree");
            c.reencode_from(&runs);
        });
        cache.runs = runs;
        cache.dirty = false;
    }

    /// Inserts `bit` at position `pos <= len`.
    pub fn insert(&mut self, pos: usize, bit: bool) {
        assert!(
            pos as u64 <= self.root.nbits(),
            "insert position out of bounds"
        );
        let pos = pos as u64;
        if self.cache.dirty {
            // Boundary rule of the descent: an insert at the chunk's start
            // goes to the left sibling (unless there is none), one at its
            // end extends the chunk.
            let targets = pos <= self.cache.hi && (pos > self.cache.lo || self.cache.lo == 0);
            if !targets {
                Self::flush_into(&mut self.root, &mut self.cache);
            }
        }
        let mut ctx = EditCtx {
            vec_bits: self.root.nbits(),
            cache: &mut self.cache,
            next_id: &mut self.next_id,
        };
        if let Some(split) = self.root.insert(pos, bit, 0, 0, &mut ctx) {
            let old = std::mem::replace(&mut self.root, Node::Leaf(Chunk::default()));
            self.root = Node::Internal(Internal::from_children(vec![old, split]));
        }
    }

    /// Appends `bit`.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        self.insert(self.len(), bit);
    }

    /// Deletes and returns the bit at `pos < len`.
    pub fn remove(&mut self, pos: usize) -> bool {
        assert!(
            (pos as u64) < self.root.nbits(),
            "delete position out of bounds"
        );
        let pos = pos as u64;
        if self.cache.dirty && !(pos >= self.cache.lo && pos < self.cache.hi) {
            Self::flush_into(&mut self.root, &mut self.cache);
        }
        let mut ctx = EditCtx {
            vec_bits: self.root.nbits(),
            cache: &mut self.cache,
            next_id: &mut self.next_id,
        };
        let bit = self.root.delete(pos, 0, 0, &mut ctx);
        // Collapse a single-child root so height can shrink.
        loop {
            let replace = match &mut self.root {
                Node::Internal(i) if i.children.len() == 1 => i.children.pop().expect("child"),
                _ => break,
            };
            self.root = replace;
        }
        bit
    }

    /// (bit at `pos`, ones before `pos`) in one descent — or none at all
    /// when `pos` falls inside the cached hot chunk.
    #[inline]
    pub fn access_rank(&self, pos: usize) -> (bool, usize) {
        assert!((pos as u64) < self.root.nbits());
        let pos = pos as u64;
        let c = &self.cache;
        if c.dirty && pos >= c.lo && pos < c.hi {
            let (b, o) = c.locate_local(pos - c.lo);
            return (b, (c.ones_before + o) as usize);
        }
        let (b, o) = self.root.locate(pos);
        (b, o as usize)
    }

    /// Iterates over all bits (O(1) amortized per bit).
    pub fn iter(&self) -> DynBitIter<'_> {
        DynBitIter::new(self)
    }
}

/// Run-aware iterator over a [`DynamicBitVec`].
pub struct DynBitIter<'a> {
    stack: Vec<(&'a Node, usize)>,
    /// Decoded runs of the current chunk.
    runs: Vec<u64>,
    run_idx: usize,
    current_bit: bool,
    remaining_in_run: u64,
    /// Dirty cache entry: (chunk id, its true runs) — the iterator borrows
    /// the vector, so no snapshot copy is taken.
    hot: Option<(u64, &'a [u64])>,
}

impl<'a> DynBitIter<'a> {
    fn new(v: &'a DynamicBitVec) -> Self {
        let hot = v
            .cache
            .dirty
            .then_some((v.cache.id, v.cache.runs.as_slice()));
        let mut it = DynBitIter {
            stack: vec![(&v.root, 0)],
            runs: Vec::new(),
            run_idx: 0,
            current_bit: false,
            remaining_in_run: 0,
            hot,
        };
        it.advance_chunk();
        it
    }

    /// Moves to the next non-empty chunk; returns false at the end.
    fn advance_chunk(&mut self) -> bool {
        while let Some((node, idx)) = self.stack.pop() {
            match node {
                Node::Leaf(c) => {
                    if c.nruns > 0 {
                        match self.hot {
                            Some((id, runs)) if id == c.id => {
                                self.runs.clear();
                                self.runs.extend_from_slice(runs);
                            }
                            _ => c.decode_into(&mut self.runs),
                        }
                        self.run_idx = 0;
                        self.current_bit = c.first_bit;
                        self.remaining_in_run = self.runs[0];
                        return true;
                    }
                }
                Node::Internal(i) => {
                    if idx < i.children.len() {
                        self.stack.push((node, idx + 1));
                        self.stack.push((&i.children[idx], 0));
                    }
                }
            }
        }
        false
    }
}

impl<'a> Iterator for DynBitIter<'a> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        loop {
            if self.remaining_in_run > 0 {
                self.remaining_in_run -= 1;
                return Some(self.current_bit);
            }
            if self.run_idx + 1 < self.runs.len() {
                self.run_idx += 1;
                self.current_bit = !self.current_bit;
                self.remaining_in_run = self.runs[self.run_idx];
            } else if !self.advance_chunk() {
                return None;
            }
        }
    }
}

impl BitAccess for DynamicBitVec {
    #[inline]
    fn len(&self) -> usize {
        self.root.nbits() as usize
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        self.access_rank(i).0
    }
}

impl BitRank for DynamicBitVec {
    #[inline]
    fn rank1(&self, i: usize) -> usize {
        assert!(i as u64 <= self.root.nbits(), "rank index out of bounds");
        let i = i as u64;
        let c = &self.cache;
        if c.dirty && i >= c.lo && i < c.hi {
            return (c.ones_before + c.locate_local(i - c.lo).1) as usize;
        }
        self.root.rank1(i) as usize
    }

    #[inline]
    fn count_ones(&self) -> usize {
        self.root.nones() as usize
    }
}

impl BitSelect for DynamicBitVec {
    fn select1(&self, k: usize) -> Option<usize> {
        if k >= self.count_ones() {
            return None;
        }
        let k = k as u64;
        let c = &self.cache;
        if c.dirty && k >= c.ones_before && k < c.ones_before + c.nones {
            return Some((c.lo + c.select_local(true, k - c.ones_before)) as usize);
        }
        Some(self.root.select(true, k) as usize)
    }

    fn select0(&self, k: usize) -> Option<usize> {
        if k >= self.len() - self.count_ones() {
            return None;
        }
        let k = k as u64;
        let c = &self.cache;
        if c.dirty {
            let zeros_before = c.lo - c.ones_before;
            let zeros_in = (c.hi - c.lo) - c.nones;
            if k >= zeros_before && k < zeros_before + zeros_in {
                return Some((c.lo + c.select_local(false, k - zeros_before)) as usize);
            }
        }
        Some(self.root.select(false, k) as usize)
    }
}

impl SpaceUsage for DynamicBitVec {
    fn size_bits(&self) -> usize {
        self.root.size_bits() + self.cache.size_bits() + 2 * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Mirror model executing the same operations on a Vec<bool>.
    struct Model {
        v: DynamicBitVec,
        m: Vec<bool>,
    }

    impl Model {
        fn new() -> Self {
            Model {
                v: DynamicBitVec::new(),
                m: Vec::new(),
            }
        }

        fn filled(bit: bool, n: usize) -> Self {
            Model {
                v: DynamicBitVec::filled(bit, n),
                m: vec![bit; n],
            }
        }

        fn insert(&mut self, pos: usize, bit: bool) {
            self.v.insert(pos, bit);
            self.m.insert(pos, bit);
        }

        fn remove(&mut self, pos: usize) {
            let got = self.v.remove(pos);
            let want = self.m.remove(pos);
            assert_eq!(got, want, "remove({pos})");
        }

        fn check(&self) {
            assert_eq!(self.v.len(), self.m.len());
            let ones: usize = self.m.iter().filter(|&&b| b).count();
            assert_eq!(self.v.count_ones(), ones);
            let mut cum = 0usize;
            for (i, &b) in self.m.iter().enumerate() {
                assert_eq!(self.v.get(i), b, "get({i})");
                assert_eq!(self.v.rank1(i), cum, "rank1({i})");
                cum += b as usize;
            }
            assert_eq!(self.v.rank1(self.m.len()), cum);
            let mut seen1 = 0usize;
            let mut seen0 = 0usize;
            for (i, &b) in self.m.iter().enumerate() {
                if b {
                    assert_eq!(self.v.select1(seen1), Some(i), "select1({seen1})");
                    seen1 += 1;
                } else {
                    assert_eq!(self.v.select0(seen0), Some(i), "select0({seen0})");
                    seen0 += 1;
                }
            }
            assert_eq!(self.v.select1(seen1), None);
            assert_eq!(self.v.select0(seen0), None);
            let collected: Vec<bool> = self.v.iter().collect();
            assert_eq!(collected, self.m, "iterator");
        }
    }

    #[test]
    fn empty() {
        let m = Model::new();
        m.check();
    }

    #[test]
    fn push_only() {
        let mut m = Model::new();
        for i in 0..2000 {
            m.insert(m.m.len(), i % 3 == 0);
        }
        m.check();
    }

    #[test]
    fn filled_then_edit() {
        let mut m = Model::filled(true, 1000);
        m.check();
        for i in 0..100 {
            m.insert(i * 7, i % 2 == 0);
        }
        m.check();
        for _ in 0..200 {
            m.remove(m.m.len() / 2);
        }
        m.check();
    }

    #[test]
    fn init_is_constant_time_representation() {
        // A filled vector must be a single run regardless of n (Remark 4.2).
        for n in [1usize, 1000, 1_000_000, 1 << 30] {
            let v = DynamicBitVec::filled(true, n);
            assert_eq!(v.len(), n);
            assert_eq!(v.count_ones(), n);
            assert!(
                v.size_bits() < 4096,
                "Init must not allocate proportional to n (n={n}, bits={})",
                v.size_bits()
            );
            assert_eq!(v.rank1(n / 2), n / 2);
            assert_eq!(v.select1(n - 1), Some(n - 1));
            assert_eq!(v.select0(0), None);
        }
    }

    #[test]
    fn interleaved_pseudorandom_ops() {
        let mut s = 0xABCD_EF01_2345_6789u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut m = Model::new();
        for step in 0..3000 {
            let r = next();
            let len = m.m.len();
            if len == 0 || r % 3 != 0 {
                let pos = if len == 0 {
                    0
                } else {
                    (next() % (len as u64 + 1)) as usize
                };
                m.insert(pos, next() % 2 == 0);
            } else {
                let pos = (next() % len as u64) as usize;
                m.remove(pos);
            }
            if step % 500 == 499 {
                m.check();
            }
        }
        m.check();
    }

    #[test]
    fn run_heavy_workload_compresses() {
        // 100k bits in runs of ~1000: must use far fewer than 100k bits.
        let mut v = DynamicBitVec::new();
        for i in 0..100_000 {
            v.push((i / 1000) % 2 == 0);
        }
        assert!(
            v.size_bits() < 20_000,
            "RLE should compress runs: {}",
            v.size_bits()
        );
        // Alternating bits are the worst case: space grows but ops stay correct.
        let mut w = DynamicBitVec::new();
        for i in 0..10_000 {
            w.push(i % 2 == 0);
        }
        assert_eq!(w.rank1(10_000), 5_000);
    }

    #[test]
    fn delete_down_to_empty() {
        let mut m = Model::filled(false, 300);
        for _ in 0..300 {
            m.remove(0);
        }
        m.check();
        m.insert(0, true);
        m.check();
    }

    #[test]
    fn insert_at_both_ends() {
        let mut m = Model::new();
        for i in 0..500 {
            m.insert(0, i % 2 == 0);
            m.insert(m.m.len(), i % 3 == 0);
        }
        m.check();
    }

    #[test]
    fn access_rank_combined() {
        let v = DynamicBitVec::from_bits((0..100).map(|i| i % 7 < 3));
        for i in 0..100 {
            let (b, r) = v.access_rank(i);
            assert_eq!(b, v.get(i));
            assert_eq!(r, v.rank1(i));
        }
    }

    #[test]
    fn far_apart_edits_force_cache_flush() {
        // Alternate edits between the two ends: every edit evicts a dirty
        // cache entry for the opposite chunk.
        let mut m = Model::filled(false, 4000);
        for i in 0..300 {
            m.insert(i % 10, i % 2 == 0);
            m.insert(m.m.len() - (i % 10), i % 3 == 0);
            m.remove(5);
            m.remove(m.m.len() - 5);
        }
        m.check();
    }

    #[test]
    fn queries_interleaved_with_cached_edits() {
        // Query positions both inside and outside the dirty chunk between
        // edits, without an intervening flush.
        let mut m = Model::filled(true, 2000);
        for i in 0..200 {
            m.insert(1000 + (i % 16), i % 2 == 0);
            let far = i % 500;
            assert_eq!(m.v.rank1(far), m.m[..far].iter().filter(|&&b| b).count());
            assert_eq!(m.v.get(1000 + (i % 16)), m.m[1000 + (i % 16)]);
        }
        m.check();
    }

    #[test]
    fn clone_with_dirty_cache_is_independent() {
        let mut a = Model::new();
        for i in 0..600 {
            a.insert(i / 2, i % 3 == 0);
        }
        // Leave the cache dirty, then clone and diverge.
        let mut b = Model {
            v: a.v.clone(),
            m: a.m.clone(),
        };
        for i in 0..100 {
            a.insert(i, true);
            b.insert(b.m.len() / 2, false);
        }
        a.check();
        b.check();
    }

    #[test]
    fn iterator_reflects_dirty_cache() {
        let mut m = Model::filled(false, 1000);
        m.insert(500, true); // cache now dirty for the middle chunk
        let collected: Vec<bool> = m.v.iter().collect();
        assert_eq!(collected, m.m);
        m.check();
    }
}
