//! Fully dynamic RLE+γ compressed bitvector (§4.2 of the paper, Thm 4.9).
//!
//! The bitvector `0^r0 1^r1 0^r2 …` is stored as its run lengths, each run
//! encoded with an Elias γ code, grouped into small chunks; a counted
//! B+-tree over the chunks stores (bits, ones) subtree counts. All of
//! Access/Rank/Select/Insert/Delete run in O(log n) plus O(chunk) decoding
//! work, and crucially `Init(b, n)` — creating a constant bitvector of
//! arbitrary length — is O(1): a single chunk holding one run (this is the
//! property Remark 4.2 demands and which gap-encoded bitvectors lack).
//!
//! The paper plugs RLE+γ into the balanced-BST chunk tree of
//! [Mäkinen–Navarro'08 §3.4]; we use a counted B+-tree, the standard
//! engineered equivalent with identical asymptotics (DESIGN.md
//! substitution #2). Space is O(nH0) bits by [Foschini–Grossi–Gupta–
//! Vitter'06] (their Theorem for RLE+γ), as cited by the paper.

use crate::codes::{gamma_encode, BitReader};
use crate::{BitAccess, BitRank, BitSelect, RawBitVec, SpaceUsage};

/// Maximum runs per chunk before it splits. Larger chunks amortize the
/// per-chunk struct overhead (which dominates for dense bitvectors) while
/// keeping per-edit decode work bounded.
const MAX_RUNS: usize = 128;
/// Two neighbouring leaves merge when their combined runs fit this bound.
const MERGE_RUNS: usize = MAX_RUNS / 2;
/// Maximum children per internal node before it splits.
const MAX_FANOUT: usize = 16;

/// A chunk of consecutive runs, γ-encoded.
#[derive(Clone, Debug, Default)]
struct Chunk {
    /// γ codes of the run lengths, alternating bits starting at `first_bit`.
    enc: RawBitVec,
    first_bit: bool,
    nruns: u32,
    nbits: u64,
    nones: u64,
}

impl Chunk {
    fn from_runs(first_bit: bool, runs: &[u64]) -> Self {
        debug_assert!(runs.iter().all(|&r| r > 0));
        let mut enc = RawBitVec::with_capacity(runs.len() * 8);
        let mut nbits = 0u64;
        let mut nones = 0u64;
        for (i, &r) in runs.iter().enumerate() {
            gamma_encode(&mut enc, r);
            nbits += r;
            if (i % 2 == 0) == first_bit {
                nones += r;
            }
        }
        Chunk {
            enc,
            first_bit,
            nruns: runs.len() as u32,
            nbits,
            nones,
        }
    }

    fn decode_into(&self, out: &mut Vec<u64>) {
        out.clear();
        let mut r = BitReader::new(&self.enc, 0);
        for _ in 0..self.nruns {
            out.push(r.read_gamma());
        }
    }

    /// Bit value of run `i`.
    #[inline]
    fn run_bit(&self, i: usize) -> bool {
        self.first_bit == i.is_multiple_of(2)
    }

    /// (bit at `pos`, ones in `[0, pos)`).
    fn locate(&self, pos: u64) -> (bool, u64) {
        debug_assert!(pos < self.nbits);
        let mut r = BitReader::new(&self.enc, 0);
        let mut seen = 0u64;
        let mut ones = 0u64;
        for i in 0..self.nruns as usize {
            let run = r.read_gamma();
            if pos < seen + run {
                let bit = self.run_bit(i);
                return (bit, ones + if bit { pos - seen } else { 0 });
            }
            seen += run;
            if self.run_bit(i) {
                ones += run;
            }
        }
        unreachable!("pos within chunk");
    }

    fn rank1(&self, pos: u64) -> u64 {
        debug_assert!(pos <= self.nbits);
        if pos == self.nbits {
            return self.nones;
        }
        let (bit, ones) = self.locate(pos);
        let _ = bit;
        ones
    }

    /// Position of the `k`-th bit equal to `bit` (guaranteed to exist).
    fn select(&self, bit: bool, k: u64) -> u64 {
        debug_assert!(
            k < if bit {
                self.nones
            } else {
                self.nbits - self.nones
            }
        );
        let mut r = BitReader::new(&self.enc, 0);
        let mut seen = 0u64;
        let mut matched = 0u64;
        for i in 0..self.nruns as usize {
            let run = r.read_gamma();
            if self.run_bit(i) == bit {
                if k < matched + run {
                    return seen + (k - matched);
                }
                matched += run;
            }
            seen += run;
        }
        unreachable!("k within chunk");
    }

    /// Inserts `bit` at `pos <= nbits`, editing the run list.
    fn insert(&mut self, pos: u64, bit: bool, scratch: &mut Vec<u64>) {
        if self.nruns == 0 {
            *self = Chunk::from_runs(bit, &[1]);
            return;
        }
        self.decode_into(scratch);
        let runs = scratch;
        // Find run containing pos, treating pos == nbits as "after the end".
        let mut seen = 0u64;
        let mut idx = runs.len(); // sentinel: append
        for (i, &r) in runs.iter().enumerate() {
            if pos < seen + r {
                idx = i;
                break;
            }
            seen += r;
        }
        if idx == runs.len() {
            // Append at the very end.
            let last = runs.len() - 1;
            if self.run_bit(last) == bit {
                runs[last] += 1;
            } else {
                runs.push(1);
            }
        } else if self.run_bit(idx) == bit {
            runs[idx] += 1;
        } else if pos == seen {
            // At the boundary before run idx: extend the previous run
            // (same bit), or create a new first run.
            if idx > 0 {
                runs[idx - 1] += 1;
            } else {
                runs.insert(0, 1);
                self.first_bit = bit;
            }
        } else {
            // Strictly inside a run of the opposite bit: split it.
            let off = pos - seen;
            let rest = runs[idx] - off;
            runs[idx] = off;
            runs.insert(idx + 1, 1);
            runs.insert(idx + 2, rest);
        }
        let fb = self.first_bit;
        *self = Chunk::from_runs(fb, runs);
    }

    /// Deletes the bit at `pos`, returning it.
    fn delete(&mut self, pos: u64, scratch: &mut Vec<u64>) -> bool {
        debug_assert!(pos < self.nbits);
        self.decode_into(scratch);
        let runs = scratch;
        let mut seen = 0u64;
        let mut idx = 0usize;
        for (i, &r) in runs.iter().enumerate() {
            if pos < seen + r {
                idx = i;
                break;
            }
            seen += r;
        }
        let bit = self.run_bit(idx);
        runs[idx] -= 1;
        if runs[idx] == 0 {
            runs.remove(idx);
            if idx == 0 {
                self.first_bit = !self.first_bit;
            } else if idx < runs.len() {
                // Neighbours idx-1 and idx now adjacent with the same bit.
                runs[idx - 1] += runs[idx];
                runs.remove(idx);
            }
        }
        if runs.is_empty() {
            *self = Chunk::default();
            return bit;
        }
        let fb = self.first_bit;
        *self = Chunk::from_runs(fb, runs);
        bit
    }

    /// Splits into two chunks of roughly equal run counts.
    fn split(&mut self, scratch: &mut Vec<u64>) -> Chunk {
        self.decode_into(scratch);
        let runs = scratch;
        let mid = runs.len() / 2;
        let right_first = self.run_bit(mid);
        let right = Chunk::from_runs(right_first, &runs[mid..]);
        let fb = self.first_bit;
        *self = Chunk::from_runs(fb, &runs[..mid]);
        right
    }

    /// Appends all runs of `other` (used for leaf merging).
    fn merge(&mut self, other: &Chunk, scratch: &mut Vec<u64>) {
        if other.nruns == 0 {
            return;
        }
        if self.nruns == 0 {
            *self = other.clone();
            return;
        }
        self.decode_into(scratch);
        let mut runs = std::mem::take(scratch);
        let mut tmp = Vec::with_capacity(other.nruns as usize);
        other.decode_into(&mut tmp);
        if self.run_bit(self.nruns as usize - 1) == other.first_bit {
            *runs.last_mut().expect("nonempty") += tmp[0];
            runs.extend_from_slice(&tmp[1..]);
        } else {
            runs.extend_from_slice(&tmp);
        }
        let fb = self.first_bit;
        *self = Chunk::from_runs(fb, &runs);
        *scratch = runs;
    }

    fn size_bits(&self) -> usize {
        self.enc.size_bits() + 3 * 64 + 2 * 32
    }
}

#[derive(Clone, Debug)]
enum Node {
    Leaf(Chunk),
    Internal(Internal),
}

#[derive(Clone, Debug)]
struct Internal {
    children: Vec<Node>,
    nbits: u64,
    nones: u64,
}

impl Node {
    #[inline]
    fn nbits(&self) -> u64 {
        match self {
            Node::Leaf(c) => c.nbits,
            Node::Internal(i) => i.nbits,
        }
    }

    #[inline]
    fn nones(&self) -> u64 {
        match self {
            Node::Leaf(c) => c.nones,
            Node::Internal(i) => i.nones,
        }
    }

    fn locate(&self, pos: u64) -> (bool, u64) {
        match self {
            Node::Leaf(c) => c.locate(pos),
            Node::Internal(i) => {
                let mut pos = pos;
                let mut ones = 0u64;
                for ch in &i.children {
                    if pos < ch.nbits() {
                        let (b, o) = ch.locate(pos);
                        return (b, ones + o);
                    }
                    pos -= ch.nbits();
                    ones += ch.nones();
                }
                unreachable!("pos within node");
            }
        }
    }

    fn rank1(&self, pos: u64) -> u64 {
        match self {
            Node::Leaf(c) => c.rank1(pos),
            Node::Internal(i) => {
                if pos == i.nbits {
                    return i.nones;
                }
                let mut pos = pos;
                let mut ones = 0u64;
                for ch in &i.children {
                    if pos <= ch.nbits() {
                        return ones + ch.rank1(pos);
                    }
                    pos -= ch.nbits();
                    ones += ch.nones();
                }
                unreachable!("pos within node");
            }
        }
    }

    fn select(&self, bit: bool, k: u64) -> u64 {
        match self {
            Node::Leaf(c) => c.select(bit, k),
            Node::Internal(i) => {
                let mut k = k;
                let mut base = 0u64;
                for ch in &i.children {
                    let have = if bit {
                        ch.nones()
                    } else {
                        ch.nbits() - ch.nones()
                    };
                    if k < have {
                        return base + ch.select(bit, k);
                    }
                    k -= have;
                    base += ch.nbits();
                }
                unreachable!("k within node");
            }
        }
    }

    /// Inserts; returns a new right sibling if this node split.
    fn insert(&mut self, pos: u64, bit: bool, scratch: &mut Vec<u64>) -> Option<Node> {
        match self {
            Node::Leaf(c) => {
                c.insert(pos, bit, scratch);
                if c.nruns as usize > MAX_RUNS {
                    Some(Node::Leaf(c.split(scratch)))
                } else {
                    None
                }
            }
            Node::Internal(node) => {
                node.nbits += 1;
                node.nones += bit as u64;
                let mut pos = pos;
                let mut idx = node.children.len() - 1;
                for (i, ch) in node.children.iter().enumerate() {
                    // `<=` so appends go into the last child covering pos.
                    if pos <= ch.nbits() {
                        idx = i;
                        break;
                    }
                    pos -= ch.nbits();
                }
                if let Some(split) = node.children[idx].insert(pos, bit, scratch) {
                    node.children.insert(idx + 1, split);
                    if node.children.len() > MAX_FANOUT {
                        let right_children: Vec<Node> =
                            node.children.split_off(node.children.len() / 2);
                        let rb: u64 = right_children.iter().map(|c| c.nbits()).sum();
                        let ro: u64 = right_children.iter().map(|c| c.nones()).sum();
                        node.nbits -= rb;
                        node.nones -= ro;
                        return Some(Node::Internal(Internal {
                            children: right_children,
                            nbits: rb,
                            nones: ro,
                        }));
                    }
                }
                None
            }
        }
    }

    /// Deletes the bit at `pos`, returning it.
    fn delete(&mut self, pos: u64, scratch: &mut Vec<u64>) -> bool {
        match self {
            Node::Leaf(c) => c.delete(pos, scratch),
            Node::Internal(node) => {
                let mut pos = pos;
                let mut idx = 0usize;
                for (i, ch) in node.children.iter().enumerate() {
                    if pos < ch.nbits() {
                        idx = i;
                        break;
                    }
                    pos -= ch.nbits();
                }
                let bit = node.children[idx].delete(pos, scratch);
                node.nbits -= 1;
                node.nones -= bit as u64;
                // Drop empty children; opportunistically merge small leaves.
                if node.children[idx].nbits() == 0 {
                    node.children.remove(idx);
                } else if idx + 1 < node.children.len() {
                    Self::try_merge_leaves(&mut node.children, idx, scratch);
                } else if idx > 0 {
                    Self::try_merge_leaves(&mut node.children, idx - 1, scratch);
                }
                bit
            }
        }
    }

    fn try_merge_leaves(children: &mut Vec<Node>, i: usize, scratch: &mut Vec<u64>) {
        if i + 1 >= children.len() {
            return;
        }
        let combined = match (&children[i], &children[i + 1]) {
            (Node::Leaf(a), Node::Leaf(b)) => a.nruns as usize + b.nruns as usize,
            _ => return,
        };
        if combined > MERGE_RUNS {
            return;
        }
        let right = children.remove(i + 1);
        if let (Node::Leaf(a), Node::Leaf(b)) = (&mut children[i], &right) {
            a.merge(b, scratch);
        }
    }

    fn size_bits(&self) -> usize {
        match self {
            Node::Leaf(c) => c.size_bits(),
            Node::Internal(i) => {
                i.children.iter().map(|c| c.size_bits()).sum::<usize>()
                    + i.children.capacity() * (std::mem::size_of::<Node>() * 8)
                    + 2 * 64
            }
        }
    }
}

/// The fully dynamic bitvector of Theorem 4.9.
///
/// Supports `Access`, `Rank`, `Select`, `Insert`, `Delete` in O(log n) and
/// `Init(b, n)` ([`DynamicBitVec::filled`]) in O(1); space O(nH0 + log n).
#[derive(Clone, Debug)]
pub struct DynamicBitVec {
    root: Node,
}

thread_local! {
    /// Shared run-decode buffer: per-edit work never exceeds a chunk, so a
    /// single thread-local buffer avoids a ~MAX_RUNS·8-byte allocation in
    /// every node bitvector of a Wavelet Trie.
    static SCRATCH: std::cell::RefCell<Vec<u64>> = std::cell::RefCell::new(Vec::with_capacity(MAX_RUNS + 2));
}

impl Default for DynamicBitVec {
    fn default() -> Self {
        Self::new()
    }
}

impl DynamicBitVec {
    /// Creates an empty bitvector.
    pub fn new() -> Self {
        DynamicBitVec {
            root: Node::Leaf(Chunk::default()),
        }
    }

    /// `Init(b, n)` (§4.2): a bitvector of `n` copies of `bit`, in O(1).
    pub fn filled(bit: bool, n: usize) -> Self {
        let chunk = if n == 0 {
            Chunk::default()
        } else {
            Chunk::from_runs(bit, &[n as u64])
        };
        DynamicBitVec {
            root: Node::Leaf(chunk),
        }
    }

    /// Builds by repeated insertion at the end.
    pub fn from_bits<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut v = Self::new();
        for b in iter {
            v.push(b);
        }
        v
    }

    /// Inserts `bit` at position `pos <= len`.
    pub fn insert(&mut self, pos: usize, bit: bool) {
        assert!(
            pos as u64 <= self.root.nbits(),
            "insert position out of bounds"
        );
        let split = SCRATCH.with(|sc| self.root.insert(pos as u64, bit, &mut sc.borrow_mut()));
        if let Some(split) = split {
            let old = std::mem::replace(&mut self.root, Node::Leaf(Chunk::default()));
            let nbits = old.nbits() + split.nbits();
            let nones = old.nones() + split.nones();
            self.root = Node::Internal(Internal {
                children: vec![old, split],
                nbits,
                nones,
            });
        }
    }

    /// Appends `bit`.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        self.insert(self.len(), bit);
    }

    /// Deletes and returns the bit at `pos < len`.
    pub fn remove(&mut self, pos: usize) -> bool {
        assert!(
            (pos as u64) < self.root.nbits(),
            "delete position out of bounds"
        );
        let bit = SCRATCH.with(|sc| self.root.delete(pos as u64, &mut sc.borrow_mut()));
        // Collapse a single-child root so height can shrink.
        loop {
            let replace = match &mut self.root {
                Node::Internal(i) if i.children.len() == 1 => i.children.pop().expect("child"),
                _ => break,
            };
            self.root = replace;
        }
        bit
    }

    /// (bit at `pos`, ones before `pos`) in one descent.
    #[inline]
    pub fn access_rank(&self, pos: usize) -> (bool, usize) {
        assert!((pos as u64) < self.root.nbits());
        let (b, o) = self.root.locate(pos as u64);
        (b, o as usize)
    }

    /// Iterates over all bits (O(1) amortized per bit).
    pub fn iter(&self) -> DynBitIter<'_> {
        DynBitIter::new(self)
    }
}

/// Run-aware iterator over a [`DynamicBitVec`].
pub struct DynBitIter<'a> {
    stack: Vec<(&'a Node, usize)>,
    current_bit: bool,
    remaining_in_run: u64,
    reader_chunk: Option<(&'a Chunk, usize, usize)>, // chunk, enc bit pos, run idx
}

impl<'a> DynBitIter<'a> {
    fn new(v: &'a DynamicBitVec) -> Self {
        let mut it = DynBitIter {
            stack: vec![(&v.root, 0)],
            current_bit: false,
            remaining_in_run: 0,
            reader_chunk: None,
        };
        it.advance_chunk();
        it
    }

    fn advance_chunk(&mut self) {
        self.reader_chunk = None;
        while let Some((node, idx)) = self.stack.pop() {
            match node {
                Node::Leaf(c) => {
                    if c.nruns > 0 {
                        self.reader_chunk = Some((c, 0, 0));
                        let mut r = BitReader::new(&c.enc, 0);
                        self.remaining_in_run = r.read_gamma();
                        self.current_bit = c.first_bit;
                        self.reader_chunk = Some((c, r.pos(), 0));
                        return;
                    }
                }
                Node::Internal(i) => {
                    if idx < i.children.len() {
                        self.stack.push((node, idx + 1));
                        self.stack.push((&i.children[idx], 0));
                    }
                }
            }
        }
    }
}

impl<'a> Iterator for DynBitIter<'a> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        loop {
            if self.remaining_in_run > 0 {
                self.remaining_in_run -= 1;
                return Some(self.current_bit);
            }
            let (chunk, pos, run_idx) = self.reader_chunk?;
            if run_idx + 1 < chunk.nruns as usize {
                let mut r = BitReader::new(&chunk.enc, pos);
                self.remaining_in_run = r.read_gamma();
                self.current_bit = !self.current_bit;
                self.reader_chunk = Some((chunk, r.pos(), run_idx + 1));
            } else {
                self.advance_chunk();
                self.reader_chunk?;
            }
        }
    }
}

impl BitAccess for DynamicBitVec {
    #[inline]
    fn len(&self) -> usize {
        self.root.nbits() as usize
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        self.access_rank(i).0
    }
}

impl BitRank for DynamicBitVec {
    #[inline]
    fn rank1(&self, i: usize) -> usize {
        assert!(i as u64 <= self.root.nbits(), "rank index out of bounds");
        self.root.rank1(i as u64) as usize
    }

    #[inline]
    fn count_ones(&self) -> usize {
        self.root.nones() as usize
    }
}

impl BitSelect for DynamicBitVec {
    fn select1(&self, k: usize) -> Option<usize> {
        if k >= self.count_ones() {
            return None;
        }
        Some(self.root.select(true, k as u64) as usize)
    }

    fn select0(&self, k: usize) -> Option<usize> {
        if k >= self.len() - self.count_ones() {
            return None;
        }
        Some(self.root.select(false, k as u64) as usize)
    }
}

impl SpaceUsage for DynamicBitVec {
    fn size_bits(&self) -> usize {
        self.root.size_bits() + 2 * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Mirror model executing the same operations on a Vec<bool>.
    struct Model {
        v: DynamicBitVec,
        m: Vec<bool>,
    }

    impl Model {
        fn new() -> Self {
            Model {
                v: DynamicBitVec::new(),
                m: Vec::new(),
            }
        }

        fn filled(bit: bool, n: usize) -> Self {
            Model {
                v: DynamicBitVec::filled(bit, n),
                m: vec![bit; n],
            }
        }

        fn insert(&mut self, pos: usize, bit: bool) {
            self.v.insert(pos, bit);
            self.m.insert(pos, bit);
        }

        fn remove(&mut self, pos: usize) {
            let got = self.v.remove(pos);
            let want = self.m.remove(pos);
            assert_eq!(got, want, "remove({pos})");
        }

        fn check(&self) {
            assert_eq!(self.v.len(), self.m.len());
            let ones: usize = self.m.iter().filter(|&&b| b).count();
            assert_eq!(self.v.count_ones(), ones);
            let mut cum = 0usize;
            for (i, &b) in self.m.iter().enumerate() {
                assert_eq!(self.v.get(i), b, "get({i})");
                assert_eq!(self.v.rank1(i), cum, "rank1({i})");
                cum += b as usize;
            }
            assert_eq!(self.v.rank1(self.m.len()), cum);
            let mut seen1 = 0usize;
            let mut seen0 = 0usize;
            for (i, &b) in self.m.iter().enumerate() {
                if b {
                    assert_eq!(self.v.select1(seen1), Some(i), "select1({seen1})");
                    seen1 += 1;
                } else {
                    assert_eq!(self.v.select0(seen0), Some(i), "select0({seen0})");
                    seen0 += 1;
                }
            }
            assert_eq!(self.v.select1(seen1), None);
            assert_eq!(self.v.select0(seen0), None);
            let collected: Vec<bool> = self.v.iter().collect();
            assert_eq!(collected, self.m, "iterator");
        }
    }

    #[test]
    fn empty() {
        let m = Model::new();
        m.check();
    }

    #[test]
    fn push_only() {
        let mut m = Model::new();
        for i in 0..2000 {
            m.insert(m.m.len(), i % 3 == 0);
        }
        m.check();
    }

    #[test]
    fn filled_then_edit() {
        let mut m = Model::filled(true, 1000);
        m.check();
        for i in 0..100 {
            m.insert(i * 7, i % 2 == 0);
        }
        m.check();
        for _ in 0..200 {
            m.remove(m.m.len() / 2);
        }
        m.check();
    }

    #[test]
    fn init_is_constant_time_representation() {
        // A filled vector must be a single run regardless of n (Remark 4.2).
        for n in [1usize, 1000, 1_000_000, 1 << 30] {
            let v = DynamicBitVec::filled(true, n);
            assert_eq!(v.len(), n);
            assert_eq!(v.count_ones(), n);
            assert!(
                v.size_bits() < 4096,
                "Init must not allocate proportional to n (n={n}, bits={})",
                v.size_bits()
            );
            assert_eq!(v.rank1(n / 2), n / 2);
            assert_eq!(v.select1(n - 1), Some(n - 1));
            assert_eq!(v.select0(0), None);
        }
    }

    #[test]
    fn interleaved_pseudorandom_ops() {
        let mut s = 0xABCD_EF01_2345_6789u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut m = Model::new();
        for step in 0..3000 {
            let r = next();
            let len = m.m.len();
            if len == 0 || r % 3 != 0 {
                let pos = if len == 0 {
                    0
                } else {
                    (next() % (len as u64 + 1)) as usize
                };
                m.insert(pos, next() % 2 == 0);
            } else {
                let pos = (next() % len as u64) as usize;
                m.remove(pos);
            }
            if step % 500 == 499 {
                m.check();
            }
        }
        m.check();
    }

    #[test]
    fn run_heavy_workload_compresses() {
        // 100k bits in runs of ~1000: must use far fewer than 100k bits.
        let mut v = DynamicBitVec::new();
        for i in 0..100_000 {
            v.push((i / 1000) % 2 == 0);
        }
        assert!(
            v.size_bits() < 20_000,
            "RLE should compress runs: {}",
            v.size_bits()
        );
        // Alternating bits are the worst case: space grows but ops stay correct.
        let mut w = DynamicBitVec::new();
        for i in 0..10_000 {
            w.push(i % 2 == 0);
        }
        assert_eq!(w.rank1(10_000), 5_000);
    }

    #[test]
    fn delete_down_to_empty() {
        let mut m = Model::filled(false, 300);
        for _ in 0..300 {
            m.remove(0);
        }
        m.check();
        m.insert(0, true);
        m.check();
    }

    #[test]
    fn insert_at_both_ends() {
        let mut m = Model::new();
        for i in 0..500 {
            m.insert(0, i % 2 == 0);
            m.insert(m.m.len(), i % 3 == 0);
        }
        m.check();
    }

    #[test]
    fn access_rank_combined() {
        let v = DynamicBitVec::from_bits((0..100).map(|i| i % 7 < 3));
        for i in 0..100 {
            let (b, r) = v.access_rank(i);
            assert_eq!(b, v.get(i));
            assert_eq!(r, v.rank1(i));
        }
    }
}
