//! Elias universal codes [Elias'75], used by the fully dynamic bitvector
//! (§4.2: runs are encoded with Elias γ) and available for experimentation
//! with δ as in the gap-encoded bitvector of [Mäkinen–Navarro'08].
//!
//! Conventions (LSB-first bit order of [`RawBitVec`]):
//! * γ(x), x ≥ 1: with N = ⌊log₂ x⌋, write N zeros, then the N+1 significant
//!   bits of x starting with the leading 1.
//! * δ(x), x ≥ 1: write γ(N+1), then the N low bits of x.

use crate::RawBitVec;

/// Length in bits of the γ code of `x` (`x >= 1`).
#[inline]
pub fn gamma_len(x: u64) -> usize {
    debug_assert!(x >= 1);
    2 * (63 - x.leading_zeros() as usize) + 1
}

/// Length in bits of the δ code of `x` (`x >= 1`).
#[inline]
pub fn delta_len(x: u64) -> usize {
    debug_assert!(x >= 1);
    let n = 63 - x.leading_zeros() as usize;
    gamma_len(n as u64 + 1) + n
}

/// Appends the γ code of `x >= 1` to `out`.
pub fn gamma_encode(out: &mut RawBitVec, x: u64) {
    debug_assert!(x >= 1);
    let n = 63 - x.leading_zeros() as usize;
    // N zeros.
    out.push_bits(0, n);
    // N+1 significant bits; we emit them LSB-first with the top bit last so
    // the decoder (which reads the marker 1 first) sees MSB-first order.
    // Simpler: emit the marker 1, then the N low bits LSB-first, and have the
    // decoder mirror this.
    out.push(true);
    if n > 0 {
        out.push_bits(x & ((1u64 << n) - 1), n);
    }
}

/// Appends the δ code of `x >= 1` to `out`.
pub fn delta_encode(out: &mut RawBitVec, x: u64) {
    debug_assert!(x >= 1);
    let n = 63 - x.leading_zeros() as usize;
    gamma_encode(out, n as u64 + 1);
    if n > 0 {
        out.push_bits(x & ((1u64 << n) - 1), n);
    }
}

/// A cursor for sequentially decoding codes out of a [`RawBitVec`].
///
/// All reads go through a 64-bit lookahead word (`peek_word`)
/// assembled straight from the backing words, so a unary prefix is decoded
/// with one `trailing_zeros` instead of a bit-at-a-time loop and a whole
/// γ code usually costs a single peek. The same word-level discipline pays
/// off wherever variable-length codes are scanned (γ/δ runs here, and the
/// RRR-offset / Elias–Fano style "count to the next 1" loops).
#[derive(Clone, Copy, Debug)]
pub struct BitReader<'a> {
    words: &'a [u64],
    len: usize,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Starts reading at bit `pos`.
    #[inline]
    pub fn new(bits: &'a RawBitVec, pos: usize) -> Self {
        debug_assert!(pos <= bits.len());
        Self {
            words: bits.words(),
            len: bits.len(),
            pos,
        }
    }

    /// Current bit position.
    #[inline]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Whether the cursor reached the end.
    #[inline]
    pub fn is_at_end(&self) -> bool {
        self.pos >= self.len
    }

    #[inline]
    fn word(&self, i: usize) -> u64 {
        self.words.get(i).copied().unwrap_or(0)
    }

    /// The next 64 bits starting at the cursor, LSB-first, zero-padded past
    /// the end of the stream (the tail word is kept masked by `RawBitVec`).
    #[inline]
    fn peek_word(&self) -> u64 {
        let w = self.pos / 64;
        let off = self.pos % 64;
        let lo = self.word(w) >> off;
        if off == 0 {
            lo
        } else {
            lo | (self.word(w + 1) << (64 - off))
        }
    }

    /// Reads one bit.
    #[inline]
    pub fn read_bit(&mut self) -> bool {
        assert!(self.pos < self.len, "BitReader read past end");
        let b = (self.word(self.pos / 64) >> (self.pos % 64)) & 1 != 0;
        self.pos += 1;
        b
    }

    /// Reads `width <= 64` bits LSB-first.
    #[inline]
    pub fn read_bits(&mut self, width: usize) -> u64 {
        debug_assert!(width <= 64);
        assert!(self.pos + width <= self.len, "BitReader read past end");
        let v = if width == 64 {
            self.peek_word()
        } else {
            self.peek_word() & ((1u64 << width) - 1)
        };
        self.pos += width;
        v
    }

    /// Counts zeros up to (not including) the next 1, consuming it too.
    ///
    /// Word-at-a-time: each iteration consumes up to 64 zeros with one
    /// `trailing_zeros` on the lookahead word.
    #[inline]
    pub fn read_unary(&mut self) -> usize {
        let mut n = 0usize;
        loop {
            let w = self.peek_word();
            if w != 0 {
                let tz = w.trailing_zeros() as usize;
                self.pos += tz + 1;
                debug_assert!(self.pos <= self.len);
                return n + tz;
            }
            let step = (self.len - self.pos).min(64);
            assert!(step > 0, "BitReader: unary code runs past end");
            n += step;
            self.pos += step;
        }
    }

    /// Decodes one γ code.
    #[inline]
    pub fn read_gamma(&mut self) -> u64 {
        // Fast path: the whole code (N zeros, marker 1, N low bits) sits in
        // the 64-bit lookahead, true for any value below 2^32.
        let w = self.peek_word();
        if w != 0 {
            let n = w.trailing_zeros() as usize;
            if 2 * n < 64 {
                self.pos += 2 * n + 1;
                debug_assert!(self.pos <= self.len);
                let low = (w >> (n + 1)) & ((1u64 << n) - 1);
                return (1u64 << n) | low;
            }
        }
        let n = self.read_unary();
        let low = if n > 0 { self.read_bits(n) } else { 0 };
        (1u64 << n) | low
    }

    /// Decodes one δ code.
    #[inline]
    pub fn read_delta(&mut self) -> u64 {
        let n = self.read_gamma() - 1;
        let low = if n > 0 { self.read_bits(n as usize) } else { 0 };
        (1u64 << n) | low
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_roundtrip_exhaustive_small() {
        let mut bv = RawBitVec::new();
        for x in 1..=2000u64 {
            gamma_encode(&mut bv, x);
        }
        let mut r = BitReader::new(&bv, 0);
        for x in 1..=2000u64 {
            assert_eq!(r.read_gamma(), x);
        }
        assert!(r.is_at_end());
    }

    #[test]
    fn delta_roundtrip_exhaustive_small() {
        let mut bv = RawBitVec::new();
        for x in 1..=2000u64 {
            delta_encode(&mut bv, x);
        }
        let mut r = BitReader::new(&bv, 0);
        for x in 1..=2000u64 {
            assert_eq!(r.read_delta(), x);
        }
        assert!(r.is_at_end());
    }

    #[test]
    fn roundtrip_large_values() {
        let vals = [
            1u64,
            2,
            3,
            u32::MAX as u64,
            u32::MAX as u64 + 1,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
            0x8000_0000_0000_0000,
        ];
        let mut bv = RawBitVec::new();
        for &x in &vals {
            gamma_encode(&mut bv, x);
            delta_encode(&mut bv, x);
        }
        let mut r = BitReader::new(&bv, 0);
        for &x in &vals {
            assert_eq!(r.read_gamma(), x, "gamma {x}");
            assert_eq!(r.read_delta(), x, "delta {x}");
        }
    }

    #[test]
    fn lengths_match_encoding() {
        for x in (1..5000u64).step_by(7).chain([u64::MAX, 1 << 40]) {
            let mut bv = RawBitVec::new();
            gamma_encode(&mut bv, x);
            assert_eq!(bv.len(), gamma_len(x), "gamma_len({x})");
            let mut bv = RawBitVec::new();
            delta_encode(&mut bv, x);
            assert_eq!(bv.len(), delta_len(x), "delta_len({x})");
        }
    }

    #[test]
    fn gamma_is_shorter_for_small_delta_for_large() {
        // sanity on asymptotics: γ(small) compact, δ(large) beats γ(large)
        assert_eq!(gamma_len(1), 1);
        assert_eq!(gamma_len(2), 3);
        assert_eq!(gamma_len(3), 3);
        assert_eq!(gamma_len(4), 5);
        assert!(delta_len(u64::MAX) < gamma_len(u64::MAX));
    }

    #[test]
    fn reader_resumes_mid_stream() {
        let mut bv = RawBitVec::new();
        gamma_encode(&mut bv, 42);
        let mark = bv.len();
        gamma_encode(&mut bv, 999);
        let mut r = BitReader::new(&bv, mark);
        assert_eq!(r.read_gamma(), 999);
    }
}
