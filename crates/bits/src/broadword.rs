//! Broadword (word-parallel) bit primitives.
//!
//! The only non-trivial primitive needed by the rank/select structures is
//! in-word select, answered by popcount-guided binary search over word
//! halves — branch-light and table-free.

/// Lanes per software-pipeline chunk in the `*_batch` entry points:
/// enough in-flight lanes to cover a DRAM miss, small enough that the
/// chunk's prefetched lines all survive until their resolve round. Every
/// batched kernel in this crate chunks at this width — prefetching a
/// whole unbounded batch up front would evict its own early lines before
/// the resolve loop reaches them.
pub(crate) const PIPELINE_LANES: usize = 64;

/// Hints the CPU to pull the cache line holding `*p` towards L1.
///
/// This is the latency-hiding primitive behind every `*_batch` entry point:
/// a batched query issues the prefetches for all lanes' directory words
/// before touching any payload, so the misses of independent lanes overlap
/// instead of serializing. A prefetch is a pure hint — it never faults, so
/// slightly-out-of-range addresses (e.g. one past a directory) are fine —
/// and on architectures without a stable intrinsic it compiles to nothing.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; it performs no memory access that could
    // fault, regardless of the pointer's validity.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p as *const i8);
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: PRFM is a hint instruction; it never faults.
    unsafe {
        core::arch::asm!(
            "prfm pldl1keep, [{0}]",
            in(reg) p as *const u8,
            options(nostack, preserves_flags, readonly)
        );
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = p;
}

/// Position (0-based) of the `k`-th (0-based) set bit of `x`.
///
/// # Panics
/// Debug-panics if `x` has at most `k` set bits; in release the result is
/// unspecified (but in-range) in that case.
#[inline]
pub fn select_in_word(mut x: u64, mut k: u32) -> u32 {
    debug_assert!(x.count_ones() > k, "select_in_word: not enough ones");
    let mut pos = 0u32;
    let c = (x as u32).count_ones();
    if k >= c {
        x >>= 32;
        pos += 32;
        k -= c;
    }
    let c = (x as u16 as u32).count_ones();
    if k >= c {
        x >>= 16;
        pos += 16;
        k -= c;
    }
    let c = (x as u8 as u32).count_ones();
    if k >= c {
        x >>= 8;
        pos += 8;
        k -= c;
    }
    let c = ((x & 0xF) as u32).count_ones();
    if k >= c {
        x >>= 4;
        pos += 4;
        k -= c;
    }
    let c = ((x & 0x3) as u32).count_ones();
    if k >= c {
        x >>= 2;
        pos += 2;
        k -= c;
    }
    if k >= (x & 1) as u32 {
        pos += 1;
    }
    pos
}

/// Position of the `k`-th zero bit of `x` (i.e. select over the complement).
#[inline]
pub fn select_zero_in_word(x: u64, k: u32) -> u32 {
    select_in_word(!x, k)
}

/// Largest index `b` in `[lo, hi)` with `count_before(b) <= k`, for a
/// non-decreasing count function — the block-locating binary search every
/// sampled select implementation shares ([`crate::Fid`], the append-only
/// bitvector's sealed-block directory, small explicit tails).
#[inline]
pub fn select_block<F: Fn(usize) -> usize>(
    mut lo: usize,
    mut hi: usize,
    k: usize,
    count_before: F,
) -> usize {
    debug_assert!(lo < hi);
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if count_before(mid) <= k {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

// ---------------------------------------------------------------------------
// Word-level parenthesis (±1 excess) primitives.
//
// Convention (matching `wt-trie`'s BP layer): bit `1` is `'('` (+1), bit `0`
// is `')'` (−1), bits are consumed LSB-first. `excess(k)` is the δ-sum over
// the first `k` bits. Everything below is table-free: the only non-trivial
// object is the SWAR *parenthesis ladder*, which computes for every
// power-of-two-aligned group of the word its number of unmatched closing
// and unmatched opening parentheses. Two facts make the ladder sufficient:
//
// * the first position where the running excess drops `d` below its
//   starting value is exactly the `d`-th unmatched `')'` of the word, and
// * (symmetrically) the last position where the suffix excess rises to `d`
//   is the `d`-th unmatched `'('` counted from the top,
//
// so `find_close`/`find_open` style scans reduce to a 6-level descent over
// the ladder — no per-byte tables, no bit loops.
// ---------------------------------------------------------------------------

/// `2·popcount(word) − 64`: total excess of a full word.
#[inline]
pub fn word_excess(word: u64) -> i32 {
    2 * word.count_ones() as i32 - 64
}

/// Pads bits `valid..64` with `'('` so forward primitives see no spurious
/// closers (and can never report a hit) past the valid region.
#[inline]
pub fn pad_open_above(word: u64, valid: usize) -> u64 {
    if valid >= 64 {
        word
    } else {
        word | (!0u64 << valid)
    }
}

/// Low `2^k` bits of each `2^(k+1)`-bit field, for k = 0..=5.
const LADDER_LO: [u64; 6] = [
    0x5555_5555_5555_5555,
    0x3333_3333_3333_3333,
    0x0F0F_0F0F_0F0F_0F0F,
    0x00FF_00FF_00FF_00FF,
    0x0000_FFFF_0000_FFFF,
    0x0000_0000_FFFF_FFFF,
];

/// Top bit of each `2^(k+1)`-bit field, for k = 0..=5.
const LADDER_HB: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0x8888_8888_8888_8888,
    0x8080_8080_8080_8080,
    0x8000_8000_8000_8000,
    0x8000_0000_8000_0000,
    0x8000_0000_0000_0000,
];

/// Value `2^k` in each `2^(k+1)`-bit field, for k = 1..=5 (index k−1).
const LADDER_HALFVAL: [u64; 5] = [
    0x2222_2222_2222_2222,
    0x0404_0404_0404_0404,
    0x0008_0008_0008_0008,
    0x0000_0010_0000_0010,
    0x0000_0000_0000_0020,
];

/// The SWAR parenthesis ladder of one 64-bit word.
///
/// `c[k]` holds, in `2^k`-bit fields, the number of unmatched closing
/// parentheses of the corresponding bit group; `pc[k]` holds the group
/// popcounts (the classic SWAR cascade). Unmatched-opener counts need no
/// third array — per field, `o = c + 2·pc − width`. Building costs ~60 ALU
/// ops; each query is a 6-level descent.
pub struct ExcessWord {
    c: [u64; 7],
    pc: [u64; 7],
}

impl ExcessWord {
    /// Builds the ladder. Combine rule for a lower group L followed by an
    /// upper group H: `c = cL + max(cH − oL, 0)` (the `min(oL, cH)` pairs
    /// match and annihilate), with `oL` rewritten as `cL + 2·pcL − width`.
    pub fn new(word: u64) -> Self {
        let mut pc = [0u64; 7];
        pc[0] = word;
        pc[1] = word - ((word >> 1) & LADDER_LO[0]);
        pc[2] = (pc[1] & LADDER_LO[1]) + ((pc[1] >> 2) & LADDER_LO[1]);
        pc[3] = (pc[2] + (pc[2] >> 4)) & LADDER_LO[2];
        pc[4] = (pc[3] + (pc[3] >> 8)) & LADDER_LO[3];
        pc[5] = (pc[4] + (pc[4] >> 16)) & LADDER_LO[4];
        pc[6] = (pc[5] + (pc[5] >> 32)) & LADDER_LO[5];
        let mut c = [0u64; 7];
        c[0] = !word;
        // Width-2 combine: all operands are single bits, so max(cH − oL, 0)
        // is just `cH & !oL` and the bitwise form is cheapest.
        c[1] = (!word & LADDER_LO[0]) + ((!word >> 1) & !word & LADDER_LO[0]);
        // Generic combines. Field values are ≤ half-width, so the borrow
        // trick (set the field's top bit, subtract, read the top bit back
        // as a "no borrow" flag) computes per-field max(cH − oL, 0), with
        // `cH − oL` expanded to `(cH + width) − (cL + 2·pcL)`.
        for k in 1..6 {
            let lo = LADDER_LO[k];
            let hb = LADDER_HB[k];
            let half = 1u32 << k;
            let cl = c[k] & lo;
            let ch = (c[k] >> half) & lo;
            let ol_biased = cl + 2 * (pc[k] & lo);
            let d = ((ch + LADDER_HALFVAL[k - 1]) | hb) - ol_biased;
            let sel = d & hb;
            let keep = sel - (sel >> (2 * half - 1));
            c[k + 1] = cl + (d & keep);
        }
        ExcessWord { c, pc }
    }

    /// Number of `')'` with no matching `'('` inside the word.
    #[inline]
    pub fn unmatched_closers(&self) -> u32 {
        self.c[6] as u32
    }

    /// Number of `'('` with no matching `')'` inside the word.
    #[inline]
    pub fn unmatched_openers(&self) -> u32 {
        (self.c[6] + 2 * self.pc[6]) as u32 - 64
    }

    /// Unmatched openers of the `2^k`-wide field of the ladder at bit
    /// offset `pos`: `o = c + 2·pc − width`.
    #[inline]
    fn o_field(&self, k: usize, pos: u32) -> u64 {
        let mask = (1u64 << (1 << k)) - 1;
        ((self.c[k] >> pos) & mask) + 2 * ((self.pc[k] >> pos) & mask) - (1 << k)
    }

    /// Smallest `p` with `excess(p + 1) == -(d as i32)` — the position of
    /// the `d`-th (1-based) unmatched closer. `None` if the excess never
    /// drops that far (or `d == 0`).
    pub fn find_fwd_excess(&self, d: u32) -> Option<u32> {
        if d == 0 || self.unmatched_closers() < d {
            return None;
        }
        let mut d = d as u64;
        let mut pos = 0u32;
        for k in (0..6).rev() {
            let w = 1u32 << k;
            let mask = (1u64 << w) - 1;
            let cl = (self.c[k] >> pos) & mask;
            if d > cl {
                // Lower half exhausted: oL of H's closers get matched.
                d = d - cl + self.o_field(k, pos);
                pos += w;
            }
        }
        debug_assert_eq!(d, 1);
        Some(pos)
    }

    /// Largest `p` such that the δ-sum over `[p, 64)` equals `d as i64` —
    /// the position of the `d`-th (1-based) unmatched opener counted from
    /// the top. `None` if the suffix excess never rises that far.
    pub fn find_bwd_excess(&self, d: u32) -> Option<u32> {
        if d == 0 || self.unmatched_openers() < d {
            return None;
        }
        let mut d = d as u64;
        let mut pos = 0u32;
        for k in (0..6).rev() {
            let w = 1u32 << k;
            let mask = (1u64 << w) - 1;
            let oh = self.o_field(k, pos + w);
            if d <= oh {
                pos += w;
            } else {
                // Upper half exhausted: cH of L's openers get matched.
                d = d - oh + ((self.c[k] >> (pos + w)) & mask);
            }
        }
        debug_assert_eq!(d, 1);
        Some(pos)
    }
}

/// Minimum of `excess(k)` over non-empty prefixes `k = 1..=64`.
///
/// Uses the identity `min(0, mp) = −(unmatched closers)`: when the word has
/// an unmatched closer the minimum is `−c`; otherwise flip the (necessarily
/// open) first bit to a closer, which shifts every prefix excess by −2 and
/// guarantees an unmatched closer, so `mp = 2 − c(word & !1)`.
pub fn min_prefix_excess(word: u64) -> i32 {
    if word & 1 == 0 {
        -(ExcessWord::new(word).unmatched_closers() as i32)
    } else {
        2 - (ExcessWord::new(word & !1).unmatched_closers() as i32)
    }
}

/// Restricts `word` to its low `valid` bits, complementing first when
/// selecting zeros so padding past the end is never counted.
#[inline]
fn candidate_bits(word: u64, bit: bool, valid: usize) -> u64 {
    let w = if bit { word } else { !word };
    if valid >= 64 {
        w
    } else {
        w & ((1u64 << valid) - 1)
    }
}

/// Number of `bit`-valued entries among the low `valid` bits of `word`.
#[inline]
pub fn count_bit_in_word(word: u64, bit: bool, valid: usize) -> u32 {
    candidate_bits(word, bit, valid).count_ones()
}

/// Position of the `k`-th `bit`-valued entry among the low `valid` bits of
/// `word` — the in-word finishing step after a block search.
#[inline]
pub fn select_bit_in_word(word: u64, bit: bool, valid: usize, k: u32) -> u32 {
    select_in_word(candidate_bits(word, bit, valid), k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_select(x: u64, k: u32) -> Option<u32> {
        let mut seen = 0;
        for i in 0..64 {
            if (x >> i) & 1 != 0 {
                if seen == k {
                    return Some(i);
                }
                seen += 1;
            }
        }
        None
    }

    #[test]
    fn select_matches_naive_on_patterns() {
        let patterns = [
            1u64,
            u64::MAX,
            0x8000_0000_0000_0000,
            0xAAAA_AAAA_AAAA_AAAA,
            0x5555_5555_5555_5555,
            0xF0F0_F0F0_0F0F_0F0F,
            0x0123_4567_89AB_CDEF,
            0x8000_0000_0000_0001,
        ];
        for &p in &patterns {
            for k in 0..p.count_ones() {
                assert_eq!(
                    select_in_word(p, k),
                    naive_select(p, k).unwrap(),
                    "p={p:#x} k={k}"
                );
            }
        }
    }

    #[test]
    fn select_matches_naive_pseudorandom() {
        // xorshift so the test needs no RNG dependency
        let mut s = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..2000 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let ones = s.count_ones();
            if ones == 0 {
                continue;
            }
            let k = (s >> 32) as u32 % ones;
            assert_eq!(select_in_word(s, k), naive_select(s, k).unwrap());
        }
    }

    #[test]
    fn select_zero_is_select_of_complement() {
        let x = 0xF0F0_F0F0_F0F0_F0F0u64;
        for k in 0..32 {
            assert_eq!(select_zero_in_word(x, k), naive_select(!x, k).unwrap());
        }
    }

    #[test]
    fn select_block_finds_last_block_not_past_k() {
        // Blocks of counts [0, 3, 3, 7, 10] (cumulative before each index).
        let cum = [0usize, 3, 3, 7, 10];
        let count_before = |i: usize| cum[i];
        for k in 0..10 {
            let b = select_block(0, cum.len(), k, count_before);
            assert!(cum[b] <= k, "k={k} b={b}");
            assert!(b + 1 == cum.len() || cum[b + 1] > k, "k={k} b={b}");
        }
        // A narrowed window behaves identically.
        assert_eq!(select_block(1, 4, 5, count_before), 2);
    }

    fn naive_unmatched(x: u64) -> (u32, u32) {
        let (mut c, mut o) = (0u32, 0u32);
        for i in 0..64 {
            if (x >> i) & 1 != 0 {
                o += 1;
            } else if o > 0 {
                o -= 1;
            } else {
                c += 1;
            }
        }
        (c, o)
    }

    fn naive_min_prefix(x: u64) -> i32 {
        let mut run = 0i32;
        let mut min = i32::MAX;
        for i in 0..64 {
            run += if (x >> i) & 1 != 0 { 1 } else { -1 };
            min = min.min(run);
        }
        min
    }

    fn naive_find_fwd(x: u64, d: u32) -> Option<u32> {
        let mut run = 0i64;
        for i in 0..64 {
            run += if (x >> i) & 1 != 0 { 1 } else { -1 };
            if run == -(d as i64) {
                return Some(i);
            }
        }
        None
    }

    fn naive_find_bwd(x: u64, d: u32) -> Option<u32> {
        let mut run = 0i64;
        for i in (0..64).rev() {
            run += if (x >> i) & 1 != 0 { 1 } else { -1 };
            if run == d as i64 {
                return Some(i);
            }
        }
        None
    }

    fn check_excess_word(x: u64) {
        let (nc, no) = naive_unmatched(x);
        let ew = ExcessWord::new(x);
        assert_eq!(ew.unmatched_closers(), nc, "closers of {x:#x}");
        assert_eq!(ew.unmatched_openers(), no, "openers of {x:#x}");
        assert_eq!(min_prefix_excess(x), naive_min_prefix(x), "mp of {x:#x}");
        assert_eq!(word_excess(x), 2 * x.count_ones() as i32 - 64);
        assert_eq!(ew.find_fwd_excess(0), None);
        assert_eq!(ew.find_bwd_excess(0), None);
        for d in [
            1u32,
            2,
            3,
            nc.saturating_sub(1).max(1),
            nc.max(1),
            nc + 1,
            64,
        ] {
            assert_eq!(
                ew.find_fwd_excess(d),
                naive_find_fwd(x, d),
                "fwd {x:#x} d={d}"
            );
        }
        for d in [
            1u32,
            2,
            3,
            no.saturating_sub(1).max(1),
            no.max(1),
            no + 1,
            64,
        ] {
            assert_eq!(
                ew.find_bwd_excess(d),
                naive_find_bwd(x, d),
                "bwd {x:#x} d={d}"
            );
        }
    }

    #[test]
    fn excess_ladder_structured_patterns() {
        for x in [
            0u64,
            u64::MAX,
            1,
            1 << 63,
            0xAAAA_AAAA_AAAA_AAAA,
            0x5555_5555_5555_5555,
            0xFFFF_FFFF_0000_0000,
            0x0000_0000_FFFF_FFFF,
            0xF0F0_F0F0_0F0F_0F0F,
            0x0123_4567_89AB_CDEF,
            (1u64 << 32) - 1,
            !((1u64 << 32) - 1),
        ] {
            check_excess_word(x);
        }
    }

    #[test]
    fn excess_ladder_exhaustive_16bit_embeddings() {
        // Every 16-bit pattern, embedded at the bottom with three distinct
        // upper paddings (all-open, all-close, alternating), exercises every
        // combine level including cross-half interactions.
        for v in 0u64..=0xFFFF {
            check_excess_word(v | (!0u64 << 16));
            check_excess_word(v);
            check_excess_word(v | (0xAAAA_AAAA_AAAA_AAAA << 16));
        }
    }

    #[test]
    fn excess_ladder_pseudorandom() {
        let mut s = 0xC0FF_EE11_D00D_F00Du64;
        for _ in 0..20_000 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            check_excess_word(s);
        }
    }

    #[test]
    fn pad_open_above_neutralises_tail() {
        // Padding must neither add closers nor change the valid prefix mins.
        let x = 0b0110u64; // valid 4 bits
        let padded = pad_open_above(x, 4);
        assert_eq!(padded & 0xF, x);
        // b0 is an unmatched ')'; b3's ')' matches b2's '('; padding adds none.
        assert_eq!(ExcessWord::new(padded).unmatched_closers(), 1);
        assert_eq!(pad_open_above(x, 64), x);
        assert_eq!(min_prefix_excess(pad_open_above(0, 1)), -1);
    }

    #[test]
    fn masked_word_select_ignores_padding() {
        // 10 valid bits, the rest of the word is garbage padding.
        let word = 0xFFFF_FFFF_FFFF_FC05u64; // valid low 10: 0000000101
        assert_eq!(count_bit_in_word(word, true, 10), 2);
        assert_eq!(count_bit_in_word(word, false, 10), 8);
        assert_eq!(select_bit_in_word(word, true, 10, 0), 0);
        assert_eq!(select_bit_in_word(word, true, 10, 1), 2);
        assert_eq!(select_bit_in_word(word, false, 10, 0), 1);
        assert_eq!(select_bit_in_word(word, false, 10, 7), 9);
        // valid = 64 is the unmasked case.
        assert_eq!(count_bit_in_word(u64::MAX, true, 64), 64);
        assert_eq!(count_bit_in_word(u64::MAX, false, 64), 0);
    }
}
