//! Broadword (word-parallel) bit primitives.
//!
//! The only non-trivial primitive needed by the rank/select structures is
//! in-word select, answered by popcount-guided binary search over word
//! halves — branch-light and table-free.

/// Position (0-based) of the `k`-th (0-based) set bit of `x`.
///
/// # Panics
/// Debug-panics if `x` has at most `k` set bits; in release the result is
/// unspecified (but in-range) in that case.
#[inline]
pub fn select_in_word(mut x: u64, mut k: u32) -> u32 {
    debug_assert!(x.count_ones() > k, "select_in_word: not enough ones");
    let mut pos = 0u32;
    let c = (x as u32).count_ones();
    if k >= c {
        x >>= 32;
        pos += 32;
        k -= c;
    }
    let c = (x as u16 as u32).count_ones();
    if k >= c {
        x >>= 16;
        pos += 16;
        k -= c;
    }
    let c = (x as u8 as u32).count_ones();
    if k >= c {
        x >>= 8;
        pos += 8;
        k -= c;
    }
    let c = ((x & 0xF) as u32).count_ones();
    if k >= c {
        x >>= 4;
        pos += 4;
        k -= c;
    }
    let c = ((x & 0x3) as u32).count_ones();
    if k >= c {
        x >>= 2;
        pos += 2;
        k -= c;
    }
    if k >= (x & 1) as u32 {
        pos += 1;
    }
    pos
}

/// Position of the `k`-th zero bit of `x` (i.e. select over the complement).
#[inline]
pub fn select_zero_in_word(x: u64, k: u32) -> u32 {
    select_in_word(!x, k)
}

/// Largest index `b` in `[lo, hi)` with `count_before(b) <= k`, for a
/// non-decreasing count function — the block-locating binary search every
/// sampled select implementation shares ([`crate::Fid`], the append-only
/// bitvector's sealed-block directory, small explicit tails).
#[inline]
pub fn select_block<F: Fn(usize) -> usize>(
    mut lo: usize,
    mut hi: usize,
    k: usize,
    count_before: F,
) -> usize {
    debug_assert!(lo < hi);
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if count_before(mid) <= k {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Restricts `word` to its low `valid` bits, complementing first when
/// selecting zeros so padding past the end is never counted.
#[inline]
fn candidate_bits(word: u64, bit: bool, valid: usize) -> u64 {
    let w = if bit { word } else { !word };
    if valid >= 64 {
        w
    } else {
        w & ((1u64 << valid) - 1)
    }
}

/// Number of `bit`-valued entries among the low `valid` bits of `word`.
#[inline]
pub fn count_bit_in_word(word: u64, bit: bool, valid: usize) -> u32 {
    candidate_bits(word, bit, valid).count_ones()
}

/// Position of the `k`-th `bit`-valued entry among the low `valid` bits of
/// `word` — the in-word finishing step after a block search.
#[inline]
pub fn select_bit_in_word(word: u64, bit: bool, valid: usize, k: u32) -> u32 {
    select_in_word(candidate_bits(word, bit, valid), k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_select(x: u64, k: u32) -> Option<u32> {
        let mut seen = 0;
        for i in 0..64 {
            if (x >> i) & 1 != 0 {
                if seen == k {
                    return Some(i);
                }
                seen += 1;
            }
        }
        None
    }

    #[test]
    fn select_matches_naive_on_patterns() {
        let patterns = [
            1u64,
            u64::MAX,
            0x8000_0000_0000_0000,
            0xAAAA_AAAA_AAAA_AAAA,
            0x5555_5555_5555_5555,
            0xF0F0_F0F0_0F0F_0F0F,
            0x0123_4567_89AB_CDEF,
            0x8000_0000_0000_0001,
        ];
        for &p in &patterns {
            for k in 0..p.count_ones() {
                assert_eq!(
                    select_in_word(p, k),
                    naive_select(p, k).unwrap(),
                    "p={p:#x} k={k}"
                );
            }
        }
    }

    #[test]
    fn select_matches_naive_pseudorandom() {
        // xorshift so the test needs no RNG dependency
        let mut s = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..2000 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let ones = s.count_ones();
            if ones == 0 {
                continue;
            }
            let k = (s >> 32) as u32 % ones;
            assert_eq!(select_in_word(s, k), naive_select(s, k).unwrap());
        }
    }

    #[test]
    fn select_zero_is_select_of_complement() {
        let x = 0xF0F0_F0F0_F0F0_F0F0u64;
        for k in 0..32 {
            assert_eq!(select_zero_in_word(x, k), naive_select(!x, k).unwrap());
        }
    }

    #[test]
    fn select_block_finds_last_block_not_past_k() {
        // Blocks of counts [0, 3, 3, 7, 10] (cumulative before each index).
        let cum = [0usize, 3, 3, 7, 10];
        let count_before = |i: usize| cum[i];
        for k in 0..10 {
            let b = select_block(0, cum.len(), k, count_before);
            assert!(cum[b] <= k, "k={k} b={b}");
            assert!(b + 1 == cum.len() || cum[b + 1] > k, "k={k} b={b}");
        }
        // A narrowed window behaves identically.
        assert_eq!(select_block(1, 4, 5, count_before), 2);
    }

    #[test]
    fn masked_word_select_ignores_padding() {
        // 10 valid bits, the rest of the word is garbage padding.
        let word = 0xFFFF_FFFF_FFFF_FC05u64; // valid low 10: 0000000101
        assert_eq!(count_bit_in_word(word, true, 10), 2);
        assert_eq!(count_bit_in_word(word, false, 10), 8);
        assert_eq!(select_bit_in_word(word, true, 10, 0), 0);
        assert_eq!(select_bit_in_word(word, true, 10, 1), 2);
        assert_eq!(select_bit_in_word(word, false, 10, 0), 1);
        assert_eq!(select_bit_in_word(word, false, 10, 7), 9);
        // valid = 64 is the unmasked case.
        assert_eq!(count_bit_in_word(u64::MAX, true, 64), 64);
        assert_eq!(count_bit_in_word(u64::MAX, false, 64), 0);
    }
}
