//! Broadword (word-parallel) bit primitives.
//!
//! The only non-trivial primitive needed by the rank/select structures is
//! in-word select, answered by popcount-guided binary search over word
//! halves — branch-light and table-free.

/// Position (0-based) of the `k`-th (0-based) set bit of `x`.
///
/// # Panics
/// Debug-panics if `x` has at most `k` set bits; in release the result is
/// unspecified (but in-range) in that case.
#[inline]
pub fn select_in_word(mut x: u64, mut k: u32) -> u32 {
    debug_assert!(x.count_ones() > k, "select_in_word: not enough ones");
    let mut pos = 0u32;
    let c = (x as u32).count_ones();
    if k >= c {
        x >>= 32;
        pos += 32;
        k -= c;
    }
    let c = (x as u16 as u32).count_ones();
    if k >= c {
        x >>= 16;
        pos += 16;
        k -= c;
    }
    let c = (x as u8 as u32).count_ones();
    if k >= c {
        x >>= 8;
        pos += 8;
        k -= c;
    }
    let c = ((x & 0xF) as u32).count_ones();
    if k >= c {
        x >>= 4;
        pos += 4;
        k -= c;
    }
    let c = ((x & 0x3) as u32).count_ones();
    if k >= c {
        x >>= 2;
        pos += 2;
        k -= c;
    }
    if k >= (x & 1) as u32 {
        pos += 1;
    }
    pos
}

/// Position of the `k`-th zero bit of `x` (i.e. select over the complement).
#[inline]
pub fn select_zero_in_word(x: u64, k: u32) -> u32 {
    select_in_word(!x, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_select(x: u64, k: u32) -> Option<u32> {
        let mut seen = 0;
        for i in 0..64 {
            if (x >> i) & 1 != 0 {
                if seen == k {
                    return Some(i);
                }
                seen += 1;
            }
        }
        None
    }

    #[test]
    fn select_matches_naive_on_patterns() {
        let patterns = [
            1u64,
            u64::MAX,
            0x8000_0000_0000_0000,
            0xAAAA_AAAA_AAAA_AAAA,
            0x5555_5555_5555_5555,
            0xF0F0_F0F0_0F0F_0F0F,
            0x0123_4567_89AB_CDEF,
            0x8000_0000_0000_0001,
        ];
        for &p in &patterns {
            for k in 0..p.count_ones() {
                assert_eq!(
                    select_in_word(p, k),
                    naive_select(p, k).unwrap(),
                    "p={p:#x} k={k}"
                );
            }
        }
    }

    #[test]
    fn select_matches_naive_pseudorandom() {
        // xorshift so the test needs no RNG dependency
        let mut s = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..2000 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let ones = s.count_ones();
            if ones == 0 {
                continue;
            }
            let k = (s >> 32) as u32 % ones;
            assert_eq!(select_in_word(s, k), naive_select(s, k).unwrap());
        }
    }

    #[test]
    fn select_zero_is_select_of_complement() {
        let x = 0xF0F0_F0F0_F0F0_F0F0u64;
        for k in 0..32 {
            assert_eq!(select_zero_in_word(x, k), naive_select(!x, k).unwrap());
        }
    }
}
