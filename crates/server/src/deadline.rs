//! Per-query deadline budgets, propagated through every shard sub-call.
//!
//! A production front-end's latency tail is governed by its slowest
//! dependency; the only defense is an explicit *budget* fixed when the
//! request arrives and handed down to everything done on its behalf. A
//! [`Deadline`] is that budget: an absolute `Instant` (so it shrinks as
//! work proceeds — passing it along never resets the clock) or `none()`
//! for unbounded administrative calls. The router checks it before
//! dispatching, bounds its gather waits by [`Deadline::remaining`], and
//! shards check it cooperatively between batch-kernel groups so a request
//! that can no longer make its budget stops consuming cycles.

use std::time::{Duration, Instant};

/// An absolute time budget for one query (batch) and every sub-call made
/// on its behalf. Copyable; cheap to pass by value.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// No deadline: waits are unbounded (administrative/test calls).
    pub fn none() -> Self {
        Deadline { at: None }
    }

    /// A deadline `budget` from now.
    pub fn within(budget: Duration) -> Self {
        Deadline {
            at: Some(Instant::now() + budget),
        }
    }

    /// A deadline at an absolute instant (for propagating a caller's
    /// budget without restarting the clock).
    pub fn at(at: Instant) -> Self {
        Deadline { at: Some(at) }
    }

    /// Time left: `None` when unbounded, `Some(ZERO)` when expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// Whether the budget is spent.
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_expires() {
        let d = Deadline::none();
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
    }

    #[test]
    fn budget_counts_down_and_expires() {
        let d = Deadline::within(Duration::from_millis(50));
        assert!(!d.expired());
        let r = d.remaining().unwrap();
        assert!(r <= Duration::from_millis(50));
        let past = Deadline::within(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert!(past.expired());
        assert_eq!(past.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn absolute_deadline_propagates_without_reset() {
        let at = Instant::now() + Duration::from_millis(30);
        let a = Deadline::at(at);
        std::thread::sleep(Duration::from_millis(5));
        let b = Deadline::at(at); // "forwarded" to a sub-call
                                  // Both views share the absolute budget: b has less time left than
                                  // the original budget, not a fresh 30ms.
        assert!(b.remaining().unwrap() <= a.remaining().unwrap() + Duration::from_millis(1));
        assert!(b.remaining().unwrap() < Duration::from_millis(30));
    }
}
