//! Query, answer and degraded-result types for the sharded front-end.
//!
//! The router hash-partitions strings across shards: every occurrence of a
//! given (binarized) string lives on exactly one shard, chosen by
//! [`shard_for`]. That makes [`Query::Count`] and [`Query::Access`]
//! single-shard operations, while [`Query::CountPrefix`] must fan out to
//! every shard and sum.
//!
//! Degradation is *structured*: a batch never fails wholesale. Each query
//! either gets an answer that is bit-identical to what an unsharded oracle
//! store would return, or `None` plus a [`ShardMiss`] entry naming the
//! shard that could not contribute and why ([`MissCause`]). Partial
//! answers are never silently passed off as exact ones.

use wt_trie::{BitStr, BitString};

/// A document handle returned by a sharded append: which shard holds the
/// string and at which local position.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DocId {
    /// Owning shard index.
    pub shard: u32,
    /// Position within that shard's sequence.
    pub pos: u64,
}

/// One query in a client batch, over binarized (prefix-free) strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Query {
    /// Total occurrences of the string (single-shard: all occurrences are
    /// co-located by hash partitioning).
    Count(BitString),
    /// Total strings with the given prefix (fans out to every shard).
    CountPrefix(BitString),
    /// The string stored at a [`DocId`] (single-shard).
    Access(DocId),
}

/// One operation in a per-shard sub-batch, produced by splitting a client
/// batch. Owned (no borrows) so it can move onto a scatter worker thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardOp {
    /// Count occurrences of a string on this shard.
    Count(BitString),
    /// Count prefixed strings on this shard.
    CountPrefix(BitString),
    /// Access a local position on this shard.
    Access(u64),
}

/// The answer to one [`Query`]. Every produced answer is exact — equal to
/// what an unsharded store holding the union of all shards would return.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Answer {
    /// Occurrence count for [`Query::Count`].
    Count(usize),
    /// Prefixed-string count for [`Query::CountPrefix`].
    CountPrefix(usize),
    /// Stored string for [`Query::Access`] (`None` when the position is
    /// out of range on the owning shard).
    Access(Option<BitString>),
}

/// Why a shard could not contribute to a batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MissCause {
    /// The shard's circuit breaker is open; the sub-call was not sent.
    Quarantined,
    /// The query's deadline budget ran out before the shard replied.
    DeadlineExpired,
    /// The router shed the batch at admission (in-flight window full).
    Shed,
    /// The shard returned an error (message preserved for diagnostics).
    Failed(String),
    /// The shard panicked; the panic was contained by the router.
    Panicked(String),
}

impl std::fmt::Display for MissCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MissCause::Quarantined => write!(f, "shard quarantined (circuit open)"),
            MissCause::DeadlineExpired => write!(f, "deadline expired"),
            MissCause::Shed => write!(f, "shed at admission (overloaded)"),
            MissCause::Failed(m) => write!(f, "shard failed: {m}"),
            MissCause::Panicked(m) => write!(f, "shard panicked: {m}"),
        }
    }
}

/// One shard's absence from a batch result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMiss {
    /// The shard that did not contribute.
    pub shard: u32,
    /// Why it did not contribute.
    pub cause: MissCause,
}

/// The structured, possibly degraded result of a query batch.
///
/// `answers[i]` corresponds to the `i`-th input [`Query`]: `Some` iff every
/// shard the query depends on replied in time, in which case the value is
/// bit-identical to the unsharded oracle's. Queries touching a missing
/// shard get `None`; the shard appears in `missing` with its cause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartialResult {
    /// Per-query answers, parallel to the input batch.
    pub answers: Vec<Option<Answer>>,
    /// Shards that replied with answers, ascending.
    pub answered_shards: Vec<u32>,
    /// Shards that could not contribute, with causes, ascending by shard.
    pub missing: Vec<ShardMiss>,
}

impl PartialResult {
    /// True when every dispatched shard answered (all answers are `Some`).
    pub fn is_complete(&self) -> bool {
        self.missing.is_empty()
    }
}

/// The owning shard for a (binarized) string: FNV-1a over the bits in
/// 64-bit chunks, reduced modulo the shard count. Deterministic across
/// runs and processes, so appends and counts always agree on placement.
pub fn shard_for(s: BitStr<'_>, shards: usize) -> u32 {
    debug_assert!(shards > 0, "router must have at least one shard");
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let n = s.len();
    let mut i = 0;
    while i < n {
        let w = (n - i).min(64);
        h ^= s.get_bits(i, w);
        h = h.wrapping_mul(FNV_PRIME);
        i += w;
    }
    // Fold in the length so strings that differ only by trailing zero-width
    // (e.g. "" vs "0" with equal chunk values) cannot collide structurally.
    h ^= n as u64;
    h = h.wrapping_mul(FNV_PRIME);
    (h % shards.max(1) as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_for_is_deterministic_and_in_range() {
        let n = 5;
        for s in ["", "0", "00", "1", "10110", "111100001111"] {
            let b = BitString::parse(s);
            let a = shard_for(b.as_bitstr(), n);
            let b2 = shard_for(b.as_bitstr(), n);
            assert_eq!(a, b2);
            assert!((a as usize) < n);
        }
    }

    #[test]
    fn shard_for_spreads_across_shards() {
        // Not a statistical test — just require that a few hundred distinct
        // strings do not all land on one shard.
        let n = 4;
        let mut seen = [false; 4];
        for i in 0..256u64 {
            let mut b = BitString::new();
            for k in 0..16 {
                b.push((i >> (k % 8)) & 1 == 1 || (i + k) % 3 == 0);
            }
            seen[shard_for(b.as_bitstr(), n) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all shards should receive keys");
    }

    #[test]
    fn single_shard_maps_everything_to_zero() {
        for s in ["", "0", "101"] {
            let b = BitString::parse(s);
            assert_eq!(shard_for(b.as_bitstr(), 1), 0);
        }
    }

    #[test]
    fn partial_result_completeness() {
        let complete = PartialResult {
            answers: vec![Some(Answer::Count(3))],
            answered_shards: vec![0, 1],
            missing: vec![],
        };
        assert!(complete.is_complete());
        let degraded = PartialResult {
            answers: vec![None],
            answered_shards: vec![0],
            missing: vec![ShardMiss {
                shard: 1,
                cause: MissCause::Quarantined,
            }],
        };
        assert!(!degraded.is_complete());
        assert_eq!(
            degraded.missing[0].cause.to_string(),
            "shard quarantined (circuit open)"
        );
    }
}
