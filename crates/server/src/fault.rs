//! Deterministic fault injection at the shard boundary.
//!
//! [`FaultyShard`] wraps any [`Shard`] and fires scripted faults keyed by
//! a monotone *operation index* (each `execute`/`append` call consumes one
//! index), mirroring the per-op-index design of
//! [`FaultStorage`](wt_bits::storage::FaultStorage) one layer up: storage
//! faults exercise the persistence path, shard faults exercise the
//! router's scatter-gather, health machine and deadline handling. Because
//! faults are indexed — not random — every failover test replays
//! identically.
//!
//! The script can be swapped mid-run with [`FaultyShard::set_script`],
//! which is how harnesses model an operator fixing a shard so the router's
//! half-open probe can observe recovery.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use wt_trie::BitStr;

use crate::deadline::Deadline;
use crate::query::{Answer, ShardOp};
use crate::shard::{Shard, ShardError};

/// What a scripted fault does to the gated call.
#[derive(Clone, Debug)]
pub enum FaultAction {
    /// Sleep this long before executing (models a slow shard; the call
    /// still completes, possibly after the caller's deadline).
    Delay(Duration),
    /// Fail with [`ShardError::Unavailable`] instead of executing.
    Fail,
    /// Panic instead of executing (must be contained by the router).
    Panic,
}

/// A deterministic fault schedule: actions keyed by operation index, plus
/// an optional index from which every operation fails (a shard that goes
/// down and stays down until the script is cleared).
#[derive(Clone, Debug, Default)]
pub struct FaultScript {
    actions: Vec<(u64, FaultAction)>,
    fail_from: Option<u64>,
}

impl FaultScript {
    /// An empty script: the wrapper is transparent.
    pub fn new() -> Self {
        FaultScript::default()
    }

    /// Delay operation `index` by `by`.
    pub fn delay(mut self, index: u64, by: Duration) -> Self {
        self.actions.push((index, FaultAction::Delay(by)));
        self
    }

    /// Fail operation `index`.
    pub fn fail(mut self, index: u64) -> Self {
        self.actions.push((index, FaultAction::Fail));
        self
    }

    /// Panic on operation `index`.
    pub fn panic(mut self, index: u64) -> Self {
        self.actions.push((index, FaultAction::Panic));
        self
    }

    /// Fail every operation with index `>= from` (until the script is
    /// replaced).
    pub fn fail_from(mut self, from: u64) -> Self {
        self.fail_from = Some(from);
        self
    }

    fn action_for(&self, index: u64) -> Option<FaultAction> {
        if self.fail_from.is_some_and(|from| index >= from) {
            return Some(FaultAction::Fail);
        }
        self.actions
            .iter()
            .find(|(i, _)| *i == index)
            .map(|(_, a)| a.clone())
    }
}

/// A [`Shard`] wrapper that injects scripted faults. `execute` and
/// `append` share one operation counter; `len` is an administrative call
/// and is never gated.
pub struct FaultyShard {
    inner: Arc<dyn Shard>,
    script: Mutex<FaultScript>,
    ops: AtomicU64,
}

impl FaultyShard {
    /// Wrap `inner`, injecting faults per `script`.
    pub fn new(inner: Arc<dyn Shard>, script: FaultScript) -> Self {
        FaultyShard {
            inner,
            script: Mutex::new(script),
            ops: AtomicU64::new(0),
        }
    }

    /// Replace the fault schedule mid-run (e.g. clear it to model the
    /// shard being fixed, so a half-open probe succeeds).
    pub fn set_script(&self, script: FaultScript) {
        *self.script.lock().unwrap_or_else(PoisonError::into_inner) = script;
    }

    /// Operations gated so far.
    pub fn ops_seen(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    fn gate(&self) -> Result<(), ShardError> {
        let index = self.ops.fetch_add(1, Ordering::Relaxed);
        let action = self
            .script
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .action_for(index);
        match action {
            None => Ok(()),
            Some(FaultAction::Delay(by)) => {
                std::thread::sleep(by);
                Ok(())
            }
            Some(FaultAction::Fail) => Err(ShardError::Unavailable(format!(
                "injected failure at op {index}"
            ))),
            Some(FaultAction::Panic) => panic!("injected panic at op {index}"),
        }
    }
}

impl Shard for FaultyShard {
    fn execute(&self, ops: &[ShardOp], deadline: Deadline) -> Result<Vec<Answer>, ShardError> {
        self.gate()?;
        self.inner.execute(ops, deadline)
    }

    fn append(&self, s: BitStr<'_>) -> Result<u64, ShardError> {
        self.gate()?;
        self.inner.append(s)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::StoreShard;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::time::Instant;
    use wt_store::TieredStore;
    use wt_trie::BitString;

    fn inner() -> Arc<dyn Shard> {
        let mut store = TieredStore::new();
        store
            .append(BitString::parse("010").as_bitstr())
            .expect("prefix-free test data");
        Arc::new(StoreShard::new(store))
    }

    #[test]
    fn script_fires_by_op_index_and_clears() {
        let shard = FaultyShard::new(
            inner(),
            FaultScript::new()
                .fail(1)
                .delay(2, Duration::from_millis(20)),
        );
        let ops = vec![ShardOp::Count(BitString::parse("010"))];

        // Op 0: transparent.
        assert!(shard.execute(&ops, Deadline::none()).is_ok());
        // Op 1: injected failure.
        let err = shard.execute(&ops, Deadline::none()).unwrap_err();
        assert!(matches!(err, ShardError::Unavailable(_)));
        // Op 2: delayed but correct.
        let t0 = Instant::now();
        assert!(shard.execute(&ops, Deadline::none()).is_ok());
        assert!(t0.elapsed() >= Duration::from_millis(20));
        // Clearing the script heals the shard.
        shard.set_script(FaultScript::new());
        assert!(shard.execute(&ops, Deadline::none()).is_ok());
        assert_eq!(shard.ops_seen(), 4);
    }

    #[test]
    fn fail_from_takes_the_shard_down_until_cleared() {
        let shard = FaultyShard::new(inner(), FaultScript::new().fail_from(0));
        let ops = vec![ShardOp::Count(BitString::parse("010"))];
        for _ in 0..3 {
            assert!(shard.execute(&ops, Deadline::none()).is_err());
        }
        assert_eq!(shard.len(), 1, "len is administrative and never gated");
        shard.set_script(FaultScript::new());
        assert!(shard.execute(&ops, Deadline::none()).is_ok());
    }

    #[test]
    fn injected_panic_propagates_for_router_containment() {
        let shard = FaultyShard::new(inner(), FaultScript::new().panic(0));
        let ops = vec![ShardOp::Count(BitString::parse("010"))];
        let result = catch_unwind(AssertUnwindSafe(|| shard.execute(&ops, Deadline::none())));
        assert!(
            result.is_err(),
            "panic reaches the caller to be contained there"
        );
        // The wrapper itself stays usable afterwards.
        assert!(shard.execute(&ops, Deadline::none()).is_ok());
    }
}
