//! # wt-server — fault-tolerant sharded serving for tiered Wavelet Tries
//!
//! Turns the per-shard [`TieredStore`](wt_store::TieredStore) into an
//! end-to-end front-end: N hash-partitioned shards behind a
//! [`ShardRouter`] that splits query batches, scatter-gathers over
//! per-shard wait-free snapshots with the store's `*_batch` kernels, and
//! merges — wrapped in the robustness layer that is this crate's point:
//!
//! - **Deadline budgets** ([`Deadline`]): fixed at batch entry, propagated
//!   (never reset) to every shard sub-call, bounding both worker waits and
//!   in-kernel execution.
//! - **Circuit breaking** ([`ShardHealth`]): per-shard
//!   Healthy → Degraded → Quarantined state machine over a sliding
//!   error/latency window, with half-open probes that heal a recovered
//!   shard.
//! - **Bounded retries**: transient shard errors retry under the
//!   workspace-wide [`RetryPolicy`](wt_bits::storage::RetryPolicy) —
//!   decorrelated jitter keeps simultaneous retriers from re-converging
//!   in waves — and never past the deadline.
//! - **Admission control**: batches beyond the in-flight window are shed
//!   at the door instead of queueing into latency collapse.
//! - **Structured degradation** ([`PartialResult`]): a query that outlives
//!   its budget or touches a broken shard gets `None` plus a
//!   machine-readable [`ShardMiss`]; every `Some` answer is bit-identical
//!   to an unsharded oracle store. No panic escapes the router.
//! - **Deterministic fault injection** ([`FaultyShard`]): delay / fail /
//!   panic faults keyed by operation index, modeled on
//!   [`FaultStorage`](wt_bits::storage::FaultStorage), so failover tests
//!   replay bit-identically; shards recover through the store's
//!   crash-safe `recover_dir` + panic-contained `maintain_with`.
//!
//! See `DESIGN.md` §16 for the state machine diagram and
//! `tests/shard_failover.rs` for the fault-injection suite that proves the
//! claims above.

pub mod deadline;
pub mod fault;
pub mod health;
pub mod query;
pub mod router;
pub mod shard;

pub use deadline::Deadline;
pub use fault::{FaultAction, FaultScript, FaultyShard};
pub use health::{Admission, HealthConfig, HealthSnapshot, HealthState, ShardHealth};
pub use query::{shard_for, Answer, DocId, MissCause, PartialResult, Query, ShardMiss, ShardOp};
pub use router::{RouterConfig, ShardRouter};
pub use shard::{Shard, ShardError, StoreShard};

// The whole point of the router is to be shared across client threads and
// to move sub-batches onto workers; lock these bounds in at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardRouter>();
    assert_send_sync::<StoreShard>();
    assert_send_sync::<FaultyShard>();
    assert_send_sync::<Deadline>();
    assert_send_sync::<PartialResult>();
};
