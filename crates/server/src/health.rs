//! Per-shard health state machine: a circuit breaker with half-open probes.
//!
//! ```text
//!                    errors in window ≥ degrade_errors
//!            ┌───────────────────────────────────────────┐
//!            │                                           ▼
//!       ┌─────────┐    window clears    ┌──────────┐  errors ≥
//!       │ Healthy │◀────────────────────│ Degraded │  quarantine_errors
//!       └─────────┘                     └──────────┘      │
//!            ▲                                            ▼
//!            │  probe succeeds                    ┌─────────────┐
//!            └────────────────────────────────────│ Quarantined │◀─┐
//!                                                 └─────────────┘  │
//!                                                        │         │
//!                                    cooldown elapsed →  │ half-open probe
//!                                    admit ONE probe ────┘ fails: restart
//!                                                          cooldown
//! ```
//!
//! Outcomes (success/error, with successes over the latency budget counted
//! as errors) land in a sliding window of the last [`HealthConfig::window`]
//! calls. The router is the only writer: worker threads report back over a
//! channel and the router thread applies the outcomes, so transitions are
//! deterministic given a deterministic fault script.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Circuit-breaker state of one shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthState {
    /// Serving normally.
    Healthy,
    /// Errors accumulating; still served, but one more burst away from
    /// quarantine.
    Degraded,
    /// Circuit open: no traffic except a single half-open probe after each
    /// cooldown.
    Quarantined,
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthState::Healthy => write!(f, "healthy"),
            HealthState::Degraded => write!(f, "degraded"),
            HealthState::Quarantined => write!(f, "quarantined"),
        }
    }
}

/// Tuning for the per-shard health machine.
#[derive(Clone, Debug)]
pub struct HealthConfig {
    /// Sliding window length (outcomes remembered per shard).
    pub window: usize,
    /// Errors in the window at which the shard is marked [`HealthState::Degraded`].
    pub degrade_errors: usize,
    /// Errors in the window at which the circuit opens
    /// ([`HealthState::Quarantined`]).
    pub quarantine_errors: usize,
    /// How long the circuit stays open before admitting one half-open
    /// probe.
    pub probe_cooldown: Duration,
    /// Successes slower than this count as errors in the window (`None`
    /// disables latency-based degradation).
    pub latency_budget: Option<Duration>,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            window: 16,
            degrade_errors: 2,
            quarantine_errors: 4,
            probe_cooldown: Duration::from_millis(50),
            latency_budget: None,
        }
    }
}

/// What the router may do with a request for this shard right now.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Dispatch normally.
    Serve,
    /// Dispatch as the single half-open probe; report the outcome via
    /// [`ShardHealth::record_probe`].
    Probe,
    /// Circuit open and not yet due for a probe: do not dispatch.
    Reject,
}

/// Sliding-window health tracker for one shard. Not internally
/// synchronized — the router wraps each in a `Mutex` and is the only
/// writer.
#[derive(Debug)]
pub struct ShardHealth {
    config: HealthConfig,
    state: HealthState,
    /// `true` = error (or over-budget success), most recent at the back.
    window: VecDeque<bool>,
    quarantined_at: Option<Instant>,
    /// A half-open probe is in flight; only one at a time.
    probing: bool,
    /// Times the circuit has opened.
    pub trips: u64,
    /// Half-open probes dispatched.
    pub probes: u64,
    /// Probe successes that closed the circuit.
    pub recoveries: u64,
    /// Most recent error description, for observability.
    pub last_error: Option<String>,
}

/// Read-only copy of one shard's health, for reports and tests.
#[derive(Clone, Debug)]
pub struct HealthSnapshot {
    /// Shard index.
    pub shard: u32,
    /// Current circuit state.
    pub state: HealthState,
    /// Times the circuit has opened.
    pub trips: u64,
    /// Half-open probes dispatched.
    pub probes: u64,
    /// Probe successes that closed the circuit.
    pub recoveries: u64,
    /// Most recent error description.
    pub last_error: Option<String>,
}

impl ShardHealth {
    /// A fresh, healthy tracker.
    pub fn new(config: HealthConfig) -> Self {
        ShardHealth {
            config,
            state: HealthState::Healthy,
            window: VecDeque::new(),
            quarantined_at: None,
            probing: false,
            trips: 0,
            probes: 0,
            recoveries: 0,
            last_error: None,
        }
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Admission decision for one incoming sub-call.
    pub fn admit(&mut self) -> Admission {
        match self.state {
            HealthState::Healthy | HealthState::Degraded => Admission::Serve,
            HealthState::Quarantined => {
                let due = self
                    .quarantined_at
                    .is_none_or(|at| at.elapsed() >= self.config.probe_cooldown);
                if due && !self.probing {
                    self.probing = true;
                    self.probes += 1;
                    Admission::Probe
                } else {
                    Admission::Reject
                }
            }
        }
    }

    /// Record a completed (non-probe) call that returned answers.
    /// Successes slower than the latency budget count as errors.
    pub fn record_success(&mut self, latency: Duration) {
        let over_budget = self.config.latency_budget.is_some_and(|b| latency > b);
        self.push_outcome(over_budget);
        if over_budget {
            self.last_error = Some(format!("latency {latency:?} over budget"));
        }
    }

    /// Record a failed (non-probe) call.
    pub fn record_error(&mut self, cause: &str) {
        self.last_error = Some(cause.to_string());
        self.push_outcome(true);
    }

    /// Record the outcome of the half-open probe admitted by
    /// [`ShardHealth::admit`]. Success closes the circuit (back to
    /// [`HealthState::Healthy`], window cleared); failure restarts the
    /// cooldown.
    pub fn record_probe(&mut self, outcome: Result<Duration, String>) {
        self.probing = false;
        match outcome {
            Ok(_) => {
                self.state = HealthState::Healthy;
                self.window.clear();
                self.quarantined_at = None;
                self.recoveries += 1;
            }
            Err(cause) => {
                self.last_error = Some(cause);
                self.quarantined_at = Some(Instant::now());
            }
        }
    }

    /// Read-only copy for reports.
    pub fn snapshot(&self, shard: u32) -> HealthSnapshot {
        HealthSnapshot {
            shard,
            state: self.state,
            trips: self.trips,
            probes: self.probes,
            recoveries: self.recoveries,
            last_error: self.last_error.clone(),
        }
    }

    fn push_outcome(&mut self, error: bool) {
        self.window.push_back(error);
        while self.window.len() > self.config.window {
            self.window.pop_front();
        }
        // Quarantine is sticky: only a successful probe closes the circuit,
        // so late results from already-dispatched calls can't flap it.
        if self.state == HealthState::Quarantined {
            return;
        }
        let errors = self.window.iter().filter(|&&e| e).count();
        let next = if errors >= self.config.quarantine_errors {
            HealthState::Quarantined
        } else if errors >= self.config.degrade_errors {
            HealthState::Degraded
        } else {
            HealthState::Healthy
        };
        if next == HealthState::Quarantined && self.state != HealthState::Quarantined {
            self.trips += 1;
            self.quarantined_at = Some(Instant::now());
        }
        self.state = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> HealthConfig {
        HealthConfig {
            window: 8,
            degrade_errors: 2,
            quarantine_errors: 4,
            probe_cooldown: Duration::ZERO,
            latency_budget: None,
        }
    }

    #[test]
    fn healthy_to_degraded_to_quarantined_and_back() {
        let mut h = ShardHealth::new(config());
        assert_eq!(h.state(), HealthState::Healthy);
        assert_eq!(h.admit(), Admission::Serve);

        h.record_error("boom 1");
        assert_eq!(h.state(), HealthState::Healthy);
        h.record_error("boom 2");
        assert_eq!(h.state(), HealthState::Degraded);
        assert_eq!(h.admit(), Admission::Serve, "degraded still serves");

        h.record_error("boom 3");
        h.record_error("boom 4");
        assert_eq!(h.state(), HealthState::Quarantined);
        assert_eq!(h.trips, 1);

        // Cooldown is zero: first admit is the half-open probe, and while
        // it is in flight everything else is rejected.
        assert_eq!(h.admit(), Admission::Probe);
        assert_eq!(h.admit(), Admission::Reject);

        // Probe fails: circuit stays open, cooldown restarts.
        h.record_probe(Err("still down".into()));
        assert_eq!(h.state(), HealthState::Quarantined);

        // Next probe succeeds: healthy again, window cleared.
        assert_eq!(h.admit(), Admission::Probe);
        h.record_probe(Ok(Duration::from_micros(10)));
        assert_eq!(h.state(), HealthState::Healthy);
        assert_eq!(h.recoveries, 1);
        assert_eq!(h.admit(), Admission::Serve);
    }

    #[test]
    fn successes_age_errors_out_of_the_window() {
        let mut h = ShardHealth::new(config());
        h.record_error("a");
        h.record_error("b");
        assert_eq!(h.state(), HealthState::Degraded);
        for _ in 0..8 {
            h.record_success(Duration::from_micros(5));
        }
        assert_eq!(h.state(), HealthState::Healthy);
    }

    #[test]
    fn slow_successes_count_against_the_latency_budget() {
        let mut cfg = config();
        cfg.latency_budget = Some(Duration::from_millis(1));
        let mut h = ShardHealth::new(cfg);
        h.record_success(Duration::from_millis(10));
        h.record_success(Duration::from_millis(10));
        assert_eq!(h.state(), HealthState::Degraded);
        assert!(h.last_error.as_deref().unwrap().contains("over budget"));
    }

    #[test]
    fn quarantine_is_sticky_under_late_results() {
        let mut h = ShardHealth::new(config());
        for i in 0..4 {
            h.record_error(&format!("e{i}"));
        }
        assert_eq!(h.state(), HealthState::Quarantined);
        // Late successes from calls dispatched before the trip must not
        // close the circuit — only a probe may.
        for _ in 0..8 {
            h.record_success(Duration::from_micros(5));
        }
        assert_eq!(h.state(), HealthState::Quarantined);
    }

    #[test]
    fn cooldown_gates_the_probe() {
        let mut cfg = config();
        cfg.probe_cooldown = Duration::from_millis(50);
        let mut h = ShardHealth::new(cfg);
        for i in 0..4 {
            h.record_error(&format!("e{i}"));
        }
        assert_eq!(h.admit(), Admission::Reject, "cooldown not yet elapsed");
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(h.admit(), Admission::Probe);
    }
}
