//! The shard abstraction and its production implementation over
//! [`TieredStore`].
//!
//! A [`Shard`] executes a sub-batch of [`ShardOp`]s against its local
//! sequence and appends strings assigned to it by the router's hash
//! partitioning. The production implementation, [`StoreShard`], serves
//! reads from a wait-free [`StoreSnapshot`] (one `Arc` clone per batch; no
//! lock is held while answering) using the store's software-pipelined
//! `*_batch` kernels, and checks the query's [`Deadline`] cooperatively
//! between kernel chunks so a request that has outlived its budget stops
//! burning cycles instead of dragging the tail.
//!
//! Writes and maintenance serialize on an internal mutex and publish a new
//! epoch when done; in-flight reads keep answering from their snapshot.

use std::path::Path;
use std::sync::{Mutex, PoisonError};

use wavelet_trie::SeqIndex;
use wt_bits::storage::Storage;
use wt_store::maintain::Maintenance;
use wt_store::TieredStore;
use wt_store::{MaintenanceReport, RecoveryReport, StoreError, StoreReader, StoreSnapshot};
use wt_trie::BitStr;

use crate::deadline::Deadline;
use crate::query::{Answer, ShardOp};

/// Ops per batch-kernel call between cooperative deadline checks. Small
/// enough that a shard notices an expired budget within microseconds;
/// large enough that the batch kernels still overlap their cache misses.
const DEADLINE_CHECK_CHUNK: usize = 256;

/// Why a shard sub-call failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardError {
    /// Transient unavailability (storage fault, injected failure). The
    /// router may retry within the deadline budget, and the error counts
    /// against the shard's health window.
    Unavailable(String),
    /// The call noticed the query deadline had expired and stopped early.
    /// Not retried (the budget is gone) and not a health signal by itself
    /// — the router attributes it to the *query*, not the shard.
    DeadlineExceeded,
    /// The request itself was invalid (e.g. a prefix-free violation on
    /// append). A client error: never retried, never counted against
    /// shard health.
    Rejected(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Unavailable(m) => write!(f, "shard unavailable: {m}"),
            ShardError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ShardError::Rejected(m) => write!(f, "request rejected: {m}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// One partition of the sharded store. Object-safe so routers can mix
/// production shards with fault-injection wrappers.
pub trait Shard: Send + Sync {
    /// Execute a sub-batch against the shard's current published state.
    /// Answers are parallel to `ops`.
    fn execute(&self, ops: &[ShardOp], deadline: Deadline) -> Result<Vec<Answer>, ShardError>;

    /// Append a (binarized, prefix-free) string; returns its local
    /// position.
    fn append(&self, s: BitStr<'_>) -> Result<u64, ShardError>;

    /// Strings currently published by this shard.
    fn len(&self) -> usize;

    /// Whether the shard currently publishes no strings.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Production [`Shard`]: a [`TieredStore`] behind a write mutex, serving
/// reads from published snapshots.
pub struct StoreShard {
    store: Mutex<TieredStore>,
    reader: StoreReader,
}

impl StoreShard {
    /// Wrap a store (publishing its current state first so readers see
    /// it).
    pub fn new(mut store: TieredStore) -> Self {
        store.publish();
        let reader = store.reader();
        StoreShard {
            store: Mutex::new(store),
            reader,
        }
    }

    /// Recover a shard from a persisted directory via the store's
    /// crash-safe [`TieredStore::recover_dir_with`]. Damaged generations
    /// come back quarantined in the [`RecoveryReport`]; the shard serves
    /// whatever survived.
    pub fn recover(
        storage: &dyn Storage,
        dir: impl AsRef<Path>,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        let (store, report) = TieredStore::recover_dir_with(storage, dir)?;
        Ok((StoreShard::new(store), report))
    }

    /// Run background maintenance (seal/compact/persist with retry and
    /// panic containment) and publish the result. Reads continue from the
    /// previous epoch throughout.
    pub fn maintain_with(&self, opts: &Maintenance<'_>) -> MaintenanceReport {
        let mut store = self.store.lock().unwrap_or_else(PoisonError::into_inner);
        let report = store.maintain_with(opts);
        store.publish();
        report
    }

    /// The latest published snapshot (what `execute` serves from).
    pub fn snapshot(&self) -> StoreSnapshot {
        self.reader.snapshot()
    }

    /// Persist the shard through an injectable storage backend.
    pub fn save_dir_with(
        &self,
        storage: &dyn Storage,
        dir: impl AsRef<Path>,
    ) -> Result<(), StoreError> {
        let store = self.store.lock().unwrap_or_else(PoisonError::into_inner);
        store.save_dir_with(storage, dir)
    }
}

impl Shard for StoreShard {
    fn execute(&self, ops: &[ShardOp], deadline: Deadline) -> Result<Vec<Answer>, ShardError> {
        let snap = self.reader.snapshot();
        let len = snap.len();
        let mut answers: Vec<Option<Answer>> = vec![None; ops.len()];

        // Group by kind so each kind goes through its software-pipelined
        // batch kernel, in chunks with a deadline check between chunks.
        let mut counts: Vec<usize> = Vec::new(); // indices into `ops`
        let mut prefixes: Vec<usize> = Vec::new();
        let mut accesses: Vec<usize> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                ShardOp::Count(_) => counts.push(i),
                ShardOp::CountPrefix(_) => prefixes.push(i),
                ShardOp::Access(pos) => {
                    if (*pos as usize) < len {
                        accesses.push(i);
                    } else {
                        // Out-of-range access answers `None` rather than
                        // panicking the worker: positions are client data.
                        answers[i] = Some(Answer::Access(None));
                    }
                }
            }
        }

        for chunk in counts.chunks(DEADLINE_CHECK_CHUNK) {
            if deadline.expired() {
                return Err(ShardError::DeadlineExceeded);
            }
            let queries: Vec<(BitStr<'_>, usize)> = chunk
                .iter()
                .map(|&i| match &ops[i] {
                    ShardOp::Count(s) => (s.as_bitstr(), len),
                    _ => unreachable!("counts holds only Count indices"),
                })
                .collect();
            for (&i, r) in chunk.iter().zip(snap.rank_batch(&queries)) {
                answers[i] = Some(Answer::Count(r));
            }
        }

        for chunk in prefixes.chunks(DEADLINE_CHECK_CHUNK) {
            if deadline.expired() {
                return Err(ShardError::DeadlineExceeded);
            }
            let queries: Vec<BitStr<'_>> = chunk
                .iter()
                .map(|&i| match &ops[i] {
                    ShardOp::CountPrefix(p) => p.as_bitstr(),
                    _ => unreachable!("prefixes holds only CountPrefix indices"),
                })
                .collect();
            for (&i, c) in chunk.iter().zip(snap.count_prefix_batch(&queries)) {
                answers[i] = Some(Answer::CountPrefix(c));
            }
        }

        for chunk in accesses.chunks(DEADLINE_CHECK_CHUNK) {
            if deadline.expired() {
                return Err(ShardError::DeadlineExceeded);
            }
            let positions: Vec<usize> = chunk
                .iter()
                .map(|&i| match &ops[i] {
                    ShardOp::Access(pos) => *pos as usize,
                    _ => unreachable!("accesses holds only in-range Access indices"),
                })
                .collect();
            for (&i, s) in chunk.iter().zip(snap.access_batch(&positions)) {
                answers[i] = Some(Answer::Access(Some(s)));
            }
        }

        // Every index was either answered by its kernel group or filled at
        // classification time (out-of-range access).
        Ok(answers
            .into_iter()
            .map(|a| a.expect("all op kinds classified and answered"))
            .collect())
    }

    fn append(&self, s: BitStr<'_>) -> Result<u64, ShardError> {
        let mut store = self.store.lock().unwrap_or_else(PoisonError::into_inner);
        let pos = store.len() as u64;
        store
            .append(s)
            .map_err(|_| ShardError::Rejected("prefix-free violation".to_string()))?;
        store.publish();
        Ok(pos)
    }

    fn len(&self) -> usize {
        self.reader.snapshot().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use wt_trie::BitString;

    fn shard_with(strings: &[&str]) -> StoreShard {
        let mut store = TieredStore::new();
        for s in strings {
            let b = BitString::parse(s);
            store.append(b.as_bitstr()).expect("prefix-free test data");
        }
        StoreShard::new(store)
    }

    #[test]
    fn executes_mixed_batch_against_snapshot() {
        let shard = shard_with(&["010", "011", "010", "111"]);
        let ops = vec![
            ShardOp::Count(BitString::parse("010")),
            ShardOp::CountPrefix(BitString::parse("01")),
            ShardOp::Access(3),
            ShardOp::Access(99),
            ShardOp::Count(BitString::parse("000")),
        ];
        let answers = shard
            .execute(&ops, Deadline::none())
            .expect("healthy shard");
        assert_eq!(answers[0], Answer::Count(2));
        assert_eq!(answers[1], Answer::CountPrefix(3));
        assert_eq!(answers[2], Answer::Access(Some(BitString::parse("111"))));
        assert_eq!(
            answers[3],
            Answer::Access(None),
            "out of range answers None"
        );
        assert_eq!(answers[4], Answer::Count(0));
    }

    #[test]
    fn expired_deadline_stops_execution() {
        let shard = shard_with(&["010", "011"]);
        let ops = vec![ShardOp::Count(BitString::parse("010"))];
        let past = Deadline::within(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(shard.execute(&ops, past), Err(ShardError::DeadlineExceeded));
    }

    #[test]
    fn append_returns_local_position_and_publishes() {
        let shard = shard_with(&["00"]);
        assert_eq!(shard.len(), 1);
        let pos = shard
            .append(BitString::parse("01").as_bitstr())
            .expect("valid append");
        assert_eq!(pos, 1);
        assert_eq!(shard.len(), 2, "append publishes for readers");
        // Prefix-free violation is a client rejection, not unavailability.
        let err = shard.append(BitString::parse("0").as_bitstr()).unwrap_err();
        assert!(matches!(err, ShardError::Rejected(_)));
    }
}
