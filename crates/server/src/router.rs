//! Deadline-bounded scatter-gather over hash-partitioned shards.
//!
//! [`ShardRouter`] splits a client batch into per-shard sub-batches,
//! dispatches each to a detached worker thread, and gathers replies over a
//! channel with every wait bounded by the batch's [`Deadline`]. The
//! robustness discipline:
//!
//! - **Admission control**: batches beyond [`RouterConfig::max_in_flight`]
//!   are shed immediately ([`MissCause::Shed`]) instead of queueing into a
//!   latency collapse.
//! - **Circuit breaking**: each shard's [`ShardHealth`] gates dispatch;
//!   quarantined shards are skipped ([`MissCause::Quarantined`]) until a
//!   half-open probe heals them.
//! - **Bounded retries**: transient shard errors retry with the
//!   [`RetryPolicy`]'s (optionally jittered) backoff, but never past the
//!   deadline.
//! - **Panic containment**: a panicking shard costs its sub-batch
//!   ([`MissCause::Panicked`]), never the process. Workers are detached —
//!   a shard sleeping past the deadline cannot wedge the router; its late
//!   reply lands on a closed channel and is dropped.
//! - **Structured degradation**: the merge returns a [`PartialResult`]
//!   whose `Some` answers are bit-identical to an unsharded oracle and
//!   whose misses carry machine-readable causes.
//!
//! Health outcomes are recorded only on the router (gathering) thread, so
//! state transitions are deterministic under a deterministic fault script.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use wt_bits::storage::RetryPolicy;
use wt_trie::BitStr;

use crate::deadline::Deadline;
use crate::health::{Admission, HealthConfig, HealthSnapshot, ShardHealth};
use crate::query::{shard_for, Answer, DocId, MissCause, PartialResult, Query, ShardMiss, ShardOp};
use crate::shard::{Shard, ShardError};

/// Router tuning.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Default per-batch deadline budget (entry points taking an explicit
    /// [`Deadline`] override it).
    pub deadline: Duration,
    /// Retry policy for transient shard errors (attempts, backoff,
    /// jitter). Retries always additionally respect the deadline.
    pub retry: RetryPolicy,
    /// Query batches admitted concurrently before shedding.
    pub max_in_flight: usize,
    /// Per-shard circuit-breaker tuning.
    pub health: HealthConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            deadline: Duration::from_millis(100),
            retry: RetryPolicy {
                attempts: 3,
                base_backoff: Duration::from_micros(100),
                max_elapsed: None,
                jitter: Some(0x5EED),
            },
            max_in_flight: 64,
            health: HealthConfig::default(),
        }
    }
}

/// What one scatter worker sends back for its shard.
struct ShardReply {
    shard: usize,
    outcome: Result<(Vec<Answer>, Duration), MissCause>,
}

/// Scatter-gather front-end over `N` shards. Shareable across client
/// threads (`&self` entry points; wrap in `Arc` to share).
pub struct ShardRouter {
    shards: Vec<Arc<dyn Shard>>,
    health: Vec<Mutex<ShardHealth>>,
    config: RouterConfig,
    in_flight: AtomicUsize,
    shed: AtomicU64,
}

impl ShardRouter {
    /// Build a router over `shards` (at least one).
    pub fn new(shards: Vec<Arc<dyn Shard>>, config: RouterConfig) -> Self {
        assert!(!shards.is_empty(), "router needs at least one shard");
        let health = shards
            .iter()
            .map(|_| Mutex::new(ShardHealth::new(config.health.clone())))
            .collect();
        ShardRouter {
            shards,
            health,
            config,
            in_flight: AtomicUsize::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns string `s` under hash partitioning.
    pub fn shard_for(&self, s: BitStr<'_>) -> u32 {
        shard_for(s, self.shards.len())
    }

    /// Published length of one shard (administrative read: not deadline-
    /// bounded, not health-gated, never faulted by `FaultyShard`).
    pub fn shard_len(&self, shard: u32) -> Option<usize> {
        self.shards.get(shard as usize).map(|s| s.len())
    }

    /// Batches shed at admission since construction.
    pub fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Read-only health of every shard, for observability and tests.
    pub fn health_report(&self) -> Vec<HealthSnapshot> {
        self.health
            .iter()
            .enumerate()
            .map(|(i, h)| {
                h.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .snapshot(i as u32)
            })
            .collect()
    }

    /// Append a string to its owning shard, with health gating and bounded
    /// retries under the default deadline. Returns the document's id.
    pub fn append(&self, s: BitStr<'_>) -> Result<DocId, ShardMiss> {
        let shard_idx = self.shard_for(s) as usize;
        let deadline = Deadline::within(self.config.deadline);
        let admission = self.health[shard_idx]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .admit();
        if admission == Admission::Reject {
            return Err(ShardMiss {
                shard: shard_idx as u32,
                cause: MissCause::Quarantined,
            });
        }
        let shard = Arc::clone(&self.shards[shard_idx]);
        let outcome = run_with_retries(&self.config.retry, deadline, || {
            shard.append(s).map(|pos| vec![Answer::Count(pos as usize)])
        });
        let probe = admission == Admission::Probe;
        match outcome {
            Ok((answers, latency)) => {
                self.record_outcome(shard_idx, probe, Ok(latency));
                let pos = match answers.first() {
                    Some(Answer::Count(pos)) => *pos as u64,
                    _ => unreachable!("append closure returns exactly one Count"),
                };
                Ok(DocId {
                    shard: shard_idx as u32,
                    pos,
                })
            }
            Err(cause) => {
                self.record_miss(shard_idx, probe, &cause);
                Err(ShardMiss {
                    shard: shard_idx as u32,
                    cause,
                })
            }
        }
    }

    /// Execute a query batch under the configured default deadline.
    pub fn query(&self, queries: &[Query]) -> PartialResult {
        self.query_with_deadline(queries, Deadline::within(self.config.deadline))
    }

    /// Execute a query batch under an explicit deadline (propagated, not
    /// reset, by every sub-call).
    pub fn query_with_deadline(&self, queries: &[Query], deadline: Deadline) -> PartialResult {
        let n = self.shards.len();
        let answers: Vec<Option<Answer>> = vec![None; queries.len()];

        // --- split: per-shard op lists, remembering which query each op
        // answers so the merge can route replies back.
        let mut plan: Vec<(Vec<ShardOp>, Vec<usize>)> = vec![(Vec::new(), Vec::new()); n];
        let mut missing: Vec<ShardMiss> = Vec::new();
        for (qi, q) in queries.iter().enumerate() {
            match q {
                Query::Count(s) => {
                    let t = shard_for(s.as_bitstr(), n) as usize;
                    plan[t].0.push(ShardOp::Count(s.clone()));
                    plan[t].1.push(qi);
                }
                Query::CountPrefix(p) => {
                    for (ops, idxs) in plan.iter_mut() {
                        ops.push(ShardOp::CountPrefix(p.clone()));
                        idxs.push(qi);
                    }
                }
                Query::Access(doc) => {
                    if (doc.shard as usize) < n {
                        let t = doc.shard as usize;
                        plan[t].0.push(ShardOp::Access(doc.pos));
                        plan[t].1.push(qi);
                    } else {
                        // Client error: answer stays None, attributed to
                        // the (nonexistent) shard it named.
                        missing.push(ShardMiss {
                            shard: doc.shard,
                            cause: MissCause::Failed("no such shard".to_string()),
                        });
                    }
                }
            }
        }
        let targeted: Vec<usize> = (0..n).filter(|&i| !plan[i].0.is_empty()).collect();

        // --- admission control: shed the whole batch when saturated.
        let guard = InFlight::enter(&self.in_flight);
        if guard.prior >= self.config.max_in_flight {
            self.shed.fetch_add(1, Ordering::Relaxed);
            for &t in &targeted {
                missing.push(ShardMiss {
                    shard: t as u32,
                    cause: MissCause::Shed,
                });
            }
            return finish(answers, queries, &plan, vec![None; n], missing);
        }

        // --- scatter: health-gated dispatch onto detached workers.
        let (tx, rx) = mpsc::channel::<ShardReply>();
        let mut probe_flags: Vec<bool> = vec![false; n];
        let mut outstanding = 0usize;
        for &t in &targeted {
            if deadline.expired() {
                // Budget already gone: attribute to the query, not the
                // shards — no dispatch, no health penalty.
                missing.push(ShardMiss {
                    shard: t as u32,
                    cause: MissCause::DeadlineExpired,
                });
                continue;
            }
            let admission = self.health[t]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .admit();
            if admission == Admission::Reject {
                missing.push(ShardMiss {
                    shard: t as u32,
                    cause: MissCause::Quarantined,
                });
                continue;
            }
            probe_flags[t] = admission == Admission::Probe;
            let shard = Arc::clone(&self.shards[t]);
            let ops = plan[t].0.clone();
            let retry = self.config.retry;
            let tx = tx.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("wt-scatter-{t}"))
                .spawn(move || {
                    let outcome =
                        run_with_retries(&retry, deadline, || shard.execute(&ops, deadline));
                    // The receiver may be gone (deadline hit): a late
                    // reply is dropped, never a panic.
                    let _ = tx.send(ShardReply { shard: t, outcome });
                });
            match spawned {
                Ok(_) => outstanding += 1,
                Err(e) => {
                    // Spawn failure is a router-side resource problem, not
                    // a shard fault: report it, no health penalty.
                    missing.push(ShardMiss {
                        shard: t as u32,
                        cause: MissCause::Failed(format!("spawn failed: {e}")),
                    });
                }
            }
        }
        drop(tx);

        // --- gather: every wait bounded by the remaining budget.
        let mut replies: Vec<Option<Vec<Answer>>> = vec![None; n];
        let mut replied: Vec<bool> = vec![false; n];
        while outstanding > 0 {
            let reply = match deadline.remaining() {
                None => rx.recv().ok(),
                Some(rem) if rem.is_zero() => None,
                Some(rem) => rx.recv_timeout(rem).ok(),
            };
            let Some(reply) = reply else { break };
            outstanding -= 1;
            replied[reply.shard] = true;
            let probe = probe_flags[reply.shard];
            match reply.outcome {
                Ok((answers_for_shard, latency)) => {
                    self.record_outcome(reply.shard, probe, Ok(latency));
                    replies[reply.shard] = Some(answers_for_shard);
                }
                Err(cause) => {
                    self.record_miss(reply.shard, probe, &cause);
                    missing.push(ShardMiss {
                        shard: reply.shard as u32,
                        cause,
                    });
                }
            }
        }
        // Shards whose worker never delivered: deadline expired mid-gather.
        // That *is* a health signal — a shard that cannot answer within a
        // budget the router considered live when dispatching is slow, and
        // slowness is what degrades it toward quarantine.
        for &t in &targeted {
            if replied[t] {
                continue;
            }
            if missing.iter().any(|m| m.shard == t as u32) {
                continue; // already attributed (rejected / pre-expired / spawn failure)
            }
            let detail = if probe_flags[t] {
                "probe timed out"
            } else {
                "deadline expired before reply"
            };
            self.record_outcome(t, probe_flags[t], Err(detail.to_string()));
            missing.push(ShardMiss {
                shard: t as u32,
                cause: MissCause::DeadlineExpired,
            });
        }

        // --- merge.
        drop(guard);
        finish(answers, queries, &plan, replies, missing)
    }

    fn record_outcome(&self, shard: usize, probe: bool, outcome: Result<Duration, String>) {
        let mut h = self.health[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if probe {
            h.record_probe(outcome);
        } else {
            match outcome {
                Ok(latency) => h.record_success(latency),
                Err(cause) => h.record_error(&cause),
            }
        }
    }

    fn record_miss(&self, shard: usize, probe: bool, cause: &MissCause) {
        match cause {
            // The query ran out of budget or the router shed it — that is
            // not evidence the shard is unhealthy. (Workers that *timed
            // out* are penalized in the gather loop, where the router can
            // tell "slow shard" from "small budget".)
            MissCause::Shed => {}
            MissCause::DeadlineExpired if !probe => {}
            _ => self.record_outcome(shard, probe, Err(cause.to_string())),
        }
    }
}

/// RAII in-flight counter for admission control.
struct InFlight<'a> {
    counter: &'a AtomicUsize,
    prior: usize,
}

impl<'a> InFlight<'a> {
    fn enter(counter: &'a AtomicUsize) -> Self {
        let prior = counter.fetch_add(1, Ordering::AcqRel);
        InFlight { counter, prior }
    }
}

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.counter.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Run `call` with bounded, deadline-respecting retries. Transient
/// ([`ShardError::Unavailable`]) errors retry per the policy; deadline
/// exhaustion, rejections and panics do not. Panics are contained here so
/// they cannot cross the channel as thread death.
fn run_with_retries(
    retry: &RetryPolicy,
    deadline: Deadline,
    mut call: impl FnMut() -> Result<Vec<Answer>, ShardError>,
) -> Result<(Vec<Answer>, Duration), MissCause> {
    let started = Instant::now();
    let mut backoffs = retry.backoffs();
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        if deadline.expired() {
            return Err(MissCause::DeadlineExpired);
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&mut call));
        match result {
            Ok(Ok(answers)) => return Ok((answers, started.elapsed())),
            Ok(Err(ShardError::DeadlineExceeded)) => return Err(MissCause::DeadlineExpired),
            Ok(Err(ShardError::Rejected(m))) => return Err(MissCause::Failed(m)),
            Ok(Err(ShardError::Unavailable(m))) => {
                if attempt >= retry.attempts.max(1) {
                    return Err(MissCause::Failed(m));
                }
                let sleep = backoffs.next().unwrap_or(Duration::ZERO);
                match deadline.remaining() {
                    // Out of budget for another attempt: return the error,
                    // not DeadlineExpired — the shard did fail.
                    Some(rem) if rem <= sleep => return Err(MissCause::Failed(m)),
                    _ => std::thread::sleep(sleep),
                }
            }
            Err(panic) => return Err(MissCause::Panicked(panic_message(panic.as_ref()))),
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Merge per-shard replies into the final [`PartialResult`].
fn finish(
    mut answers: Vec<Option<Answer>>,
    queries: &[Query],
    plan: &[(Vec<ShardOp>, Vec<usize>)],
    replies: Vec<Option<Vec<Answer>>>,
    mut missing: Vec<ShardMiss>,
) -> PartialResult {
    // Route single-shard answers back to their queries; accumulate
    // CountPrefix partial sums separately so incompleteness can void them.
    let n = plan.len();
    let mut prefix_sums: Vec<usize> = vec![0; queries.len()];
    let mut prefix_votes: Vec<usize> = vec![0; queries.len()];
    for t in 0..n {
        let Some(shard_answers) = &replies[t] else {
            continue;
        };
        for (slot, &qi) in plan[t].1.iter().enumerate() {
            match (&queries[qi], &shard_answers[slot]) {
                (Query::CountPrefix(_), Answer::CountPrefix(c)) => {
                    prefix_sums[qi] += c;
                    prefix_votes[qi] += 1;
                }
                (_, a) => answers[qi] = Some(a.clone()),
            }
        }
    }
    let answered: Vec<u32> = (0..n as u32)
        .filter(|&t| replies[t as usize].is_some())
        .collect();
    for (qi, q) in queries.iter().enumerate() {
        if let Query::CountPrefix(_) = q {
            // Exact only if every shard contributed; a partial sum is not
            // the oracle's answer, so it stays None (causes in `missing`).
            if prefix_votes[qi] == n {
                answers[qi] = Some(Answer::CountPrefix(prefix_sums[qi]));
            }
        }
    }
    missing.sort_by_key(|m| m.shard);
    missing.dedup();
    PartialResult {
        answers,
        answered_shards: answered,
        missing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultScript, FaultyShard};
    use crate::shard::StoreShard;
    use wt_store::TieredStore;
    use wt_trie::BitString;

    fn store_with(strings: &[&str]) -> TieredStore {
        let mut store = TieredStore::new();
        for s in strings {
            store
                .append(BitString::parse(s).as_bitstr())
                .expect("prefix-free test data");
        }
        store
    }

    /// Router + oracle holding the same corpus, partitioned by the
    /// router's own hash so placement matches production.
    fn router_and_oracle(shards: usize, corpus: &[&str]) -> (ShardRouter, TieredStore) {
        let stores: Vec<Arc<dyn Shard>> = (0..shards)
            .map(|_| Arc::new(StoreShard::new(TieredStore::new())) as Arc<dyn Shard>)
            .collect();
        let config = RouterConfig {
            deadline: Duration::from_secs(5),
            ..RouterConfig::default()
        };
        let router = ShardRouter::new(stores, config);
        let mut oracle = TieredStore::new();
        for s in corpus {
            let b = BitString::parse(s);
            router.append(b.as_bitstr()).expect("healthy append");
            oracle.append(b.as_bitstr()).expect("prefix-free test data");
        }
        (router, oracle)
    }

    #[test]
    fn clean_batch_matches_unsharded_oracle() {
        use wavelet_trie::SeqIndex;
        let corpus = ["000", "001", "010", "011", "001", "010", "110", "111"];
        let (router, oracle) = router_and_oracle(3, &corpus);
        let queries: Vec<Query> = ["000", "001", "010", "100", "110"]
            .iter()
            .map(|s| Query::Count(BitString::parse(s)))
            .chain(
                ["0", "01", "1", ""]
                    .iter()
                    .map(|s| Query::CountPrefix(BitString::parse(s))),
            )
            .collect();
        let result = router.query(&queries);
        assert!(result.is_complete(), "missing: {:?}", result.missing);
        for (q, a) in queries.iter().zip(&result.answers) {
            let want = match q {
                Query::Count(s) => Answer::Count(oracle.count(s.as_bitstr())),
                Query::CountPrefix(p) => Answer::CountPrefix(oracle.count_prefix(p.as_bitstr())),
                Query::Access(_) => unreachable!(),
            };
            assert_eq!(a.as_ref(), Some(&want), "query {q:?}");
        }
    }

    #[test]
    fn append_then_access_roundtrips_by_doc_id() {
        let (router, _) = router_and_oracle(4, &[]);
        let s = BitString::parse("10101");
        let doc = router.append(s.as_bitstr()).expect("healthy append");
        let result = router.query(&[Query::Access(doc)]);
        assert_eq!(result.answers[0], Some(Answer::Access(Some(s))));
    }

    #[test]
    fn single_shard_router_answers_everything() {
        let corpus = ["00", "01", "10"];
        let (router, _) = router_and_oracle(1, &corpus);
        let result = router.query(&[
            Query::Count(BitString::parse("00")),
            Query::CountPrefix(BitString::parse("")),
        ]);
        assert!(result.is_complete());
        assert_eq!(result.answers[0], Some(Answer::Count(1)));
        assert_eq!(result.answers[1], Some(Answer::CountPrefix(3)));
        assert_eq!(result.answered_shards, vec![0]);
    }

    #[test]
    fn empty_shard_still_contributes_zeroes() {
        // With 2 shards and a corpus chosen to land entirely on one of
        // them, the other is empty — prefix counts must still merge.
        let (router, _) = router_and_oracle(2, &["010", "010", "010"]);
        let lens: Vec<usize> = (0..2).map(|i| router.shards[i].len()).collect();
        assert!(lens.contains(&0) || lens.iter().sum::<usize>() == 3);
        let result = router.query(&[Query::CountPrefix(BitString::parse("01"))]);
        assert!(result.is_complete());
        assert_eq!(result.answers[0], Some(Answer::CountPrefix(3)));
    }

    #[test]
    fn access_to_nonexistent_shard_is_a_client_error() {
        let (router, _) = router_and_oracle(2, &["00"]);
        let result = router.query(&[Query::Access(DocId { shard: 9, pos: 0 })]);
        assert_eq!(result.answers[0], None);
        assert_eq!(result.missing.len(), 1);
        assert!(matches!(result.missing[0].cause, MissCause::Failed(_)));
        // A client error must not poison shard health.
        assert!(router
            .health_report()
            .iter()
            .all(|h| h.state == crate::health::HealthState::Healthy));
    }

    #[test]
    fn empty_batch_yields_empty_complete_result() {
        let (router, _) = router_and_oracle(2, &["00"]);
        let result = router.query(&[]);
        assert!(result.is_complete());
        assert!(result.answers.is_empty());
        assert!(result.answered_shards.is_empty());
    }

    #[test]
    fn saturation_sheds_with_structured_cause() {
        let (router, _) = router_and_oracle(2, &["00", "01"]);
        // Occupy the admission window artificially.
        let cfg = RouterConfig {
            max_in_flight: 0,
            ..RouterConfig::default()
        };
        let shards: Vec<Arc<dyn Shard>> = vec![
            Arc::new(StoreShard::new(store_with(&["00"]))),
            Arc::new(StoreShard::new(store_with(&["11"]))),
        ];
        let shedding = ShardRouter::new(shards, cfg);
        let result = shedding.query(&[Query::CountPrefix(BitString::parse(""))]);
        assert!(!result.is_complete());
        assert!(result.missing.iter().all(|m| m.cause == MissCause::Shed));
        assert_eq!(shedding.shed_count(), 1);
        drop(router);
    }

    #[test]
    fn pre_expired_deadline_misses_without_health_penalty() {
        let (router, _) = router_and_oracle(2, &["00", "11"]);
        let past = Deadline::within(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        let result = router.query_with_deadline(&[Query::CountPrefix(BitString::parse(""))], past);
        assert!(!result.is_complete());
        assert!(result
            .missing
            .iter()
            .all(|m| m.cause == MissCause::DeadlineExpired));
        assert!(router
            .health_report()
            .iter()
            .all(|h| h.state == crate::health::HealthState::Healthy));
    }

    #[test]
    fn transient_faults_are_retried_within_budget() {
        // Fail the first attempt only: the retry must make the batch
        // complete and the health window should record the final success.
        let inner: Arc<dyn Shard> = Arc::new(StoreShard::new(store_with(&["010"])));
        let faulty = Arc::new(FaultyShard::new(inner, FaultScript::new().fail(0)));
        let mut cfg = RouterConfig::default();
        cfg.retry.attempts = 3;
        cfg.retry.base_backoff = Duration::from_micros(50);
        cfg.deadline = Duration::from_secs(5);
        let router = ShardRouter::new(vec![faulty as Arc<dyn Shard>], cfg);
        let result = router.query(&[Query::Count(BitString::parse("010"))]);
        assert!(result.is_complete(), "missing: {:?}", result.missing);
        assert_eq!(result.answers[0], Some(Answer::Count(1)));
    }
}
