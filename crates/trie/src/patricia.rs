//! Dynamic Patricia trie over prefix-free sets of binary strings
//! (Appendix B of the paper).
//!
//! Each node stores the label α of §2's Patricia definition: the longest
//! common prefix of the strings below it, *excluding* the branching bit,
//! which is implicit in the child position. Insertion of `s` splits an
//! existing node in O(|s|) as in Figure 3; deletion merges the sibling into
//! the parent in O(ℓ̂) where ℓ̂ bounds the label lengths involved.
//!
//! The Wavelet Trie keeps this exact structure with a bitvector payload per
//! internal node; [`PatriciaSet`] is the standalone string-set substrate.

use crate::bitstr::{BitStr, BitString};

/// Error returned when an operation would break prefix-freeness
/// (the paper requires `Sset` prefix-free; see §3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefixFreeViolation;

impl std::fmt::Display for PrefixFreeViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "operation would make the string set non-prefix-free")
    }
}

impl std::error::Error for PrefixFreeViolation {}

#[derive(Clone, Debug)]
enum PNode {
    Internal {
        label: BitString,
        children: [Box<PNode>; 2],
    },
    Leaf {
        label: BitString,
    },
}

impl PNode {
    fn label(&self) -> &BitString {
        match self {
            PNode::Internal { label, .. } | PNode::Leaf { label } => label,
        }
    }

    fn label_mut(&mut self) -> &mut BitString {
        match self {
            PNode::Internal { label, .. } | PNode::Leaf { label } => label,
        }
    }
}

/// A dynamic Patricia trie storing a prefix-free set of binary strings.
#[derive(Clone, Debug, Default)]
pub struct PatriciaSet {
    root: Option<Box<PNode>>,
    len: usize,
}

impl PatriciaSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of strings stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `s` is in the set.
    pub fn contains(&self, s: BitStr<'_>) -> bool {
        let mut node = match &self.root {
            Some(n) => n.as_ref(),
            None => return false,
        };
        let mut delta = 0usize;
        loop {
            let label = node.label().as_bitstr();
            let rest = s.suffix(delta);
            let l = rest.lcp(&label);
            if l < label.len() {
                return false;
            }
            delta += l;
            match node {
                PNode::Leaf { .. } => return delta == s.len(),
                PNode::Internal { children, .. } => {
                    if delta == s.len() {
                        return false; // proper prefix of stored strings
                    }
                    let b = s.get(delta);
                    delta += 1;
                    node = children[b as usize].as_ref();
                }
            }
        }
    }

    /// Inserts `s`; returns `true` if it was not present.
    ///
    /// # Errors
    /// [`PrefixFreeViolation`] if `s` is a proper prefix of a stored string
    /// or a stored string is a proper prefix of `s`.
    pub fn insert(&mut self, s: BitStr<'_>) -> Result<bool, PrefixFreeViolation> {
        let root = match self.root.as_mut() {
            None => {
                self.root = Some(Box::new(PNode::Leaf {
                    label: s.to_owned_str(),
                }));
                self.len = 1;
                return Ok(true);
            }
            Some(r) => r,
        };
        let inserted = Self::insert_rec(root, s, 0)?;
        self.len += inserted as usize;
        Ok(inserted)
    }

    fn insert_rec(
        node: &mut Box<PNode>,
        s: BitStr<'_>,
        delta: usize,
    ) -> Result<bool, PrefixFreeViolation> {
        let label = node.label().as_bitstr();
        let rest = s.suffix(delta);
        let l = rest.lcp(&label);
        if l == label.len() {
            // Label fully consumed.
            match node.as_mut() {
                PNode::Leaf { .. } => {
                    if delta + l == s.len() {
                        Ok(false) // exact match
                    } else {
                        Err(PrefixFreeViolation) // stored string is a prefix of s
                    }
                }
                PNode::Internal { children, .. } => {
                    if delta + l == s.len() {
                        return Err(PrefixFreeViolation); // s is a prefix of stored strings
                    }
                    let b = s.get(delta + l);
                    Self::insert_rec(&mut children[b as usize], s, delta + l + 1)
                }
            }
        } else if delta + l == s.len() {
            // s ends strictly inside the label: s is a proper prefix.
            Err(PrefixFreeViolation)
        } else {
            // Mismatch strictly inside the label: split (Figure 3).
            let new_bit = s.get(delta + l);
            let old_bit = label.get(l);
            debug_assert_ne!(new_bit, old_bit);
            let common: BitString = label.prefix(l).to_owned_str();
            let old_rest: BitString = label.suffix(l + 1).to_owned_str();
            let new_leaf = Box::new(PNode::Leaf {
                label: s.suffix(delta + l + 1).to_owned_str(),
            });
            // Replace node in place: take it out, shorten its label, re-hang.
            let old = std::mem::replace(
                node,
                Box::new(PNode::Leaf {
                    label: BitString::new(),
                }),
            );
            let mut old = old;
            *old.label_mut() = old_rest;
            let children = if new_bit {
                [old, new_leaf]
            } else {
                [new_leaf, old]
            };
            **node = PNode::Internal {
                label: common,
                children,
            };
            Ok(true)
        }
    }

    /// Removes `s`; returns `true` if it was present.
    pub fn remove(&mut self, s: BitStr<'_>) -> bool {
        if !self.contains(s) {
            return false;
        }
        let root = self.root.as_mut().expect("contains => nonempty");
        if matches!(root.as_ref(), PNode::Leaf { .. }) {
            self.root = None;
            self.len = 0;
            return true;
        }
        Self::remove_rec(root, s, 0);
        self.len -= 1;
        true
    }

    /// Precondition: `s` is present and `node` is internal or the matching
    /// leaf itself (handled by caller for the root-leaf case).
    fn remove_rec(node: &mut Box<PNode>, s: BitStr<'_>, delta: usize) {
        let label_len = node.label().len();
        let delta = delta + label_len;
        let b = s.get(delta);
        let delta = delta + 1;
        let (is_child_leaf, sibling_bit) = match node.as_ref() {
            PNode::Internal { children, .. } => (
                matches!(children[b as usize].as_ref(), PNode::Leaf { .. }),
                !b,
            ),
            PNode::Leaf { .. } => unreachable!("descent stops above the leaf"),
        };
        if !is_child_leaf {
            match node.as_mut() {
                PNode::Internal { children, .. } => {
                    Self::remove_rec(&mut children[b as usize], s, delta)
                }
                _ => unreachable!(),
            }
            return;
        }
        // Merge: parent label + sibling branch bit + sibling label become the
        // label of the surviving node (Appendix B deletion).
        let old = std::mem::replace(
            node,
            Box::new(PNode::Leaf {
                label: BitString::new(),
            }),
        );
        let (label, children) = match *old {
            PNode::Internal { label, children } => (label, children),
            PNode::Leaf { .. } => unreachable!(),
        };
        let [c0, c1] = children;
        let mut sibling = if sibling_bit { c1 } else { c0 };
        let mut merged = label;
        merged.push(sibling_bit);
        merged.push_str(sibling.label().as_bitstr());
        *sibling.label_mut() = merged;
        *node = sibling;
    }

    /// All strings in lexicographic order.
    pub fn iter(&self) -> Vec<BitString> {
        let mut out = Vec::with_capacity(self.len);
        let mut prefix = BitString::new();
        if let Some(r) = &self.root {
            Self::collect(r, &mut prefix, &mut out);
        }
        out
    }

    /// All strings starting with `p`, in lexicographic order.
    pub fn iter_prefix(&self, p: BitStr<'_>) -> Vec<BitString> {
        let mut node = match &self.root {
            Some(n) => n.as_ref(),
            None => return Vec::new(),
        };
        let mut prefix = BitString::new();
        loop {
            let label = node.label().as_bitstr();
            let rest = p.suffix(prefix.len().min(p.len()));
            let consumed = prefix.len();
            if consumed >= p.len() {
                break;
            }
            let l = rest.lcp(&label);
            if consumed + l == p.len() {
                // p exhausted inside (or at the end of) this label: check match
                if l <= label.len() {
                    break;
                }
            }
            if l < label.len() {
                return Vec::new(); // mismatch
            }
            prefix.push_str(label);
            if prefix.len() == p.len() && matches!(node, PNode::Leaf { .. }) {
                break;
            }
            match node {
                PNode::Leaf { .. } => break,
                PNode::Internal { children, .. } => {
                    if prefix.len() >= p.len() {
                        break;
                    }
                    let b = p.get(prefix.len());
                    prefix.push(b);
                    node = children[b as usize].as_ref();
                }
            }
        }
        // Verify p is actually a prefix of prefix+label continuation.
        let mut out = Vec::new();
        let mut pref = prefix.clone();
        Self::collect(node, &mut pref, &mut out);
        out.retain(|s| s.as_bitstr().starts_with(&p));
        out
    }

    fn collect(node: &PNode, prefix: &mut BitString, out: &mut Vec<BitString>) {
        let save = prefix.len();
        prefix.push_str(node.label().as_bitstr());
        match node {
            PNode::Leaf { .. } => out.push(prefix.clone()),
            PNode::Internal { children, .. } => {
                for (b, c) in children.iter().enumerate() {
                    prefix.push(b == 1);
                    Self::collect(c, prefix, out);
                    // The recursive call restored everything it pushed;
                    // pop the branch bit.
                    prefix.truncate(prefix.len() - 1);
                }
            }
        }
        prefix.truncate(save);
    }

    /// Total bits across all labels (the `|L|` of Theorem 3.6, plus branch
    /// bits folded into labels on merge).
    pub fn label_bits(&self) -> usize {
        fn rec(n: &PNode) -> usize {
            match n {
                PNode::Leaf { label } => label.len(),
                PNode::Internal { label, children } => {
                    label.len() + rec(&children[0]) + rec(&children[1])
                }
            }
        }
        self.root.as_ref().map_or(0, |r| rec(r))
    }

    /// Approximate heap size in bits (pointers + labels), the `O(kw) + |L|`
    /// of Lemma 4.1.
    pub fn size_bits(&self) -> usize {
        fn rec(n: &PNode) -> usize {
            let node_overhead = std::mem::size_of::<PNode>() * 8;
            match n {
                PNode::Leaf { label } => node_overhead + label.size_bits(),
                PNode::Internal { label, children } => {
                    node_overhead + label.size_bits() + rec(&children[0]) + rec(&children[1])
                }
            }
        }
        self.root.as_ref().map_or(0, |r| rec(r)) + 2 * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(s: &str) -> BitString {
        BitString::parse(s)
    }

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut t = PatriciaSet::new();
        // Figure 2's distinct strings (prefix-free).
        let strs = ["0001", "0011", "0100", "00100"];
        for s in strs {
            assert!(t.insert(bs(s).as_bitstr()).unwrap());
        }
        assert_eq!(t.len(), 4);
        for s in strs {
            assert!(t.contains(bs(s).as_bitstr()), "{s}");
        }
        assert!(!t.contains(bs("0000").as_bitstr()));
        assert!(!t.contains(bs("00").as_bitstr()));
        assert!(!t.contains(bs("01000").as_bitstr()));
        // duplicate insert
        assert!(!t.insert(bs("0011").as_bitstr()).unwrap());
        assert_eq!(t.len(), 4);
        // removal
        assert!(t.remove(bs("0011").as_bitstr()));
        assert!(!t.contains(bs("0011").as_bitstr()));
        assert!(t.contains(bs("0001").as_bitstr()));
        assert_eq!(t.len(), 3);
        assert!(!t.remove(bs("0011").as_bitstr()));
    }

    #[test]
    fn prefix_free_violations_detected() {
        let mut t = PatriciaSet::new();
        t.insert(bs("0100").as_bitstr()).unwrap();
        // proper prefix of stored
        assert_eq!(t.insert(bs("01").as_bitstr()), Err(PrefixFreeViolation));
        // stored is proper prefix of new
        assert_eq!(t.insert(bs("01001").as_bitstr()), Err(PrefixFreeViolation));
        // both fine
        assert!(t.insert(bs("0101").as_bitstr()).unwrap());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut t = PatriciaSet::new();
        let strs = ["0001", "0011", "0100", "00100", "1", "011"];
        for s in strs {
            t.insert(bs(s).as_bitstr()).unwrap();
        }
        let got: Vec<String> = t.iter().iter().map(|b| b.to_string()).collect();
        let mut want: Vec<&str> = strs.to_vec();
        want.sort_by(|a, b| {
            // bit-lexicographic with prefix-less (none are prefixes here)
            a.cmp(b)
        });
        assert_eq!(got, want);
    }

    #[test]
    fn iter_prefix_filters() {
        let mut t = PatriciaSet::new();
        for s in ["0001", "0011", "0100", "00100", "1"] {
            t.insert(bs(s).as_bitstr()).unwrap();
        }
        let got: Vec<String> = t
            .iter_prefix(bs("00").as_bitstr())
            .iter()
            .map(|b| b.to_string())
            .collect();
        assert_eq!(got, vec!["0001", "00100", "0011"]);
        let got: Vec<String> = t
            .iter_prefix(bs("01").as_bitstr())
            .iter()
            .map(|b| b.to_string())
            .collect();
        assert_eq!(got, vec!["0100"]);
        assert!(t.iter_prefix(bs("111").as_bitstr()).is_empty());
        // prefix equal to a full string
        let got = t.iter_prefix(bs("1").as_bitstr());
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn delete_merges_labels_back() {
        // After deleting, re-inserting must reproduce identical behaviour;
        // label_bits shrinks when strings leave.
        let mut t = PatriciaSet::new();
        for s in ["0001", "0011", "0100", "00100"] {
            t.insert(bs(s).as_bitstr()).unwrap();
        }
        let full = t.label_bits();
        // Removing a leaf whose label is longer than the branch bit absorbed
        // by the merge strictly shrinks |L|.
        t.remove(bs("0100").as_bitstr());
        assert!(t.label_bits() < full, "{} vs {full}", t.label_bits());
        t.insert(bs("0100").as_bitstr()).unwrap();
        t.remove(bs("00100").as_bitstr());
        assert!(t.label_bits() <= full);
        t.insert(bs("00100").as_bitstr()).unwrap();
        let strs: Vec<String> = t.iter().iter().map(|b| b.to_string()).collect();
        assert_eq!(strs, vec!["0001", "00100", "0011", "0100"]);
    }

    #[test]
    fn pseudorandom_model_test() {
        use std::collections::BTreeSet;
        let mut s = 0x1357_9BDF_2468_ACE0u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        // Fixed-length strings are always prefix-free.
        let mut t = PatriciaSet::new();
        let mut model: BTreeSet<String> = BTreeSet::new();
        for _ in 0..2000 {
            let v = next() % 256;
            let str8: String = (0..8)
                .map(|i| if (v >> i) & 1 == 1 { '1' } else { '0' })
                .collect();
            let b = bs(&str8);
            match next() % 3 {
                0 => {
                    let inserted = t.insert(b.as_bitstr()).unwrap();
                    assert_eq!(inserted, model.insert(str8));
                }
                1 => {
                    let removed = t.remove(b.as_bitstr());
                    assert_eq!(removed, model.remove(&str8));
                }
                _ => {
                    assert_eq!(t.contains(b.as_bitstr()), model.contains(&str8));
                }
            }
            assert_eq!(t.len(), model.len());
        }
        let got: Vec<String> = t.iter().iter().map(|b| b.to_string()).collect();
        let want: Vec<String> = model.into_iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_string_as_sole_element() {
        let mut t = PatriciaSet::new();
        assert!(t.insert(BitString::new().as_bitstr()).unwrap());
        assert!(t.contains(BitString::new().as_bitstr()));
        // ε is a prefix of everything: adding any other string must fail.
        assert_eq!(t.insert(bs("0").as_bitstr()), Err(PrefixFreeViolation));
        assert!(t.remove(BitString::new().as_bitstr()));
        assert!(t.is_empty());
    }
}
