//! Skeleton of a centroid path decomposition (Grossi–Ottaviano, "Fast
//! Compressed Tries through Path Decompositions").
//!
//! The decomposition tree maps each node to one root-to-leaf *path* of the
//! underlying binary trie; a path with `k` branching steps has exactly `k`
//! children, one per step. Because the decomposition tree is traversed
//! top-down only — a query jumps from a path to the child hanging off the
//! step where it leaves the path — the full balanced-parenthesis machinery
//! of DFUDS is unnecessary. Numbering nodes in BFS order makes every
//! node's children a *consecutive* id range, so a single Elias–Fano
//! directory over the degree prefix sums answers, in one `get_pair` probe:
//!
//! * `first_child(v) = S(v) + 1` and `degree(v) = S(v+1) − S(v)`,
//! * the node's global *step base* `S(v)` — the index of its first
//!   branching step in every per-step directory (branch directions,
//!   bitvector delimiters), since steps are numbered `(node, step)` in the
//!   same BFS order,
//! * the node's global *label base* `S(v) + v` — a path with `k` steps
//!   carries `k + 1` edge labels.
//!
//! This is strictly cheaper on the query path than a DFUDS/BP skeleton
//! (one predictable directory probe instead of a parenthesis excursion)
//! and costs 2 + o(1) bits per step, the same asymptotic budget.

use wt_bits::persist::{LoadError, Persist, WordsReader};
use wt_bits::{EliasFano, SpaceUsage};

/// BFS-numbered decomposition tree: an Elias–Fano directory over the
/// degree prefix sums, `n_nodes + 1` values starting at 0.
#[derive(Clone, Debug)]
pub struct PathSkeleton {
    deg: EliasFano,
}

impl PathSkeleton {
    /// Builds from per-node degrees (= branching steps per path) in BFS
    /// order.
    pub fn from_degrees<I: IntoIterator<Item = u64>>(degrees: I) -> Self {
        PathSkeleton {
            deg: EliasFano::prefix_sums(degrees),
        }
    }

    /// Number of decomposition-tree nodes (= leaves of the binary trie).
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.deg.len() - 1
    }

    /// Total branching steps across all paths (= internal binary nodes).
    #[inline]
    pub fn total_steps(&self) -> usize {
        self.deg.get(self.n_nodes()) as usize
    }

    /// `(step_base, degree)` of node `v` in one directory probe:
    /// `step_base` is the global index of the node's first branching step,
    /// `step_base + 1` its first child id, and `step_base + v` its first
    /// label id.
    #[inline]
    pub fn node(&self, v: usize) -> (usize, usize) {
        let (s, e) = self.deg.get_pair(v);
        (s as usize, (e - s) as usize)
    }

    /// Hints the directory words of node `v` into cache.
    #[inline]
    pub fn prefetch(&self, v: usize) {
        self.deg.prefetch(v);
    }

    /// Batched [`PathSkeleton::node`] over `vs`.
    pub fn node_batch(&self, vs: &[usize], out: &mut [(u64, u64)]) {
        self.deg.get_pair_batch(vs, out);
    }

    /// The degree-prefix directory itself, for sequential cursor walks:
    /// BFS numbering makes the light-jump target of consecutive steps of
    /// one path *consecutive* nodes, so a descent can ride an
    /// [`wt_bits::EfCursor`] over `deg` instead of re-probing per step.
    #[inline]
    pub fn degrees(&self) -> &EliasFano {
        &self.deg
    }
}

impl SpaceUsage for PathSkeleton {
    fn size_bits(&self) -> usize {
        self.deg.size_bits()
    }
}

impl Persist for PathSkeleton {
    fn encode(&self, out: &mut Vec<u64>) {
        self.deg.encode(out);
    }

    fn decode(r: &mut WordsReader) -> Result<Self, LoadError> {
        let deg = EliasFano::decode(r)?;
        if deg.is_empty() {
            return Err(LoadError::Invalid("path skeleton without prefix sums"));
        }
        if deg.get(0) != 0 {
            return Err(LoadError::Invalid(
                "path skeleton prefix sums must start at 0",
            ));
        }
        Ok(PathSkeleton { deg })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_ranges_are_consecutive() {
        // A 4-node decomposition tree: root has 3 steps, its children 1,
        // 0 and 0.
        let sk = PathSkeleton::from_degrees([3u64, 1, 0, 0, 1]);
        assert_eq!(sk.n_nodes(), 5);
        assert_eq!(sk.total_steps(), 5);
        assert_eq!(sk.node(0), (0, 3)); // children 1, 2, 3
        assert_eq!(sk.node(1), (3, 1)); // child 4
        assert_eq!(sk.node(2), (4, 0));
        assert_eq!(sk.node(4), (4, 1)); // child 5 (if it existed)
                                        // First-child arithmetic: step_base + 1.
        let (base, k) = sk.node(0);
        let children: Vec<usize> = (0..k).map(|j| base + 1 + j).collect();
        assert_eq!(children, vec![1, 2, 3]);
    }

    #[test]
    fn singleton_and_empty() {
        let one = PathSkeleton::from_degrees([0u64]);
        assert_eq!(one.n_nodes(), 1);
        assert_eq!(one.total_steps(), 0);
        assert_eq!(one.node(0), (0, 0));
        let empty = PathSkeleton::from_degrees(std::iter::empty());
        assert_eq!(empty.n_nodes(), 0);
        assert_eq!(empty.total_steps(), 0);
    }

    #[test]
    fn persist_round_trip() {
        use wt_bits::persist::{from_bytes, kind, to_bytes};
        let sk = PathSkeleton::from_degrees([2u64, 0, 1, 0]);
        let bytes = to_bytes(kind::RAW, &sk);
        let back: PathSkeleton = from_bytes(kind::RAW, &bytes).unwrap();
        assert_eq!(back.n_nodes(), sk.n_nodes());
        for v in 0..sk.n_nodes() {
            assert_eq!(back.node(v), sk.node(v));
        }
    }
}
