//! Binary strings at bit granularity.
//!
//! The Wavelet Trie stores sequences of *binary strings* (§3: "We focus on
//! binary strings without loss of generality"). [`BitString`] is the owned
//! type and [`BitStr`] a borrowed sub-range view; both support the
//! operations Patricia tries live on: longest common prefix, slicing,
//! lexicographic comparison.

use wt_bits::RawBitVec;

/// An owned binary string (sequence of bits).
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BitString {
    bits: RawBitVec,
}

impl BitString {
    /// The empty string ε.
    pub fn new() -> Self {
        Self::default()
    }

    /// From an iterator of bits.
    pub fn from_bits<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitString {
            bits: RawBitVec::from_bits(iter),
        }
    }

    /// Parses a `0`/`1` string, e.g. `BitString::parse("00100")` — handy for
    /// transcribing the paper's figures.
    ///
    /// # Panics
    /// On characters other than `0`/`1`.
    pub fn parse(s: &str) -> Self {
        BitString {
            bits: RawBitVec::from_bit_str(s),
        }
    }

    /// Length in bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether this is ε.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.bits.get(i)
    }

    /// Appends a bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        self.bits.push(bit);
    }

    /// Appends all bits of `other`.
    pub fn push_str(&mut self, other: BitStr<'_>) {
        self.bits
            .extend_from_range(other.bits, other.start, other.len);
    }

    /// Keeps only the first `len` bits.
    pub fn truncate(&mut self, len: usize) {
        self.bits.truncate(len);
    }

    /// Removes all bits.
    pub fn clear(&mut self) {
        self.bits.clear();
    }

    /// Borrowed view of the whole string.
    #[inline]
    pub fn as_bitstr(&self) -> BitStr<'_> {
        BitStr {
            bits: &self.bits,
            start: 0,
            len: self.bits.len(),
        }
    }

    /// Borrowed view of `self[start..start+len]`.
    #[inline]
    pub fn sub(&self, start: usize, len: usize) -> BitStr<'_> {
        self.as_bitstr().sub(start, len)
    }

    /// Borrowed suffix `self[start..]`.
    #[inline]
    pub fn suffix(&self, start: usize) -> BitStr<'_> {
        self.as_bitstr().suffix(start)
    }

    /// Iterates over the bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        self.bits.iter()
    }

    /// The backing raw bits.
    #[inline]
    pub fn raw(&self) -> &RawBitVec {
        &self.bits
    }

    /// Heap size in bits (space experiments).
    pub fn size_bits(&self) -> usize {
        self.bits.size_bits()
    }
}

impl std::fmt::Debug for BitString {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&self.as_bitstr(), f)
    }
}

impl std::fmt::Display for BitString {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(&self.as_bitstr(), f)
    }
}

impl PartialOrd for BitString {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BitString {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_bitstr().cmp(&other.as_bitstr())
    }
}

impl FromIterator<bool> for BitString {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Self::from_bits(iter)
    }
}

impl<'a> From<BitStr<'a>> for BitString {
    fn from(s: BitStr<'a>) -> Self {
        let mut out = BitString::new();
        out.push_str(s);
        out
    }
}

/// A borrowed view into a range of bits of some [`RawBitVec`].
#[derive(Clone, Copy)]
pub struct BitStr<'a> {
    bits: &'a RawBitVec,
    start: usize,
    len: usize,
}

impl<'a> BitStr<'a> {
    /// Views `bits[start..start+len]`.
    ///
    /// # Panics
    /// If the range is out of bounds.
    pub fn new(bits: &'a RawBitVec, start: usize, len: usize) -> Self {
        assert!(start + len <= bits.len(), "BitStr range out of bounds");
        BitStr { bits, start, len }
    }

    /// Length in bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is ε.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i` of the view.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "BitStr index {i} out of bounds (len {})",
            self.len
        );
        unsafe { self.bits.get_unchecked(self.start + i) }
    }

    /// Up to 64 bits starting at `i`, LSB-first.
    #[inline]
    pub fn get_bits(&self, i: usize, width: usize) -> u64 {
        assert!(i + width <= self.len);
        self.bits.get_bits(self.start + i, width)
    }

    /// Sub-view `self[start..start+len]`.
    #[inline]
    pub fn sub(&self, start: usize, len: usize) -> BitStr<'a> {
        assert!(start + len <= self.len, "BitStr sub-range out of bounds");
        BitStr {
            bits: self.bits,
            start: self.start + start,
            len,
        }
    }

    /// Suffix `self[start..]`.
    #[inline]
    pub fn suffix(&self, start: usize) -> BitStr<'a> {
        assert!(start <= self.len);
        self.sub(start, self.len - start)
    }

    /// Prefix `self[..len]`.
    #[inline]
    pub fn prefix(&self, len: usize) -> BitStr<'a> {
        self.sub(0, len)
    }

    /// Length of the longest common prefix with `other`, compared 64 bits
    /// at a time.
    pub fn lcp(&self, other: &BitStr<'_>) -> usize {
        let n = self.len.min(other.len);
        let mut i = 0usize;
        while i < n {
            let w = (n - i).min(64);
            let a = self.bits.get_bits(self.start + i, w);
            let b = other.bits.get_bits(other.start + i, w);
            let x = a ^ b;
            if x != 0 {
                return i + (x.trailing_zeros() as usize).min(w);
            }
            i += w;
        }
        n
    }

    /// Whether `self` starts with `prefix`.
    pub fn starts_with(&self, prefix: &BitStr<'_>) -> bool {
        prefix.len <= self.len && self.lcp(prefix) == prefix.len
    }

    /// Iterates over the bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + 'a {
        let bits = self.bits;
        let start = self.start;
        (0..self.len).map(move |i| unsafe { bits.get_unchecked(start + i) })
    }

    /// Copies into an owned [`BitString`].
    pub fn to_owned_str(&self) -> BitString {
        BitString::from(*self)
    }

    /// Appends this view's bits to a raw bitvector (word-level copy).
    pub fn append_into(&self, out: &mut RawBitVec) {
        out.extend_from_range(self.bits, self.start, self.len);
    }
}

impl PartialEq for BitStr<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.lcp(other) == self.len
    }
}

impl Eq for BitStr<'_> {}

impl PartialOrd for BitStr<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BitStr<'_> {
    /// Lexicographic order; a proper prefix sorts before its extensions.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let l = self.lcp(other);
        if l == self.len && l == other.len {
            std::cmp::Ordering::Equal
        } else if l == self.len {
            std::cmp::Ordering::Less
        } else if l == other.len {
            std::cmp::Ordering::Greater
        } else {
            // First differing bit decides.
            self.get(l).cmp(&other.get(l))
        }
    }
}

impl std::hash::Hash for BitStr<'_> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.len.hash(state);
        let mut i = 0;
        while i < self.len {
            let w = (self.len - i).min(64);
            self.get_bits(i, w).hash(state);
            i += w;
        }
    }
}

impl std::fmt::Debug for BitStr<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "\"")?;
        for b in self.iter() {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        write!(f, "\"")
    }
}

impl std::fmt::Display for BitStr<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in self.iter() {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["", "0", "1", "00100", "110010101010101010101"] {
            assert_eq!(BitString::parse(s).to_string(), s);
        }
    }

    #[test]
    fn lcp_basic() {
        let a = BitString::parse("0010100");
        let b = BitString::parse("0011");
        assert_eq!(a.as_bitstr().lcp(&b.as_bitstr()), 3);
        assert_eq!(a.as_bitstr().lcp(&a.as_bitstr()), 7);
        let e = BitString::new();
        assert_eq!(a.as_bitstr().lcp(&e.as_bitstr()), 0);
    }

    #[test]
    fn lcp_across_word_boundaries() {
        let mut a = BitString::new();
        let mut b = BitString::new();
        for i in 0..200 {
            let bit = i % 3 == 0;
            a.push(bit);
            b.push(bit);
        }
        assert_eq!(a.as_bitstr().lcp(&b.as_bitstr()), 200);
        b.push(true);
        a.push(false);
        assert_eq!(a.as_bitstr().lcp(&b.as_bitstr()), 200);
        // Mismatch at bit 100.
        let mut c = BitString::from(a.sub(0, 150));
        let mut d = BitString::from(a.sub(0, 150));
        c.truncate(100);
        c.push(!a.get(100));
        c.push_str(a.sub(101, 49));
        assert_eq!(c.len(), 150);
        assert_eq!(d.as_bitstr().lcp(&c.as_bitstr()), 100);
        d.clear();
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn sub_views_are_offset_correct() {
        let s = BitString::parse("0110100110010110");
        let v = s.sub(3, 8);
        assert_eq!(v.to_owned_str().to_string(), "01001100");
        let vv = v.sub(2, 4);
        assert_eq!(vv.to_owned_str().to_string(), "0011");
        assert_eq!(v.suffix(6).to_owned_str().to_string(), "00");
        assert_eq!(v.prefix(3).to_owned_str().to_string(), "010");
    }

    #[test]
    fn ordering_is_lexicographic_with_prefix_less() {
        let strs = ["", "0", "00", "0010", "01", "1", "10", "11"];
        let parsed: Vec<BitString> = strs.iter().map(|s| BitString::parse(s)).collect();
        for i in 0..parsed.len() {
            for j in 0..parsed.len() {
                let want = strs[i].cmp(strs[j]); // ASCII '0'<'1' gives the same order
                assert_eq!(
                    parsed[i].cmp(&parsed[j]),
                    want,
                    "{:?} vs {:?}",
                    strs[i],
                    strs[j]
                );
            }
        }
    }

    #[test]
    fn starts_with_works() {
        let s = BitString::parse("110101");
        assert!(s
            .as_bitstr()
            .starts_with(&BitString::parse("110").as_bitstr()));
        assert!(s.as_bitstr().starts_with(&BitString::new().as_bitstr()));
        assert!(!s
            .as_bitstr()
            .starts_with(&BitString::parse("111").as_bitstr()));
        assert!(!s
            .as_bitstr()
            .starts_with(&BitString::parse("1101011").as_bitstr()));
    }

    #[test]
    fn eq_and_hash_respect_offsets() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = BitString::parse("0011010");
        let b = BitString::parse("110011010");
        let va = a.as_bitstr();
        let vb = b.sub(2, 7);
        assert_eq!(va, vb);
        let hash = |v: &BitStr<'_>| {
            let mut h = DefaultHasher::new();
            v.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&va), hash(&vb));
    }

    #[test]
    fn push_str_concatenates() {
        let mut s = BitString::parse("101");
        s.push_str(BitString::parse("0011").as_bitstr());
        assert_eq!(s.to_string(), "1010011");
    }
}
