//! # wt-trie — trie substrates for the Wavelet Trie
//!
//! Substrates from §2, §3 and Appendix B of *"The Wavelet Trie"*
//! (Grossi & Ottaviano, PODS 2012):
//!
//! * [`bitstr`] — binary strings at bit granularity ([`BitString`],
//!   [`BitStr`]): LCP, slicing, ordering.
//! * [`bp`] — balanced-parentheses navigation with a range-min tree
//!   ([`BpSupport`]): `excess`/`find_close`/`find_open`.
//! * [`dfuds`] — DFUDS succinct ordinal trees ([`Dfuds`]), the shape
//!   encoding of the static Wavelet Trie (§3).
//! * [`patricia`] — the dynamic Patricia trie of Appendix B
//!   ([`PatriciaSet`]), with O(|s|) insert and merge-on-delete.
//! * [`pathdecomp`] — BFS skeleton of a centroid path decomposition
//!   ([`PathSkeleton`]), the shape directory of the path-decomposed
//!   static trie.

pub mod bitstr;
pub mod bp;
pub mod dfuds;
pub mod pathdecomp;
pub mod patricia;

pub use bitstr::{BitStr, BitString};
pub use bp::BpSupport;
pub use dfuds::{Dfuds, NodeId};
pub use pathdecomp::PathSkeleton;
pub use patricia::{PatriciaSet, PrefixFreeViolation};
