//! Balanced-parentheses support: `excess`, `findclose`, `findopen`.
//!
//! The DFUDS tree encoding of the static Wavelet Trie (§3, [Benoit et al.])
//! needs matching-parenthesis navigation. The paper assumes O(1) operations
//! via Four-Russians tables; we implement the standard engineered
//! alternative — a range-min (rmM) tree over 512-bit blocks with byte-table
//! scans inside blocks, giving O(log n) worst case and one-block scans in
//! practice (DESIGN.md substitution #1/#6 discussion).
//!
//! Convention: bit `1` is `'('` (+1), bit `0` is `')'` (−1);
//! `excess(i)` is the sum over `[0, i)`.

use wt_bits::{BitAccess, BitRank, Fid, RawBitVec};

/// Bits per rmM leaf block.
const BLOCK: usize = 512;

/// Per-byte total excess: `2·popcount − 8`.
const fn byte_excess_table() -> [i8; 256] {
    let mut t = [0i8; 256];
    let mut v = 0usize;
    while v < 256 {
        t[v] = 2 * (v as u8).count_ones() as i8 - 8;
        v += 1;
    }
    t
}

/// Per-byte minimum prefix excess over prefixes of length 1..=8
/// (reading bits LSB-first, matching [`RawBitVec`] order).
const fn byte_fwd_min_table() -> [i8; 256] {
    let mut t = [0i8; 256];
    let mut v = 0usize;
    while v < 256 {
        let mut run = 0i8;
        let mut min = i8::MAX;
        let mut k = 0;
        while k < 8 {
            run += if (v >> k) & 1 == 1 { 1 } else { -1 };
            if run < min {
                min = run;
            }
            k += 1;
        }
        t[v] = min;
        v += 1;
    }
    t
}

/// Per-byte minimum running excess when consuming bits from bit 7 down to
/// bit 0, where consuming bit b updates `run -= δ(b)`.
const fn byte_bwd_min_table() -> [i8; 256] {
    let mut t = [0i8; 256];
    let mut v = 0usize;
    while v < 256 {
        let mut run = 0i8;
        let mut min = i8::MAX;
        let mut k = 8usize;
        while k > 0 {
            k -= 1;
            run -= if (v >> k) & 1 == 1 { 1 } else { -1 };
            if run < min {
                min = run;
            }
        }
        t[v] = min;
        v += 1;
    }
    t
}

const BYTE_EXC: [i8; 256] = byte_excess_table();
const BYTE_FWD_MIN: [i8; 256] = byte_fwd_min_table();
const BYTE_BWD_MIN: [i8; 256] = byte_bwd_min_table();

/// Balanced-parentheses bitvector with rank/select and matching navigation.
#[derive(Clone, Debug)]
pub struct BpSupport {
    bits: Fid,
    /// Number of rmM leaves (power of two ≥ number of blocks).
    leaves: usize,
    /// Segment tree (1-indexed): total excess of each node's range.
    tot: Vec<i64>,
    /// Segment tree: min prefix excess (over non-empty prefixes) relative to
    /// the range start.
    min: Vec<i64>,
}

impl BpSupport {
    /// Builds the support over a parentheses sequence.
    pub fn new(bits: RawBitVec) -> Self {
        let n_blocks = bits.len().div_ceil(BLOCK).max(1);
        let leaves = n_blocks.next_power_of_two();
        let mut tot = vec![0i64; 2 * leaves];
        let mut min = vec![i64::MAX; 2 * leaves];
        for b in 0..n_blocks {
            let (t, m) = Self::block_summary(&bits, b);
            tot[leaves + b] = t;
            min[leaves + b] = m;
        }
        for b in n_blocks..leaves {
            tot[leaves + b] = 0;
            min[leaves + b] = i64::MAX; // empty: unreachable
        }
        for k in (1..leaves).rev() {
            let (l, r) = (2 * k, 2 * k + 1);
            tot[k] = tot[l] + tot[r];
            min[k] = min[l].min(if min[r] == i64::MAX {
                i64::MAX
            } else {
                tot[l] + min[r]
            });
        }
        BpSupport {
            bits: Fid::new(bits),
            leaves,
            tot,
            min,
        }
    }

    fn block_summary(bits: &RawBitVec, b: usize) -> (i64, i64) {
        let start = b * BLOCK;
        let end = (start + BLOCK).min(bits.len());
        let mut run = 0i64;
        let mut min = i64::MAX;
        for i in start..end {
            run += if bits.get(i) { 1 } else { -1 };
            min = min.min(run);
        }
        (run, min)
    }

    /// The underlying FID (for rank/select on the parentheses).
    #[inline]
    pub fn fid(&self) -> &Fid {
        &self.bits
    }

    /// Sequence length.
    #[inline]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// `true` iff position `i` is `'('`.
    #[inline]
    pub fn is_open(&self, i: usize) -> bool {
        self.bits.get(i)
    }

    /// `excess(i)`: (#open − #close) in `[0, i)`.
    #[inline]
    pub fn excess(&self, i: usize) -> i64 {
        2 * self.bits.rank1(i) as i64 - i as i64
    }

    /// Position of the `')'` matching the `'('` at `i`.
    ///
    /// # Panics
    /// If `i` is not `'('`. Returns `None` if unmatched (unbalanced input).
    pub fn find_close(&self, i: usize) -> Option<usize> {
        assert!(self.is_open(i), "find_close on a ')' at {i}");
        // Smallest j > i with running excess (starting +1 after consuming i)
        // hitting 0, i.e. fwd search from i+1 with running=1, target=0.
        self.fwd_search(i + 1, 1, 0)
    }

    /// Position of the `'('` matching the `')'` at `i`.
    ///
    /// # Panics
    /// If `i` is not `')'`. Returns `None` if unmatched.
    pub fn find_open(&self, i: usize) -> Option<usize> {
        assert!(!self.is_open(i), "find_open on a '(' at {i}");
        if i == 0 {
            return None;
        }
        // Largest j < i with excess(j) == excess(i+1); scan backward with
        // running = excess(j) − excess(i+1), starting at +1 for j = i.
        self.bwd_search(i, 1, 0)
    }

    /// Forward search: smallest `j >= from` such that `running` + the δ-sum
    /// over `[from..=j]` equals `target`. `running` is the excess already
    /// accumulated relative to the search origin.
    fn fwd_search(&self, from: usize, mut running: i64, target: i64) -> Option<usize> {
        let n = self.len();
        if from >= n {
            return None;
        }
        let first_block = from / BLOCK;
        // 1. Scan the remainder of the starting block.
        let block_end = ((first_block + 1) * BLOCK).min(n);
        match self.fwd_scan(from, block_end, running, target) {
            Ok(j) => return Some(j),
            Err(r) => running = r,
        }
        // 2. Climb the rmM tree for the first reachable block to the right.
        let mut node = self.leaves + first_block;
        loop {
            // Climb while `node` is a right child; stop at a left child whose
            // right sibling is the next unexamined subtree.
            while node > 1 && node & 1 == 1 {
                node >>= 1;
            }
            if node <= 1 {
                return None;
            }
            node += 1; // right sibling
            if self.min[node] != i64::MAX && running + self.min[node] <= target {
                // Descend to the leftmost reachable leaf.
                while node < self.leaves {
                    let l = 2 * node;
                    if self.min[l] != i64::MAX && running + self.min[l] <= target {
                        node = l;
                    } else {
                        running += self.tot[l];
                        node = l + 1;
                    }
                }
                let b = node - self.leaves;
                let start = b * BLOCK;
                let end = (start + BLOCK).min(n);
                match self.fwd_scan(start, end, running, target) {
                    Ok(j) => return Some(j),
                    Err(r) => running = r, // conservative test overshot; continue
                }
            } else {
                running += self.tot[node];
            }
        }
    }

    /// Scans `[from, to)` forward; `Ok(j)` when the running excess hits
    /// `target` after consuming `j`, else `Err(final_running)`.
    fn fwd_scan(
        &self,
        from: usize,
        to: usize,
        mut running: i64,
        target: i64,
    ) -> Result<usize, i64> {
        let mut i = from;
        // Bitwise to the next byte boundary.
        while i < to && !i.is_multiple_of(8) {
            running += if self.bits.get(i) { 1 } else { -1 };
            if running == target {
                return Ok(i);
            }
            i += 1;
        }
        // Whole bytes with table pruning.
        while i + 8 <= to {
            let byte = (self.bits.raw().get_bits(i, 8)) as usize;
            if running + BYTE_FWD_MIN[byte] as i64 <= target {
                for k in 0..8 {
                    running += if (byte >> k) & 1 == 1 { 1 } else { -1 };
                    if running == target {
                        return Ok(i + k);
                    }
                }
                unreachable!("byte table promised a match");
            }
            running += BYTE_EXC[byte] as i64;
            i += 8;
        }
        // Tail bits.
        while i < to {
            running += if self.bits.get(i) { 1 } else { -1 };
            if running == target {
                return Ok(i);
            }
            i += 1;
        }
        Err(running)
    }

    /// Backward search: largest `j < from` such that `running` minus the
    /// δ-sum over `[j..from)` equals `target` **at position j** (i.e. the
    /// running value after un-consuming bits down to and including `j`).
    fn bwd_search(&self, from: usize, mut running: i64, target: i64) -> Option<usize> {
        if from == 0 {
            return None;
        }
        let first_block = from.saturating_sub(1) / BLOCK;
        let block_start = first_block * BLOCK;
        match self.bwd_scan(block_start, from, running, target) {
            Ok(j) => return Some(j),
            Err(r) => running = r,
        }
        let mut node = self.leaves + first_block;
        loop {
            while node > 1 && node & 1 == 0 {
                node >>= 1;
            }
            if node <= 1 {
                return None;
            }
            // left sibling
            node -= 1;
            // Backward reachability: scanning the range right-to-left from
            // running value R reaches R − tot + prefix_k for k = 0..len−1;
            // the minimum is bounded below by R − tot + min(0, min-prefix).
            let reach = self.min[node] != i64::MAX
                && running - self.tot[node] + self.min[node].min(0) <= target;
            if reach {
                while node < self.leaves {
                    let r = 2 * node + 1;
                    let r_reach = self.min[r] != i64::MAX
                        && running - self.tot[r] + self.min[r].min(0) <= target;
                    if r_reach {
                        node = r;
                    } else {
                        running -= self.tot[r];
                        node *= 2;
                    }
                }
                let b = node - self.leaves;
                let start = b * BLOCK;
                let end = ((b + 1) * BLOCK).min(self.len());
                match self.bwd_scan(start, end, running, target) {
                    Ok(j) => return Some(j),
                    Err(r) => running = r,
                }
            } else {
                running -= self.tot[node];
            }
        }
    }

    /// Scans `[from, to)` backward; `Ok(j)` when the running value after
    /// un-consuming bit `j` equals `target`, else `Err(final_running)`.
    fn bwd_scan(
        &self,
        from: usize,
        to: usize,
        mut running: i64,
        target: i64,
    ) -> Result<usize, i64> {
        let mut i = to;
        while i > from && !i.is_multiple_of(8) {
            i -= 1;
            running -= if self.bits.get(i) { 1 } else { -1 };
            if running == target {
                return Ok(i);
            }
        }
        while i >= from + 8 {
            let byte = (self.bits.raw().get_bits(i - 8, 8)) as usize;
            if running + BYTE_BWD_MIN[byte] as i64 <= target {
                for k in (0..8).rev() {
                    i -= 1;
                    running -= if (byte >> k) & 1 == 1 { 1 } else { -1 };
                    if running == target {
                        return Ok(i);
                    }
                }
                unreachable!("byte table promised a match");
            }
            running -= BYTE_EXC[byte] as i64;
            i -= 8;
        }
        while i > from {
            i -= 1;
            running -= if self.bits.get(i) { 1 } else { -1 };
            if running == target {
                return Ok(i);
            }
        }
        Err(running)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_close(bits: &RawBitVec, i: usize) -> Option<usize> {
        let mut depth = 0i64;
        for j in i..bits.len() {
            depth += if bits.get(j) { 1 } else { -1 };
            if depth == 0 {
                return Some(j);
            }
        }
        None
    }

    fn naive_open(bits: &RawBitVec, i: usize) -> Option<usize> {
        let mut depth = 0i64;
        for j in (0..=i).rev() {
            depth += if bits.get(j) { -1 } else { 1 };
            if depth == 0 {
                return Some(j);
            }
        }
        None
    }

    fn check_all(bits: &RawBitVec) {
        let bp = BpSupport::new(bits.clone());
        for i in 0..bits.len() {
            if bits.get(i) {
                assert_eq!(bp.find_close(i), naive_close(bits, i), "find_close({i})");
            } else {
                assert_eq!(bp.find_open(i), naive_open(bits, i), "find_open({i})");
            }
        }
        for i in 0..=bits.len() {
            let naive = 2 * bits.rank1_scan(i) as i64 - i as i64;
            assert_eq!(bp.excess(i), naive, "excess({i})");
        }
    }

    /// Random balanced sequence via random tree walk.
    fn random_balanced(n_pairs: usize, seed: u64) -> RawBitVec {
        let mut s = seed;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut bits = RawBitVec::new();
        let mut open = 0usize;
        let mut remaining = n_pairs;
        while remaining > 0 || open > 0 {
            let can_open = remaining > 0;
            let can_close = open > 0;
            let do_open = can_open && (!can_close || next() % 2 == 0);
            if do_open {
                bits.push(true);
                open += 1;
                remaining -= 1;
            } else {
                bits.push(false);
                open -= 1;
            }
        }
        bits
    }

    #[test]
    fn simple_sequences() {
        check_all(&RawBitVec::from_bit_str("10"));
        check_all(&RawBitVec::from_bit_str("1100"));
        check_all(&RawBitVec::from_bit_str("110100"));
        check_all(&RawBitVec::from_bit_str("11101000110100"));
    }

    #[test]
    fn deep_nesting_crosses_blocks() {
        // ((((...))))  with depth 2000: matches are ~4000 bits apart.
        let mut bits = RawBitVec::new();
        for _ in 0..2000 {
            bits.push(true);
        }
        for _ in 0..2000 {
            bits.push(false);
        }
        let bp = BpSupport::new(bits.clone());
        assert_eq!(bp.find_close(0), Some(3999));
        assert_eq!(bp.find_close(1999), Some(2000));
        assert_eq!(bp.find_open(3999), Some(0));
        assert_eq!(bp.find_open(2000), Some(1999));
        check_all(&bits);
    }

    #[test]
    fn flat_sequence() {
        // ()()()...(): matches always adjacent.
        let bits = RawBitVec::from_bits((0..4000).map(|i| i % 2 == 0));
        check_all(&bits);
    }

    #[test]
    fn random_balanced_sequences() {
        for seed in 1..6u64 {
            let bits = random_balanced(1500, seed * 7919);
            check_all(&bits);
        }
    }

    #[test]
    fn unbalanced_returns_none() {
        let bits = RawBitVec::from_bit_str("111");
        let bp = BpSupport::new(bits);
        assert_eq!(bp.find_close(0), None);
        let bits = RawBitVec::from_bit_str("000");
        let bp = BpSupport::new(bits);
        assert_eq!(bp.find_open(2), None);
    }

    #[test]
    fn block_boundary_sizes() {
        for n_pairs in [255usize, 256, 257, 511, 512, 513] {
            let bits = random_balanced(n_pairs, n_pairs as u64 + 3);
            check_all(&bits);
        }
    }
}
